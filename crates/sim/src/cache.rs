//! Set-associative cache model with real tag arrays and true-LRU
//! replacement. Used for the private L1 and L2 of every node.

use crate::addr::Addr;
use crate::config::CacheConfig;

/// Result of a cache lookup-and-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    Hit,
    /// Miss; the evicted line's block address, if a dirty line was replaced.
    Miss { writeback: Option<Addr> },
}

/// Per-line state word: `(tag << 2) | dirty << 1 | valid`. Packing the tag
/// and flags into one u64 keeps the whole tag scan of an 8-way set inside a
/// single host cache line — the simulated tag arrays are megabytes per
/// node, so their memory behaviour dominates the simulator's hot path.
const VALID: u64 = 0b01;
const DIRTY: u64 = 0b10;
const TAG_SHIFT: u32 = 2;

/// A single set-associative cache (one level, one node).
///
/// Stored struct-of-arrays: `tags` (scanned on every access) and `lru`
/// (touched only for the hit way or the victim search) are separate, so an
/// access reads at most two host cache lines instead of walking an
/// array-of-structs set.
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<u64>, // sets * assoc packed state words, set-major
    lru: Vec<u64>,  // last-use clock per line, same indexing
    set_mask: u64,
    block_shift: u32,
    set_shift: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.n_sets();
        assert!(sets.is_power_of_two() && sets > 0, "bad cache geometry");
        assert!(cfg.line_bytes.is_power_of_two());
        let block_shift = cfg.line_bytes.trailing_zeros();
        let lines = (sets * cfg.assoc as u64) as usize;
        Self {
            tags: vec![0; lines],
            lru: vec![0; lines],
            set_mask: sets - 1,
            block_shift,
            set_shift: block_shift + sets.trailing_zeros(),
            clock: 0,
            hits: 0,
            misses: 0,
            cfg,
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_range(&self, addr: Addr) -> (usize, u64) {
        let set = ((addr >> self.block_shift) & self.set_mask) as usize;
        let tag = addr >> self.set_shift;
        (set * self.cfg.assoc as usize, tag)
    }

    /// Index of the way holding a valid line with `tag` within the set
    /// starting at `base`, if any. The comparison masks DIRTY out, so one
    /// compare per way checks tag and validity together.
    #[inline]
    fn find(&self, base: usize, tag: u64) -> Option<usize> {
        let want = (tag << TAG_SHIFT) | VALID;
        self.tags[base..base + self.cfg.assoc as usize]
            .iter()
            .position(|&t| t & !DIRTY == want)
    }

    /// Access `addr`; on a miss the line is filled (allocate-on-miss for
    /// both loads and stores, as in a writeback write-allocate cache).
    pub fn access(&mut self, addr: Addr, write: bool) -> Lookup {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);

        if let Some(way) = self.find(base, tag) {
            self.tags[base + way] |= (write as u64) << 1;
            self.lru[base + way] = self.clock;
            self.hits += 1;
            return Lookup::Hit;
        }
        self.misses += 1;

        // Victim: invalid line if any, else true-LRU.
        let assoc = self.cfg.assoc as usize;
        let victim = self.tags[base..base + assoc]
            .iter()
            .zip(&self.lru[base..base + assoc])
            .enumerate()
            .min_by_key(|(_, (&t, &lru))| if t & VALID != 0 { lru } else { 0 })
            .map(|(i, _)| i)
            .expect("associativity is nonzero");
        let set_index = (base / assoc) as u64;
        let old = self.tags[base + victim];
        let writeback = if old & VALID != 0 && old & DIRTY != 0 {
            Some(((old >> TAG_SHIFT) << self.set_shift) | (set_index << self.block_shift))
        } else {
            None
        };
        self.tags[base + victim] = (tag << TAG_SHIFT) | ((write as u64) << 1) | VALID;
        self.lru[base + victim] = self.clock;
        Lookup::Miss { writeback }
    }

    /// Probe without filling or updating LRU; true if the block is present.
    pub fn probe(&self, addr: Addr) -> bool {
        let (base, tag) = self.set_range(addr);
        self.find(base, tag).is_some()
    }

    /// Invalidate the block containing `addr` (coherence). Returns true if
    /// the block was present and dirty.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let (base, tag) = self.set_range(addr);
        if let Some(way) = self.find(base, tag) {
            let was_dirty = self.tags[base + way] & DIRTY != 0;
            self.tags[base + way] = 0;
            was_dirty
        } else {
            false
        }
    }

    /// Downgrade a line to clean (coherence: exclusive → shared). Returns
    /// true if the block was present and dirty.
    pub fn downgrade(&mut self, addr: Addr) -> bool {
        let (base, tag) = self.set_range(addr);
        if let Some(way) = self.find(base, tag) {
            let was_dirty = self.tags[base + way] & DIRTY != 0;
            self.tags[base + way] &= !DIRTY;
            was_dirty
        } else {
            false
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidate everything (context switch in the multiprogramming demo).
    pub fn flush(&mut self) {
        self.tags.fill(0);
    }

    /// Export the dynamic state (tag/LRU arrays and counters) for
    /// checkpointing. Geometry is config-derived and not included.
    pub fn export_state(&self) -> crate::state::CacheState {
        crate::state::CacheState {
            tags: self.tags.clone(),
            lru: self.lru.clone(),
            clock: self.clock,
            hits: self.hits,
            misses: self.misses,
        }
    }

    /// Restore dynamic state captured by [`Cache::export_state`] on a cache
    /// with the same geometry.
    pub fn import_state(&mut self, st: &crate::state::CacheState) {
        assert_eq!(st.tags.len(), self.tags.len(), "cache geometry mismatch");
        assert_eq!(st.lru.len(), self.lru.len(), "cache geometry mismatch");
        self.tags.copy_from_slice(&st.tags);
        self.lru.copy_from_slice(&st.lru);
        self.clock = st.clock;
        self.hits = st.hits;
        self.misses = st.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: u32) -> Cache {
        // 4 sets x assoc x 32 B lines.
        Cache::new(CacheConfig {
            size_bytes: 4 * assoc as u64 * 32,
            assoc,
            line_bytes: 32,
            latency_cycles: 1,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(2);
        assert!(matches!(c.access(0x100, false), Lookup::Miss { .. }));
        assert_eq!(c.access(0x100, false), Lookup::Hit);
        assert_eq!(c.access(0x11f, false), Lookup::Hit); // same 32 B block
        assert!(matches!(c.access(0x120, false), Lookup::Miss { .. }));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = tiny(1);
        // Two addresses 4 sets * 32 B = 128 B apart map to the same set.
        assert!(matches!(c.access(0x000, false), Lookup::Miss { .. }));
        assert!(matches!(c.access(0x080, false), Lookup::Miss { .. }));
        assert!(matches!(c.access(0x000, false), Lookup::Miss { .. })); // evicted
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = tiny(2);
        c.access(0x000, false); // set 0
        c.access(0x080, false); // set 0, second way
        c.access(0x000, false); // touch first again
        c.access(0x100, false); // evicts 0x080 (LRU), not 0x000
        assert_eq!(c.access(0x000, false), Lookup::Hit);
        assert!(matches!(c.access(0x080, false), Lookup::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1);
        c.access(0x000, true); // dirty fill
        match c.access(0x080, false) {
            Lookup::Miss { writeback: Some(addr) } => assert_eq!(addr, 0x000),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny(1);
        c.access(0x000, false);
        assert!(matches!(
            c.access(0x080, false),
            Lookup::Miss { writeback: None }
        ));
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = tiny(2);
        c.access(0x200, true);
        assert!(c.probe(0x200));
        assert!(c.invalidate(0x200)); // dirty
        assert!(!c.probe(0x200));
        assert!(!c.invalidate(0x200)); // already gone
    }

    #[test]
    fn downgrade_cleans_but_keeps_block() {
        let mut c = tiny(2);
        c.access(0x200, true);
        assert!(c.downgrade(0x200));
        assert!(c.probe(0x200));
        // Now clean: evicting it produces no writeback.
        assert!(!c.downgrade(0x200));
    }

    #[test]
    fn writeback_address_reconstruction_is_exact() {
        let mut c = tiny(1);
        let victim = 0x0000_1234_5680u64; // block-aligned-ish high address
        let victim_block = victim >> 5 << 5;
        c.access(victim, true);
        // Conflicting address: same set (bits 5..7), different tag.
        let conflict = victim ^ (1 << 30);
        match c.access(conflict, false) {
            Lookup::Miss { writeback: Some(a) } => assert_eq!(a, victim_block),
            other => panic!("expected writeback, got {other:?}"),
        }
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny(2);
        c.access(0x000, false);
        c.access(0x100, true);
        c.flush();
        assert!(!c.probe(0x000));
        assert!(!c.probe(0x100));
    }

    #[test]
    fn paper_l1_geometry_works() {
        let cfg = crate::config::SystemConfig::paper(8);
        let mut l1 = Cache::new(cfg.l1);
        // Fill all 512 sets, then the 513th distinct block evicts set 0.
        for i in 0..512u64 {
            assert!(matches!(l1.access(i * 32, false), Lookup::Miss { .. }));
        }
        for i in 0..512u64 {
            assert_eq!(l1.access(i * 32, false), Lookup::Hit);
        }
        assert!(matches!(l1.access(512 * 32, false), Lookup::Miss { .. }));
        assert!(matches!(l1.access(0, false), Lookup::Miss { .. }));
    }
}
