//! System configuration mirroring Table I of the paper.
//!
//! All latencies are stored in **processor cycles** at the configured core
//! frequency (2 GHz in the paper), so the timing model never multiplies by
//! wall-clock units at runtime.

use crate::topology::TopologyKind;
use serde::{Deserialize, Serialize};

/// Data-placement policy: which node is the *home* of a memory block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistributionPolicy {
    /// Consecutive 4 kB pages are assigned to nodes round-robin.
    PageInterleave,
    /// Consecutive 32 B blocks are assigned to nodes round-robin.
    BlockInterleave,
    /// The first processor to touch a page becomes its home (requires the
    /// stateful [`crate::addr::HomeMap`]).
    FirstTouch,
    /// Explicit placement: the workload encodes the home node in the upper
    /// address bits (used by the structural workload models, which know the
    /// owner of every data structure).
    Explicit,
}

/// A set-associative cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles (added to the load-to-use path on a hit in
    /// this level after a miss in the previous one).
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn n_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc as u64)
    }
}

/// Main-memory (SDRAM) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Access latency in cycles (75 ns at 2 GHz = 150 cycles).
    pub latency_cycles: u64,
    /// Independently scheduled SDRAM banks per controller; consecutive
    /// blocks interleave across banks (Table I: "SDRAM interleaved").
    pub banks: usize,
    /// Minimum cycles between the start of consecutive block transfers at
    /// one controller, i.e. `block_bytes / bandwidth`. 32 B at 2.6 GB/s and
    /// 2 GHz is ~24.6 cycles; we round up to 25. This gap is what produces
    /// queueing (contention) delays at hot home nodes.
    pub service_gap_cycles: u64,
}

/// Interconnect configuration (topology + wormhole-routing latencies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Interconnect layout the fabric routes over. The default hypercube
    /// reproduces the paper's Table I network; the other layouts exist for
    /// the `topologies` sweep (detector quality vs network diameter).
    #[serde(default)]
    pub topology: TopologyKind,
    /// Per-hop pin-to-pin latency in cycles (16 ns at 2 GHz = 32 cycles).
    pub hop_cycles: u64,
    /// Router pipeline occupancy per hop in cycles (400 MHz pipelined router
    /// = 2.5 ns per stage = 5 cycles at 2 GHz).
    pub router_cycles: u64,
    /// Serialization cycles for a cache-block-sized payload (header +
    /// 32 B over the wormhole channel).
    pub payload_cycles: u64,
    /// Serialization cycles for a header-only control message
    /// (request/invalidation/ack).
    pub header_cycles: u64,
    /// Model per-link wormhole channel occupancy along the e-cube route
    /// (messages queue behind earlier messages on each directed link).
    /// Off by default: the paper's contention story concentrates at the
    /// home memory controllers, and the calibrated figures use that model;
    /// enabling it adds network-path queueing on top (see the
    /// `sensitivity` experiment).
    pub link_contention: bool,
}

impl NetworkConfig {
    /// One-way latency of a `hops`-hop message carrying `payload` or not.
    #[inline]
    pub fn one_way(&self, hops: u32, payload: bool) -> u64 {
        if hops == 0 {
            return 0;
        }
        let ser = if payload {
            self.payload_cycles
        } else {
            self.header_cycles
        };
        hops as u64 * (self.hop_cycles + self.router_cycles) + ser
    }
}

/// Retransmission policy for coherence messages lost to injected faults.
///
/// The requester arms a timer when it transmits; if the message (or its
/// reply) is lost, the timer fires after `timeout_cycles` and the request is
/// retransmitted with exponential backoff. After `max_retries` consecutive
/// losses the transfer escalates to a reliable (acknowledged, high-priority)
/// channel and is delivered unconditionally — this models the escalation
/// path real DSM fabrics use and guarantees the protocol never livelocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Cycles the requester waits before the first retransmission.
    pub timeout_cycles: u64,
    /// Backoff cap: the per-attempt timeout doubles up to this many cycles.
    pub max_backoff_cycles: u64,
    /// Dropped attempts tolerated before escalating to reliable delivery.
    pub max_retries: u32,
}

impl RetryPolicy {
    /// Defaults sized to the Table I network: the timeout comfortably covers
    /// a worst-case hypercube round trip plus memory service.
    pub fn default_paper() -> Self {
        Self { timeout_cycles: 600, max_backoff_cycles: 10_000, max_retries: 8 }
    }

    /// Timeout armed for retransmission attempt `attempt` (1-based count of
    /// *failed* sends so far): exponential backoff, capped.
    #[inline]
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(16);
        (self.timeout_cycles << shift).min(self.max_backoff_cycles).max(self.timeout_cycles)
    }

    /// Upper bound on the extra cycles fault recovery can add to one
    /// message: every tolerated drop waits at most the backoff cap.
    pub fn worst_case_recovery_cycles(&self) -> u64 {
        self.max_retries as u64 * self.max_backoff_cycles.max(self.timeout_cycles)
    }
}

/// Deterministic fault-injection plan for the DSM fabric.
///
/// All probabilities are in parts-per-million so the plan stays `Eq`/`Hash`
/// and every decision reduces to integer comparisons against a seeded
/// [`crate::util::splitmix64`] stream — two runs with the same plan and the
/// same workload are bit-identical. [`FaultPlan::none`] disables the whole
/// subsystem: the simulator then never consults the fault RNG and its output
/// is bit-for-bit the fault-free build's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the per-message fault stream (and the per-epoch slowdown
    /// hash). Same seed + same workload = same faults.
    pub seed: u64,
    /// Per-message drop probability (message lost in the fabric), ppm.
    pub drop_ppm: u32,
    /// Per-message duplication probability (a second copy arrives and is
    /// NACKed by the home), ppm.
    pub duplicate_ppm: u32,
    /// Per-message latency-spike probability (transient link stall), ppm.
    pub spike_ppm: u32,
    /// Cycles one latency spike adds to the affected message.
    pub spike_cycles: u64,
    /// Per-(node, epoch) transient slowdown probability, ppm.
    pub slowdown_ppm: u32,
    /// Epoch length of the slowdown windows, in cycles.
    pub slowdown_window_cycles: u64,
    /// Extra exposed stall a slowed node pays on every L2 miss, as a
    /// fraction of the raw miss latency in 1/256 units (integer arithmetic
    /// like [`CoreConfig::stall_exposure_num`]).
    pub slowdown_extra_num: u64,
    /// Issue-throttle numerator: inside a slowdown window the node also
    /// pays `insns * num / 256` extra cycles per committed instruction —
    /// a clock-throttle model that slows compute-bound nodes too, where
    /// `slowdown_extra_num` alone only amplifies exposed miss stalls
    /// (0 = stall amplification only). Multiples of 256 keep the charge
    /// exact per instruction and therefore invariant to how the scheduler
    /// chunks commits.
    pub slowdown_issue_num: u64,
    /// Restrict slowdown epochs to one node (`None` = every node draws from
    /// the per-(node, epoch) hash as before). With `slowdown_ppm` at 1e6
    /// this turns the stochastic slowdown model into a targeted straggler —
    /// the ground truth the diagnostics layer is validated against.
    #[serde(default)]
    pub slowdown_node: Option<usize>,
    /// First cycle at which slowdown epochs may fire (0 = from the start).
    #[serde(default)]
    pub slowdown_from_cycle: u64,
    /// Cycle bound past which slowdown epochs stop firing (0 = unbounded).
    #[serde(default)]
    pub slowdown_until_cycle: u64,
    /// Retransmission policy for lost messages.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The empty plan: no faults, no RNG draws, bit-identical output to a
    /// build without the fault subsystem.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_ppm: 0,
            duplicate_ppm: 0,
            spike_ppm: 0,
            spike_cycles: 0,
            slowdown_ppm: 0,
            slowdown_window_cycles: 0,
            slowdown_extra_num: 0,
            slowdown_issue_num: 0,
            slowdown_node: None,
            slowdown_from_cycle: 0,
            slowdown_until_cycle: 0,
            retry: RetryPolicy::default_paper(),
        }
    }

    /// A message-loss-only plan at `drop_rate` (fraction of messages lost).
    pub fn drops(seed: u64, drop_rate: f64) -> Self {
        Self { seed, drop_ppm: Self::ppm(drop_rate), ..Self::none() }
    }

    /// A mixed plan: drops, duplicates and spikes each at `rate`, plus
    /// occasional node slowdowns — the harness fault-sweep's default shape.
    pub fn mixed(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            drop_ppm: Self::ppm(rate),
            duplicate_ppm: Self::ppm(rate),
            spike_ppm: Self::ppm(rate),
            spike_cycles: 400,
            slowdown_ppm: Self::ppm(rate),
            slowdown_window_cycles: 50_000,
            slowdown_extra_num: 128, // +50 % exposed stall while slowed
            ..Self::none()
        }
    }

    /// A targeted straggler: exactly `node` runs slow (every epoch fires —
    /// `slowdown_ppm` is 1), paying a +75 % exposed-stall penalty *and* an
    /// issue throttle of +4 cycles per committed instruction, inside the
    /// cycle window `[from_cycle, until_cycle)` (`until_cycle` 0 =
    /// unbounded). No message faults. This is the deterministic ground
    /// truth for the diagnostics layer's blind-localization gate.
    pub fn straggler(seed: u64, node: usize, from_cycle: u64, until_cycle: u64) -> Self {
        Self {
            seed,
            slowdown_ppm: 1_000_000,
            slowdown_window_cycles: 50_000,
            slowdown_extra_num: 192,
            slowdown_issue_num: 1024, // +4 cycles per committed instruction
            slowdown_node: Some(node),
            slowdown_from_cycle: from_cycle,
            slowdown_until_cycle: until_cycle,
            ..Self::none()
        }
    }

    fn ppm(rate: f64) -> u32 {
        assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1]");
        (rate * 1_000_000.0).round() as u32
    }

    /// Whether any fault class can fire. False for [`FaultPlan::none`]-like
    /// plans; the simulator then bypasses the fault layer entirely.
    pub fn is_active(&self) -> bool {
        self.drop_ppm > 0
            || self.duplicate_ppm > 0
            || self.spike_ppm > 0
            || self.slowdown_ppm > 0
    }

    /// Validate internal consistency; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        for (name, ppm) in [
            ("drop_ppm", self.drop_ppm),
            ("duplicate_ppm", self.duplicate_ppm),
            ("spike_ppm", self.spike_ppm),
        ] {
            if ppm > 1_000_000 {
                return Err(format!("{name} {ppm} exceeds 1e6 (a probability)"));
            }
        }
        if self.drop_ppm as u64 + self.duplicate_ppm as u64 + self.spike_ppm as u64 > 1_000_000 {
            return Err("drop + duplicate + spike probabilities exceed 1".into());
        }
        if self.slowdown_ppm > 1_000_000 {
            return Err("slowdown_ppm exceeds 1e6 (a probability)".into());
        }
        if self.slowdown_ppm > 0 && self.slowdown_window_cycles == 0 {
            return Err("slowdown enabled but slowdown_window_cycles is 0".into());
        }
        if self.slowdown_until_cycle != 0 && self.slowdown_until_cycle <= self.slowdown_from_cycle {
            return Err("slowdown_until_cycle must exceed slowdown_from_cycle (or be 0)".into());
        }
        if self.is_active() && self.retry.timeout_cycles == 0 {
            return Err("retry timeout must be nonzero when faults are active".into());
        }
        Ok(())
    }
}

/// Processor core configuration (cycle-accounting model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Commit width (instructions per cycle through the int pipeline).
    pub commit_width: u32,
    /// Number of floating-point units (FP throughput per cycle).
    pub fpu_units: u32,
    /// Branch mispredict penalty in cycles.
    pub mispredict_penalty: u64,
    /// gshare predictor table entries (must be a power of two).
    pub gshare_entries: usize,
    /// Fraction of a memory stall actually exposed to the pipeline,
    /// in 1/256 units. An out-of-order core overlaps part of every miss with
    /// independent work; 154/256 ≈ 0.6 is a standard MLP discount. Stored as
    /// an integer so the whole timing model stays in integer arithmetic.
    pub stall_exposure_num: u64,
}

impl CoreConfig {
    pub const STALL_EXPOSURE_DEN: u64 = 256;

    /// Apply the MLP discount to a raw miss latency.
    #[inline]
    pub fn exposed_stall(&self, raw: u64) -> u64 {
        raw * self.stall_exposure_num / Self::STALL_EXPOSURE_DEN
    }
}

/// Full system configuration (Table I of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of processors/nodes (2..=32 in the paper; must be a power of
    /// two for the hypercube).
    pub n_procs: usize,
    /// Core frequency in MHz (2 000 in the paper). Used only for reporting
    /// and the §III-B bandwidth-overhead model.
    pub freq_mhz: u64,
    pub core: CoreConfig,
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    pub memory: MemoryConfig,
    pub network: NetworkConfig,
    pub distribution: DistributionPolicy,
    /// Directory lookup latency at the home node, in cycles.
    pub directory_cycles: u64,
    /// Fixed cost of a synchronization operation (barrier arrival, lock
    /// acquire/release), in cycles, on top of any waiting.
    pub sync_cycles: u64,
    /// Committed **non-synchronization** instructions per sampling interval
    /// on each processor. The paper uses 3 M divided by the number of
    /// processors; constructors apply that division.
    pub interval_insns: u64,
    /// Deterministic fault-injection plan ([`FaultPlan::none`] by default:
    /// the fault layer is bypassed and output is bit-identical to a
    /// fault-free build).
    pub fault: FaultPlan,
}

impl SystemConfig {
    /// The architecture of Table I at paper scale: 3 M-instruction interval
    /// base divided by `n_procs`.
    pub fn paper(n_procs: usize) -> Self {
        Self::with_interval_base(n_procs, 3_000_000)
    }

    /// Table I architecture with an explicit system-wide interval base
    /// (per-processor interval = `base / n_procs`, the paper's scaling rule).
    pub fn with_interval_base(n_procs: usize, interval_base: u64) -> Self {
        assert!(n_procs.is_power_of_two(), "hypercube needs a power of two");
        assert!((1..=1024).contains(&n_procs));
        Self {
            n_procs,
            freq_mhz: 2000,
            core: CoreConfig {
                commit_width: 6,
                fpu_units: 4,
                mispredict_penalty: 14,
                gshare_entries: 2048,
                stall_exposure_num: 154, // ~0.6
            },
            l1: CacheConfig {
                size_bytes: 16 * 1024,
                assoc: 1,
                line_bytes: 32,
                latency_cycles: 1,
            },
            l2: CacheConfig {
                size_bytes: 2 * 1024 * 1024,
                assoc: 8,
                line_bytes: 32,
                latency_cycles: 12,
            },
            memory: MemoryConfig {
                latency_cycles: 150,   // 75 ns at 2 GHz
                service_gap_cycles: 25, // 32 B at 2.6 GB/s
                banks: 1,
            },
            network: NetworkConfig {
                topology: TopologyKind::Hypercube,
                hop_cycles: 32,   // 16 ns pin-to-pin
                router_cycles: 5, // 400 MHz pipelined router
                payload_cycles: 26,
                header_cycles: 4,
                link_contention: false,
            },
            distribution: DistributionPolicy::Explicit,
            directory_cycles: 6,
            sync_cycles: 40,
            interval_insns: (interval_base / n_procs as u64).max(1),
            fault: FaultPlan::none(),
        }
    }

    /// A scaled configuration for the reduced default inputs (see DESIGN.md
    /// §7): identical latencies and geometry except a smaller L2 so that the
    /// scaled working sets keep the paper's working-set-to-cache ratio.
    pub fn scaled(n_procs: usize, interval_base: u64) -> Self {
        let mut cfg = Self::with_interval_base(n_procs, interval_base);
        cfg.l2.size_bytes = 256 * 1024;
        cfg
    }

    /// Per-processor sampling-interval length in committed non-sync
    /// instructions.
    pub fn interval_len(&self) -> u64 {
        self.interval_insns
    }

    /// Expected simultaneously tracked directory entries: every block cached
    /// anywhere lives in some L2, so aggregate L2 lines bound the steady
    /// state (capped so huge configs don't pre-reserve absurd maps). Used to
    /// pre-size the directory map off the coherence hot path.
    pub fn directory_capacity_hint(&self) -> usize {
        let lines = self.l2.size_bytes / self.l2.line_bytes.max(1);
        ((lines as usize).saturating_mul(self.n_procs)).min(1 << 21)
    }

    /// Expected distinct locks per run; sized generously since a `LockState`
    /// is tiny (pre-sizing only avoids rehash churn in lock-heavy phases).
    pub fn lock_capacity_hint(&self) -> usize {
        64
    }

    /// Validate internal consistency; returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        if !self.n_procs.is_power_of_two() {
            return Err(format!("n_procs {} is not a power of two", self.n_procs));
        }
        for (name, c) in [("L1", &self.l1), ("L2", &self.l2)] {
            if !c.line_bytes.is_power_of_two() {
                return Err(format!("{name} line size must be a power of two"));
            }
            if c.assoc == 0 {
                return Err(format!("{name} associativity must be nonzero"));
            }
            let sets = c.n_sets();
            if sets == 0 || !sets.is_power_of_two() {
                return Err(format!("{name} set count {sets} must be a nonzero power of two"));
            }
        }
        if !self.core.gshare_entries.is_power_of_two() {
            return Err("gshare entries must be a power of two".into());
        }
        if self.core.commit_width == 0 || self.core.fpu_units == 0 {
            return Err("core widths must be nonzero".into());
        }
        if self.interval_insns == 0 {
            return Err("interval length must be nonzero".into());
        }
        self.fault.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_one() {
        let c = SystemConfig::paper(32);
        assert_eq!(c.freq_mhz, 2000);
        assert_eq!(c.core.commit_width, 6);
        assert_eq!(c.core.fpu_units, 4);
        assert_eq!(c.core.gshare_entries, 2048);
        assert_eq!(c.l1.size_bytes, 16 * 1024);
        assert_eq!(c.l1.assoc, 1);
        assert_eq!(c.l2.size_bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.l2.line_bytes, 32);
        assert_eq!(c.l2.latency_cycles, 12);
        assert_eq!(c.memory.latency_cycles, 150); // 75 ns @ 2 GHz
        assert_eq!(c.network.hop_cycles, 32); // 16 ns @ 2 GHz
        assert!(c.validate().is_ok());
    }

    #[test]
    fn interval_scales_inversely_with_procs() {
        // Paper: "3M committed non-synchronization instructions, divided by
        // the number of processors in each configuration".
        assert_eq!(SystemConfig::paper(2).interval_len(), 1_500_000);
        assert_eq!(SystemConfig::paper(8).interval_len(), 375_000);
        assert_eq!(SystemConfig::paper(32).interval_len(), 93_750);
    }

    #[test]
    fn cache_geometry() {
        let c = SystemConfig::paper(8);
        assert_eq!(c.l1.n_sets(), 512); // 16 kB / 32 B direct-mapped
        assert_eq!(c.l2.n_sets(), 8192); // 2 MB / (32 B * 8)
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_procs_panics() {
        let _ = SystemConfig::paper(12);
    }

    #[test]
    fn validate_catches_bad_geometry() {
        let mut c = SystemConfig::paper(4);
        c.l1.line_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::paper(4);
        c.core.gshare_entries = 1000;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::paper(4);
        c.interval_insns = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn network_one_way_latency() {
        let c = SystemConfig::paper(32);
        assert_eq!(c.network.one_way(0, true), 0);
        let one_hop = c.network.one_way(1, false);
        let two_hop = c.network.one_way(2, false);
        assert!(two_hop > one_hop);
        assert!(c.network.one_way(1, true) > one_hop);
    }

    #[test]
    fn fault_plan_none_is_inactive_and_valid() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        assert!(p.validate().is_ok());
        assert!(SystemConfig::paper(4).validate().is_ok());
        assert_eq!(SystemConfig::paper(4).fault, FaultPlan::none());
    }

    #[test]
    fn fault_plan_constructors_and_validation() {
        let p = FaultPlan::drops(7, 0.01);
        assert!(p.is_active());
        assert_eq!(p.drop_ppm, 10_000);
        assert_eq!(p.duplicate_ppm, 0);
        assert!(p.validate().is_ok());

        let m = FaultPlan::mixed(7, 0.001);
        assert!(m.is_active());
        assert!(m.validate().is_ok());
        assert_eq!(m.drop_ppm, 1_000);
        assert!(m.slowdown_window_cycles > 0);

        let mut bad = FaultPlan::drops(0, 0.5);
        bad.duplicate_ppm = 600_000; // 0.5 + 0.6 > 1
        assert!(bad.validate().is_err());

        let mut bad = FaultPlan::mixed(0, 0.01);
        bad.slowdown_window_cycles = 0;
        assert!(bad.validate().is_err());

        let mut bad = FaultPlan::drops(0, 0.01);
        bad.retry.timeout_cycles = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let r = RetryPolicy { timeout_cycles: 100, max_backoff_cycles: 450, max_retries: 8 };
        assert_eq!(r.backoff(1), 100);
        assert_eq!(r.backoff(2), 200);
        assert_eq!(r.backoff(3), 400);
        assert_eq!(r.backoff(4), 450); // capped
        assert_eq!(r.backoff(60), 450); // shift saturates, still capped
        assert_eq!(r.worst_case_recovery_cycles(), 8 * 450);
    }

    #[test]
    fn exposed_stall_discounts() {
        let core = SystemConfig::paper(2).core;
        assert!(core.exposed_stall(100) < 100);
        assert!(core.exposed_stall(100) > 40);
        assert_eq!(core.exposed_stall(0), 0);
    }
}
