//! Route-aware interconnect fabric with wormhole-routing latency model.
//!
//! Messages travel hop by hop over a runtime-selected [`Topology`]
//! (hypercube by default, reproducing the paper's Table I network): every
//! ordered node pair has one deterministic precomputed route — an ordered
//! list of *directed link* ids — and a message pays one router-pipeline plus
//! pin-to-pin delay per hop, plus a serialization term for its payload.
//!
//! Each directed link carries two counters:
//!
//! * a **flit counter** (`link_flits`) — every message adds its
//!   serialization time in cycles (its flit count at one flit per cycle) to
//!   every link it crosses, so per-link demand and the global
//!   `total_flit_hops` conserve exactly (Σ link_flits == total_flit_hops);
//! * a **busy-until horizon** (`link_busy`) — with
//!   [`NetworkConfig::link_contention`] on, each directed link admits one
//!   wormhole at a time, so messages queue behind earlier traffic on real
//!   links. Off (the default, matching the paper's framing where contention
//!   concentrates at the home memory controllers — see [`crate::memctrl`]),
//!   latency is the deterministic analytic `one_way` of the route length.

use crate::config::NetworkConfig;
use crate::topology::{AnyTopology, Topology, TopologyKind};
use serde::{Deserialize, Serialize};

/// Topology + latency model + per-link accounting for an `n`-node system.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
    n_nodes: usize,
    topo: AnyTopology,
    /// Deterministic route (directed-link ids in traversal order) for every
    /// ordered node pair, indexed `a * n_nodes + b`. Empty when `a == b`.
    routes: Vec<Vec<u32>>,
    msgs: u64,
    payload_msgs: u64,
    total_hops: u64,
    /// Total cycles messages spent queued on busy links.
    link_wait_cycles: u64,
    /// Flit-cycles injected: Σ over messages of `ser * route_len`.
    total_flit_hops: u64,
    /// Per directed link occupancy horizon, used only when
    /// [`NetworkConfig::link_contention`] is on.
    link_busy: Vec<u64>,
    /// Per directed link flit counters (demand, contended or not).
    link_flits: Vec<u64>,
}

/// Aggregate traffic counters for reporting.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    pub msgs: u64,
    pub payload_msgs: u64,
    pub total_hops: u64,
    /// Cycles messages spent queued behind busy links (0 unless link
    /// contention is modelled).
    pub link_wait_cycles: u64,
    /// Flit-cycles injected onto links: each transmission adds its
    /// serialization time to every directed link on its route, so this
    /// always equals the sum of `link_flits`.
    pub total_flit_hops: u64,
    /// Per-directed-link flit counters, indexed by link id (see
    /// [`Network::link_label`] for the id -> endpoints mapping).
    pub link_flits: Vec<u64>,
}

impl NetworkStats {
    /// Merge another stats block into this one (elementwise; the link
    /// vector grows to the longer of the two). Used when aggregating
    /// per-shard runs — merging is commutative and associative.
    pub fn absorb(&mut self, other: &NetworkStats) {
        self.msgs += other.msgs;
        self.payload_msgs += other.payload_msgs;
        self.total_hops += other.total_hops;
        self.link_wait_cycles += other.link_wait_cycles;
        self.total_flit_hops += other.total_flit_hops;
        if self.link_flits.len() < other.link_flits.len() {
            self.link_flits.resize(other.link_flits.len(), 0);
        }
        for (a, b) in self.link_flits.iter_mut().zip(&other.link_flits) {
            *a += b;
        }
    }

    /// Demand on the busiest directed link, in flit-cycles.
    pub fn peak_link_flits(&self) -> u64 {
        self.link_flits.iter().copied().max().unwrap_or(0)
    }

    /// Id of the busiest directed link (lowest id on ties), if any traffic
    /// flowed at all.
    pub fn hottest_link(&self) -> Option<usize> {
        let peak = self.peak_link_flits();
        if peak == 0 {
            return None;
        }
        self.link_flits.iter().position(|&f| f == peak)
    }

    /// Mirror the traffic counters into a metrics registry under `prefix`
    /// (e.g. `sim/network`). Per-link counters are published by
    /// [`Network::publish_links`], which knows the link labels.
    pub fn publish(&self, prefix: &str, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.counter_add(&format!("{prefix}/msgs"), self.msgs);
        reg.counter_add(&format!("{prefix}/payload_msgs"), self.payload_msgs);
        reg.counter_add(&format!("{prefix}/total_hops"), self.total_hops);
        reg.counter_add(&format!("{prefix}/link_wait_cycles"), self.link_wait_cycles);
        reg.counter_add(&format!("{prefix}/flit_hops"), self.total_flit_hops);
        reg.counter_add(&format!("{prefix}/peak_link_flits"), self.peak_link_flits());
    }
}

impl Network {
    pub fn new(cfg: NetworkConfig, n_nodes: usize) -> Self {
        assert!(
            cfg.topology.supports(n_nodes),
            "{} topology cannot be built over {n_nodes} nodes",
            cfg.topology.name()
        );
        let topo = cfg.topology.build(n_nodes);
        let mut routes = Vec::with_capacity(n_nodes * n_nodes);
        let mut buf = Vec::new();
        for a in 0..n_nodes {
            for b in 0..n_nodes {
                topo.route_into(a, b, &mut buf);
                routes.push(buf.iter().map(|&l| l as u32).collect());
            }
        }
        let n_links = topo.n_links();
        Self {
            cfg,
            n_nodes,
            topo,
            routes,
            msgs: 0,
            payload_msgs: 0,
            total_hops: 0,
            link_wait_cycles: 0,
            total_flit_hops: 0,
            link_busy: vec![0; n_links],
            link_flits: vec![0; n_links],
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The layout this fabric routes over.
    pub fn topology(&self) -> &AnyTopology {
        &self.topo
    }

    pub fn kind(&self) -> TopologyKind {
        self.cfg.topology
    }

    /// Longest route in the topology, in hops.
    pub fn diameter(&self) -> u32 {
        self.topo.diameter()
    }

    /// Number of directed links in the topology.
    pub fn n_links(&self) -> usize {
        self.link_flits.len()
    }

    /// Display label `from->to` of a directed link id (switch vertices are
    /// prefixed `s`, e.g. `0->s17` in a fat-tree).
    pub fn link_label(&self, link: usize) -> String {
        self.topo.link_label(link)
    }

    /// Route length between two nodes in hops (links crossed).
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        debug_assert!(a < self.n_nodes && b < self.n_nodes);
        self.routes[a * self.n_nodes + b].len() as u32
    }

    #[inline]
    fn ser(&self, payload: bool) -> u64 {
        if payload { self.cfg.payload_cycles } else { self.cfg.header_cycles }
    }

    /// Record one transmission `a -> b`: message counters, per-link flit
    /// demand, and (when `count_hops`) the per-delivery hop count. Returns
    /// the route length.
    fn record_route(&mut self, a: usize, b: usize, payload: bool, count_hops: bool) -> u32 {
        let ser = self.ser(payload);
        self.msgs += 1;
        self.payload_msgs += payload as u64;
        let idx = a * self.n_nodes + b;
        let h = self.routes[idx].len() as u32;
        if count_hops {
            self.total_hops += h as u64;
        }
        for i in 0..h as usize {
            let l = self.routes[idx][i] as usize;
            self.link_flits[l] += ser;
            self.total_flit_hops += ser;
        }
        h
    }

    /// Timed transmission along the precomputed route. Without link
    /// contention (or for a local message) latency is the analytic
    /// `one_way` of the route length; with it, each directed link admits
    /// one wormhole at a time and the head queues until the link frees.
    fn transmit(&mut self, a: usize, b: usize, payload: bool, now: u64, count_hops: bool) -> u64 {
        if !self.cfg.link_contention || a == b {
            let h = self.record_route(a, b, payload, count_hops);
            return self.cfg.one_way(h, payload);
        }
        let ser = self.ser(payload);
        let h = self.record_route(a, b, payload, count_hops);
        let idx = a * self.n_nodes + b;
        let mut t = now;
        for i in 0..h as usize {
            let l = self.routes[idx][i] as usize;
            let start = t.max(self.link_busy[l]);
            self.link_wait_cycles += start - t;
            self.link_busy[l] = start + ser;
            t = start + self.cfg.hop_cycles + self.cfg.router_cycles;
        }
        (t + ser) - now
    }

    /// One-way latency of a message from `a` to `b`, recording traffic.
    /// Equivalent to [`Network::send_at`] with the link-contention model
    /// bypassed (used where the caller has no meaningful timestamp).
    #[inline]
    pub fn send(&mut self, a: usize, b: usize, payload: bool) -> u64 {
        let h = self.record_route(a, b, payload, true);
        self.cfg.one_way(h, payload)
    }

    /// One-way latency of a message injected at absolute cycle `now`,
    /// following the deterministic route hop by hop (see [`Network::transmit`]'s
    /// contention model). Without [`NetworkConfig::link_contention`] this
    /// reduces exactly to [`Network::send`].
    pub fn send_at(&mut self, a: usize, b: usize, payload: bool, now: u64) -> u64 {
        self.transmit(a, b, payload, now, true)
    }

    /// Retransmit a copy of an already-delivered message (a duplicate the
    /// receiver will NACK). The copy consumes real bandwidth — message
    /// count, payload count, flit demand, and link occupancy — but its hops
    /// are *not* added to `total_hops`: that counter records hop traversals
    /// once per delivered protocol message, and this copy re-walks a route
    /// whose hops the primary transmission already counted.
    pub fn resend_at(&mut self, a: usize, b: usize, payload: bool, now: u64) -> u64 {
        self.transmit(a, b, payload, now, false)
    }

    /// Latency of a round trip `a -> b -> a` with a header request and a
    /// `payload`-carrying reply.
    #[inline]
    pub fn round_trip(&mut self, a: usize, b: usize, payload_back: bool) -> u64 {
        self.send(a, b, false) + self.send(b, a, payload_back)
    }

    /// Pure latency query without traffic accounting.
    #[inline]
    pub fn latency(&self, a: usize, b: usize, payload: bool) -> u64 {
        self.cfg.one_way(self.hops(a, b), payload)
    }

    /// Worst-case uncontended one-way latency in this topology (a full
    /// diameter traversal). The fault layer's retry-budget bounds and the
    /// detector's row-collection deadline are both derived from this.
    #[inline]
    pub fn max_one_way(&self, payload: bool) -> u64 {
        self.cfg.one_way(self.topo.diameter().max(1), payload)
    }

    /// Distance matrix for the paper's DDV: `D[i][j]`, defined as 1 when
    /// `i == j` and `1 + hops(i, j)` otherwise, flattened row-major.
    ///
    /// The paper says only "a measure of the distance from node i to node j
    /// (1 if i = j)" of "pre-programmed constants"; `1 + hops` is the natural
    /// such measure for any topology and keeps local accesses cheapest.
    pub fn distance_matrix(&self) -> Vec<f64> {
        let n = self.n_nodes;
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = if i == j { 1.0 } else { 1.0 + self.hops(i, j) as f64 };
            }
        }
        d
    }

    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            msgs: self.msgs,
            payload_msgs: self.payload_msgs,
            total_hops: self.total_hops,
            link_wait_cycles: self.link_wait_cycles,
            total_flit_hops: self.total_flit_hops,
            link_flits: self.link_flits.clone(),
        }
    }

    /// Publish per-directed-link flit counters under
    /// `{prefix}/link/{from}->{to}/flits`. Only links that carried traffic
    /// are published, to keep the registry proportional to live demand.
    pub fn publish_links(&self, prefix: &str, reg: &mut dsm_telemetry::MetricsRegistry) {
        for (l, &flits) in self.link_flits.iter().enumerate() {
            if flits > 0 {
                reg.counter_add(&format!("{prefix}/link/{}/flits", self.topo.link_label(l)), flits);
            }
        }
    }

    /// Export traffic counters and link-occupancy horizons for
    /// checkpointing.
    pub fn export_state(&self) -> crate::state::NetworkState {
        crate::state::NetworkState {
            msgs: self.msgs,
            payload_msgs: self.payload_msgs,
            total_hops: self.total_hops,
            link_wait_cycles: self.link_wait_cycles,
            total_flit_hops: self.total_flit_hops,
            link_busy: self.link_busy.clone(),
            link_flits: self.link_flits.clone(),
        }
    }

    /// Restore state captured by [`Network::export_state`] on a network of
    /// the same topology.
    pub fn import_state(&mut self, st: &crate::state::NetworkState) {
        assert_eq!(st.link_busy.len(), self.link_busy.len(), "topology mismatch");
        assert_eq!(st.link_flits.len(), self.link_flits.len(), "topology mismatch");
        self.msgs = st.msgs;
        self.payload_msgs = st.payload_msgs;
        self.total_hops = st.total_hops;
        self.link_wait_cycles = st.link_wait_cycles;
        self.total_flit_hops = st.total_flit_hops;
        self.link_busy.copy_from_slice(&st.link_busy);
        self.link_flits.copy_from_slice(&st.link_flits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn net(n: usize) -> Network {
        Network::new(SystemConfig::paper(n.max(2)).network, n)
    }

    fn net_of(kind: TopologyKind, n: usize, contention: bool) -> Network {
        let mut cfg = SystemConfig::paper(n.max(2)).network;
        cfg.topology = kind;
        cfg.link_contention = contention;
        Network::new(cfg, n)
    }

    #[test]
    fn hops_is_hamming_distance() {
        let n = net(32);
        assert_eq!(n.hops(0, 0), 0);
        assert_eq!(n.hops(0, 1), 1);
        assert_eq!(n.hops(0, 3), 2);
        assert_eq!(n.hops(0, 31), 5);
        assert_eq!(n.hops(5, 6), 2); // 101 ^ 110 = 011
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let n = net(16);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(n.hops(a, b), n.hops(b, a));
                for c in 0..16 {
                    assert!(n.hops(a, c) <= n.hops(a, b) + n.hops(b, c));
                }
            }
        }
    }

    #[test]
    fn max_hops_is_diameter() {
        let n = net(32);
        assert_eq!(n.diameter(), 5);
        let max = (0..32)
            .flat_map(|a| (0..32).map(move |b| (a, b)))
            .map(|(a, b)| n.hops(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 5);
    }

    #[test]
    fn local_send_is_free() {
        let mut n = net(8);
        assert_eq!(n.send(3, 3, true), 0);
        assert_eq!(n.stats().total_flit_hops, 0, "a local message crosses no links");
    }

    #[test]
    fn remote_latency_grows_with_distance() {
        let mut n = net(32);
        let one = n.send(0, 1, true);
        let five = n.send(0, 31, true);
        assert!(five > one);
        assert_eq!(n.stats().msgs, 2);
        assert_eq!(n.stats().total_hops, 6);
    }

    #[test]
    fn round_trip_is_sum_of_ways() {
        let mut n = net(8);
        let rt = n.round_trip(0, 5, true);
        let manual = n.latency(0, 5, false) + n.latency(5, 0, true);
        assert_eq!(rt, manual);
    }

    #[test]
    fn distance_matrix_shape_and_diagonal() {
        let n = net(8);
        let d = n.distance_matrix();
        assert_eq!(d.len(), 64);
        for i in 0..8 {
            assert_eq!(d[i * 8 + i], 1.0);
            for j in 0..8 {
                assert!(d[i * 8 + j] >= 1.0);
                assert_eq!(d[i * 8 + j], d[j * 8 + i]);
            }
        }
        // node 0 to node 7 (111) is 3 hops -> 4.0
        assert_eq!(d[7], 4.0);
    }

    #[test]
    fn send_at_without_contention_equals_send() {
        let mut a = net(16);
        let mut b = net(16);
        for (src, dst, payload, now) in
            [(0usize, 5usize, true, 100u64), (3, 3, false, 7), (1, 14, false, 0)]
        {
            assert_eq!(a.send_at(src, dst, payload, now), b.send(src, dst, payload));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn link_contention_queues_messages_on_shared_links() {
        let mut cfg = SystemConfig::paper(8).network;
        cfg.link_contention = true;
        let mut n = Network::new(cfg, 8);
        // Two messages injected at the same instant from node 0 along the
        // same first link (0 -> 1): the second must wait for the first's
        // serialization.
        let first = n.send_at(0, 1, true, 1000);
        let second = n.send_at(0, 1, true, 1000);
        assert!(second > first, "queued message must take longer: {first} vs {second}");
        assert_eq!(second - first, cfg.payload_cycles);
        assert!(n.stats().link_wait_cycles > 0);
        // A message on a different link is unaffected.
        let other = n.send_at(0, 2, true, 1000);
        assert_eq!(other, first);
    }

    #[test]
    fn link_contention_latency_matches_uncontended_when_idle() {
        let mut cfg = SystemConfig::paper(8).network;
        cfg.link_contention = true;
        let mut n = Network::new(cfg, 8);
        // An idle network: hop-by-hop latency equals the analytic one_way.
        assert_eq!(n.send_at(0, 7, true, 0), cfg.one_way(3, true));
        // Much later, links have drained.
        assert_eq!(n.send_at(0, 7, true, 1_000_000), cfg.one_way(3, true));
    }

    #[test]
    fn ecube_routes_use_disjoint_links_for_disjoint_pairs() {
        let mut cfg = SystemConfig::paper(8).network;
        cfg.link_contention = true;
        let mut n = Network::new(cfg, 8);
        // 0->1 and 2->3 share no directed links.
        let a = n.send_at(0, 1, true, 0);
        let b = n.send_at(2, 3, true, 0);
        assert_eq!(a, b);
        assert_eq!(n.stats().link_wait_cycles, 0);
    }

    #[test]
    fn resend_at_charges_bandwidth_but_not_hops() {
        let mut n = net(8);
        let first = n.send_at(0, 5, true, 0);
        let again = n.resend_at(0, 5, true, 0);
        assert_eq!(first, again, "an idle resend takes the same route and time");
        let s = n.stats();
        assert_eq!(s.msgs, 2, "the duplicate copy is real traffic");
        assert_eq!(s.payload_msgs, 2);
        assert_eq!(s.total_hops, n.hops(0, 5) as u64, "hops counted once per delivered message");
        assert_eq!(
            s.total_flit_hops,
            2 * n.hops(0, 5) as u64 * SystemConfig::paper(8).network.payload_cycles,
            "both copies consume link bandwidth"
        );
    }

    #[test]
    fn resend_at_still_occupies_links_under_contention() {
        let mut cfg = SystemConfig::paper(8).network;
        cfg.link_contention = true;
        let mut n = Network::new(cfg, 8);
        let first = n.send_at(0, 1, true, 1000);
        // A duplicate copy injected at the same instant queues behind the
        // primary on the shared first link even though its hops are free.
        let dup = n.resend_at(0, 1, true, 1000);
        assert_eq!(dup - first, cfg.payload_cycles);
        assert_eq!(n.stats().total_hops, 1);
    }

    #[test]
    fn max_one_way_bounds_every_pair() {
        let mut n = net(16);
        let bound = n.max_one_way(true);
        for a in 0..16 {
            for b in 0..16 {
                assert!(n.send_at(a, b, true, 0) <= bound);
            }
        }
        assert_eq!(bound, n.latency(0, 15, true));
    }

    #[test]
    fn uniprocessor_network_degenerates() {
        let n = net(1);
        assert_eq!(n.diameter(), 0);
        assert_eq!(n.n_links(), 0);
        assert_eq!(n.distance_matrix(), vec![1.0]);
    }

    #[test]
    fn flit_counters_conserve_per_link() {
        for kind in TopologyKind::ALL {
            let mut n = net_of(kind, 16, false);
            for (a, b, p) in [(0usize, 5usize, true), (3, 12, false), (7, 7, true), (15, 1, true)] {
                n.send(a, b, p);
            }
            let s = n.stats();
            assert_eq!(
                s.link_flits.iter().sum::<u64>(),
                s.total_flit_hops,
                "{}: flit conservation",
                kind.name()
            );
            assert!(s.peak_link_flits() > 0);
            assert!(s.hottest_link().is_some());
        }
    }

    #[test]
    fn every_topology_is_latency_consistent() {
        // send_at on an idle contended fabric == the analytic latency of
        // the same route, for every layout.
        for kind in TopologyKind::ALL {
            let n = net_of(kind, 16, true);
            for a in 0..16 {
                for b in 0..16 {
                    let expect = n.latency(a, b, true);
                    let mut idle = net_of(kind, 16, true);
                    assert_eq!(idle.send_at(a, b, true, 0), expect, "{}", kind.name());
                    assert!(n.latency(a, b, true) <= n.max_one_way(true));
                }
            }
        }
    }

    #[test]
    fn stats_absorb_merges_elementwise() {
        let mut x = net(8);
        let mut y = net(8);
        x.send(0, 5, true);
        y.send(5, 0, false);
        y.send(1, 2, true);
        let mut merged = x.stats();
        merged.absorb(&y.stats());
        let mut both = net(8);
        both.send(0, 5, true);
        both.send(5, 0, false);
        both.send(1, 2, true);
        assert_eq!(merged, both.stats());
    }

    #[test]
    fn export_import_round_trips_link_state() {
        let mut cfg = SystemConfig::paper(8).network;
        cfg.link_contention = true;
        let mut n = Network::new(cfg, 8);
        n.send_at(0, 7, true, 10);
        n.send_at(3, 4, false, 12);
        let st = n.export_state();
        let mut fresh = Network::new(cfg, 8);
        fresh.import_state(&st);
        assert_eq!(fresh.stats(), n.stats());
        assert_eq!(fresh.export_state(), st);
        // The restored fabric continues with identical contention behavior.
        assert_eq!(fresh.send_at(0, 7, true, 15), n.send_at(0, 7, true, 15));
    }
}
