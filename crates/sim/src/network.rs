//! Hypercube interconnect with wormhole-routing latency model.
//!
//! Nodes are hypercube vertices; the distance between nodes `a` and `b` is
//! the Hamming distance of their ids (e-cube routing). A message pays one
//! router-pipeline plus pin-to-pin delay per hop, plus a serialization term
//! for its payload. Queueing contention is modelled where it dominates in a
//! DSM — the home memory controller ([`crate::memctrl`]) — while the
//! network itself adds deterministic distance latency; this matches the
//! paper's framing, where the contention the DDV captures is "system-wide
//! contention for data with home in j".

use crate::config::NetworkConfig;
use serde::{Deserialize, Serialize};

/// Hypercube topology + latency model for an `n`-node system.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetworkConfig,
    n_nodes: usize,
    dim: u32,
    msgs: u64,
    payload_msgs: u64,
    total_hops: u64,
    /// Per directed link `(node, dim)` occupancy horizon, used only when
    /// [`NetworkConfig::link_contention`] is on.
    link_busy: Vec<u64>,
    /// Total cycles messages spent queued on busy links.
    link_wait_cycles: u64,
}

/// Aggregate traffic counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    pub msgs: u64,
    pub payload_msgs: u64,
    pub total_hops: u64,
    /// Cycles messages spent queued behind busy links (0 unless link
    /// contention is modelled).
    pub link_wait_cycles: u64,
}

impl NetworkStats {
    /// Mirror the traffic counters into a metrics registry under `prefix`
    /// (e.g. `sim/network`).
    pub fn publish(&self, prefix: &str, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.counter_add(&format!("{prefix}/msgs"), self.msgs);
        reg.counter_add(&format!("{prefix}/payload_msgs"), self.payload_msgs);
        reg.counter_add(&format!("{prefix}/total_hops"), self.total_hops);
        reg.counter_add(&format!("{prefix}/link_wait_cycles"), self.link_wait_cycles);
    }
}

impl Network {
    pub fn new(cfg: NetworkConfig, n_nodes: usize) -> Self {
        assert!(n_nodes.is_power_of_two() && n_nodes > 0);
        let dim = n_nodes.trailing_zeros();
        Self {
            cfg,
            n_nodes,
            dim,
            msgs: 0,
            payload_msgs: 0,
            total_hops: 0,
            link_busy: vec![0; n_nodes * dim.max(1) as usize],
            link_wait_cycles: 0,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Hypercube dimension (log2 of node count).
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Hop count between two nodes (Hamming distance of the ids).
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        debug_assert!(a < self.n_nodes && b < self.n_nodes);
        ((a ^ b) as u64).count_ones()
    }

    /// One-way latency of a message from `a` to `b`, recording traffic.
    /// Equivalent to [`Network::send_at`] with the link-contention model
    /// bypassed (used where the caller has no meaningful timestamp).
    #[inline]
    pub fn send(&mut self, a: usize, b: usize, payload: bool) -> u64 {
        let h = self.hops(a, b);
        self.msgs += 1;
        self.payload_msgs += payload as u64;
        self.total_hops += h as u64;
        self.cfg.one_way(h, payload)
    }

    /// One-way latency of a message injected at absolute cycle `now`.
    ///
    /// With [`NetworkConfig::link_contention`] enabled, the message follows
    /// the e-cube (dimension-order) route and each directed link admits one
    /// wormhole at a time: the head queues until the link frees, and the
    /// link stays occupied for the message's serialization time. Without
    /// the flag this reduces exactly to [`Network::send`].
    pub fn send_at(&mut self, a: usize, b: usize, payload: bool, now: u64) -> u64 {
        if !self.cfg.link_contention || a == b {
            return self.send(a, b, payload);
        }
        let ser = if payload { self.cfg.payload_cycles } else { self.cfg.header_cycles };
        let mut node = a;
        let mut t = now;
        let mut diff = a ^ b;
        self.msgs += 1;
        self.payload_msgs += payload as u64;
        while diff != 0 {
            let d = diff.trailing_zeros() as usize;
            diff &= diff - 1;
            self.total_hops += 1;
            let link = &mut self.link_busy[node * self.dim as usize + d];
            let start = t.max(*link);
            self.link_wait_cycles += start - t;
            *link = start + ser;
            t = start + self.cfg.hop_cycles + self.cfg.router_cycles;
            node ^= 1 << d;
        }
        debug_assert_eq!(node, b);
        (t + ser) - now
    }

    /// Latency of a round trip `a -> b -> a` with a header request and a
    /// `payload`-carrying reply.
    #[inline]
    pub fn round_trip(&mut self, a: usize, b: usize, payload_back: bool) -> u64 {
        self.send(a, b, false) + self.send(b, a, payload_back)
    }

    /// Pure latency query without traffic accounting.
    #[inline]
    pub fn latency(&self, a: usize, b: usize, payload: bool) -> u64 {
        self.cfg.one_way(self.hops(a, b), payload)
    }

    /// Worst-case uncontended one-way latency in this topology (a full
    /// `dim`-hop traversal). The fault layer's retry-budget bounds and the
    /// detector's row-collection deadline are both derived from this.
    #[inline]
    pub fn max_one_way(&self, payload: bool) -> u64 {
        self.cfg.one_way(self.dim.max(1), payload)
    }

    /// Distance matrix for the paper's DDV: `D[i][j]`, defined as 1 when
    /// `i == j` and `1 + hops(i, j)` otherwise, flattened row-major.
    ///
    /// The paper says only "a measure of the distance from node i to node j
    /// (1 if i = j)" of "pre-programmed constants"; `1 + hops` is the natural
    /// such measure for a hypercube and keeps local accesses cheapest.
    pub fn distance_matrix(&self) -> Vec<f64> {
        let n = self.n_nodes;
        let mut d = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = if i == j { 1.0 } else { 1.0 + self.hops(i, j) as f64 };
            }
        }
        d
    }

    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            msgs: self.msgs,
            payload_msgs: self.payload_msgs,
            total_hops: self.total_hops,
            link_wait_cycles: self.link_wait_cycles,
        }
    }

    /// Export traffic counters and link-occupancy horizons for
    /// checkpointing.
    pub fn export_state(&self) -> crate::state::NetworkState {
        crate::state::NetworkState {
            msgs: self.msgs,
            payload_msgs: self.payload_msgs,
            total_hops: self.total_hops,
            link_wait_cycles: self.link_wait_cycles,
            link_busy: self.link_busy.clone(),
        }
    }

    /// Restore state captured by [`Network::export_state`] on a network of
    /// the same topology.
    pub fn import_state(&mut self, st: &crate::state::NetworkState) {
        assert_eq!(st.link_busy.len(), self.link_busy.len(), "topology mismatch");
        self.msgs = st.msgs;
        self.payload_msgs = st.payload_msgs;
        self.total_hops = st.total_hops;
        self.link_wait_cycles = st.link_wait_cycles;
        self.link_busy.copy_from_slice(&st.link_busy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn net(n: usize) -> Network {
        Network::new(SystemConfig::paper(n.max(2)).network, n)
    }

    #[test]
    fn hops_is_hamming_distance() {
        let n = net(32);
        assert_eq!(n.hops(0, 0), 0);
        assert_eq!(n.hops(0, 1), 1);
        assert_eq!(n.hops(0, 3), 2);
        assert_eq!(n.hops(0, 31), 5);
        assert_eq!(n.hops(5, 6), 2); // 101 ^ 110 = 011
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let n = net(16);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(n.hops(a, b), n.hops(b, a));
                for c in 0..16 {
                    assert!(n.hops(a, c) <= n.hops(a, b) + n.hops(b, c));
                }
            }
        }
    }

    #[test]
    fn max_hops_is_dimension() {
        let n = net(32);
        assert_eq!(n.dim(), 5);
        let max = (0..32)
            .flat_map(|a| (0..32).map(move |b| (a, b)))
            .map(|(a, b)| n.hops(a, b))
            .max()
            .unwrap();
        assert_eq!(max, 5);
    }

    #[test]
    fn local_send_is_free() {
        let mut n = net(8);
        assert_eq!(n.send(3, 3, true), 0);
    }

    #[test]
    fn remote_latency_grows_with_distance() {
        let mut n = net(32);
        let one = n.send(0, 1, true);
        let five = n.send(0, 31, true);
        assert!(five > one);
        assert_eq!(n.stats().msgs, 2);
        assert_eq!(n.stats().total_hops, 6);
    }

    #[test]
    fn round_trip_is_sum_of_ways() {
        let mut n = net(8);
        let rt = n.round_trip(0, 5, true);
        let manual = n.latency(0, 5, false) + n.latency(5, 0, true);
        assert_eq!(rt, manual);
    }

    #[test]
    fn distance_matrix_shape_and_diagonal() {
        let n = net(8);
        let d = n.distance_matrix();
        assert_eq!(d.len(), 64);
        for i in 0..8 {
            assert_eq!(d[i * 8 + i], 1.0);
            for j in 0..8 {
                assert!(d[i * 8 + j] >= 1.0);
                assert_eq!(d[i * 8 + j], d[j * 8 + i]);
            }
        }
        // node 0 to node 7 (111) is 3 hops -> 4.0
        assert_eq!(d[7], 4.0);
    }

    #[test]
    fn send_at_without_contention_equals_send() {
        let mut a = net(16);
        let mut b = net(16);
        for (src, dst, payload, now) in [(0usize, 5usize, true, 100u64), (3, 3, false, 7), (1, 14, false, 0)] {
            assert_eq!(a.send_at(src, dst, payload, now), b.send(src, dst, payload));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn link_contention_queues_messages_on_shared_links() {
        let mut cfg = SystemConfig::paper(8).network;
        cfg.link_contention = true;
        let mut n = Network::new(cfg, 8);
        // Two messages injected at the same instant from node 0 along the
        // same first link (dim 0): the second must wait for the first's
        // serialization.
        let first = n.send_at(0, 1, true, 1000);
        let second = n.send_at(0, 1, true, 1000);
        assert!(second > first, "queued message must take longer: {first} vs {second}");
        assert_eq!(second - first, cfg.payload_cycles);
        assert!(n.stats().link_wait_cycles > 0);
        // A message on a different link is unaffected.
        let other = n.send_at(0, 2, true, 1000);
        assert_eq!(other, first);
    }

    #[test]
    fn link_contention_latency_matches_uncontended_when_idle() {
        let mut cfg = SystemConfig::paper(8).network;
        cfg.link_contention = true;
        let mut n = Network::new(cfg, 8);
        // An idle network: e-cube latency equals the analytic one_way.
        assert_eq!(n.send_at(0, 7, true, 0), cfg.one_way(3, true));
        // Much later, links have drained.
        assert_eq!(n.send_at(0, 7, true, 1_000_000), cfg.one_way(3, true));
    }

    #[test]
    fn ecube_routes_use_disjoint_links_for_disjoint_pairs() {
        let mut cfg = SystemConfig::paper(8).network;
        cfg.link_contention = true;
        let mut n = Network::new(cfg, 8);
        // 0->1 (link (0,d0)) and 2->3 (link (2,d0)) share no links.
        let a = n.send_at(0, 1, true, 0);
        let b = n.send_at(2, 3, true, 0);
        assert_eq!(a, b);
        assert_eq!(n.stats().link_wait_cycles, 0);
    }

    #[test]
    fn max_one_way_bounds_every_pair() {
        let mut n = net(16);
        let bound = n.max_one_way(true);
        for a in 0..16 {
            for b in 0..16 {
                assert!(n.send_at(a, b, true, 0) <= bound);
            }
        }
        assert_eq!(bound, n.latency(0, 15, true));
    }

    #[test]
    fn uniprocessor_network_degenerates() {
        let n = net(1);
        assert_eq!(n.dim(), 0);
        assert_eq!(n.distance_matrix(), vec![1.0]);
    }
}
