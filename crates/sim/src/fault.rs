//! Deterministic fault injection at the network/directory boundary.
//!
//! Every coherence-protocol message the system sends passes through
//! [`FaultState::deliver`], which draws a [`MsgFate`] from a seeded
//! [`crate::util::splitmix64`] stream and resolves it with the
//! retry-with-timeout state machine of [`resolve_delivery`]:
//!
//! * **Drop** — the message is lost; the requester's timer fires after the
//!   [`RetryPolicy`] backoff and the message is retransmitted (each
//!   retransmission consumes real network bandwidth). After `max_retries`
//!   consecutive losses delivery escalates to a reliable channel and is
//!   forced, so the protocol can never livelock.
//! * **Duplicate** — a second copy arrives at the receiver. The home
//!   detects the retransmission sequence number, refuses to re-commit the
//!   request, and answers with a NACK ([`crate::directory::Directory`]
//!   counts these); the duplicate therefore costs traffic but never
//!   corrupts protocol state.
//! * **Spike** — a transient link stall adds `spike_cycles` to this
//!   message's latency.
//!
//! Independently, [`FaultState::slowdown_extra`] models transient node
//! slowdowns: in seeded per-node epochs a node pays extra exposed stall on
//! every L2 miss (a lagging core/NIC, DVFS dip, or co-scheduled daemon).
//!
//! Determinism: with a fixed [`FaultPlan`] and a deterministic workload the
//! fate stream, and therefore the whole simulation, is bit-reproducible.
//! With [`FaultPlan::none`] the layer is bypassed entirely — no RNG draw,
//! no counter update, no latency change — so the fault-injection build is
//! event-for-event identical to the pre-fault simulator (the
//! `fault_equivalence` differential suite asserts this).

use crate::config::{FaultPlan, RetryPolicy};
use crate::network::Network;
use crate::util::splitmix64;
use serde::{Deserialize, Serialize};

/// What the fabric does to one transmitted message copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// Delivered normally.
    Deliver,
    /// Lost; the sender's retry timer will fire.
    Drop,
    /// Delivered twice; the receiver NACKs the second copy.
    Duplicate,
    /// Delivered after a transient link stall.
    Spike,
}

/// Per-fault-class counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Messages the fault layer processed (attempts, not transactions).
    pub messages: u64,
    /// Message copies lost in the fabric.
    pub drops: u64,
    /// Retransmissions triggered by retry timeouts.
    pub retries: u64,
    /// Deliveries forced through the reliable escalation path after
    /// `max_retries` consecutive losses.
    pub forced_deliveries: u64,
    /// Duplicate copies delivered (each one is NACKed by the receiver).
    pub duplicates: u64,
    /// Transient link-latency spikes injected.
    pub spikes: u64,
    /// Total cycles added by latency spikes.
    pub spike_cycles: u64,
    /// Total cycles requesters spent waiting on retry timeouts.
    pub timeout_wait_cycles: u64,
    /// L2 misses that hit a node-slowdown window.
    pub slowdown_events: u64,
    /// Total extra stall cycles charged by node slowdowns.
    pub slowdown_cycles: u64,
}

impl FaultStats {
    /// True when no fault of any class fired.
    pub fn is_clean(&self) -> bool {
        *self == Self { messages: self.messages, ..Self::default() }
    }

    /// Mirror every per-class counter into a metrics registry under
    /// `prefix` (e.g. `sim/faults`). This is the registry's canonical
    /// source for fault counters — the harness and the simulator both
    /// publish through it rather than re-inventing the field list.
    pub fn publish(&self, prefix: &str, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.counter_add(&format!("{prefix}/messages"), self.messages);
        reg.counter_add(&format!("{prefix}/drops"), self.drops);
        reg.counter_add(&format!("{prefix}/retries"), self.retries);
        reg.counter_add(&format!("{prefix}/forced_deliveries"), self.forced_deliveries);
        reg.counter_add(&format!("{prefix}/duplicates"), self.duplicates);
        reg.counter_add(&format!("{prefix}/spikes"), self.spikes);
        reg.counter_add(&format!("{prefix}/spike_cycles"), self.spike_cycles);
        reg.counter_add(&format!("{prefix}/timeout_wait_cycles"), self.timeout_wait_cycles);
        reg.counter_add(&format!("{prefix}/slowdown_events"), self.slowdown_events);
        reg.counter_add(&format!("{prefix}/slowdown_cycles"), self.slowdown_cycles);
    }
}

/// Outcome of delivering one protocol message through the faulty fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Total cycles from first transmission to successful delivery,
    /// including retry timeouts and spikes.
    pub latency: u64,
    /// Transmission attempts (1 = delivered first try).
    pub attempts: u32,
    /// Duplicate copies the receiver must NACK.
    pub duplicates: u32,
    /// Whether delivery was forced through the reliable escalation path.
    pub forced: bool,
}

/// Resolve one message's retry/backoff state machine.
///
/// Pure in the network and the randomness: `latency(t)` yields the one-way
/// latency of a copy transmitted at absolute cycle `t` (and may record
/// traffic), `fate(attempt)` yields the fabric's treatment of that copy.
/// Property tests drive this with arbitrary drop/duplicate schedules to
/// prove no request is lost or double-committed and every transfer
/// terminates within the [`RetryPolicy`] budget.
pub fn resolve_delivery(
    policy: &RetryPolicy,
    spike_cycles: u64,
    now: u64,
    mut latency: impl FnMut(u64) -> u64,
    mut fate: impl FnMut(u32) -> MsgFate,
) -> Delivery {
    let mut t = now;
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let lat = latency(t);
        let drawn = fate(attempts);
        // Past the retry budget the transfer has escalated to the reliable
        // channel: the fabric may still duplicate or stall it, but cannot
        // lose it.
        let escalated = attempts > policy.max_retries;
        let effective = if escalated && drawn == MsgFate::Drop { MsgFate::Deliver } else { drawn };
        match effective {
            MsgFate::Drop => {
                debug_assert!(attempts <= policy.max_retries);
                t += policy.backoff(attempts);
            }
            MsgFate::Deliver => {
                return Delivery {
                    latency: (t + lat) - now,
                    attempts,
                    duplicates: 0,
                    forced: escalated && drawn == MsgFate::Drop,
                };
            }
            MsgFate::Duplicate => {
                // Both copies traverse the fabric; the first one commits,
                // the second is NACKed at the receiver. Latency is the
                // first copy's.
                return Delivery { latency: (t + lat) - now, attempts, duplicates: 1, forced: false };
            }
            MsgFate::Spike => {
                return Delivery {
                    latency: (t + lat + spike_cycles) - now,
                    attempts,
                    duplicates: 0,
                    forced: false,
                };
            }
        }
    }
}

/// Runtime state of the fault layer: the plan, the seeded fate stream, and
/// the per-class counters.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    active: bool,
    /// Monotone draw counter; the fate stream is `splitmix64(seed ⊕ φ·n)`.
    draws: u64,
    stats: FaultStats,
}

/// Golden-ratio increment decorrelating the draw counter from the seed.
const PHI: u64 = 0x9e37_79b9_7f4a_7c15;

impl FaultState {
    pub fn new(plan: FaultPlan) -> Self {
        Self { active: plan.is_active(), plan, draws: 0, stats: FaultStats::default() }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault class can fire. When false, every entry point is a
    /// transparent pass-through that draws nothing and counts nothing.
    #[inline]
    pub fn active(&self) -> bool {
        self.active
    }

    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Export the RNG position (the draw counter *is* the whole stream
    /// state) and the per-class counters for checkpointing. The plan itself
    /// travels with the config.
    pub fn export_state(&self) -> crate::state::FaultSnap {
        crate::state::FaultSnap { draws: self.draws, stats: self.stats }
    }

    /// Restore state captured by [`FaultState::export_state`] on a fault
    /// layer built from the same plan.
    pub fn import_state(&mut self, st: &crate::state::FaultSnap) {
        self.draws = st.draws;
        self.stats = st.stats;
    }

    #[inline]
    fn draw(&mut self) -> u64 {
        self.draws += 1;
        splitmix64(self.plan.seed ^ self.draws.wrapping_mul(PHI))
    }

    /// Draw the fate of one transmitted message copy.
    fn draw_fate(&mut self) -> MsgFate {
        let r = (self.draw() % 1_000_000) as u32;
        if r < self.plan.drop_ppm {
            MsgFate::Drop
        } else if r < self.plan.drop_ppm + self.plan.duplicate_ppm {
            MsgFate::Duplicate
        } else if r < self.plan.drop_ppm + self.plan.duplicate_ppm + self.plan.spike_ppm {
            MsgFate::Spike
        } else {
            MsgFate::Deliver
        }
    }

    /// Deliver one protocol message `src → dst` through the faulty fabric,
    /// transmitting (and re-transmitting) on the real network so every
    /// attempt consumes link bandwidth. Returns the end-to-end delivery
    /// outcome; the caller applies the protocol action exactly once.
    pub fn deliver(
        &mut self,
        net: &mut Network,
        src: usize,
        dst: usize,
        payload: bool,
        now: u64,
    ) -> Delivery {
        if !self.active || src == dst {
            // Transparent path: identical to the fault-free simulator.
            return Delivery {
                latency: net.send_at(src, dst, payload, now),
                attempts: 1,
                duplicates: 0,
                forced: false,
            };
        }
        let policy = self.plan.retry;
        let spike = self.plan.spike_cycles;
        // Split-borrow trick: fates come from `self`'s RNG, transmissions go
        // to the network; stats are settled from the outcome afterwards.
        let mut fates: Vec<MsgFate> = Vec::new();
        let delivery = resolve_delivery(
            &policy,
            spike,
            now,
            |t| net.send_at(src, dst, payload, t),
            |_| {
                let f = self.draw_fate();
                fates.push(f);
                f
            },
        );
        if delivery.duplicates > 0 {
            // The duplicate copy consumes bandwidth too, but its hops are
            // not re-counted: the delivery it copies already counted them.
            let _ = net.resend_at(src, dst, payload, now + delivery.latency);
        }
        self.stats.messages += delivery.attempts as u64 + delivery.duplicates as u64;
        for (i, f) in fates.iter().enumerate() {
            let attempt = i as u32 + 1;
            match f {
                // A Drop on the final attempt only exists on the escalated
                // path (resolve_delivery overrode it to a forced delivery);
                // every earlier Drop lost a real copy and armed a timer.
                MsgFate::Drop if attempt == delivery.attempts => self.stats.forced_deliveries += 1,
                MsgFate::Drop => {
                    self.stats.drops += 1;
                    self.stats.retries += 1;
                    self.stats.timeout_wait_cycles += policy.backoff(attempt);
                }
                MsgFate::Duplicate => self.stats.duplicates += 1,
                MsgFate::Spike => {
                    self.stats.spikes += 1;
                    self.stats.spike_cycles += spike;
                }
                MsgFate::Deliver => {}
            }
        }
        delivery
    }

    /// Extra exposed stall node `p` pays on an L2 miss at cycle `now`
    /// (0 when the node is not inside a seeded slowdown window).
    ///
    /// Windows are a stateless hash of `(seed, node, epoch)` so repeated
    /// queries within one epoch agree and runs are reproducible regardless
    /// of query order. A targeted plan ([`FaultPlan::straggler`]) narrows
    /// the draw to one node and a cycle window before the hash is even
    /// consulted — the untargeted path is bit-identical to before.
    #[inline]
    pub fn slowdown_extra(&mut self, p: usize, now: u64, raw_stall: u64) -> u64 {
        if !self.active || self.plan.slowdown_ppm == 0 || !self.in_slowdown_window(p, now) {
            return 0;
        }
        let extra = raw_stall * self.plan.slowdown_extra_num / 256;
        self.stats.slowdown_events += 1;
        self.stats.slowdown_cycles += extra;
        extra
    }

    /// Extra issue cycles node `p` pays for committing `insns` instructions
    /// at cycle `now` (0 outside a slowdown window, or when the plan's
    /// [`slowdown_issue_num`](crate::config::FaultPlan::slowdown_issue_num)
    /// is 0). Models a clock throttle: unlike [`Self::slowdown_extra`] it
    /// slows a node even when its working set fits in cache.
    #[inline]
    pub fn issue_extra(&mut self, p: usize, now: u64, insns: u64) -> u64 {
        if !self.active
            || self.plan.slowdown_ppm == 0
            || self.plan.slowdown_issue_num == 0
            || !self.in_slowdown_window(p, now)
        {
            return 0;
        }
        let extra = insns * self.plan.slowdown_issue_num / 256;
        self.stats.slowdown_events += 1;
        self.stats.slowdown_cycles += extra;
        extra
    }

    /// Whether node `p` at cycle `now` is inside a firing slowdown epoch
    /// (target-node, cycle-window, and per-epoch hash gates; the caller
    /// checks `slowdown_ppm > 0` first so the window division is safe).
    #[inline]
    fn in_slowdown_window(&self, p: usize, now: u64) -> bool {
        if let Some(node) = self.plan.slowdown_node {
            if p != node {
                return false;
            }
        }
        if now < self.plan.slowdown_from_cycle
            || (self.plan.slowdown_until_cycle != 0 && now >= self.plan.slowdown_until_cycle)
        {
            return false;
        }
        let epoch = now / self.plan.slowdown_window_cycles;
        let h = splitmix64(self.plan.seed ^ (p as u64 + 1).wrapping_mul(PHI) ^ epoch.rotate_left(32));
        ((h % 1_000_000) as u32) < self.plan.slowdown_ppm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn policy() -> RetryPolicy {
        RetryPolicy { timeout_cycles: 100, max_backoff_cycles: 800, max_retries: 4 }
    }

    #[test]
    fn clean_delivery_is_plain_latency() {
        let d = resolve_delivery(&policy(), 50, 1000, |_| 70, |_| MsgFate::Deliver);
        assert_eq!(d, Delivery { latency: 70, attempts: 1, duplicates: 0, forced: false });
    }

    #[test]
    fn drops_accumulate_backoff_then_deliver() {
        // Two drops then success: latency = backoff(1) + backoff(2) + lat.
        let mut n = 0;
        let d = resolve_delivery(
            &policy(),
            0,
            0,
            |_| 70,
            |_| {
                n += 1;
                if n <= 2 { MsgFate::Drop } else { MsgFate::Deliver }
            },
        );
        assert_eq!(d.attempts, 3);
        assert!(!d.forced);
        assert_eq!(d.latency, 100 + 200 + 70);
    }

    #[test]
    fn all_drops_escalate_to_forced_delivery() {
        let p = policy();
        let d = resolve_delivery(&p, 0, 0, |_| 70, |_| MsgFate::Drop);
        assert_eq!(d.attempts, p.max_retries + 1);
        assert!(d.forced);
        // Waited backoff(1..=max_retries), then the escalated copy lands.
        let waits: u64 = (1..=p.max_retries).map(|a| p.backoff(a)).sum();
        assert_eq!(d.latency, waits + 70);
        assert!(d.latency <= p.worst_case_recovery_cycles() + 70);
    }

    #[test]
    fn duplicate_and_spike_fates() {
        let d = resolve_delivery(&policy(), 0, 0, |_| 70, |_| MsgFate::Duplicate);
        assert_eq!((d.attempts, d.duplicates, d.latency), (1, 1, 70));
        let d = resolve_delivery(&policy(), 300, 0, |_| 70, |_| MsgFate::Spike);
        assert_eq!(d.latency, 370);
    }

    #[test]
    fn latency_closure_sees_retransmission_times() {
        // The retransmitted copy is injected later, so a time-dependent
        // network (link contention) sees the true injection cycle.
        let mut seen = Vec::new();
        let mut n = 0;
        let _ = resolve_delivery(
            &policy(),
            0,
            1000,
            |t| {
                seen.push(t);
                10
            },
            |_| {
                n += 1;
                if n == 1 { MsgFate::Drop } else { MsgFate::Deliver }
            },
        );
        assert_eq!(seen, vec![1000, 1100]);
    }

    #[test]
    fn inactive_state_is_transparent() {
        let mut net = Network::new(SystemConfig::paper(8).network, 8);
        let mut reference = Network::new(SystemConfig::paper(8).network, 8);
        let mut f = FaultState::new(FaultPlan::none());
        assert!(!f.active());
        for (s, d, p, t) in [(0usize, 5usize, true, 10u64), (1, 1, false, 99), (7, 2, false, 0)] {
            let del = f.deliver(&mut net, s, d, p, t);
            assert_eq!(del.latency, reference.send_at(s, d, p, t));
            assert_eq!(del.attempts, 1);
        }
        assert_eq!(net.stats(), reference.stats(), "no extra traffic");
        assert_eq!(f.stats(), FaultStats::default(), "no counters ticked");
        assert_eq!(f.slowdown_extra(3, 12345, 1000), 0);
    }

    #[test]
    fn deliver_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = Network::new(SystemConfig::paper(8).network, 8);
            let mut f = FaultState::new(FaultPlan::mixed(seed, 0.2));
            let lats: Vec<u64> =
                (0..200).map(|i| f.deliver(&mut net, i % 8, (i + 3) % 8, i % 2 == 0, i as u64 * 10).latency).collect();
            (lats, f.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds must differ");
    }

    #[test]
    fn high_drop_rate_still_terminates_and_counts() {
        let mut net = Network::new(SystemConfig::paper(4).network, 4);
        let mut plan = FaultPlan::drops(9, 0.9);
        plan.retry = policy();
        let mut f = FaultState::new(plan);
        for i in 0..300 {
            let d = f.deliver(&mut net, 0, 1 + (i % 3), false, i as u64 * 50);
            assert!(d.attempts <= f.plan().retry.max_retries + 1);
            assert!(
                d.latency <= f.plan().retry.worst_case_recovery_cycles() + net.latency(0, 3, false) + 1,
                "latency {} beyond recovery budget",
                d.latency
            );
        }
        let s = f.stats();
        assert!(s.drops > 0 && s.retries > 0, "90% drop must exercise retries: {s:?}");
        assert!(s.forced_deliveries > 0, "some transfers must escalate");
        assert_eq!(s.drops, s.retries);
        assert!(s.timeout_wait_cycles > 0);
    }

    #[test]
    fn retransmissions_consume_network_bandwidth() {
        let mk = |rate| {
            let mut net = Network::new(SystemConfig::paper(4).network, 4);
            let mut f = FaultState::new(FaultPlan::drops(5, rate));
            for i in 0..200 {
                f.deliver(&mut net, 0, 1, true, i * 100);
            }
            net.stats().msgs
        };
        assert!(mk(0.5) > mk(0.0), "lost copies still cost traffic");
    }

    #[test]
    fn duplicated_copy_does_not_double_count_hops() {
        // Regression: the NACKed duplicate copy re-walks the primary
        // delivery's route; it consumes bandwidth but must not re-count
        // the route's hops. Seed 11 pins the first fate draw to Duplicate
        // under this plan (first draw mod 1e6 = 155106 < 200000).
        let mut plan = FaultPlan::none();
        plan.seed = 11;
        plan.duplicate_ppm = 200_000;
        let mut net = Network::new(SystemConfig::paper(8).network, 8);
        let mut f = FaultState::new(plan);
        let d = f.deliver(&mut net, 0, 5, true, 0);
        assert_eq!(d.duplicates, 1, "seed 11 must duplicate the first message");
        let s = net.stats();
        assert_eq!(s.msgs, 2, "both copies consume bandwidth");
        assert_eq!(s.payload_msgs, 2);
        assert_eq!(s.total_hops, net.hops(0, 5) as u64, "hops counted once per delivery");
    }

    #[test]
    fn straggler_plan_slows_only_the_target_inside_the_window() {
        let plan = FaultPlan::straggler(17, 3, 100_000, 400_000);
        assert!(plan.validate().is_ok());
        assert!(plan.is_active());
        let mut f = FaultState::new(plan);
        // Every epoch fires for the target inside [from, until).
        assert_eq!(f.slowdown_extra(3, 100_000, 256), 256 * 192 / 256);
        assert_eq!(f.slowdown_extra(3, 399_999, 512), 512 * 192 / 256);
        // Outside the window, or on any other node: inert.
        assert_eq!(f.slowdown_extra(3, 99_999, 256), 0);
        assert_eq!(f.slowdown_extra(3, 400_000, 256), 0);
        for p in [0usize, 1, 2, 4, 15] {
            assert_eq!(f.slowdown_extra(p, 200_000, 256), 0, "node {p} must stay clean");
        }
        let s = f.stats();
        assert_eq!(s.slowdown_events, 2);
        assert_eq!(s.slowdown_cycles, 192 + 384);
    }

    #[test]
    fn straggler_until_zero_is_unbounded() {
        let mut f = FaultState::new(FaultPlan::straggler(1, 0, 0, 0));
        assert!(f.slowdown_extra(0, u64::MAX / 2, 256) > 0);
    }

    #[test]
    fn bad_straggler_window_rejected() {
        let plan = FaultPlan::straggler(1, 0, 500, 500);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn untargeted_plans_ignore_the_new_fields() {
        // The stochastic slowdown model must be bit-identical to before the
        // targeted-straggler extension: `none()`-derived plans leave the new
        // fields inert.
        let plan = FaultPlan::mixed(42, 0.2);
        assert_eq!(plan.slowdown_node, None);
        assert_eq!((plan.slowdown_from_cycle, plan.slowdown_until_cycle), (0, 0));
    }

    #[test]
    fn slowdown_windows_are_stable_within_an_epoch() {
        let mut plan = FaultPlan::none();
        plan.seed = 3;
        plan.slowdown_ppm = 500_000;
        plan.slowdown_window_cycles = 1_000;
        plan.slowdown_extra_num = 128;
        let mut f = FaultState::new(plan);
        // Same (node, epoch) always answers the same.
        let a = f.slowdown_extra(2, 1_500, 1000);
        let b = f.slowdown_extra(2, 1_999, 1000);
        assert_eq!(a, b);
        // At 50% ppm some (node, epoch) pairs must be slowed and some not.
        let hits = (0..200u64).filter(|e| f.slowdown_extra(1, e * 1_000, 256) > 0).count();
        assert!(hits > 20 && hits < 180, "expected ~half the epochs slowed, got {hits}");
        // Extra stall follows the 1/256 fraction.
        let mut g = FaultState::new(plan);
        let slowed_epoch = (0..100u64).find(|e| g.slowdown_extra(0, e * 1_000, 256) > 0).unwrap();
        let mut h = FaultState::new(plan);
        assert_eq!(h.slowdown_extra(0, slowed_epoch * 1_000, 512), 512 * 128 / 256);
    }
}
