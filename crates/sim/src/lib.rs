//! # dsm-sim — distributed shared-memory multiprocessor simulator
//!
//! This crate is the hardware substrate for the phase-detection study of
//! İpek et al., *Dynamic Program Phase Detection in Distributed Shared-Memory
//! Multiprocessors* (IPDPS NSF-NGS workshop, 2006). It models the system of
//! the paper's Table I:
//!
//! * per-node superscalar cores (6-wide commit, 6 ALU / 4 FPU, 2 GHz) with a
//!   2 048-entry gshare branch predictor, using a deterministic
//!   cycle-accounting timing model ([`processor`]);
//! * private L1 (16 kB direct-mapped, 32 B lines, 1 cycle) and L2 (2 MB
//!   8-way, 12 cycles) caches with real tag arrays ([`cache`]);
//! * a home-based directory coherence protocol (shared / exclusive states,
//!   invalidations, dirty forwarding) ([`directory`]);
//! * a hypercube wormhole network (pipelined 400 MHz routers, 16 ns
//!   pin-to-pin) ([`network`]);
//! * per-node SDRAM memory controllers (75 ns, 2.6 GB/s) whose deterministic
//!   service queues produce real contention delays ([`memctrl`]).
//!
//! Programs are fed in as per-processor streams of committed-instruction
//! [`event::Event`]s (basic blocks, memory references, FP bursts,
//! synchronization), produced by the `dsm-workloads` crate. The global
//! min-cycle scheduling loop lives in [`system`]; phase detectors observe
//! committed state through [`observer::SimObserver`].
//!
//! Everything is deterministic: no wall-clock, no unseeded randomness, and a
//! fixed lowest-processor-id tie-break in the scheduler.

pub mod addr;
pub mod branch;
pub mod cache;
pub mod config;
pub mod directory;
pub mod event;
pub mod fault;
pub mod memctrl;
pub mod network;
pub mod observer;
pub mod processor;
pub mod reconfig;
pub mod sched;
pub mod shard;
pub mod state;
pub mod stats;
pub mod system;
pub mod telem;
pub mod topology;
pub mod util;

pub use addr::{Addr, HomeMap, NodeId, BLOCK_BYTES, BLOCK_SHIFT, PAGE_BYTES, PAGE_SHIFT};
pub use config::{
    CacheConfig, DistributionPolicy, FaultPlan, MemoryConfig, NetworkConfig, RetryPolicy,
    SystemConfig,
};
pub use fault::{FaultState, FaultStats};
pub use event::{Event, InstructionStream};
pub use observer::{IntervalStats, NullObserver, SimObserver};
pub use reconfig::{HotPage, Machine, ReconfigStats, DVFS_NOMINAL, PAGE_MIGRATE_STALL_CYCLES};
pub use shard::{cross_shard_lookahead, ShardLayout, WindowCounters};
pub use state::SystemState;
pub use stats::{ProcStats, SystemStats};
pub use system::System;
pub use telem::{SimProbes, SimTelemetry};
pub use topology::{AnyTopology, Topology, TopologyKind};
