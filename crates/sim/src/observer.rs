//! Observation hooks through which phase detectors watch the machine.
//!
//! A [`SimObserver`] sees exactly what the paper's hardware sees: committed
//! basic blocks (for the BBV accumulator), committed loads/stores labelled
//! with their home node (for the DDV frequency matrix), and the
//! end-of-interval notification with the interval's CPI. Nothing
//! reconfiguration-tainted (cache hit/miss outcomes, queue depths) is
//! exposed, matching the paper's footnote 2.
//!
//! Observers are orthogonal to the telemetry layer ([`crate::telem`]):
//! the system records its own interval span (on node `p`'s interval track)
//! immediately *before* invoking [`SimObserver::on_interval`], so a
//! feature-on trace brackets exactly the work each observer callback saw.

use crate::addr::NodeId;
use serde::{Deserialize, Serialize};

/// Summary of one completed sampling interval on one processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalStats {
    /// 0-based index of the interval on this processor.
    pub index: u64,
    /// Committed non-synchronization instructions (the interval length).
    pub insns: u64,
    /// Cycles elapsed over the interval (including synchronization waits —
    /// they are real time the phase's CPI must account for).
    pub cycles: u64,
}

impl IntervalStats {
    /// Cycles per (non-sync) instruction over the interval.
    pub fn cpi(&self) -> f64 {
        if self.insns == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insns as f64
        }
    }
}

/// Hardware-visible commit events, per processor.
pub trait SimObserver {
    /// A basic-block burst committed on `proc`: branch address `bb`,
    /// `insns` instructions since the previous branch.
    fn on_block_commit(&mut self, proc: usize, bb: u32, insns: u32);

    /// A load/store committed on `proc` to a block homed at `home`.
    /// `addr` is the referenced address (used by working-set baselines; the
    /// paper's DDV uses only `home`).
    fn on_mem_commit(&mut self, proc: usize, home: NodeId, addr: u64, write: bool);

    /// Processor `proc` finished a sampling interval.
    fn on_interval(&mut self, proc: usize, stats: IntervalStats);

    /// A conservative time window closed (sharded execution only; see
    /// `dsm_sim::shard`). `window` is the count of windows closed so far
    /// and `next_horizon` the new window's horizon. This is the cue that
    /// staged cross-shard observer work may be drained — observation never
    /// feeds back into execution, so the default is a no-op and ignoring
    /// windows is always correct.
    fn on_window_close(&mut self, _window: u64, _next_horizon: u64) {}
}

/// An observer that ignores everything (pure-timing runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    #[inline]
    fn on_block_commit(&mut self, _: usize, _: u32, _: u32) {}
    #[inline]
    fn on_mem_commit(&mut self, _: usize, _: NodeId, _: u64, _: bool) {}
    #[inline]
    fn on_interval(&mut self, _: usize, _: IntervalStats) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_computation() {
        let s = IntervalStats { index: 0, insns: 1000, cycles: 1500 };
        assert!((s.cpi() - 1.5).abs() < 1e-12);
        let z = IntervalStats { index: 0, insns: 0, cycles: 99 };
        assert_eq!(z.cpi(), 0.0);
    }

    #[test]
    fn null_observer_is_inert() {
        let mut o = NullObserver;
        o.on_block_commit(0, 1, 2);
        o.on_mem_commit(0, 0, 0, true);
        o.on_interval(0, IntervalStats { index: 0, insns: 1, cycles: 1 });
    }
}
