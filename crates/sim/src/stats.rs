//! Aggregate simulation statistics for reporting and validation.

use serde::{Deserialize, Serialize};

use crate::directory::DirectoryStats;
use crate::fault::FaultStats;
use crate::memctrl::MemCtrlStats;
use crate::network::NetworkStats;
use crate::reconfig::ReconfigStats;

/// Per-processor counters accumulated over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcStats {
    /// Total cycles this processor has advanced to.
    pub cycles: u64,
    /// Committed non-synchronization instructions.
    pub insns: u64,
    /// Committed synchronization operations (barriers, lock ops).
    pub sync_ops: u64,
    /// Cycles spent blocked at barriers or locks.
    pub sync_wait_cycles: u64,
    /// Committed memory references.
    pub mem_refs: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses (global misses that reached a directory).
    pub l2_misses: u64,
    /// Misses whose home was this node.
    pub local_home_misses: u64,
    /// Misses whose home was another node.
    pub remote_home_misses: u64,
    /// Total memory-stall cycles charged (after MLP discount).
    pub mem_stall_cycles: u64,
    /// Total queueing (contention) delay observed at memory controllers.
    pub contention_cycles: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// Committed basic blocks (branches).
    pub branches: u64,
    /// Completed sampling intervals.
    pub intervals: u64,
}

impl ProcStats {
    /// Whole-run cycles per non-sync instruction.
    pub fn cpi(&self) -> f64 {
        if self.insns == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insns as f64
        }
    }

    /// Fraction of L2 misses that went to a remote home.
    pub fn remote_miss_fraction(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.remote_home_misses as f64 / self.l2_misses as f64
        }
    }
}

/// System-wide statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemStats {
    pub procs: Vec<ProcStats>,
    pub directory: DirectoryStats,
    pub network: NetworkStats,
    pub memctrls: Vec<MemCtrlStats>,
    /// Per-fault-class injection counters (all zero under
    /// [`crate::config::FaultPlan::none`]).
    pub faults: FaultStats,
    /// Reconfiguration counters (all zero on a run adaptation never
    /// touched — the no-op differential arm).
    #[serde(default)]
    pub reconfig: ReconfigStats,
    /// Global cycle at which the last processor finished.
    pub finish_cycle: u64,
}

impl SystemStats {
    /// Total committed non-sync instructions across all processors.
    pub fn total_insns(&self) -> u64 {
        self.procs.iter().map(|p| p.insns).sum()
    }

    /// System throughput: total instructions / finish cycle.
    pub fn system_ipc(&self) -> f64 {
        if self.finish_cycle == 0 {
            0.0
        } else {
            self.total_insns() as f64 / self.finish_cycle as f64
        }
    }

    /// Coherence-transaction conservation: every L2 miss reaches the
    /// directory exactly once, so under fault injection (drops retried,
    /// duplicates NACKed) `reads + writes` must still equal the global L2
    /// miss count — no transaction lost, none double-committed.
    pub fn coherence_transactions_conserved(&self) -> bool {
        let misses: u64 = self.procs.iter().map(|p| p.l2_misses).sum();
        self.directory.reads + self.directory.writes == misses
    }

    /// Mean per-processor CPI.
    pub fn mean_cpi(&self) -> f64 {
        if self.procs.is_empty() {
            return 0.0;
        }
        self.procs.iter().map(|p| p.cpi()).sum::<f64>() / self.procs.len() as f64
    }

    /// Mirror this snapshot into a metrics registry under the `sim/`
    /// namespace: cross-processor aggregates, directory transitions,
    /// network traffic, memory-controller totals, and the per-class fault
    /// counters. The single publication path used both by
    /// [`crate::system::System`] at run end (feature-on builds) and by the
    /// harness when folding captured stats into a run-level registry.
    pub fn publish(&self, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.gauge_set("sim/finish_cycle", self.finish_cycle as f64);
        reg.gauge_set("sim/system_ipc", self.system_ipc());
        reg.counter_add("sim/procs/insns", self.total_insns());
        for (name, pick) in [
            ("sim/procs/mem_refs", &(|p: &ProcStats| p.mem_refs) as &dyn Fn(&ProcStats) -> u64),
            ("sim/procs/l1_misses", &|p: &ProcStats| p.l1_misses),
            ("sim/procs/l2_misses", &|p: &ProcStats| p.l2_misses),
            ("sim/procs/remote_home_misses", &|p: &ProcStats| p.remote_home_misses),
            ("sim/procs/mem_stall_cycles", &|p: &ProcStats| p.mem_stall_cycles),
            ("sim/procs/sync_wait_cycles", &|p: &ProcStats| p.sync_wait_cycles),
            ("sim/procs/mispredicts", &|p: &ProcStats| p.mispredicts),
            ("sim/procs/intervals", &|p: &ProcStats| p.intervals),
        ] {
            reg.counter_add(name, self.procs.iter().map(pick).sum());
        }
        self.directory.publish("sim/directory", reg);
        self.network.publish("sim/network", reg);
        reg.counter_add(
            "sim/memctrl/requests",
            self.memctrls.iter().map(|m| m.requests).sum(),
        );
        reg.counter_add(
            "sim/memctrl/queue_delay_cycles",
            self.memctrls.iter().map(|m| m.total_queue_delay).sum(),
        );
        self.faults.publish("sim/faults", reg);
        self.reconfig.publish("sim/adapt", reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_cpi() {
        let mut p = ProcStats::default();
        assert_eq!(p.cpi(), 0.0);
        p.cycles = 300;
        p.insns = 100;
        assert!((p.cpi() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn remote_fraction() {
        let mut p = ProcStats::default();
        assert_eq!(p.remote_miss_fraction(), 0.0);
        p.l2_misses = 10;
        p.remote_home_misses = 4;
        assert!((p.remote_miss_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn system_aggregates() {
        let s = SystemStats {
            procs: vec![
                ProcStats { cycles: 100, insns: 100, ..Default::default() },
                ProcStats { cycles: 100, insns: 300, ..Default::default() },
            ],
            finish_cycle: 100,
            ..Default::default()
        };
        assert_eq!(s.total_insns(), 400);
        assert!((s.system_ipc() - 4.0).abs() < 1e-12);
        assert!((s.mean_cpi() - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }
}
