//! Sharded execution scaffolding: node partitioning, the two-level
//! tournament scheduler, and the conservative time-window barrier.
//!
//! A single simulation is partitioned into `shards` of contiguous node
//! ranges. Each shard keeps its own [`MinTree`] over its local processors
//! and a top-level tournament over the shard minima names the next
//! processor to run — exactly the `(cycle, id)` order of one flat tree,
//! because ties resolve to the lowest shard and, within a shard, to the
//! lowest local id (shards are contiguous, so that is the lowest global
//! id). The event loop therefore stays bit-identical to the serial core at
//! any shard count; what sharding buys is structure: per-shard staging
//! buffers for offloaded observer work, drained by worker threads at
//! window boundaries (see the sharded collector in the core crate), and
//! per-shard accounting of load skew.
//!
//! The conservative window is classic PDES: with a lookahead `L` equal to
//! the minimum uncontended cross-shard delivery latency of the routed
//! fabric, no message sent by a shard at or after the window base `B` can
//! affect another shard before `B + L` — so everything with a timestamp in
//! `[B, B + L)` is safe to treat as one window. Coherence interactions
//! are still resolved in canonical order by the coordinator (the paper's
//! atomic-coherence model leaves them zero lookahead); the windows gate
//! when staged cross-shard work may be drained, and the property suite
//! pins both the lookahead bound and the per-event window invariants.
//!
//! Pure compute events (`Block`/`Fp`) are exempt from the horizon gate:
//! they touch no shared state, so a compute batch may legally overrun the
//! window — the standard "local lookahead" exemption.

use crate::network::Network;
use crate::sched::MinTree;

/// A partition of `n` nodes into contiguous shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    n: usize,
    /// Start index of each shard, plus a final `n` sentinel.
    bounds: Vec<usize>,
}

impl ShardLayout {
    /// Split `n` nodes into `shards` contiguous blocks as evenly as
    /// possible (the first `n % shards` blocks get one extra node).
    /// `shards` is clamped to `[1, n]`.
    pub fn contiguous(n: usize, shards: usize) -> Self {
        assert!(n > 0, "cannot shard zero nodes");
        let s = shards.clamp(1, n);
        let (base, extra) = (n / s, n % s);
        let mut bounds = Vec::with_capacity(s + 1);
        let mut at = 0;
        for i in 0..s {
            bounds.push(at);
            at += base + usize::from(i < extra);
        }
        bounds.push(n);
        Self { n, bounds }
    }

    pub fn n_nodes(&self) -> usize {
        self.n
    }

    pub fn n_shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The contiguous node range of shard `s`.
    pub fn procs(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Which shard node `p` lives in.
    pub fn shard_of(&self, p: usize) -> usize {
        debug_assert!(p < self.n);
        // bounds is sorted; partition_point gives the first bound > p.
        self.bounds.partition_point(|&b| b <= p) - 1
    }
}

/// Minimum uncontended cross-shard one-way latency of the routed fabric —
/// the conservative lookahead `L`. Always ≥ 1 for a real layout (every
/// delivery pays at least one hop plus router traversal); a single-shard
/// layout has no cross-shard pair and falls back to the fabric's diameter
/// latency (the window then never constrains anything).
pub fn cross_shard_lookahead(net: &Network, layout: &ShardLayout) -> u64 {
    assert_eq!(net.n_nodes(), layout.n_nodes(), "layout and fabric disagree on node count");
    let mut min = u64::MAX;
    for a in 0..layout.n_nodes() {
        let sa = layout.shard_of(a);
        for b in 0..layout.n_nodes() {
            if layout.shard_of(b) != sa {
                min = min.min(net.latency(a, b, false));
            }
        }
    }
    if min == u64::MAX {
        net.max_one_way(false).max(1)
    } else {
        min.max(1)
    }
}

/// Two-level tournament scheduler: per-shard [`MinTree`]s plus a top
/// tournament over the shard minima. Same API and identical pick order as
/// one flat [`MinTree`] over all processors.
#[derive(Debug, Clone)]
pub struct ShardedSched {
    layout: ShardLayout,
    trees: Vec<MinTree>,
    /// Tournament over shard minima; key = the shard's minimum key.
    top: MinTree,
    /// Per-processor shard index (avoids a bounds search on the hot path).
    shard: Vec<u32>,
    /// Per-processor shard start (global id of the shard's first node).
    start: Vec<u32>,
    /// Per-shard start (same data keyed by shard, for the `min` path).
    shard_start: Vec<u32>,
}

impl ShardedSched {
    /// Build with every processor at key 0 (like [`MinTree::new`]).
    pub fn new(layout: ShardLayout) -> Self {
        let trees: Vec<MinTree> =
            (0..layout.n_shards()).map(|s| MinTree::new(layout.procs(s).len())).collect();
        let top = MinTree::new(layout.n_shards());
        let n = layout.n_nodes();
        let (mut shard, mut start) = (vec![0u32; n], vec![0u32; n]);
        let mut shard_start = vec![0u32; layout.n_shards()];
        for (s, ss) in shard_start.iter_mut().enumerate() {
            let r = layout.procs(s);
            *ss = r.start as u32;
            for p in r.clone() {
                shard[p] = s as u32;
                start[p] = r.start as u32;
            }
        }
        Self { layout, trees, top, shard, start, shard_start }
    }

    pub fn layout(&self) -> &ShardLayout {
        &self.layout
    }

    pub fn len(&self) -> usize {
        self.layout.n_nodes()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn key(&self, p: usize) -> u64 {
        self.trees[self.shard[p] as usize].key(p - self.start[p] as usize)
    }

    /// Which shard `p` lives in — O(1), unlike [`ShardLayout::shard_of`].
    #[inline]
    pub fn shard_id(&self, p: usize) -> usize {
        self.shard[p] as usize
    }

    pub fn runnable(&self) -> usize {
        self.trees.iter().map(|t| t.runnable()).sum()
    }

    #[inline]
    pub fn set_key(&mut self, p: usize, key: u64) {
        let s = self.shard[p] as usize;
        self.trees[s].set_key(p - self.start[p] as usize, key);
        self.top.set_key(s, self.trees[s].min_key());
    }

    /// The processor with the smallest `(key, id)` across all shards.
    #[inline]
    pub fn min(&self) -> Option<usize> {
        let s = self.top.min()?;
        let local = self.trees[s].min().expect("winning shard has a runnable processor");
        Some(self.shard_start[s] as usize + local)
    }
}

/// The system's scheduler: one flat tree (serial core) or the two-level
/// sharded tournament. Both produce the identical `(cycle, id)` order.
#[derive(Debug, Clone)]
pub enum Scheduler {
    Single(MinTree),
    Sharded(ShardedSched),
}

impl Scheduler {
    pub fn single(n: usize) -> Self {
        Scheduler::Single(MinTree::new(n))
    }

    pub fn sharded(layout: ShardLayout) -> Self {
        Scheduler::Sharded(ShardedSched::new(layout))
    }

    #[inline]
    pub fn key(&self, p: usize) -> u64 {
        match self {
            Scheduler::Single(t) => t.key(p),
            Scheduler::Sharded(s) => s.key(p),
        }
    }

    #[inline]
    pub fn set_key(&mut self, p: usize, key: u64) {
        match self {
            Scheduler::Single(t) => t.set_key(p, key),
            Scheduler::Sharded(s) => s.set_key(p, key),
        }
    }

    #[inline]
    pub fn min(&self) -> Option<usize> {
        match self {
            Scheduler::Single(t) => t.min(),
            Scheduler::Sharded(s) => s.min(),
        }
    }

    pub fn runnable(&self) -> usize {
        match self {
            Scheduler::Single(t) => t.runnable(),
            Scheduler::Sharded(s) => s.runnable(),
        }
    }

    /// The layout when sharded.
    pub fn layout(&self) -> Option<&ShardLayout> {
        match self {
            Scheduler::Single(_) => None,
            Scheduler::Sharded(s) => Some(s.layout()),
        }
    }

    /// The shard of processor `p` (0 on the serial core). O(1).
    #[inline]
    pub fn shard_id(&self, p: usize) -> usize {
        match self {
            Scheduler::Single(_) => 0,
            Scheduler::Sharded(s) => s.shard_id(p),
        }
    }
}

/// One executed (horizon-gated) event, as seen by the window tracker.
/// Recorded only when event logging is enabled (tests); the counters are
/// always live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowEvent {
    /// Index of the window the event executed in.
    pub window: u64,
    /// The shard of the executing processor.
    pub shard: usize,
    /// The processor's cycle at pick time (its scheduler key).
    pub cycle: u64,
    /// The window base (global frontier when the window opened).
    pub base: u64,
    /// The window horizon (`base + lookahead`).
    pub horizon: u64,
}

/// Aggregate counters of the windowed run (telemetry + scale artefact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Windows closed over the run.
    pub windows: u64,
    /// Conservative lookahead in cycles.
    pub lookahead: u64,
    /// Shard-windows in which a shard executed nothing while the window
    /// advanced — the shard sat at the conservative barrier (load skew /
    /// stall measure).
    pub barrier_stalls: u64,
    /// Horizon-gated events executed (compute batches exempt).
    pub gated_events: u64,
}

/// Tracks conservative windows over the run: opens a window at the global
/// frontier, gates horizon crossings, and accounts per-shard stalls.
#[derive(Debug)]
pub struct WindowTracker {
    lookahead: u64,
    base: u64,
    horizon: u64,
    counters: WindowCounters,
    /// Events executed per shard within the current window.
    executed_in_window: Vec<u64>,
    /// Optional per-event log for the property suite.
    log: Option<Vec<WindowEvent>>,
}

impl WindowTracker {
    pub fn new(lookahead: u64, n_shards: usize) -> Self {
        assert!(lookahead >= 1, "lookahead must be at least one cycle");
        Self {
            lookahead,
            base: 0,
            horizon: lookahead,
            counters: WindowCounters { lookahead, ..Default::default() },
            executed_in_window: vec![0; n_shards],
            log: None,
        }
    }

    /// Record every gated event (memory-heavy; tests only).
    pub fn enable_event_log(&mut self) {
        self.log = Some(Vec::new());
    }

    pub fn counters(&self) -> WindowCounters {
        self.counters
    }

    pub fn lookahead(&self) -> u64 {
        self.lookahead
    }

    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    pub fn events(&self) -> Option<&[WindowEvent]> {
        self.log.as_deref()
    }

    /// The next pick sits at `cycle`: close windows until the horizon
    /// covers it. Returns true when one or more windows closed (the caller
    /// then lets staged work drain).
    #[inline]
    pub fn advance_to(&mut self, cycle: u64) -> bool {
        if cycle < self.horizon {
            return false;
        }
        self.close_window(cycle);
        true
    }

    #[cold]
    fn close_window(&mut self, cycle: u64) {
        self.counters.windows += 1;
        for e in &mut self.executed_in_window {
            self.counters.barrier_stalls += u64::from(*e == 0);
            *e = 0;
        }
        // Re-open at the stalled frontier: the new base is the pick that
        // crossed the horizon (the global minimum — every other processor
        // sits at or above it).
        self.base = cycle;
        self.horizon = cycle.saturating_add(self.lookahead);
    }

    /// Account a horizon-gated event executing on `shard` at `cycle`
    /// (must be called after [`WindowTracker::advance_to`]).
    #[inline]
    pub fn record_event(&mut self, shard: usize, cycle: u64) {
        debug_assert!(cycle < self.horizon);
        self.counters.gated_events += 1;
        self.executed_in_window[shard] += 1;
        if let Some(log) = &mut self.log {
            log.push(WindowEvent {
                window: self.counters.windows,
                shard,
                cycle,
                base: self.base,
                horizon: self.horizon,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::topology::TopologyKind;
    use crate::util::splitmix64;

    /// The paper's Table I network parameters with a chosen layout.
    fn net_cfg(kind: TopologyKind) -> crate::config::NetworkConfig {
        let mut cfg = SystemConfig::with_interval_base(16, 16_000).network;
        cfg.topology = kind;
        cfg
    }

    #[test]
    fn contiguous_layout_covers_all_nodes() {
        for n in [1usize, 2, 5, 16, 64, 128] {
            for shards in [1usize, 2, 3, 4, 7, 64, 200] {
                let l = ShardLayout::contiguous(n, shards);
                assert_eq!(l.n_shards(), shards.clamp(1, n));
                let mut covered = 0;
                for s in 0..l.n_shards() {
                    let r = l.procs(s);
                    assert_eq!(r.start, covered, "shards must be contiguous");
                    assert!(!r.is_empty(), "no empty shards");
                    for p in r.clone() {
                        assert_eq!(l.shard_of(p), s);
                    }
                    covered = r.end;
                }
                assert_eq!(covered, n);
                // Balanced within one node.
                let sizes: Vec<usize> = (0..l.n_shards()).map(|s| l.procs(s).len()).collect();
                let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(mx - mn <= 1, "n = {n}, shards = {shards}: {sizes:?}");
            }
        }
    }

    #[test]
    fn sharded_sched_matches_flat_tree_order() {
        let mut seed = 0x5eed_cafeu64;
        let mut rng = move || {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(seed)
        };
        for n in [1usize, 2, 7, 16, 64] {
            for shards in [1usize, 2, 3, 4, n] {
                let mut flat = MinTree::new(n);
                let mut sharded = ShardedSched::new(ShardLayout::contiguous(n, shards));
                for step in 0..3000 {
                    let p = (rng() % n as u64) as usize;
                    // Small range for frequent ties, sometimes park.
                    let key = match rng() % 8 {
                        0 => u64::MAX,
                        _ => rng() % 16,
                    };
                    flat.set_key(p, key);
                    sharded.set_key(p, key);
                    assert_eq!(
                        sharded.min(),
                        flat.min(),
                        "n = {n}, shards = {shards}, step = {step}"
                    );
                    assert_eq!(sharded.key(p), flat.key(p));
                }
                assert_eq!(sharded.runnable(), flat.runnable());
            }
        }
    }

    #[test]
    fn lookahead_is_min_cross_shard_latency() {
        for kind in TopologyKind::ALL {
            let n = 16;
            if !kind.supports(n) {
                continue;
            }
            let net = Network::new(net_cfg(kind), n);
            for shards in [2usize, 4, 8, 16] {
                let layout = ShardLayout::contiguous(n, shards);
                let la = cross_shard_lookahead(&net, &layout);
                // Brute-force reference.
                let mut min = u64::MAX;
                for a in 0..n {
                    for b in 0..n {
                        if layout.shard_of(a) != layout.shard_of(b) {
                            min = min.min(net.latency(a, b, false));
                        }
                    }
                }
                assert_eq!(la, min.max(1), "{kind:?} shards = {shards}");
                assert!(la >= 1);
            }
        }
    }

    #[test]
    fn single_shard_lookahead_falls_back_to_diameter() {
        let net = Network::new(net_cfg(TopologyKind::Hypercube), 8);
        let layout = ShardLayout::contiguous(8, 1);
        assert_eq!(cross_shard_lookahead(&net, &layout), net.max_one_way(false).max(1));
    }

    #[test]
    fn window_tracker_counts_windows_and_stalls() {
        let mut w = WindowTracker::new(10, 2);
        w.enable_event_log();
        assert!(!w.advance_to(0));
        w.record_event(0, 0);
        assert!(!w.advance_to(9));
        w.record_event(0, 9);
        // Crossing the horizon closes the window; shard 1 never ran.
        assert!(w.advance_to(10));
        w.record_event(1, 10);
        assert!(w.advance_to(35)); // far jump still one close
        w.record_event(1, 35);
        let c = w.counters();
        assert_eq!(c.windows, 2);
        assert_eq!(c.gated_events, 4);
        assert_eq!(c.barrier_stalls, 2, "shard 1 idle in w0, shard 0 idle in w1");
        let events = w.events().unwrap();
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.cycle >= e.base && e.cycle < e.horizon, "{e:?}");
        }
    }
}
