//! Telemetry selection shim for the simulator.
//!
//! The `telemetry` cargo feature decides which facade the simulator's
//! probes compile against: the real recorder ([`dsm_telemetry::Telemetry`])
//! or the zero-sized no-op stub. Both expose the same API and the same id
//! types, so the instrumentation in [`crate::system`] is written once with
//! no `cfg` at any call site; a disabled build optimizes every probe away
//! (the bench harness holds events/sec to the recorded `BENCH_SIM.json`
//! baseline to prove it).
//!
//! ## Track layout
//!
//! For an `n`-processor system the simulator allocates `2n` span tracks:
//!
//! * track `p` (`0 <= p < n`) — *coherence*: one span per directory
//!   transaction resolved on node `p` (L2 miss → request → directory →
//!   data/acks), named `dir_read`/`dir_write`, `ts` = the cycle the
//!   transaction issued, `dur` = the exposed (MLP-discounted) stall the
//!   node actually paid. Because the node's clock advances by exactly that
//!   stall, spans on one coherence track never overlap.
//! * track `n + p` — *intervals*: one span per completed sampling
//!   interval on node `p`, covering `[interval_start, interval_end)`.

#[cfg(feature = "telemetry")]
pub use dsm_telemetry::Telemetry as SimTelemetry;
#[cfg(not(feature = "telemetry"))]
pub use dsm_telemetry::stub::Telemetry as SimTelemetry;

pub use dsm_telemetry::{MetricsRegistry, Snapshot};

use dsm_telemetry::{HistId, NameId};

/// Pre-interned probe ids the simulator's hot path updates through.
/// Registered once in [`crate::system::System::new`]; plain `Copy` ids in
/// both the real and the stubbed build.
#[derive(Debug, Clone, Copy)]
pub struct SimProbes {
    /// Span name for directory read transactions.
    pub dir_read: NameId,
    /// Span name for directory write/upgrade transactions.
    pub dir_write: NameId,
    /// Span name for completed sampling intervals.
    pub interval: NameId,
    /// Histogram of raw (undiscounted) coherence stall cycles per L2 miss.
    pub stall_hist: HistId,
}

impl SimProbes {
    /// Register every probe and label the `2n` tracks (see module docs).
    pub fn register(telem: &mut SimTelemetry, n_procs: usize) -> Self {
        for p in 0..n_procs {
            telem.set_track_name(p, &format!("node{p} coherence"));
            telem.set_track_name(n_procs + p, &format!("node{p} intervals"));
        }
        Self {
            dir_read: telem.intern("dir_read"),
            dir_write: telem.intern("dir_write"),
            interval: telem.intern("interval"),
            stall_hist: telem.histogram("sim/coherence/stall_cycles"),
        }
    }

    /// Span tracks a system with `n_procs` processors needs.
    pub fn tracks_for(n_procs: usize) -> usize {
        2 * n_procs
    }
}
