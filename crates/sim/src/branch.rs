//! gshare branch predictor (2 048-entry in Table I).
//!
//! Classic gshare: the prediction table of 2-bit saturating counters is
//! indexed by `PC XOR global-history`. The simulator calls
//! [`Gshare::predict_and_update`] once per committed basic block (each block
//! ends in one branch) and charges the mispredict penalty when the
//! prediction was wrong.

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Counter(u8);

impl Counter {
    const WEAKLY_NOT_TAKEN: Counter = Counter(1);

    #[inline]
    fn taken(self) -> bool {
        self.0 >= 2
    }

    #[inline]
    fn update(&mut self, taken: bool) {
        if taken {
            if self.0 < 3 {
                self.0 += 1;
            }
        } else if self.0 > 0 {
            self.0 -= 1;
        }
    }
}

/// gshare predictor state for one processor.
pub struct Gshare {
    table: Vec<Counter>,
    mask: u64,
    history: u64,
    history_bits: u32,
    predictions: u64,
    mispredictions: u64,
}

impl Gshare {
    /// `entries` must be a power of two (2 048 in the paper).
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two() && entries > 0);
        let history_bits = entries.trailing_zeros();
        Self {
            table: vec![Counter::WEAKLY_NOT_TAKEN; entries],
            mask: entries as u64 - 1,
            history: 0,
            history_bits,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predict the branch at `pc`, observe the real `taken` outcome, update
    /// the counters and history, and return whether the prediction was
    /// correct.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = ((pc ^ self.history) & self.mask) as usize;
        let predicted = self.table[idx].taken();
        self.table[idx].update(taken);
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
        self.predictions += 1;
        let correct = predicted == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in \[0, 1\]; 0 when no branches have been seen.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Export the predictor state for checkpointing (the counter table as
    /// raw bytes plus history and counters; mask/history width are derived
    /// from the table size).
    pub fn export_state(&self) -> crate::state::GshareState {
        crate::state::GshareState {
            table: self.table.iter().map(|c| c.0).collect(),
            history: self.history,
            predictions: self.predictions,
            mispredictions: self.mispredictions,
        }
    }

    /// Restore state captured by [`Gshare::export_state`] on a predictor
    /// with the same table size.
    pub fn import_state(&mut self, st: &crate::state::GshareState) {
        assert_eq!(st.table.len(), self.table.len(), "gshare size mismatch");
        for (c, &b) in self.table.iter_mut().zip(&st.table) {
            debug_assert!(b <= 3, "2-bit counter out of range");
            *c = Counter(b);
        }
        self.history = st.history;
        self.predictions = st.predictions;
        self.mispredictions = st.mispredictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_branch() {
        let mut g = Gshare::new(2048);
        // After warm-up, a monomorphic branch should predict correctly.
        for _ in 0..16 {
            g.predict_and_update(0x400, true);
        }
        let before = g.mispredictions();
        for _ in 0..100 {
            assert!(g.predict_and_update(0x400, true));
        }
        assert_eq!(g.mispredictions(), before);
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut g = Gshare::new(2048);
        // T,N,T,N... is perfectly predictable with one bit of history.
        let mut taken = true;
        for _ in 0..64 {
            g.predict_and_update(0x88, taken);
            taken = !taken;
        }
        let before = g.mispredictions();
        for _ in 0..100 {
            g.predict_and_update(0x88, taken);
            taken = !taken;
        }
        assert_eq!(g.mispredictions(), before, "pattern should be learned");
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter(0);
        c.update(false);
        assert_eq!(c, Counter(0));
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c, Counter(3));
        assert!(c.taken());
    }

    #[test]
    fn rate_accounts_all_predictions() {
        let mut g = Gshare::new(64);
        for i in 0..50 {
            g.predict_and_update(i * 8, i % 3 == 0);
        }
        assert_eq!(g.predictions(), 50);
        let r = g.mispredict_rate();
        assert!(r > 0.0 && r < 1.0);
    }

    #[test]
    fn fresh_predictor_rate_is_zero() {
        assert_eq!(Gshare::new(16).mispredict_rate(), 0.0);
    }
}
