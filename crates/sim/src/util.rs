//! Small utilities shared across the simulator: a fast FxHash-style hasher
//! (reimplemented here rather than adding a dependency) and hash-map type
//! aliases keyed on it.

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplication constant (as used by rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher in the style of rustc's `FxHasher`.
///
/// Directory maps are keyed by block addresses, which are dense and
/// well-distributed; SipHash's DoS resistance buys nothing here and costs a
/// lot (see the perf-book's Hashing chapter). This is a from-scratch
/// implementation of the same multiply-rotate scheme.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Integer ceiling division for cycle accounting.
#[inline]
pub fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

/// A splitmix64 step; used to derive well-distributed pseudo-addresses and
/// hash bucket indices from small integers without any `rand` dependency in
/// the simulator itself.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;
    use std::hash::BuildHasherDefault;

    #[test]
    fn fxhash_is_deterministic() {
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        let a = bh.hash_one(0xdead_beef_u64);
        let b = bh.hash_one(0xdead_beef_u64);
        assert_eq!(a, b);
    }

    #[test]
    fn fxhash_distinguishes_values() {
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        assert_ne!(bh.hash_one(1u64), bh.hash_one(2u64));
    }

    #[test]
    fn fxhash_handles_unaligned_bytes() {
        let bh: BuildHasherDefault<FxHasher> = Default::default();
        // 3-byte and 11-byte writes exercise the chunked path.
        assert_ne!(bh.hash_one([1u8, 2, 3]), bh.hash_one([1u8, 2, 4]));
        assert_ne!(bh.hash_one([0u8; 11]), bh.hash_one([1u8; 11]));
    }

    #[test]
    fn div_ceil_rounds_up() {
        assert_eq!(div_ceil(0, 6), 0);
        assert_eq!(div_ceil(1, 6), 1);
        assert_eq!(div_ceil(6, 6), 1);
        assert_eq!(div_ceil(7, 6), 2);
    }

    #[test]
    fn splitmix_spreads_small_integers() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        // Low bits should differ too (used for bucket indices).
        assert_ne!(a & 0xffff, b & 0xffff);
    }
}
