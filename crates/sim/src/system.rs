//! Global simulation loop: min-cycle scheduling over all processors,
//! the full memory-access path (L1 → L2 → directory → network → memory
//! controller), barriers, and locks.
//!
//! Scheduling is deterministic: the runnable processor with the smallest
//! absolute cycle runs next, ties broken by lowest id. All inter-processor
//! timing effects — coherence invalidations, dirty forwarding, memory
//! controller queueing, barrier skew, lock hand-off — emerge from this loop.

use std::collections::VecDeque;

use crate::addr::{block_of, HomeMap};
use crate::config::SystemConfig;
use crate::directory::{Directory, ReadSource};
use crate::event::{Event, InstructionStream};
use crate::fault::FaultState;
use crate::memctrl::MemCtrl;
use crate::network::Network;
use crate::observer::{IntervalStats, SimObserver};
use crate::reconfig::{HotPage, Machine, ReconfigSnap, ReconfigStats, DVFS_NOMINAL};
use crate::processor::Processor;
use crate::shard::{cross_shard_lookahead, ShardLayout, Scheduler, WindowCounters, WindowEvent, WindowTracker};
use crate::state::{BarrierSnap, LockSnap, SystemState};
use crate::stats::SystemStats;
use crate::telem::{SimProbes, SimTelemetry, Snapshot};
use crate::util::FxHashMap;

#[derive(Debug, Default)]
struct LockState {
    owner: Option<usize>,
    waiters: VecDeque<usize>,
}

#[derive(Debug)]
struct BarrierState {
    current_id: Option<u32>,
    /// Arrival bitmap, 64 processors per word — works at any node count
    /// (a single u64 capped the machine at 64).
    arrived: Vec<u64>,
    arrived_count: usize,
    arrival_cycle: Vec<u64>,
}

impl BarrierState {
    fn new(n: usize) -> Self {
        Self {
            current_id: None,
            arrived: vec![0; n.div_ceil(64)],
            arrived_count: 0,
            arrival_cycle: vec![0; n],
        }
    }

    #[inline]
    fn has_arrived(&self, p: usize) -> bool {
        self.arrived[p / 64] & (1u64 << (p % 64)) != 0
    }

    #[inline]
    fn mark_arrived(&mut self, p: usize) {
        self.arrived[p / 64] |= 1u64 << (p % 64);
        self.arrived_count += 1;
    }

    fn reset_arrivals(&mut self) {
        self.arrived.iter_mut().for_each(|w| *w = 0);
        self.arrived_count = 0;
    }
}

/// The simulated DSM multiprocessor.
pub struct System<S: InstructionStream, O: SimObserver> {
    cfg: SystemConfig,
    procs: Vec<Processor>,
    dir: Directory,
    net: Network,
    /// Deterministic fault injection on every coherence message (a
    /// transparent pass-through under [`crate::config::FaultPlan::none`]).
    fault: FaultState,
    memctrls: Vec<MemCtrl>,
    homes: HomeMap,
    locks: FxHashMap<u32, LockState>,
    barrier: BarrierState,
    stream: S,
    observer: O,
    events_executed: u64,
    /// Indexed scheduler: one key per processor, equal to its cycle while
    /// runnable and `u64::MAX` while finished or blocked. A flat tree by
    /// default; the two-level sharded tournament (identical pick order)
    /// after [`System::enable_sharding`].
    sched: Scheduler,
    /// Conservative time-window tracker, present iff sharding is enabled.
    windows: Option<WindowTracker>,
    /// One fetched-but-not-yet-executed event per processor. The batched
    /// run loop parks an event here when it must execute at the processor's
    /// canonical position in the global `(cycle, id)` order rather than
    /// inside a compute batch.
    pending: Vec<Option<Event>>,
    /// Events fetched from the stream per processor (parked ones included).
    /// Checkpoint restore replays exactly this many `stream.next(p)` calls
    /// on a fresh stream to reposition it — streams are deterministic, so
    /// the count is the entire stream state.
    fetched: Vec<u64>,
    /// Telemetry recorder: the real facade under the `telemetry` feature,
    /// a zero-sized no-op stub otherwise (see [`crate::telem`]).
    telem: SimTelemetry,
    /// Pre-interned probe ids for the hot-path instrumentation.
    probes: SimProbes,
    /// Per-node DVFS numerators ([`crate::reconfig::DVFS_NOMINAL`] = full
    /// speed; scaling by 256/256 is exact identity, so an untouched vector
    /// leaves the timing model bit-identical).
    dvfs_num: Vec<u64>,
    /// Counters for every mid-run reconfiguration (all zero unless the
    /// adaptation subsystem actuated something).
    reconfig_stats: ReconfigStats,
}

impl<S: InstructionStream, O: SimObserver> System<S, O> {
    pub fn new(cfg: SystemConfig, stream: S, observer: O) -> Self {
        cfg.validate().expect("invalid system configuration");
        assert_eq!(
            stream.n_procs(),
            cfg.n_procs,
            "stream and config disagree on processor count"
        );
        let n = cfg.n_procs;
        let mut telem = SimTelemetry::new(SimProbes::tracks_for(n));
        let probes = SimProbes::register(&mut telem, n);
        Self {
            procs: (0..n).map(|i| Processor::new(i, &cfg)).collect(),
            dir: Directory::with_capacity(cfg.directory_capacity_hint()),
            net: Network::new(cfg.network, n),
            fault: FaultState::new(cfg.fault),
            memctrls: (0..n).map(|_| MemCtrl::new(cfg.memory)).collect(),
            homes: HomeMap::new(cfg.distribution, n),
            locks: FxHashMap::with_capacity_and_hasher(
                cfg.lock_capacity_hint(),
                Default::default(),
            ),
            barrier: BarrierState::new(n),
            stream,
            observer,
            events_executed: 0,
            sched: Scheduler::single(n),
            windows: None,
            pending: vec![None; n],
            fetched: vec![0; n],
            telem,
            probes,
            dvfs_num: vec![crate::reconfig::DVFS_NOMINAL; n],
            reconfig_stats: ReconfigStats::default(),
            cfg,
        }
    }

    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Partition the machine into `shards` contiguous shards: the event
    /// loop switches to the two-level tournament scheduler (identical
    /// `(cycle, id)` pick order — execution stays bit-identical to the
    /// serial core) and advances under conservative time windows whose
    /// lookahead is the minimum cross-shard delivery latency of the routed
    /// fabric. Window boundaries are reported to the observer via
    /// [`SimObserver::on_window_close`] — the drain points for staged
    /// cross-shard work. Callable at any point (checkpoint restore included);
    /// scheduler keys are rebuilt from processor state.
    pub fn enable_sharding(&mut self, shards: usize) {
        let layout = ShardLayout::contiguous(self.cfg.n_procs, shards);
        let lookahead = cross_shard_lookahead(&self.net, &layout);
        self.windows = Some(WindowTracker::new(lookahead, layout.n_shards()));
        self.sched = Scheduler::sharded(layout);
        for p in 0..self.cfg.n_procs {
            self.refresh_key(p);
        }
    }

    /// Record every horizon-gated event (property tests; memory-heavy).
    pub fn enable_window_log(&mut self) {
        self.windows
            .as_mut()
            .expect("enable sharding before window logging")
            .enable_event_log();
    }

    /// Counters of the conservative-window run (zeroes when not sharded).
    pub fn window_counters(&self) -> WindowCounters {
        self.windows.as_ref().map(|w| w.counters()).unwrap_or_default()
    }

    /// The shard layout in force, if sharding is enabled.
    pub fn shard_layout(&self) -> Option<&ShardLayout> {
        self.sched.layout()
    }

    /// The per-event window log (requires [`System::enable_window_log`]).
    pub fn window_events(&self) -> Option<&[WindowEvent]> {
        self.windows.as_ref().and_then(|w| w.events())
    }

    /// Gate the pick of processor `p` (scheduler key `key`) through the
    /// conservative window: close windows the pick crosses (notifying the
    /// observer — its cue to drain staged work) and account the event to
    /// `p`'s shard. No-op on the serial core.
    #[inline]
    fn window_gate(&mut self, p: usize, key: u64) {
        if let Some(w) = &mut self.windows {
            if w.advance_to(key) {
                self.observer.on_window_close(w.counters().windows, w.horizon());
            }
            w.record_event(self.sched.shard_id(p), key);
        }
    }

    pub fn observer(&self) -> &O {
        &self.observer
    }

    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The DDV distance matrix for this system's topology.
    pub fn distance_matrix(&self) -> Vec<f64> {
        self.net.distance_matrix()
    }

    /// Run to completion of all processor streams; returns final statistics.
    ///
    /// Uses the batched event loop: runs of pure compute events
    /// (`Block`/`Fp`) that stay inside one sampling interval execute without
    /// re-entering the global scheduler. This is observationally identical
    /// to repeated [`System::step`] — compute events touch only
    /// processor-private state, and every event that can interact across
    /// processors (memory, synchronization, `End`, and any event completing
    /// a sampling interval) still executes at its canonical position in the
    /// global `(cycle, id)` order.
    pub fn run(mut self) -> (SystemStats, O) {
        while self.step_batched() {}
        let stats = self.finish_stats();
        (stats, self.observer)
    }

    /// Run to completion strictly one event at a time in global
    /// `(cycle, id)` order — the reference the batched [`System::run`] is
    /// tested against. Slower; behaviourally identical.
    pub fn run_unbatched(mut self) -> (SystemStats, O) {
        while self.step() {}
        let stats = self.finish_stats();
        (stats, self.observer)
    }

    /// Like [`System::run`], additionally returning the telemetry snapshot
    /// (coherence/interval span tracks, stall histograms, and the final
    /// stats mirrored as registry metrics). With the `telemetry` feature
    /// off the snapshot is [`Snapshot::empty`]; the simulation itself is
    /// bit-identical either way.
    pub fn run_telemetry(mut self) -> (SystemStats, O, Snapshot) {
        while self.step_batched() {}
        let stats = self.finish_stats();
        let snapshot = self.telem.snapshot();
        (stats, self.observer, snapshot)
    }

    /// Telemetry recorded so far (mid-run diagnostics; empty when the
    /// `telemetry` feature is off).
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.telem.snapshot()
    }

    /// Execute one event on the earliest runnable processor (smallest
    /// `(cycle, id)`). Returns false when every processor has finished.
    pub fn step(&mut self) -> bool {
        let Some(p) = self.sched.min() else {
            return self.handle_no_runnable();
        };
        self.window_gate(p, self.sched.key(p));
        let ev = match self.pending[p].take() {
            Some(ev) => ev,
            None => {
                self.fetched[p] += 1;
                self.stream.next(p)
            }
        };
        self.events_executed += 1;
        self.dispatch(p, ev);
        self.refresh_key(p);
        true
    }

    /// One scheduler turn of the batched loop: give the earliest runnable
    /// processor its pending event, or drain a run of its compute events.
    fn step_batched(&mut self) -> bool {
        let Some(p) = self.sched.min() else {
            return self.handle_no_runnable();
        };
        if let Some(ev) = self.pending[p].take() {
            self.window_gate(p, self.sched.key(p));
            self.events_executed += 1;
            self.dispatch(p, ev);
            self.refresh_key(p);
            return true;
        }
        // Drain compute events that neither touch shared state nor complete
        // the current sampling interval. Cycle accounting for the whole
        // batch is settled once at the end: nothing inside the batch reads
        // the intermediate cycle, the commit-carry arithmetic is
        // associative, and mispredict penalties are plain cycle additions
        // that commute with the carry division — so one division per batch
        // is exact. The first event that cannot be batched is parked in the
        // pending slot (or, when the batch is empty, executed right away —
        // `p` is still the scheduler minimum).
        let mut batched = 0u64;
        let mut block_insns = 0u64;
        let mut fp_ops = 0u64;
        let Self { procs, stream, observer, fetched, fault, .. } = self;
        let pr = &mut procs[p];
        let tail = loop {
            let ev = stream.next(p);
            match ev {
                Event::Block { bb, insns, taken }
                    if !pr.interval_would_complete(insns as u64) =>
                {
                    batched += 1;
                    block_insns += insns as u64;
                    pr.resolve_branch(bb, taken);
                    observer.on_block_commit(p, bb, insns);
                    pr.advance_interval_partial(insns as u64);
                }
                Event::Fp { ops } if !pr.interval_would_complete(ops as u64) => {
                    batched += 1;
                    fp_ops += ops as u64;
                    pr.advance_interval_partial(ops as u64);
                }
                other => break other,
            }
        };
        if block_insns > 0 {
            pr.commit_insns(block_insns);
        }
        if fp_ops > 0 {
            pr.commit_fp(fp_ops);
        }
        // Issue throttle for the batched commits (the terminating tail is
        // charged on its own dispatch). `slowdown_issue_num` is exact per
        // instruction for multiples of 256, so batch chunking cannot change
        // the total charge.
        if block_insns + fp_ops > 0 {
            let extra = fault.issue_extra(p, pr.cycle, block_insns + fp_ops);
            if extra > 0 {
                pr.cycle += extra;
            }
        }
        // The batch plus its terminating tail all came off the stream.
        fetched[p] += batched + 1;
        self.events_executed += batched;
        if batched > 0 {
            self.pending[p] = Some(tail);
        } else {
            self.window_gate(p, self.sched.key(p));
            self.events_executed += 1;
            self.dispatch(p, tail);
        }
        self.refresh_key(p);
        true
    }

    /// Execute one already-fetched event on processor `p`.
    fn dispatch(&mut self, p: usize, ev: Event) {
        match ev {
            Event::Block { bb, insns, taken } => {
                self.procs[p].commit_insns(insns as u64);
                self.procs[p].resolve_branch(bb, taken);
                self.observer.on_block_commit(p, bb, insns);
                self.advance_interval(p, insns as u64);
            }
            Event::Mem { addr, write } => {
                let home = self.mem_access(p, addr, write);
                self.observer.on_mem_commit(p, home, addr, write);
                self.procs[p].commit_insns(1);
                self.advance_interval(p, 1);
            }
            Event::Fp { ops } => {
                self.procs[p].commit_fp(ops as u64);
                self.advance_interval(p, ops as u64);
            }
            Event::Barrier { id } => self.handle_barrier(p, id),
            Event::Acquire { lock } => self.handle_acquire(p, lock),
            Event::Release { lock } => self.handle_release(p, lock),
            Event::End => {
                self.procs[p].finished = true;
                self.procs[p].sync_stats();
            }
        }
    }

    /// Re-derive processor `p`'s scheduler key from its state.
    #[inline]
    fn refresh_key(&mut self, p: usize) {
        let pr = &self.procs[p];
        let key = if pr.finished || pr.blocked { u64::MAX } else { pr.cycle };
        self.sched.set_key(p, key);
    }

    /// No runnable processor: either everything finished (normal
    /// termination) or the workload deadlocked. Off the hot path.
    #[cold]
    fn handle_no_runnable(&self) -> bool {
        if self.procs.iter().all(|pr| pr.finished) {
            return false;
        }
        let blocked: Vec<usize> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, pr)| pr.blocked)
            .map(|(i, _)| i)
            .collect();
        panic!(
            "deadlock: no runnable processor; blocked = {blocked:?} \
             (malformed workload: unmatched barrier or lock)"
        );
    }

    #[inline]
    fn advance_interval(&mut self, p: usize, insns: u64) {
        // Issue throttle (targeted slowdown plans): charge before the
        // interval-completion check so the extra cycles attribute to the
        // interval these instructions belong to.
        let extra = self.fault.issue_extra(p, self.procs[p].cycle, insns);
        if extra > 0 {
            self.procs[p].cycle += extra;
        }
        if let Some((index, insns, cycles)) = self.procs[p].advance_interval(insns) {
            // Interval span: `[start, end)` on node p's interval track.
            let end = self.procs[p].cycle;
            self.telem
                .span(self.cfg.n_procs + p, self.probes.interval, end - cycles, cycles);
            self.observer
                .on_interval(p, IntervalStats { index, insns, cycles });
        }
    }

    /// Full memory-access path; returns the home node of the access (every
    /// committed access reports its home to the observer, hit or miss —
    /// the paper's F matrix counts *committed accesses*, not misses).
    fn mem_access(&mut self, p: usize, addr: u64, write: bool) -> usize {
        let block = block_of(addr);
        let home = self.homes.home(block, p);
        // The L1-hit and L2-hit paths — the bulk of all memory events —
        // touch only processor-private state, borrowed once here.
        let pr = &mut self.procs[p];
        pr.stats.mem_refs += 1;

        if matches!(pr.l1.access(addr, write), crate::cache::Lookup::Hit) {
            return home; // 1-cycle pipelined hit: no stall.
        }
        pr.stats.l1_misses += 1;

        match pr.l2.access(addr, write) {
            crate::cache::Lookup::Hit => {
                let lat = self.cfg.l2.latency_cycles;
                pr.charge_mem_stall(lat);
            }
            crate::cache::Lookup::Miss { writeback } => {
                pr.stats.l2_misses += 1;
                if home == p {
                    pr.stats.local_home_misses += 1;
                } else {
                    pr.stats.remote_home_misses += 1;
                }
                if self.homes.tracking() {
                    self.homes.note_miss(block, p);
                }
                if let Some(victim) = writeback {
                    self.handle_writeback(p, victim);
                }
                let raw = self.cfg.l2.latency_cycles + self.coherence_stall(p, block, home, write);
                let raw = raw + self.fault.slowdown_extra(p, self.procs[p].cycle, raw);
                let raw = self.dvfs_scale(p, raw);
                let start = self.procs[p].cycle;
                let exposed = self.procs[p].charge_mem_stall(raw);
                // Coherence-transaction span: the exposed stall is exactly
                // how far this node's clock advanced, so spans on one
                // track tile the timeline without overlap.
                let name = if write { self.probes.dir_write } else { self.probes.dir_read };
                self.telem.span(p, name, start, exposed);
                self.telem.record(self.probes.stall_hist, raw);
            }
        }
        home
    }

    /// Scale a raw miss stall by node `p`'s DVFS numerator (`num/256`).
    /// At [`DVFS_NOMINAL`] this returns `raw` untouched without counting
    /// anything — the inert default costs one predictable branch.
    #[inline]
    fn dvfs_scale(&mut self, p: usize, raw: u64) -> u64 {
        let num = self.dvfs_num[p];
        if num == DVFS_NOMINAL {
            return raw;
        }
        let scaled = raw * num / DVFS_NOMINAL;
        if scaled >= raw {
            self.reconfig_stats.dvfs_extra_cycles += scaled - raw;
        } else {
            self.reconfig_stats.dvfs_saved_cycles += raw - scaled;
        }
        scaled
    }

    /// Deliver one protocol message through the fault layer; returns its
    /// end-to-end latency (retries, spikes and duplicates resolved). With
    /// faults inactive this is exactly [`Network::send_at`].
    #[inline]
    fn deliver_msg(&mut self, src: usize, dst: usize, payload: bool, now: u64) -> u64 {
        self.fault.deliver(&mut self.net, src, dst, payload, now).latency
    }

    /// Deliver a *request* to a home node. On top of [`Self::deliver_msg`],
    /// duplicate copies reaching the home are recognized by their
    /// transaction sequence number and refused with a NACK header back to
    /// the requester (traffic only — protocol state is applied exactly once
    /// by the caller).
    #[inline]
    fn deliver_request(&mut self, src: usize, home: usize, now: u64) -> u64 {
        let d = self.fault.deliver(&mut self.net, src, home, false, now);
        if d.duplicates > 0 {
            self.dir.nack(d.duplicates);
            for _ in 0..d.duplicates {
                self.net.send_at(home, src, false, now + d.latency + self.cfg.directory_cycles);
            }
        }
        d.latency
    }

    /// Resolve an L2 miss through the home directory; returns the raw
    /// (undiscounted) stall beyond the L2 lookup.
    fn coherence_stall(&mut self, p: usize, block: u64, home: usize, write: bool) -> u64 {
        let now = self.procs[p].cycle;
        let req_lat = self.deliver_request(p, home, now);
        let arrive = now + req_lat + self.cfg.directory_cycles;

        let (data_lat, inval_lat) = if write {
            let o = self.dir.write(block, p);
            // Invalidations fan out from the home in parallel; the write
            // completes when the slowest acknowledgment returns.
            let mut inval_lat = 0u64;
            let mut mask = o.invalidate_mask;
            while mask != 0 {
                let q = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                self.procs[q].l1.invalidate(block);
                self.procs[q].l2.invalidate(block);
                let out = self.deliver_msg(home, q, false, arrive);
                let back = self.deliver_msg(q, home, false, arrive + out);
                inval_lat = inval_lat.max(out + back);
            }
            let data_lat = if let Some(owner) = o.owner_forward {
                // Dirty owner forwards directly to the requester.
                let fwd = self.deliver_msg(home, owner, false, arrive);
                fwd + self.deliver_msg(owner, p, true, arrive + fwd)
            } else if o.from_memory {
                let svc = self.memctrls[home].request_block(block >> 5, arrive);
                self.procs[p].stats.contention_cycles += svc.queue_delay;
                let mem = svc.done_at - arrive;
                let reply = if home != p {
                    self.deliver_msg(home, p, true, svc.done_at)
                } else {
                    0
                };
                mem + reply
            } else {
                0 // upgrade: data already present, only acks matter
            };
            (data_lat, inval_lat)
        } else {
            let o = self.dir.read(block, p);
            let data_lat = match o.source {
                ReadSource::Memory => {
                    let svc = self.memctrls[home].request_block(block >> 5, arrive);
                    self.procs[p].stats.contention_cycles += svc.queue_delay;
                    let mem = svc.done_at - arrive;
                    let reply = if home != p {
                        self.deliver_msg(home, p, true, svc.done_at)
                    } else {
                        0
                    };
                    mem + reply
                }
                ReadSource::Owner(owner) => {
                    // Owner downgrades to shared, forwards data, and the
                    // dirty block is written back to home memory (occupying
                    // the controller, off the critical path).
                    let was_dirty = self.procs[owner].l2.downgrade(block)
                        | self.procs[owner].l1.downgrade(block);
                    let fwd = self.deliver_msg(home, owner, false, arrive);
                    if was_dirty {
                        let svc = self.memctrls[home].request_block(block >> 5, arrive + fwd);
                        let _ = svc; // bandwidth consumed; not on critical path
                        self.deliver_msg(owner, home, true, arrive + fwd);
                    }
                    fwd + self.deliver_msg(owner, p, true, arrive + fwd)
                }
            };
            (data_lat, 0)
        };

        req_lat + self.cfg.directory_cycles + data_lat.max(inval_lat)
    }

    /// A dirty L2 victim is written back to its home (buffered: consumes
    /// home bandwidth and updates the directory, but does not stall `p`).
    fn handle_writeback(&mut self, p: usize, victim: u64) {
        let block = block_of(victim);
        let home = self.homes.home(block, p);
        let now = self.procs[p].cycle;
        if home != p {
            self.deliver_msg(p, home, true, now);
        }
        self.memctrls[home].request_block(block >> 5, now);
        self.dir.writeback(block, p);
        // The L1 may still hold the line; keep inclusion by dropping it.
        self.procs[p].l1.invalidate(block);
    }

    fn handle_barrier(&mut self, p: usize, id: u32) {
        let sync = self.cfg.sync_cycles;
        {
            let proc = &mut self.procs[p];
            proc.stats.sync_ops += 1;
            proc.cycle += sync;
        }
        match self.barrier.current_id {
            None => self.barrier.current_id = Some(id),
            Some(cur) => assert_eq!(
                cur, id,
                "barrier mismatch: processor {p} arrived at {id}, expected {cur}"
            ),
        }
        assert!(
            !self.barrier.has_arrived(p),
            "processor {p} arrived twice at barrier {id}"
        );
        self.barrier.mark_arrived(p);
        self.barrier.arrival_cycle[p] = self.procs[p].cycle;
        self.procs[p].blocked = true;
        self.procs[p].blocked_since = self.procs[p].cycle;

        if self.barrier.arrived_count == self.cfg.n_procs {
            // Release: slowest arrival plus a reduce + broadcast spanning
            // the network diameter (== the hypercube dimension for the
            // default layout).
            let slowest = *self.barrier.arrival_cycle.iter().max().unwrap();
            let fan = 2 * self.net.diameter() as u64
                * (self.cfg.network.hop_cycles + self.cfg.network.router_cycles);
            let release = slowest + fan;
            for q in 0..self.cfg.n_procs {
                let pr = &mut self.procs[q];
                pr.stats.sync_wait_cycles += release - pr.blocked_since;
                pr.cycle = release;
                pr.blocked = false;
                self.refresh_key(q);
            }
            self.barrier.current_id = None;
            self.barrier.reset_arrivals();
        }
    }

    fn handle_acquire(&mut self, p: usize, lock: u32) {
        let sync = self.cfg.sync_cycles;
        {
            let proc = &mut self.procs[p];
            proc.stats.sync_ops += 1;
            proc.cycle += sync;
        }
        let st = self.locks.entry(lock).or_default();
        if st.owner.is_none() {
            st.owner = Some(p);
        } else {
            assert_ne!(st.owner, Some(p), "processor {p} re-acquired lock {lock}");
            st.waiters.push_back(p);
            self.procs[p].blocked = true;
            self.procs[p].blocked_since = self.procs[p].cycle;
        }
    }

    fn handle_release(&mut self, p: usize, lock: u32) {
        let sync = self.cfg.sync_cycles;
        {
            let proc = &mut self.procs[p];
            proc.stats.sync_ops += 1;
            proc.cycle += sync;
        }
        let st = self
            .locks
            .get_mut(&lock)
            .unwrap_or_else(|| panic!("release of never-acquired lock {lock}"));
        assert_eq!(
            st.owner,
            Some(p),
            "processor {p} released lock {lock} it does not own"
        );
        if let Some(q) = st.waiters.pop_front() {
            st.owner = Some(q);
            let now = self.procs[p].cycle;
            let transfer = self.deliver_msg(p, q, false, now);
            let release_at = self.procs[p].cycle + transfer;
            let pr = &mut self.procs[q];
            let resume = release_at.max(pr.blocked_since);
            pr.stats.sync_wait_cycles += resume - pr.blocked_since;
            pr.cycle = resume;
            pr.blocked = false;
            self.refresh_key(q);
        } else {
            st.owner = None;
        }
    }

    fn finish_stats(&mut self) -> SystemStats {
        for pr in &mut self.procs {
            pr.sync_stats();
        }
        let stats = SystemStats {
            procs: self.procs.iter().map(|p| p.stats).collect(),
            directory: self.dir.stats(),
            network: self.net.stats(),
            memctrls: self.memctrls.iter().map(|m| m.stats()).collect(),
            faults: self.fault.stats(),
            reconfig: self.reconfig_stats,
            finish_cycle: self.procs.iter().map(|p| p.cycle).max().unwrap_or(0),
        };
        // Cold path: mirror the run's headline statistics into the
        // telemetry registry. `registry_mut` is `None` on the stub, so a
        // disabled build compiles this whole block away.
        if let Some(reg) = self.telem.registry_mut() {
            reg.counter_add("sim/events_executed", self.events_executed);
            reg.counter_add("sim/sched/runnable_at_finish", self.sched.runnable() as u64);
            if let Some(w) = &self.windows {
                let c = w.counters();
                reg.counter_add("sim/shard/windows", c.windows);
                reg.counter_add("sim/shard/barrier_stalls", c.barrier_stalls);
                reg.counter_add("sim/shard/gated_events", c.gated_events);
                reg.counter_add("sim/shard/lookahead_cycles", c.lookahead);
                if let Some(l) = self.sched.layout() {
                    reg.counter_add("sim/shard/shards", l.n_shards() as u64);
                }
            }
            stats.publish(reg);
            self.net.publish_links("sim/network", reg);
        }
        stats
    }

    /// Events executed so far (diagnostics).
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Minimum sampling-interval index over unfinished processors —
    /// the *global* interval boundary the run has fully passed. `u64::MAX`
    /// once every processor has finished.
    pub fn min_interval_index(&self) -> u64 {
        self.procs
            .iter()
            .filter(|pr| !pr.finished)
            .map(|pr| pr.interval_index())
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Run (batched) until every unfinished processor has completed at
    /// least `target` sampling intervals, i.e. until the global interval
    /// boundary `target` is reached. Returns true when the boundary was
    /// reached, false when the workload finished first. A `target` of 0
    /// returns immediately — the pre-run state *is* boundary 0.
    pub fn run_to_interval(&mut self, target: u64) -> bool {
        loop {
            if self.min_interval_index() >= target {
                return true;
            }
            if !self.step_batched() {
                return false;
            }
        }
    }

    /// Like [`System::run`] for a system that has already been stepped
    /// (e.g. via [`System::run_to_interval`] or after
    /// [`System::restore_state`]): drive to completion and return the final
    /// stats plus the observer.
    pub fn run_to_end(mut self) -> (SystemStats, O) {
        while self.step_batched() {}
        let stats = self.finish_stats();
        (stats, self.observer)
    }

    /// Capture the complete dynamic state of the machine. Combined with a
    /// fresh stream fast-forwarded by [`SystemState::fetched`] and a
    /// restored observer, [`System::restore_state`] resumes bit-identically.
    pub fn state_snapshot(&self) -> SystemState {
        let mut locks: Vec<LockSnap> = self
            .locks
            .iter()
            .map(|(&id, st)| LockSnap {
                id,
                owner: st.owner,
                waiters: st.waiters.iter().copied().collect(),
            })
            .collect();
        locks.sort_unstable_by_key(|l| l.id);
        SystemState {
            procs: self.procs.iter().map(|pr| pr.export_state()).collect(),
            directory: self.dir.export_state(),
            network: self.net.export_state(),
            memctrls: self.memctrls.iter().map(|m| m.export_state()).collect(),
            home: self.homes.export_state(),
            reconfig: ReconfigSnap {
                dvfs_num: self.dvfs_num.clone(),
                stats: self.reconfig_stats,
            },
            locks,
            barrier: BarrierSnap {
                current_id: self.barrier.current_id,
                arrived: self.barrier.arrived.clone(),
                arrival_cycle: self.barrier.arrival_cycle.clone(),
            },
            fault: self.fault.export_state(),
            pending: self.pending.clone(),
            events_executed: self.events_executed,
            fetched: self.fetched.clone(),
        }
    }

    /// Restore state captured by [`System::state_snapshot`]. The system
    /// must have been built from the same configuration, with a stream
    /// already fast-forwarded by `st.fetched[p]` calls to `next(p)` per
    /// processor and an observer restored to its snapshot-time state.
    /// Telemetry spans recorded before the snapshot are not replayed; the
    /// simulation itself (stats, observer stream) continues bit-identically.
    pub fn restore_state(&mut self, st: &SystemState) {
        assert_eq!(st.procs.len(), self.cfg.n_procs, "snapshot is for a different machine");
        for (pr, ps) in self.procs.iter_mut().zip(&st.procs) {
            pr.import_state(ps);
        }
        self.dir.import_state(&st.directory);
        self.net.import_state(&st.network);
        for (m, ms) in self.memctrls.iter_mut().zip(&st.memctrls) {
            m.import_state(ms);
        }
        self.homes.import_state(&st.home);
        if st.reconfig.dvfs_num.is_empty() {
            self.dvfs_num.iter_mut().for_each(|n| *n = DVFS_NOMINAL);
        } else {
            self.dvfs_num.copy_from_slice(&st.reconfig.dvfs_num);
        }
        self.reconfig_stats = st.reconfig.stats;
        self.locks.clear();
        for l in &st.locks {
            self.locks.insert(
                l.id,
                LockState { owner: l.owner, waiters: l.waiters.iter().copied().collect() },
            );
        }
        self.barrier.current_id = st.barrier.current_id;
        self.barrier.arrived.copy_from_slice(&st.barrier.arrived);
        self.barrier.arrived_count =
            st.barrier.arrived.iter().map(|w| w.count_ones() as usize).sum();
        self.barrier.arrival_cycle.copy_from_slice(&st.barrier.arrival_cycle);
        self.fault.import_state(&st.fault);
        self.pending.copy_from_slice(&st.pending);
        self.events_executed = st.events_executed;
        self.fetched.copy_from_slice(&st.fetched);
        // Rebuild the scheduler from the restored processor states.
        for p in 0..self.cfg.n_procs {
            self.refresh_key(p);
        }
    }
}

/// The reconfigurable-machine view of the system — what a phase-guided
/// adaptation actuator may touch at a sampling-interval boundary. Every
/// mutating method is inert at its default setting, so a run that never
/// reconfigures stays bit-identical to one without the adaptation layer.
impl<S: InstructionStream, O: SimObserver> Machine for System<S, O> {
    fn n_procs(&self) -> usize {
        self.cfg.n_procs
    }

    fn core_profile(&self, p: usize) -> crate::config::CoreConfig {
        self.procs[p].core_profile()
    }

    fn set_core_profile(&mut self, p: usize, profile: crate::config::CoreConfig) {
        if self.procs[p].core_profile() != profile {
            self.procs[p].set_core_profile(profile);
            self.reconfig_stats.core_switches += 1;
        }
    }

    fn dvfs_level(&self, p: usize) -> u64 {
        self.dvfs_num[p]
    }

    fn set_dvfs_level(&mut self, p: usize, num: u64) {
        assert!(
            (64..=1024).contains(&num),
            "DVFS numerator {num} outside the 0.25x–4x envelope"
        );
        if self.dvfs_num[p] != num {
            self.dvfs_num[p] = num;
            self.reconfig_stats.dvfs_epochs += 1;
        }
    }

    fn enable_touch_tracking(&mut self) {
        self.homes.enable_touch_tracking();
    }

    fn hot_pages(&self, k: usize) -> Vec<HotPage> {
        self.homes.hot_pages(k)
    }

    fn reset_touches(&mut self) {
        self.homes.reset_touches();
    }

    fn migrate_page(&mut self, page: u64, to: usize) -> bool {
        assert!(to < self.cfg.n_procs, "migration target out of range");
        if self.homes.page_home(page) == Some(to) {
            return false;
        }
        self.homes.set_page_home(page, to);
        self.reconfig_stats.migrations += 1;
        // TLB shootdown: every running processor stalls while the page
        // moves. Blocked processors resynchronize at their release point
        // and finished ones are past their last event; both are skipped.
        let stall = crate::reconfig::PAGE_MIGRATE_STALL_CYCLES;
        for p in 0..self.cfg.n_procs {
            if !self.procs[p].finished && !self.procs[p].blocked {
                self.procs[p].cycle += stall;
                self.reconfig_stats.migration_stall_cycles += stall;
                self.refresh_key(p);
            }
        }
        true
    }

    fn proc_mem_stall(&self, p: usize) -> u64 {
        self.procs[p].stats.mem_stall_cycles
    }

    fn reconfig_stats(&self) -> ReconfigStats {
        self.reconfig_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::explicit_addr;
    use crate::observer::NullObserver;

    /// A scripted stream: fixed event vectors per processor.
    struct Script {
        events: Vec<Vec<Event>>,
        pos: Vec<usize>,
    }

    impl Script {
        fn new(events: Vec<Vec<Event>>) -> Self {
            let n = events.len();
            Self { events, pos: vec![0; n] }
        }
    }

    impl InstructionStream for Script {
        fn n_procs(&self) -> usize {
            self.events.len()
        }
        fn next(&mut self, proc: usize) -> Event {
            let i = self.pos[proc];
            if i < self.events[proc].len() {
                self.pos[proc] += 1;
                self.events[proc][i]
            } else {
                Event::End
            }
        }
    }

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::with_interval_base(n, 1_000_000)
    }

    #[test]
    fn empty_streams_finish_immediately() {
        let sys = System::new(cfg(2), Script::new(vec![vec![], vec![]]), NullObserver);
        let (stats, _) = sys.run();
        assert_eq!(stats.finish_cycle, 0);
        assert_eq!(stats.total_insns(), 0);
    }

    #[test]
    fn single_proc_compute_only() {
        let ev = vec![
            Event::Block { bb: 1, insns: 60, taken: true },
            Event::Fp { ops: 40 },
        ];
        let sys = System::new(cfg(1), Script::new(vec![ev]), NullObserver);
        let (stats, _) = sys.run();
        assert_eq!(stats.total_insns(), 100);
        // 60/6 + 40/4 = 20 cycles, plus possible mispredict penalty.
        assert!(stats.finish_cycle >= 20 && stats.finish_cycle <= 20 + 14);
    }

    #[test]
    fn local_miss_then_hit() {
        let a = explicit_addr(0, 0x100);
        let ev = vec![
            Event::Mem { addr: a, write: false },
            Event::Mem { addr: a, write: false },
        ];
        let sys = System::new(cfg(1), Script::new(vec![ev]), NullObserver);
        let (stats, _) = sys.run();
        let p = &stats.procs[0];
        assert_eq!(p.mem_refs, 2);
        assert_eq!(p.l1_misses, 1);
        assert_eq!(p.l2_misses, 1);
        assert_eq!(p.local_home_misses, 1);
        assert!(p.mem_stall_cycles > 0);
    }

    #[test]
    fn remote_miss_costs_more_than_local() {
        let run = |home: usize| {
            let a = explicit_addr(home, 0x100);
            let ev0 = vec![Event::Mem { addr: a, write: false }];
            let sys = System::new(
                cfg(2),
                Script::new(vec![ev0, vec![]]),
                NullObserver,
            );
            let (stats, _) = sys.run();
            stats.procs[0].mem_stall_cycles
        };
        let local = run(0);
        let remote = run(1);
        assert!(remote > local, "remote {remote} should exceed local {local}");
    }

    #[test]
    fn coherence_write_invalidates_reader() {
        // P0 reads a block homed at 0; P1 then writes it; P0 reads again and
        // must miss (its copy was invalidated).
        let a = explicit_addr(0, 0x40);
        let ev0 = vec![
            Event::Mem { addr: a, write: false },
            Event::Barrier { id: 0 },
            Event::Barrier { id: 1 },
            Event::Mem { addr: a, write: false },
        ];
        let ev1 = vec![
            Event::Barrier { id: 0 },
            Event::Mem { addr: a, write: true },
            Event::Barrier { id: 1 },
        ];
        let sys = System::new(cfg(2), Script::new(vec![ev0, ev1]), NullObserver);
        let (stats, _) = sys.run();
        assert_eq!(stats.procs[0].l1_misses, 2, "second read must re-miss");
        assert_eq!(stats.directory.invalidations, 1);
        assert_eq!(stats.directory.owner_forwards, 1, "P1's write pulled the block from P0's E state");
    }

    #[test]
    fn barrier_aligns_cycles() {
        let ev0 = vec![
            Event::Block { bb: 1, insns: 6000, taken: true },
            Event::Barrier { id: 7 },
        ];
        let ev1 = vec![Event::Barrier { id: 7 }];
        let sys = System::new(cfg(2), Script::new(vec![ev0, ev1]), NullObserver);
        let (stats, _) = sys.run();
        assert_eq!(stats.procs[0].cycles, stats.procs[1].cycles);
        assert!(stats.procs[1].sync_wait_cycles >= 900, "fast proc waits");
    }

    #[test]
    #[should_panic(expected = "barrier mismatch")]
    fn mismatched_barrier_ids_panic() {
        let sys = System::new(
            cfg(2),
            Script::new(vec![vec![Event::Barrier { id: 1 }], vec![Event::Barrier { id: 2 }]]),
            NullObserver,
        );
        let _ = sys.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_barrier_partner_deadlocks() {
        let sys = System::new(
            cfg(2),
            Script::new(vec![vec![Event::Barrier { id: 0 }], vec![]]),
            NullObserver,
        );
        let _ = sys.run();
    }

    #[test]
    fn lock_serializes_critical_sections() {
        let cs = |n: u32| {
            vec![
                Event::Acquire { lock: 9 },
                Event::Block { bb: n, insns: 600, taken: true },
                Event::Release { lock: 9 },
            ]
        };
        let sys = System::new(cfg(2), Script::new(vec![cs(1), cs(2)]), NullObserver);
        let (stats, _) = sys.run();
        // One of the two must have waited for the other's critical section.
        let waited: u64 = stats.procs.iter().map(|p| p.sync_wait_cycles).sum();
        assert!(waited >= 100, "someone must wait, got {waited}");
    }

    #[test]
    #[should_panic(expected = "does not own")]
    fn release_without_ownership_panics() {
        let sys = System::new(
            cfg(2),
            Script::new(vec![
                vec![Event::Acquire { lock: 1 }],
                vec![Event::Release { lock: 1 }],
            ]),
            NullObserver,
        );
        let _ = sys.run();
    }

    #[test]
    fn intervals_fire_with_observer() {
        struct Counter {
            intervals: usize,
            blocks: usize,
            mems: usize,
        }
        impl SimObserver for Counter {
            fn on_block_commit(&mut self, _: usize, _: u32, _: u32) {
                self.blocks += 1;
            }
            fn on_mem_commit(&mut self, _: usize, _: usize, _: u64, _: bool) {
                self.mems += 1;
            }
            fn on_interval(&mut self, _: usize, s: IntervalStats) {
                assert!(s.insns >= 100);
                self.intervals += 1;
            }
        }
        // interval base 100 over 1 proc = 100 insns/interval.
        let mut evs = vec![];
        for i in 0..50 {
            evs.push(Event::Block { bb: i % 4, insns: 10, taken: true });
            evs.push(Event::Mem { addr: explicit_addr(0, (i as u64) * 32), write: false });
        }
        let sys = System::new(
            SystemConfig::with_interval_base(1, 100),
            Script::new(vec![evs]),
            Counter { intervals: 0, blocks: 0, mems: 0 },
        );
        let (_, obs) = sys.run();
        assert_eq!(obs.blocks, 50);
        assert_eq!(obs.mems, 50);
        // 50*10 + 50 = 550 insns -> 5 intervals of >=100.
        assert_eq!(obs.intervals, 5);
    }

    #[test]
    fn contention_accumulates_on_hot_home() {
        // 4 procs all stream distinct blocks homed at node 0.
        let mk = |p: usize| {
            (0..200u64)
                .map(|i| Event::Mem {
                    addr: explicit_addr(0, (p as u64 * 10_000 + i) * 32),
                    write: false,
                })
                .collect::<Vec<_>>()
        };
        let sys = System::new(
            cfg(4),
            Script::new((0..4).map(mk).collect()),
            NullObserver,
        );
        let (stats, _) = sys.run();
        let contention: u64 = stats.procs.iter().map(|p| p.contention_cycles).sum();
        assert!(contention > 0, "hot home must produce queueing delay");
        assert_eq!(stats.memctrls[0].requests, 800);
    }

    #[test]
    fn lock_waiters_are_served_fifo() {
        // P0 takes the lock and computes; P1 then P2 queue up (P1 arrives
        // earlier because P2 computes longer first). Hand-off must be FIFO.
        let ev0 = vec![
            Event::Acquire { lock: 3 },
            Event::Block { bb: 1, insns: 60_000, taken: true },
            Event::Release { lock: 3 },
        ];
        let ev1 = vec![
            Event::Block { bb: 2, insns: 600, taken: true },
            Event::Acquire { lock: 3 },
            Event::Block { bb: 2, insns: 60_000, taken: true },
            Event::Release { lock: 3 },
        ];
        let ev2 = vec![
            Event::Block { bb: 3, insns: 6_000, taken: true },
            Event::Acquire { lock: 3 },
            Event::Release { lock: 3 },
        ];
        let sys = System::new(cfg(4), Script::new(vec![ev0, ev1, ev2, vec![]]), NullObserver);
        let (stats, _) = sys.run();
        // P1 (first waiter) resumes before P2: P2's wait includes P1's
        // whole critical section.
        assert!(
            stats.procs[2].sync_wait_cycles > stats.procs[1].sync_wait_cycles,
            "second waiter must wait longer: {} vs {}",
            stats.procs[2].sync_wait_cycles,
            stats.procs[1].sync_wait_cycles
        );
    }

    #[test]
    fn interval_spanning_a_barrier_includes_the_wait() {
        struct Grab(Vec<(u64, u64)>);
        impl SimObserver for Grab {
            fn on_block_commit(&mut self, _: usize, _: u32, _: u32) {}
            fn on_mem_commit(&mut self, _: usize, _: usize, _: u64, _: bool) {}
            fn on_interval(&mut self, proc: usize, s: IntervalStats) {
                if proc == 0 {
                    self.0.push((s.insns, s.cycles));
                }
            }
        }
        // interval = 100 insns; P0 commits 60, waits at a barrier for the
        // slow P1, then commits 60 more -> its first interval spans the
        // barrier and must include the wait cycles.
        let ev0 = vec![
            Event::Block { bb: 1, insns: 60, taken: true },
            Event::Barrier { id: 0 },
            Event::Block { bb: 1, insns: 60, taken: true },
        ];
        let ev1 = vec![
            Event::Block { bb: 2, insns: 60_000, taken: true },
            Event::Barrier { id: 0 },
            Event::Block { bb: 2, insns: 60, taken: true },
        ];
        let sys = System::new(
            SystemConfig::with_interval_base(2, 200),
            Script::new(vec![ev0, ev1]),
            Grab(Vec::new()),
        );
        let (_, grab) = sys.run();
        assert_eq!(grab.0.len(), 1);
        let (insns, cycles) = grab.0[0];
        assert_eq!(insns, 120);
        assert!(cycles > 10_000 / 6, "wait cycles must be charged, got {cycles}");
    }

    #[test]
    fn events_after_end_are_never_requested() {
        // Script returns End forever once exhausted; the system must not
        // keep polling a finished processor.
        struct CountingScript {
            inner: Script,
            polls_after_end: std::cell::Cell<u32>,
            ended: Vec<bool>,
        }
        impl InstructionStream for CountingScript {
            fn n_procs(&self) -> usize {
                self.inner.n_procs()
            }
            fn next(&mut self, proc: usize) -> Event {
                if self.ended[proc] {
                    self.polls_after_end.set(self.polls_after_end.get() + 1);
                }
                let e = self.inner.next(proc);
                if e == Event::End {
                    self.ended[proc] = true;
                }
                e
            }
        }
        let script = CountingScript {
            inner: Script::new(vec![
                vec![Event::Block { bb: 1, insns: 10, taken: true }],
                vec![Event::Block { bb: 2, insns: 10_000, taken: true }],
            ]),
            polls_after_end: std::cell::Cell::new(0),
            ended: vec![false; 2],
        };
        let sys = System::new(cfg(2), script, NullObserver);
        let (stats, _) = sys.run();
        assert_eq!(stats.total_insns(), 10_010);
    }

    #[test]
    fn batched_run_matches_unbatched_reference() {
        // Randomized mixed workloads (compute runs, memory, locks,
        // barriers) with short sampling intervals: the batched run() and
        // the one-event-at-a-time reference must produce identical final
        // stats and identical per-processor observer streams.
        #[derive(Clone, PartialEq, Debug, Default)]
        struct Log {
            blocks: Vec<(u32, u32)>,
            mems: Vec<(usize, u64, bool)>,
            intervals: Vec<(u64, u64, u64)>,
        }
        struct Recorder(Vec<Log>);
        impl SimObserver for Recorder {
            fn on_block_commit(&mut self, p: usize, bb: u32, insns: u32) {
                self.0[p].blocks.push((bb, insns));
            }
            fn on_mem_commit(&mut self, p: usize, home: usize, addr: u64, write: bool) {
                self.0[p].mems.push((home, addr, write));
            }
            fn on_interval(&mut self, p: usize, s: IntervalStats) {
                self.0[p].intervals.push((s.index, s.insns, s.cycles));
            }
        }

        let n = 4usize;
        let mk_events = |seed: u64| -> Vec<Vec<Event>> {
            (0..n)
                .map(|p| {
                    let mut x = seed ^ ((p as u64 + 1) << 32);
                    let mut rnd = move || {
                        x = crate::util::splitmix64(x);
                        x
                    };
                    let mut evs = Vec::new();
                    for round in 0..6u32 {
                        for _ in 0..(rnd() % 40 + 10) {
                            match rnd() % 8 {
                                0 => evs.push(Event::Mem {
                                    addr: explicit_addr(
                                        (rnd() % n as u64) as usize,
                                        (rnd() % 4096) * 32,
                                    ),
                                    write: rnd() % 3 == 0,
                                }),
                                1 => evs.push(Event::Fp { ops: (rnd() % 12 + 1) as u32 }),
                                _ => evs.push(Event::Block {
                                    bb: (rnd() % 19) as u32,
                                    insns: (rnd() % 30 + 4) as u32,
                                    taken: rnd() % 2 == 0,
                                }),
                            }
                        }
                        let lock = (rnd() % 3) as u32;
                        evs.push(Event::Acquire { lock });
                        evs.push(Event::Block {
                            bb: 99,
                            insns: (rnd() % 50 + 1) as u32,
                            taken: true,
                        });
                        evs.push(Event::Release { lock });
                        evs.push(Event::Barrier { id: round });
                    }
                    evs
                })
                .collect()
        };

        for seed in [1u64, 42, 0xdead_beef] {
            let cfg = SystemConfig::with_interval_base(n, 400); // interval = 100
            let recorder = || Recorder(vec![Log::default(); n]);
            let (stats_b, obs_b) =
                System::new(cfg.clone(), Script::new(mk_events(seed)), recorder()).run();
            let (stats_s, obs_s) =
                System::new(cfg, Script::new(mk_events(seed)), recorder()).run_unbatched();
            assert_eq!(stats_b, stats_s, "stats differ for seed {seed}");
            assert_eq!(obs_b.0, obs_s.0, "observer streams differ for seed {seed}");
            assert!(
                obs_b.0.iter().all(|l| !l.intervals.is_empty()),
                "test must exercise interval completion (seed {seed})"
            );
        }
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        #[derive(Clone, PartialEq, Debug, Default)]
        struct Log {
            blocks: Vec<(u32, u32)>,
            mems: Vec<(usize, u64, bool)>,
            intervals: Vec<(u64, u64, u64)>,
        }
        struct Rec(Vec<Log>);
        impl SimObserver for Rec {
            fn on_block_commit(&mut self, p: usize, bb: u32, insns: u32) {
                self.0[p].blocks.push((bb, insns));
            }
            fn on_mem_commit(&mut self, p: usize, home: usize, addr: u64, write: bool) {
                self.0[p].mems.push((home, addr, write));
            }
            fn on_interval(&mut self, p: usize, s: IntervalStats) {
                self.0[p].intervals.push((s.index, s.insns, s.cycles));
            }
        }

        let n = 4usize;
        let mk_events = |seed: u64| -> Vec<Vec<Event>> {
            (0..n)
                .map(|p| {
                    let mut x = seed ^ ((p as u64 + 1) << 32);
                    let mut rnd = move || {
                        x = crate::util::splitmix64(x);
                        x
                    };
                    let mut evs = Vec::new();
                    for round in 0..8u32 {
                        for _ in 0..(rnd() % 60 + 20) {
                            match rnd() % 6 {
                                0 => evs.push(Event::Mem {
                                    addr: explicit_addr(
                                        (rnd() % n as u64) as usize,
                                        (rnd() % 2048) * 32,
                                    ),
                                    write: rnd() % 3 == 0,
                                }),
                                1 => evs.push(Event::Fp { ops: (rnd() % 9 + 1) as u32 }),
                                _ => evs.push(Event::Block {
                                    bb: (rnd() % 23) as u32,
                                    insns: (rnd() % 25 + 4) as u32,
                                    taken: rnd() % 2 == 0,
                                }),
                            }
                        }
                        let lock = (rnd() % 2) as u32;
                        evs.push(Event::Acquire { lock });
                        evs.push(Event::Block { bb: 77, insns: (rnd() % 40 + 1) as u32, taken: true });
                        evs.push(Event::Release { lock });
                        evs.push(Event::Barrier { id: round });
                    }
                    evs
                })
                .collect()
        };

        for plan in [
            crate::config::FaultPlan::none(),
            crate::config::FaultPlan::mixed(11, 0.05),
        ] {
            for seed in [3u64, 0xfeed] {
                let mut cfg = SystemConfig::with_interval_base(n, 400); // interval = 100
                cfg.fault = plan;
                let recorder = || Rec(vec![Log::default(); n]);

                // Golden: run straight through.
                let (stats_a, obs_a) =
                    System::new(cfg.clone(), Script::new(mk_events(seed)), recorder()).run();

                // Checkpointed: run to a global interval boundary, snapshot.
                let mut sys =
                    System::new(cfg.clone(), Script::new(mk_events(seed)), recorder());
                assert!(sys.run_to_interval(2), "workload must reach boundary 2");
                assert!(sys.min_interval_index() >= 2);
                let snap = sys.state_snapshot();
                let obs_at_snap = sys.observer().0.clone();

                // The snapshotted machine itself must continue unperturbed.
                let (stats_c, obs_c) = sys.run_to_end();
                assert_eq!(stats_a, stats_c, "snapshot must not perturb (seed {seed})");
                assert_eq!(obs_a.0, obs_c.0);

                // A fresh machine + fast-forwarded stream + restored
                // observer must finish bit-identically.
                let mut stream = Script::new(mk_events(seed));
                for p in 0..n {
                    for _ in 0..snap.fetched[p] {
                        let _ = stream.next(p);
                    }
                }
                let mut restored = System::new(cfg, stream, Rec(obs_at_snap));
                restored.restore_state(&snap);
                let (stats_b, obs_b) = restored.run_to_end();
                assert_eq!(stats_a, stats_b, "restored run diverged (seed {seed})");
                assert_eq!(obs_a.0, obs_b.0, "observer streams diverged (seed {seed})");
            }
        }
    }

    #[test]
    fn state_snapshot_roundtrips_through_equality() {
        // snapshot -> restore into a twin -> snapshot again must be equal,
        // including mid-flight pending events and lock/barrier state.
        let a = explicit_addr(0, 0x40);
        let evs = |_p: usize| {
            vec![
                Event::Block { bb: 1, insns: 30, taken: true },
                Event::Mem { addr: a, write: true },
                Event::Block { bb: 2, insns: 30, taken: false },
            ]
        };
        let mut sys = System::new(
            SystemConfig::with_interval_base(2, 100),
            Script::new(vec![evs(0), evs(1)]),
            NullObserver,
        );
        for _ in 0..3 {
            sys.step_batched();
        }
        let snap = sys.state_snapshot();
        let mut stream = Script::new(vec![evs(0), evs(1)]);
        for p in 0..2 {
            for _ in 0..snap.fetched[p] {
                let _ = stream.next(p);
            }
        }
        let mut twin = System::new(
            SystemConfig::with_interval_base(2, 100),
            stream,
            NullObserver,
        );
        twin.restore_state(&snap);
        assert_eq!(twin.state_snapshot(), snap);
        assert_eq!(twin.events_executed(), sys.events_executed());
    }

    /// Shared workload for the telemetry tests: enough misses and interval
    /// completions on both processors to populate every track.
    fn telemetry_workload() -> System<Script, NullObserver> {
        let mk = |p: usize| {
            (0..300u64)
                .flat_map(|i| {
                    [
                        Event::Block { bb: (i % 5) as u32, insns: 20, taken: i % 2 == 0 },
                        Event::Mem {
                            addr: explicit_addr((i % 2) as usize, (p as u64 * 8192 + i) * 32),
                            write: i % 4 == 0,
                        },
                    ]
                })
                .collect::<Vec<_>>()
        };
        System::new(
            SystemConfig::with_interval_base(2, 2000),
            Script::new(vec![mk(0), mk(1)]),
            NullObserver,
        )
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn telemetry_disabled_snapshot_is_empty() {
        let (stats, _, snap) = telemetry_workload().run_telemetry();
        assert!(stats.total_insns() > 0);
        assert!(!snap.enabled);
        assert!(snap.metrics.is_empty());
        assert!(snap.tracks.is_empty());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_spans_tile_each_track_and_metrics_mirror_stats() {
        let (stats, _, snap) = telemetry_workload().run_telemetry();
        assert!(snap.enabled);
        // 2 processors -> 2 coherence tracks + 2 interval tracks.
        assert_eq!(snap.tracks.len(), 4);
        assert_eq!(snap.tracks[0].name, "node0 coherence");
        assert_eq!(snap.tracks[3].name, "node1 intervals");
        for t in &snap.tracks {
            assert!(!t.spans.is_empty(), "track {} must have spans", t.name);
            // Spans on one track advance with the node's clock: each starts
            // at or after the previous one's end.
            for w in t.spans.windows(2) {
                assert!(
                    w[1].ts >= w[0].ts + w[0].dur,
                    "overlap on {}: {:?} then {:?}",
                    t.name,
                    w[0],
                    w[1]
                );
            }
        }
        // One coherence span per L2 miss (ring capacity not hit here).
        let misses: u64 = stats.procs.iter().map(|p| p.l2_misses).sum();
        let coherence_spans: u64 =
            snap.tracks[..2].iter().map(|t| t.spans.len() as u64).sum();
        assert_eq!(coherence_spans, misses);
        // One interval span per completed interval.
        let intervals: u64 = stats.procs.iter().map(|p| p.intervals).sum();
        let interval_spans: u64 =
            snap.tracks[2..].iter().map(|t| t.spans.len() as u64).sum();
        assert_eq!(interval_spans, intervals);
        // The registry mirrors the final stats.
        let get = |name: &str| {
            snap.metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .clone()
        };
        assert_eq!(
            get("sim/procs/l2_misses").value,
            dsm_telemetry::MetricValue::Counter(misses)
        );
        match get("sim/coherence/stall_cycles").value {
            dsm_telemetry::MetricValue::Histogram { count, .. } => assert_eq!(count, misses),
            v => panic!("expected histogram, got {v:?}"),
        }
        match get("sim/finish_cycle").value {
            dsm_telemetry::MetricValue::Gauge(g) => assert_eq!(g, stats.finish_cycle as f64),
            v => panic!("expected gauge, got {v:?}"),
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_feature_does_not_change_simulation() {
        // The recorder is write-only: stats with the feature on must equal
        // the golden run the default build produces.
        let (a, _) = telemetry_workload().run();
        let (b, _, _) = telemetry_workload().run_telemetry();
        assert_eq!(a, b);
    }

    #[test]
    fn run_is_deterministic() {
        let mk = || {
            let evs: Vec<Vec<Event>> = (0..4)
                .map(|p: usize| {
                    (0..100u64)
                        .flat_map(|i| {
                            [
                                Event::Block { bb: (i % 7) as u32, insns: 12, taken: i % 3 != 0 },
                                Event::Mem {
                                    addr: explicit_addr((i % 4) as usize, (p as u64 * 64 + i) * 32),
                                    write: i % 5 == 0,
                                },
                            ]
                        })
                        .collect()
                })
                .collect();
            let sys = System::new(cfg(4), Script::new(evs), NullObserver);
            sys.run().0
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
    }
}
