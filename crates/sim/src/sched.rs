//! Indexed min-scheduler for the global event loop.
//!
//! A tournament (winner) tree over one `u64` key per processor. The system
//! keeps each runnable processor's key equal to its current cycle and parks
//! finished/blocked processors at `u64::MAX`; the root then names the
//! processor the deterministic scheduler must run next. Ties resolve to the
//! *left* subtree at every internal node, which — with leaves stored in id
//! order — reproduces exactly the `(cycle, id)` order of the naive
//! `min_by_key` scan this structure replaces: smallest cycle first, lowest
//! id among equals.
//!
//! `set_key` costs O(log n) and `min` is O(1), versus the O(n) scan per
//! event of the old loop; at 32–64 nodes the win is modest per call but the
//! call sits on the hottest path in the repo.

/// Tournament tree of `u64` keys with deterministic left-wins tie-break.
#[derive(Debug, Clone)]
pub struct MinTree {
    n: usize,
    /// Leaf count, power of two (≥ `n`); unused leaves hold `u64::MAX`.
    size: usize,
    keys: Vec<u64>,
    /// Winner leaf index per tree node; `win[1]` is the overall winner.
    /// Leaves live at `win[size..2 * size]` and hold their own index.
    win: Vec<u32>,
}

impl MinTree {
    /// Build a tree of `n` participants, all starting at key 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "scheduler needs at least one processor");
        assert!(n <= u32::MAX as usize);
        let size = n.next_power_of_two();
        let mut keys = vec![u64::MAX; size];
        for k in keys[..n].iter_mut() {
            *k = 0;
        }
        let mut win = vec![0u32; 2 * size];
        for (i, w) in win[size..].iter_mut().enumerate() {
            *w = i as u32;
        }
        for k in (1..size).rev() {
            let (l, r) = (win[2 * k], win[2 * k + 1]);
            win[k] = if keys[l as usize] <= keys[r as usize] { l } else { r };
        }
        Self { n, size, keys, win }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current key of participant `i`.
    #[inline]
    pub fn key(&self, i: usize) -> u64 {
        self.keys[i]
    }

    /// Participants whose key is not the parked `u64::MAX` sentinel — i.e.
    /// still runnable. O(n); telemetry/diagnostics only (0 at clean finish).
    pub fn runnable(&self) -> usize {
        self.keys[..self.n].iter().filter(|&&k| k != u64::MAX).count()
    }

    /// Update participant `i`'s key and replay its path to the root.
    ///
    /// The replay stops early once a node's winner is an *unchanged*
    /// participant equal to the stored winner: only `i`'s key moved, so
    /// every ancestor comparison then sees the same (key, leaf) pair and
    /// cannot change. Updates to a processor that was not the running
    /// minimum (lock grants, barrier releases, memory wakeups) usually
    /// terminate after one level.
    #[inline]
    pub fn set_key(&mut self, i: usize, key: u64) {
        debug_assert!(i < self.n);
        if self.keys[i] == key {
            return;
        }
        self.keys[i] = key;
        let leaf = i as u32;
        let mut k = (self.size + i) >> 1;
        while k >= 1 {
            let (l, r) = (self.win[2 * k], self.win[2 * k + 1]);
            let w = if self.keys[l as usize] <= self.keys[r as usize] { l } else { r };
            if self.win[k] == w && w != leaf {
                return;
            }
            self.win[k] = w;
            k >>= 1;
        }
    }

    /// The participant with the smallest `(key, id)`, or `None` when every
    /// key is `u64::MAX` (no runnable processor).
    #[inline]
    pub fn min(&self) -> Option<usize> {
        let w = self.win[1] as usize;
        if self.keys[w] == u64::MAX {
            None
        } else {
            Some(w)
        }
    }

    /// The smallest key (`u64::MAX` when every participant is parked).
    /// O(1); the sharded scheduler's top tournament reads shard minima
    /// through this on every update.
    #[inline]
    pub fn min_key(&self) -> u64 {
        self.keys[self.win[1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::splitmix64;

    /// Reference implementation: the naive scan the tree replaces.
    fn naive_min(keys: &[u64]) -> Option<usize> {
        keys.iter()
            .enumerate()
            .filter(|(_, &k)| k != u64::MAX)
            .min_by_key(|(i, &k)| (k, *i))
            .map(|(i, _)| i)
    }

    #[test]
    fn fresh_tree_picks_id_zero() {
        let t = MinTree::new(5);
        assert_eq!(t.min(), Some(0));
    }

    #[test]
    fn single_participant() {
        let mut t = MinTree::new(1);
        assert_eq!(t.min(), Some(0));
        t.set_key(0, u64::MAX);
        assert_eq!(t.min(), None);
        t.set_key(0, 7);
        assert_eq!(t.min(), Some(0));
    }

    #[test]
    fn ties_break_to_lowest_id() {
        let mut t = MinTree::new(6);
        for i in 0..6 {
            t.set_key(i, 100);
        }
        assert_eq!(t.min(), Some(0));
        t.set_key(0, 101);
        assert_eq!(t.min(), Some(1));
        t.set_key(3, 100); // no-op value change, still a tie at 100
        assert_eq!(t.min(), Some(1));
        t.set_key(1, u64::MAX);
        assert_eq!(t.min(), Some(2));
    }

    #[test]
    fn all_parked_yields_none() {
        let mut t = MinTree::new(3);
        for i in 0..3 {
            t.set_key(i, u64::MAX);
        }
        assert_eq!(t.min(), None);
    }

    #[test]
    fn non_power_of_two_sizes_ignore_padding_leaves() {
        for n in [1usize, 2, 3, 5, 7, 9, 31, 33] {
            let mut t = MinTree::new(n);
            for i in 0..n {
                t.set_key(i, (i as u64 + 3) * 10);
            }
            assert_eq!(t.min(), Some(0), "n = {n}");
            t.set_key(0, u64::MAX);
            let expect = if n == 1 { None } else { Some(1) };
            assert_eq!(t.min(), expect, "n = {n}");
        }
    }

    #[test]
    fn matches_naive_scan_on_random_update_sequences() {
        // Property test against the reference scan: thousands of random
        // key updates (including MAX-parking and ties) across varied sizes.
        let mut seed = 0x5eed_0001u64;
        let mut rng = move || {
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(seed)
        };
        for n in [1usize, 2, 3, 4, 6, 8, 13, 32, 64, 100] {
            let mut t = MinTree::new(n);
            let mut keys = vec![0u64; n];
            for step in 0..2000 {
                let i = (rng() % n as u64) as usize;
                // Small key range forces frequent ties; sometimes park.
                let key = match rng() % 8 {
                    0 => u64::MAX,
                    _ => rng() % 16,
                };
                t.set_key(i, key);
                keys[i] = key;
                assert_eq!(
                    t.min(),
                    naive_min(&keys),
                    "n = {n}, step = {step}, keys = {keys:?}"
                );
            }
        }
    }
}
