//! Per-node processor model: private caches, branch predictor, and a
//! deterministic cycle-accounting pipeline.
//!
//! The core commits `commit_width` simple instructions per cycle, FP bursts
//! at FPU throughput, charges the gshare mispredict penalty per wrong
//! branch, and exposes a configurable fraction of every memory-stall
//! (the MLP discount — an out-of-order window overlaps part of each miss).
//! Fractional commit cycles are carried exactly in integer arithmetic, so
//! runs are bit-reproducible.

use crate::branch::Gshare;
use crate::cache::Cache;
use crate::config::{CoreConfig, SystemConfig};
use crate::stats::ProcStats;

/// Execution state of one processor.
pub struct Processor {
    pub id: usize,
    /// Absolute cycle this processor has advanced to (global timebase).
    pub cycle: u64,
    pub l1: Cache,
    pub l2: Cache,
    pub gshare: Gshare,
    pub stats: ProcStats,
    core: CoreConfig,
    /// Instructions not yet converted to whole commit cycles.
    commit_carry: u64,
    /// FP operations not yet converted to whole FPU cycles.
    fp_carry: u64,
    // --- sampling-interval bookkeeping ---
    interval_len: u64,
    interval_progress: u64,
    interval_start_cycle: u64,
    interval_index: u64,
    /// True once the instruction stream returned `End`.
    pub finished: bool,
    /// True while blocked at a barrier or lock.
    pub blocked: bool,
    /// Cycle at which the processor became blocked (for wait accounting).
    pub blocked_since: u64,
}

impl Processor {
    pub fn new(id: usize, cfg: &SystemConfig) -> Self {
        Self {
            id,
            cycle: 0,
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            gshare: Gshare::new(cfg.core.gshare_entries),
            stats: ProcStats::default(),
            core: cfg.core,
            commit_carry: 0,
            fp_carry: 0,
            interval_len: cfg.interval_len(),
            interval_progress: 0,
            interval_start_cycle: 0,
            interval_index: 0,
            finished: false,
            blocked: false,
            blocked_since: 0,
        }
    }

    /// Commit `n` simple instructions; advances the cycle by `n / width`
    /// with an exact carry. The division is skipped while the carry stays
    /// under the commit width — the common case for the single-instruction
    /// commits of the memory path.
    #[inline]
    pub fn commit_insns(&mut self, n: u64) {
        self.stats.insns += n;
        self.commit_carry += n;
        let width = self.core.commit_width as u64;
        if self.commit_carry >= width {
            let whole = self.commit_carry / width;
            self.commit_carry -= whole * width;
            self.cycle += whole;
        }
    }

    /// Commit `n` floating-point operations at FPU throughput.
    #[inline]
    pub fn commit_fp(&mut self, n: u64) {
        self.stats.insns += n;
        self.fp_carry += n;
        let units = self.core.fpu_units as u64;
        if self.fp_carry >= units {
            let whole = self.fp_carry / units;
            self.fp_carry -= whole * units;
            self.cycle += whole;
        }
    }

    /// Resolve the branch terminating a basic block; charges the mispredict
    /// penalty when wrong.
    #[inline]
    pub fn resolve_branch(&mut self, bb: u32, taken: bool) {
        self.stats.branches += 1;
        if !self.gshare.predict_and_update(bb as u64, taken) {
            self.stats.mispredicts += 1;
            self.cycle += self.core.mispredict_penalty;
        }
    }

    /// Charge an exposed memory stall of `raw` cycles (the MLP discount is
    /// applied here); returns the exposed stall actually paid, which is
    /// exactly how far `cycle` advanced — telemetry spans use it so
    /// per-node spans tile the node's own timeline without overlap.
    #[inline]
    pub fn charge_mem_stall(&mut self, raw: u64) -> u64 {
        let exposed = self.core.exposed_stall(raw);
        self.cycle += exposed;
        self.stats.mem_stall_cycles += exposed;
        exposed
    }

    /// Advance interval progress by `insns` committed non-sync instructions;
    /// returns `Some((index, insns, cycles))` when a sampling interval just
    /// completed.
    #[inline]
    pub fn advance_interval(&mut self, insns: u64) -> Option<(u64, u64, u64)> {
        self.interval_progress += insns;
        if self.interval_progress < self.interval_len {
            return None;
        }
        let done_insns = self.interval_progress;
        let cycles = self.cycle - self.interval_start_cycle;
        let index = self.interval_index;
        self.interval_progress = 0;
        self.interval_start_cycle = self.cycle;
        self.interval_index += 1;
        self.stats.intervals += 1;
        Some((index, done_insns, cycles))
    }

    /// Would committing `insns` more instructions complete the current
    /// sampling interval? Used by the batched scheduler to decide whether a
    /// compute event may run outside the global event order.
    #[inline]
    pub fn interval_would_complete(&self, insns: u64) -> bool {
        self.interval_progress + insns >= self.interval_len
    }

    /// Advance interval progress without checking for completion — only
    /// valid when [`Processor::interval_would_complete`] returned false for
    /// the same `insns`.
    #[inline]
    pub fn advance_interval_partial(&mut self, insns: u64) {
        debug_assert!(self.interval_progress + insns < self.interval_len);
        self.interval_progress += insns;
    }

    /// Reset interval bookkeeping (multiprogramming context switch).
    pub fn reset_interval(&mut self) {
        self.interval_progress = 0;
        self.interval_start_cycle = self.cycle;
    }

    pub fn interval_index(&self) -> u64 {
        self.interval_index
    }

    /// Mirror the final cycle count into the stats snapshot.
    pub fn sync_stats(&mut self) {
        self.stats.cycles = self.cycle;
    }

    /// Export the full dynamic state (cycle accounting, interval
    /// bookkeeping, caches, predictor, stats) for checkpointing.
    pub fn export_state(&self) -> crate::state::ProcessorState {
        crate::state::ProcessorState {
            cycle: self.cycle,
            commit_carry: self.commit_carry,
            fp_carry: self.fp_carry,
            interval_progress: self.interval_progress,
            interval_start_cycle: self.interval_start_cycle,
            interval_index: self.interval_index,
            finished: self.finished,
            blocked: self.blocked,
            blocked_since: self.blocked_since,
            stats: self.stats,
            l1: self.l1.export_state(),
            l2: self.l2.export_state(),
            gshare: self.gshare.export_state(),
            core: self.core,
        }
    }

    /// Restore state captured by [`Processor::export_state`] on a processor
    /// built from the same configuration.
    pub fn import_state(&mut self, st: &crate::state::ProcessorState) {
        self.cycle = st.cycle;
        self.commit_carry = st.commit_carry;
        self.fp_carry = st.fp_carry;
        self.interval_progress = st.interval_progress;
        self.interval_start_cycle = st.interval_start_cycle;
        self.interval_index = st.interval_index;
        self.finished = st.finished;
        self.blocked = st.blocked;
        self.blocked_since = st.blocked_since;
        self.stats = st.stats;
        self.l1.import_state(&st.l1);
        self.l2.import_state(&st.l2);
        self.gshare.import_state(&st.gshare);
        self.core = st.core;
    }

    /// The cycle-cost profile in force.
    pub fn core_profile(&self) -> CoreConfig {
        self.core
    }

    /// Swap the cycle-cost profile (heterogeneous phase-to-core mapping).
    /// The gshare table is physical hardware whose geometry cannot change
    /// mid-run, so the new profile must keep it.
    pub fn set_core_profile(&mut self, core: CoreConfig) {
        assert_eq!(
            core.gshare_entries, self.core.gshare_entries,
            "core profile swap cannot resize the gshare table"
        );
        self.core = core;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> Processor {
        Processor::new(0, &SystemConfig::paper(2))
    }

    #[test]
    fn commit_width_throughput() {
        let mut p = proc();
        p.commit_insns(6);
        assert_eq!(p.cycle, 1);
        p.commit_insns(3);
        assert_eq!(p.cycle, 1); // carry = 3
        p.commit_insns(3);
        assert_eq!(p.cycle, 2);
        assert_eq!(p.stats.insns, 12);
    }

    #[test]
    fn commit_carry_is_exact_over_many_events() {
        let mut p = proc();
        for _ in 0..1000 {
            p.commit_insns(1);
        }
        // 1000 insns at width 6 = 166.67 cycles -> exactly 166 whole cycles.
        assert_eq!(p.cycle, 166);
    }

    #[test]
    fn fp_throughput_uses_fpu_count() {
        let mut p = proc();
        p.commit_fp(8); // 4 FPUs -> 2 cycles
        assert_eq!(p.cycle, 2);
        p.commit_fp(2);
        assert_eq!(p.cycle, 2); // carry
        p.commit_fp(2);
        assert_eq!(p.cycle, 3);
    }

    #[test]
    fn mispredict_charges_penalty() {
        let mut p = proc();
        // Train taken, then surprise with not-taken.
        for _ in 0..16 {
            p.resolve_branch(0x10, true);
        }
        let c = p.cycle;
        p.resolve_branch(0x10, false);
        assert_eq!(p.cycle, c + 14);
        assert!(p.stats.mispredicts >= 1);
    }

    #[test]
    fn mem_stall_is_discounted() {
        let mut p = proc();
        p.charge_mem_stall(100);
        assert_eq!(p.cycle, 100 * 154 / 256);
        assert_eq!(p.stats.mem_stall_cycles, p.cycle);
    }

    #[test]
    fn interval_fires_at_configured_length() {
        let mut p = Processor::new(0, &SystemConfig::with_interval_base(2, 200));
        // interval_len = 100
        assert!(p.advance_interval(60).is_none());
        p.cycle = 500;
        let (idx, insns, cycles) = p.advance_interval(50).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(insns, 110); // overshoot is attributed to this interval
        assert_eq!(cycles, 500);
        // Next interval starts fresh.
        assert!(p.advance_interval(99).is_none());
        p.cycle = 600;
        let (idx, insns, cycles) = p.advance_interval(1).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(insns, 100);
        assert_eq!(cycles, 100);
        assert_eq!(p.interval_index(), 2);
    }

    #[test]
    fn reset_interval_discards_progress() {
        let mut p = Processor::new(0, &SystemConfig::with_interval_base(2, 200));
        p.advance_interval(80);
        p.reset_interval();
        assert!(p.advance_interval(80).is_none()); // progress was discarded
        assert!(p.advance_interval(20).is_some());
    }
}
