//! Physical addresses, block/page arithmetic, and home-node mapping.
//!
//! The DSM hardware assigns every memory block a *home* node whose directory
//! and memory controller service misses for that block. The home of the data
//! touched by each committed access is exactly what the paper's frequency
//! matrix `F` counts, so this mapping is load-bearing for the whole study.

use crate::config::DistributionPolicy;
use crate::util::FxHashMap;

/// A physical address in the simulated global address space.
pub type Addr = u64;
/// A node identifier (0-based).
pub type NodeId = usize;

/// log2 of the coherence-block size (32 B, per Table I).
pub const BLOCK_SHIFT: u32 = 5;
/// Coherence-block size in bytes.
pub const BLOCK_BYTES: u64 = 1 << BLOCK_SHIFT;
/// log2 of the page size used by page-granularity placement policies.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;

/// Bit position where [`DistributionPolicy::Explicit`] addresses encode the
/// home node. Everything below is the within-node offset.
pub const HOME_SHIFT: u32 = 40;

/// Build an explicit-placement address: the data lives at `offset` within
/// the region homed at `home`.
///
/// The structural workload models know the owner of every data structure
/// (e.g. the 2-D scatter owner of an LU block), so they place data
/// explicitly — this mirrors SPLASH-2's round-robin/first-touch allocation
/// intent without modelling an OS.
#[inline]
pub fn explicit_addr(home: NodeId, offset: u64) -> Addr {
    debug_assert!(offset < (1 << HOME_SHIFT));
    ((home as u64) << HOME_SHIFT) | offset
}

/// The block-aligned address containing `addr`.
#[inline]
pub fn block_of(addr: Addr) -> Addr {
    addr >> BLOCK_SHIFT << BLOCK_SHIFT
}

/// Block index (address / 32).
#[inline]
pub fn block_index(addr: Addr) -> u64 {
    addr >> BLOCK_SHIFT
}

/// Maps addresses to home nodes under a [`DistributionPolicy`].
///
/// `FirstTouch` is stateful (the OS page table, in effect), so homes are
/// resolved through this struct rather than a free function.
///
/// Two optional layers sit on top of the base policy for the phase-guided
/// adaptation subsystem:
///
/// * **migration overrides** — a page re-homed by
///   [`HomeMap::set_page_home`] resolves to its override before the base
///   policy, for every policy (page-granular, so a migrated page can never
///   alias blocks across homes);
/// * **touch tracking** — when enabled, per-(page, node) L2-miss counters
///   feed [`HomeMap::hot_pages`]. Off by default and cost-free when off.
///
/// Both layers are empty by default; resolution is then exactly the base
/// policy (the no-op adaptation arm stays bit-identical).
#[derive(Debug, Clone)]
pub struct HomeMap {
    policy: DistributionPolicy,
    n_nodes: usize,
    first_touch: FxHashMap<u64, NodeId>,
    /// Page → home overrides installed by migration; consulted first.
    overrides: FxHashMap<u64, NodeId>,
    /// Per-page, per-node L2-miss counts in the current tracking window.
    touches: FxHashMap<u64, Vec<u64>>,
    track: bool,
}

impl HomeMap {
    pub fn new(policy: DistributionPolicy, n_nodes: usize) -> Self {
        assert!(n_nodes > 0);
        Self {
            policy,
            n_nodes,
            first_touch: FxHashMap::default(),
            overrides: FxHashMap::default(),
            touches: FxHashMap::default(),
            track: false,
        }
    }

    pub fn policy(&self) -> DistributionPolicy {
        self.policy
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Resolve the home node of `addr`; `toucher` is the accessing processor
    /// (used only by first-touch).
    #[inline]
    pub fn home(&mut self, addr: Addr, toucher: NodeId) -> NodeId {
        if !self.overrides.is_empty() {
            if let Some(&h) = self.overrides.get(&(addr >> PAGE_SHIFT)) {
                return h;
            }
        }
        match self.policy {
            DistributionPolicy::PageInterleave => {
                ((addr >> PAGE_SHIFT) % self.n_nodes as u64) as NodeId
            }
            DistributionPolicy::BlockInterleave => {
                ((addr >> BLOCK_SHIFT) % self.n_nodes as u64) as NodeId
            }
            DistributionPolicy::FirstTouch => {
                let page = addr >> PAGE_SHIFT;
                *self.first_touch.entry(page).or_insert(toucher)
            }
            DistributionPolicy::Explicit => {
                let home = (addr >> HOME_SHIFT) as NodeId;
                debug_assert!(home < self.n_nodes, "explicit home out of range");
                home
            }
        }
    }

    /// Current home of `page`, overrides included. `None` only for a
    /// first-touch page nobody has touched (its home is not decided yet).
    /// For block-interleaved placement — where a page has no single home —
    /// this reports the home of the page's first block.
    pub fn page_home(&self, page: u64) -> Option<NodeId> {
        if let Some(&h) = self.overrides.get(&page) {
            return Some(h);
        }
        match self.policy {
            DistributionPolicy::PageInterleave => Some((page % self.n_nodes as u64) as NodeId),
            DistributionPolicy::BlockInterleave => {
                let first_block = page << (PAGE_SHIFT - BLOCK_SHIFT);
                Some((first_block % self.n_nodes as u64) as NodeId)
            }
            DistributionPolicy::FirstTouch => self.first_touch.get(&page).copied(),
            DistributionPolicy::Explicit => {
                Some((page >> (HOME_SHIFT - PAGE_SHIFT)) as NodeId)
            }
        }
    }

    /// Re-home `page` to `home` (migration). Page-granular: every block of
    /// the page resolves to `home` from now on, under any base policy.
    pub fn set_page_home(&mut self, page: u64, home: NodeId) {
        assert!(home < self.n_nodes, "migration target out of range");
        self.overrides.insert(page, home);
    }

    /// Pages currently re-homed by migration.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Start counting per-page misses (the hot-page signal for migration).
    pub fn enable_touch_tracking(&mut self) {
        self.track = true;
    }

    /// Whether touch tracking is on.
    #[inline]
    pub fn tracking(&self) -> bool {
        self.track
    }

    /// Record an L2 miss by `toucher` to `addr`'s page. Call only when
    /// [`HomeMap::tracking`] — the hot path guards this.
    pub fn note_miss(&mut self, addr: Addr, toucher: NodeId) {
        let n = self.n_nodes;
        let counts = self
            .touches
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| vec![0; n]);
        counts[toucher] += 1;
    }

    /// Reset the touch-tracking window.
    pub fn reset_touches(&mut self) {
        self.touches.clear();
    }

    /// The `k` most-missed pages in the tracking window, hottest first;
    /// deterministic (ties broken toward the lower page index).
    pub fn hot_pages(&self, k: usize) -> Vec<crate::reconfig::HotPage> {
        let mut pages: Vec<crate::reconfig::HotPage> = self
            .touches
            .iter()
            .map(|(&page, counts)| {
                let total: u64 = counts.iter().sum();
                let (dominant, &misses) = counts
                    .iter()
                    .enumerate()
                    .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
                    .expect("counts vector is never empty");
                crate::reconfig::HotPage {
                    page,
                    home: self.page_home(page).unwrap_or(dominant),
                    dominant,
                    misses,
                    total_misses: total,
                }
            })
            .collect();
        pages.sort_unstable_by(|a, b| {
            b.total_misses.cmp(&a.total_misses).then(a.page.cmp(&b.page))
        });
        pages.truncate(k);
        pages
    }

    /// Export the page tables (sorted by page index) for checkpointing;
    /// the first-touch table is empty for the stateless placement policies,
    /// overrides/touches are empty unless adaptation migrated or tracked.
    pub fn export_state(&self) -> crate::state::HomeMapState {
        let mut first_touch: Vec<(u64, usize)> =
            self.first_touch.iter().map(|(&p, &n)| (p, n)).collect();
        first_touch.sort_unstable_by_key(|&(p, _)| p);
        let mut overrides: Vec<(u64, usize)> =
            self.overrides.iter().map(|(&p, &n)| (p, n)).collect();
        overrides.sort_unstable_by_key(|&(p, _)| p);
        let mut touches: Vec<(u64, Vec<u64>)> = self
            .touches
            .iter()
            .map(|(&p, counts)| (p, counts.clone()))
            .collect();
        touches.sort_unstable_by_key(|&(p, _)| p);
        crate::state::HomeMapState {
            first_touch,
            overrides,
            touches,
            track: self.track,
        }
    }

    /// Restore state captured by [`HomeMap::export_state`], replacing the
    /// current page tables.
    pub fn import_state(&mut self, st: &crate::state::HomeMapState) {
        self.first_touch.clear();
        for &(p, n) in &st.first_touch {
            self.first_touch.insert(p, n);
        }
        self.overrides.clear();
        for &(p, n) in &st.overrides {
            self.overrides.insert(p, n);
        }
        self.touches.clear();
        for (p, counts) in &st.touches {
            self.touches.insert(*p, counts.clone());
        }
        self.track = st.track;
    }

    /// Home lookup that must not mutate state; panics for first-touch pages
    /// never touched before. Used by read-only analyses.
    pub fn home_readonly(&self, addr: Addr) -> NodeId {
        if !self.overrides.is_empty() {
            if let Some(&h) = self.overrides.get(&(addr >> PAGE_SHIFT)) {
                return h;
            }
        }
        match self.policy {
            DistributionPolicy::PageInterleave => {
                ((addr >> PAGE_SHIFT) % self.n_nodes as u64) as NodeId
            }
            DistributionPolicy::BlockInterleave => {
                ((addr >> BLOCK_SHIFT) % self.n_nodes as u64) as NodeId
            }
            DistributionPolicy::FirstTouch => *self
                .first_touch
                .get(&(addr >> PAGE_SHIFT))
                .expect("first-touch page not yet touched"),
            DistributionPolicy::Explicit => (addr >> HOME_SHIFT) as NodeId,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_roundtrip() {
        for home in [0usize, 1, 7, 31] {
            let a = explicit_addr(home, 0x1234);
            let mut map = HomeMap::new(DistributionPolicy::Explicit, 32);
            assert_eq!(map.home(a, 0), home);
            assert_eq!(map.home_readonly(a), home);
        }
    }

    #[test]
    fn page_interleave_cycles_through_nodes() {
        let mut map = HomeMap::new(DistributionPolicy::PageInterleave, 4);
        assert_eq!(map.home(0, 0), 0);
        assert_eq!(map.home(PAGE_BYTES, 0), 1);
        assert_eq!(map.home(4 * PAGE_BYTES, 0), 0);
        // Same page, different offset, same home.
        assert_eq!(map.home(PAGE_BYTES + 100, 3), 1);
    }

    #[test]
    fn block_interleave_cycles_through_nodes() {
        let mut map = HomeMap::new(DistributionPolicy::BlockInterleave, 8);
        for b in 0..16u64 {
            assert_eq!(map.home(b * BLOCK_BYTES, 0), (b % 8) as usize);
        }
    }

    #[test]
    fn first_touch_is_sticky() {
        let mut map = HomeMap::new(DistributionPolicy::FirstTouch, 8);
        assert_eq!(map.home(0x5000, 3), 3);
        // A later toucher does not change the home.
        assert_eq!(map.home(0x5008, 6), 3);
        assert_eq!(map.home_readonly(0x5010), 3);
        // A different page gets its own first-toucher.
        assert_eq!(map.home(0x9000, 6), 6);
    }

    #[test]
    fn block_arithmetic() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(31), 0);
        assert_eq!(block_of(32), 32);
        assert_eq!(block_index(64), 2);
    }
}
