//! Physical addresses, block/page arithmetic, and home-node mapping.
//!
//! The DSM hardware assigns every memory block a *home* node whose directory
//! and memory controller service misses for that block. The home of the data
//! touched by each committed access is exactly what the paper's frequency
//! matrix `F` counts, so this mapping is load-bearing for the whole study.

use crate::config::DistributionPolicy;
use crate::util::FxHashMap;

/// A physical address in the simulated global address space.
pub type Addr = u64;
/// A node identifier (0-based).
pub type NodeId = usize;

/// log2 of the coherence-block size (32 B, per Table I).
pub const BLOCK_SHIFT: u32 = 5;
/// Coherence-block size in bytes.
pub const BLOCK_BYTES: u64 = 1 << BLOCK_SHIFT;
/// log2 of the page size used by page-granularity placement policies.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;

/// Bit position where [`DistributionPolicy::Explicit`] addresses encode the
/// home node. Everything below is the within-node offset.
pub const HOME_SHIFT: u32 = 40;

/// Build an explicit-placement address: the data lives at `offset` within
/// the region homed at `home`.
///
/// The structural workload models know the owner of every data structure
/// (e.g. the 2-D scatter owner of an LU block), so they place data
/// explicitly — this mirrors SPLASH-2's round-robin/first-touch allocation
/// intent without modelling an OS.
#[inline]
pub fn explicit_addr(home: NodeId, offset: u64) -> Addr {
    debug_assert!(offset < (1 << HOME_SHIFT));
    ((home as u64) << HOME_SHIFT) | offset
}

/// The block-aligned address containing `addr`.
#[inline]
pub fn block_of(addr: Addr) -> Addr {
    addr >> BLOCK_SHIFT << BLOCK_SHIFT
}

/// Block index (address / 32).
#[inline]
pub fn block_index(addr: Addr) -> u64 {
    addr >> BLOCK_SHIFT
}

/// Maps addresses to home nodes under a [`DistributionPolicy`].
///
/// `FirstTouch` is stateful (the OS page table, in effect), so homes are
/// resolved through this struct rather than a free function.
#[derive(Debug, Clone)]
pub struct HomeMap {
    policy: DistributionPolicy,
    n_nodes: usize,
    first_touch: FxHashMap<u64, NodeId>,
}

impl HomeMap {
    pub fn new(policy: DistributionPolicy, n_nodes: usize) -> Self {
        assert!(n_nodes > 0);
        Self {
            policy,
            n_nodes,
            first_touch: FxHashMap::default(),
        }
    }

    pub fn policy(&self) -> DistributionPolicy {
        self.policy
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Resolve the home node of `addr`; `toucher` is the accessing processor
    /// (used only by first-touch).
    #[inline]
    pub fn home(&mut self, addr: Addr, toucher: NodeId) -> NodeId {
        match self.policy {
            DistributionPolicy::PageInterleave => {
                ((addr >> PAGE_SHIFT) % self.n_nodes as u64) as NodeId
            }
            DistributionPolicy::BlockInterleave => {
                ((addr >> BLOCK_SHIFT) % self.n_nodes as u64) as NodeId
            }
            DistributionPolicy::FirstTouch => {
                let page = addr >> PAGE_SHIFT;
                *self.first_touch.entry(page).or_insert(toucher)
            }
            DistributionPolicy::Explicit => {
                let home = (addr >> HOME_SHIFT) as NodeId;
                debug_assert!(home < self.n_nodes, "explicit home out of range");
                home
            }
        }
    }

    /// Export the first-touch page table (sorted by page index) for
    /// checkpointing; empty for the stateless placement policies.
    pub fn export_state(&self) -> crate::state::HomeMapState {
        let mut first_touch: Vec<(u64, usize)> =
            self.first_touch.iter().map(|(&p, &n)| (p, n)).collect();
        first_touch.sort_unstable_by_key(|&(p, _)| p);
        crate::state::HomeMapState { first_touch }
    }

    /// Restore state captured by [`HomeMap::export_state`], replacing the
    /// current page table.
    pub fn import_state(&mut self, st: &crate::state::HomeMapState) {
        self.first_touch.clear();
        for &(p, n) in &st.first_touch {
            self.first_touch.insert(p, n);
        }
    }

    /// Home lookup that must not mutate state; panics for first-touch pages
    /// never touched before. Used by read-only analyses.
    pub fn home_readonly(&self, addr: Addr) -> NodeId {
        match self.policy {
            DistributionPolicy::PageInterleave => {
                ((addr >> PAGE_SHIFT) % self.n_nodes as u64) as NodeId
            }
            DistributionPolicy::BlockInterleave => {
                ((addr >> BLOCK_SHIFT) % self.n_nodes as u64) as NodeId
            }
            DistributionPolicy::FirstTouch => *self
                .first_touch
                .get(&(addr >> PAGE_SHIFT))
                .expect("first-touch page not yet touched"),
            DistributionPolicy::Explicit => (addr >> HOME_SHIFT) as NodeId,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_roundtrip() {
        for home in [0usize, 1, 7, 31] {
            let a = explicit_addr(home, 0x1234);
            let mut map = HomeMap::new(DistributionPolicy::Explicit, 32);
            assert_eq!(map.home(a, 0), home);
            assert_eq!(map.home_readonly(a), home);
        }
    }

    #[test]
    fn page_interleave_cycles_through_nodes() {
        let mut map = HomeMap::new(DistributionPolicy::PageInterleave, 4);
        assert_eq!(map.home(0, 0), 0);
        assert_eq!(map.home(PAGE_BYTES, 0), 1);
        assert_eq!(map.home(4 * PAGE_BYTES, 0), 0);
        // Same page, different offset, same home.
        assert_eq!(map.home(PAGE_BYTES + 100, 3), 1);
    }

    #[test]
    fn block_interleave_cycles_through_nodes() {
        let mut map = HomeMap::new(DistributionPolicy::BlockInterleave, 8);
        for b in 0..16u64 {
            assert_eq!(map.home(b * BLOCK_BYTES, 0), (b % 8) as usize);
        }
    }

    #[test]
    fn first_touch_is_sticky() {
        let mut map = HomeMap::new(DistributionPolicy::FirstTouch, 8);
        assert_eq!(map.home(0x5000, 3), 3);
        // A later toucher does not change the home.
        assert_eq!(map.home(0x5008, 6), 3);
        assert_eq!(map.home_readonly(0x5010), 3);
        // A different page gets its own first-toucher.
        assert_eq!(map.home(0x9000, 6), 6);
    }

    #[test]
    fn block_arithmetic() {
        assert_eq!(block_of(0), 0);
        assert_eq!(block_of(31), 0);
        assert_eq!(block_of(32), 32);
        assert_eq!(block_index(64), 2);
    }
}
