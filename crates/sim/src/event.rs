//! Committed-instruction events and the stream abstraction that feeds the
//! simulator.
//!
//! Workloads are *structural traces*: per-processor state machines that emit
//! the basic-block and memory-reference structure of the application. An
//! [`Event`] is deliberately coarse — one event per basic-block execution
//! burst, per cache-line touch, or per synchronization operation — which
//! keeps simulation fast while preserving exactly the signals the phase
//! detectors consume (committed basic blocks weighted by instruction count,
//! and committed loads/stores labelled by home node).

use crate::addr::Addr;

/// One committed event on a processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A basic block (or a burst of consecutive executions of the same basic
    /// block) ending in a branch at address `bb`.
    ///
    /// `insns` is the total number of non-memory, non-FP instructions
    /// committed, and `taken` the outcome of the terminating branch. In
    /// Sherwood's BBV the accumulator entry hashed by the branch address is
    /// incremented by the instruction count, so bursting identical blocks
    /// into one event is exact.
    Block { bb: u32, insns: u32, taken: bool },
    /// A committed load or store to `addr` (one event per touched cache
    /// line; the timing model charges the full miss path).
    Mem { addr: Addr, write: bool },
    /// A burst of `ops` floating-point instructions (throughput-limited by
    /// the FPU count).
    Fp { ops: u32 },
    /// Barrier arrival. All processors must arrive at the same sequence of
    /// barrier ids; the system releases them together.
    Barrier { id: u32 },
    /// Acquire a global lock (blocking).
    Acquire { lock: u32 },
    /// Release a previously acquired lock.
    Release { lock: u32 },
    /// This processor's stream is exhausted.
    End,
}

impl Event {
    /// Committed non-synchronization instructions this event represents
    /// (what the paper's sampling interval counts).
    #[inline]
    pub fn nonsync_insns(&self) -> u64 {
        match *self {
            Event::Block { insns, .. } => insns as u64,
            Event::Mem { .. } => 1,
            Event::Fp { ops } => ops as u64,
            _ => 0,
        }
    }

    /// True for synchronization events (excluded from interval counting).
    #[inline]
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Event::Barrier { .. } | Event::Acquire { .. } | Event::Release { .. }
        )
    }
}

/// A source of per-processor committed-instruction streams.
pub trait InstructionStream {
    /// Number of processors this stream drives.
    fn n_procs(&self) -> usize;
    /// Next event for processor `proc`. Must return [`Event::End`] forever
    /// once the stream is exhausted.
    fn next(&mut self, proc: usize) -> Event;
}

/// A chunk generator: the state-machine side of a workload. The adapter
/// [`ChunkedStream`] buffers chunks into an [`InstructionStream`].
pub trait ChunkGen {
    fn n_procs(&self) -> usize;
    /// Append the next batch of events for `proc` to `buf`. Returning
    /// without pushing anything signals end-of-stream for that processor.
    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>);
}

/// Buffers [`ChunkGen`] output per processor.
///
/// Chunks are filled straight into per-processor buffers consumed through a
/// cursor, so the per-event cost of `next` is one indexed read — no
/// per-event queue traffic and no intermediate copy of each chunk.
pub struct ChunkedStream<G: ChunkGen> {
    gen: G,
    bufs: Vec<Vec<Event>>,
    /// Read cursor into each processor's buffer.
    pos: Vec<usize>,
    done: Vec<bool>,
}

impl<G: ChunkGen> ChunkedStream<G> {
    pub fn new(gen: G) -> Self {
        let n = gen.n_procs();
        Self {
            gen,
            bufs: (0..n).map(|_| Vec::with_capacity(4096)).collect(),
            pos: vec![0; n],
            done: vec![false; n],
        }
    }

    /// Access the wrapped generator (e.g. for ground-truth phase labels).
    pub fn generator(&self) -> &G {
        &self.gen
    }
}

impl<G: ChunkGen> InstructionStream for ChunkedStream<G> {
    fn n_procs(&self) -> usize {
        self.bufs.len()
    }

    #[inline]
    fn next(&mut self, proc: usize) -> Event {
        loop {
            let buf = &mut self.bufs[proc];
            if let Some(&e) = buf.get(self.pos[proc]) {
                self.pos[proc] += 1;
                return e;
            }
            if self.done[proc] {
                return Event::End;
            }
            buf.clear();
            self.pos[proc] = 0;
            self.gen.fill(proc, buf);
            if buf.is_empty() {
                self.done[proc] = true;
                return Event::End;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonsync_insn_accounting() {
        assert_eq!(Event::Block { bb: 1, insns: 10, taken: true }.nonsync_insns(), 10);
        assert_eq!(Event::Mem { addr: 0, write: false }.nonsync_insns(), 1);
        assert_eq!(Event::Fp { ops: 7 }.nonsync_insns(), 7);
        assert_eq!(Event::Barrier { id: 0 }.nonsync_insns(), 0);
        assert_eq!(Event::Acquire { lock: 0 }.nonsync_insns(), 0);
        assert_eq!(Event::End.nonsync_insns(), 0);
    }

    #[test]
    fn sync_classification() {
        assert!(Event::Barrier { id: 0 }.is_sync());
        assert!(Event::Acquire { lock: 1 }.is_sync());
        assert!(Event::Release { lock: 1 }.is_sync());
        assert!(!Event::Block { bb: 0, insns: 1, taken: false }.is_sync());
        assert!(!Event::End.is_sync());
    }

    struct Counting {
        emitted: Vec<u32>,
        limit: u32,
    }

    impl ChunkGen for Counting {
        fn n_procs(&self) -> usize {
            self.emitted.len()
        }
        fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
            if self.emitted[proc] >= self.limit {
                return;
            }
            // Two events per chunk.
            for _ in 0..2 {
                buf.push(Event::Block { bb: self.emitted[proc], insns: 1, taken: true });
                self.emitted[proc] += 1;
            }
        }
    }

    #[test]
    fn chunked_stream_delivers_then_ends() {
        let mut s = ChunkedStream::new(Counting { emitted: vec![0, 0], limit: 4 });
        let mut seen = vec![];
        loop {
            match s.next(0) {
                Event::End => break,
                Event::Block { bb, .. } => seen.push(bb),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        // End is sticky.
        assert_eq!(s.next(0), Event::End);
        // Processor 1 is independent.
        assert!(matches!(s.next(1), Event::Block { bb: 0, .. }));
    }
}
