//! Interconnect topologies behind one routing interface.
//!
//! The fabric ([`crate::network::Network`]) is topology-agnostic: it asks a
//! [`Topology`] for a deterministic route — an ordered list of *directed
//! link* ids — and charges latency, flits, and (optionally) wormhole channel
//! occupancy along that route. Five layouts are selectable at runtime via
//! [`crate::config::NetworkConfig::topology`]:
//!
//! * **hypercube** (default) — nodes are cube vertices, e-cube
//!   (dimension-order, lowest bit first) routing; this reproduces the
//!   original analytical model's distances exactly;
//! * **mesh2d** — a near-square 2-D grid (columns chosen as the largest
//!   divisor of `n` not exceeding `sqrt(n)`), XY routing;
//! * **torus2d** — the same grid with wraparound links, per-axis
//!   shortest-direction routing (ties resolve to the increasing direction);
//! * **ring** — shortest-direction routing (ties resolve clockwise);
//! * **fattree** — a binary tree over the nodes with internal switch
//!   vertices; packets climb to the lowest common ancestor and descend.
//!
//! Every route is a pure function of `(topology, src, dst)` — no adaptivity,
//! no randomness — so simulations stay bit-reproducible and checkpoints can
//! restore in-flight link occupancy by index.

use serde::{Deserialize, Serialize};

/// Runtime-selectable topology layouts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    #[default]
    Hypercube,
    Mesh2D,
    Torus2D,
    Ring,
    FatTree,
}

impl TopologyKind {
    /// Every layout, in the order sweeps and artefacts report them.
    pub const ALL: [TopologyKind; 5] = [
        TopologyKind::Hypercube,
        TopologyKind::Mesh2D,
        TopologyKind::Torus2D,
        TopologyKind::Ring,
        TopologyKind::FatTree,
    ];

    /// Stable lower-case name (CLI flags, JSON artefacts, counter names).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Hypercube => "hypercube",
            TopologyKind::Mesh2D => "mesh2d",
            TopologyKind::Torus2D => "torus2d",
            TopologyKind::Ring => "ring",
            TopologyKind::FatTree => "fattree",
        }
    }

    /// Inverse of [`TopologyKind::name`].
    pub fn from_name(s: &str) -> Option<TopologyKind> {
        TopologyKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Whether this layout can be built over `n` nodes. The hypercube and
    /// the binary fat-tree require a power of two; the grid and ring
    /// layouts accept any positive count.
    pub fn supports(self, n: usize) -> bool {
        n > 0
            && match self {
                TopologyKind::Hypercube | TopologyKind::FatTree => n.is_power_of_two(),
                _ => true,
            }
    }

    /// Build the routing object for `n` nodes.
    ///
    /// Panics when `!self.supports(n)` — node counts are validated with the
    /// rest of the machine configuration, not at message time.
    pub fn build(self, n: usize) -> AnyTopology {
        assert!(self.supports(n), "{} cannot be built over {n} nodes", self.name());
        match self {
            TopologyKind::Hypercube => AnyTopology::Hypercube(Hypercube::new(n)),
            TopologyKind::Mesh2D => AnyTopology::Mesh2D(Mesh2D::new(n)),
            TopologyKind::Torus2D => AnyTopology::Torus2D(Torus2D::new(n)),
            TopologyKind::Ring => AnyTopology::Ring(Ring::new(n)),
            TopologyKind::FatTree => AnyTopology::FatTree(FatTree::new(n)),
        }
    }
}

/// The sorted directed-edge table every topology routes over. Link ids are
/// indices into this table, so they are dense, deterministic, and identical
/// across builds of the same layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkTable {
    edges: Vec<(usize, usize)>,
}

impl LinkTable {
    fn from_edges(mut edges: Vec<(usize, usize)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        debug_assert!(edges.iter().all(|&(a, b)| a != b), "self-loop in link table");
        Self { edges }
    }

    /// Number of directed links.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// `(from, to)` vertices of a directed link.
    pub fn endpoints(&self, link: usize) -> (usize, usize) {
        self.edges[link]
    }

    /// Link id of the directed edge `from -> to`, if it exists.
    pub fn id(&self, from: usize, to: usize) -> Option<usize> {
        self.edges.binary_search(&(from, to)).ok()
    }
}

/// One interconnect layout: a vertex set (nodes plus any internal
/// switches), a directed link table, and a deterministic next-hop function.
pub trait Topology {
    fn kind(&self) -> TopologyKind;
    /// Endpoint (processor/memory) nodes. Nodes are vertices `0..n_nodes`.
    fn n_nodes(&self) -> usize;
    /// All routing vertices, including internal switches (`>= n_nodes`).
    fn n_vertices(&self) -> usize;
    fn links(&self) -> &LinkTable;
    /// The next vertex on the (unique, deterministic) route toward node
    /// `dst`. Must follow a directed link and strictly approach `dst`.
    fn next_hop(&self, cur: usize, dst: usize) -> usize;
    /// Route length between two *nodes* in links.
    fn hops(&self, a: usize, b: usize) -> u32;
    /// Maximum route length over all node pairs.
    fn diameter(&self) -> u32;

    fn n_links(&self) -> usize {
        self.links().len()
    }

    fn link_endpoints(&self, link: usize) -> (usize, usize) {
        self.links().endpoints(link)
    }

    fn link_id(&self, from: usize, to: usize) -> Option<usize> {
        self.links().id(from, to)
    }

    /// Append the route `a -> b` (directed link ids, in traversal order)
    /// into `out` (cleared first). Empty when `a == b`.
    fn route_into(&self, a: usize, b: usize, out: &mut Vec<usize>) {
        out.clear();
        let mut cur = a;
        while cur != b {
            let nxt = self.next_hop(cur, b);
            let link = self
                .link_id(cur, nxt)
                .unwrap_or_else(|| panic!("next_hop {cur}->{nxt} is not a link"));
            out.push(link);
            cur = nxt;
        }
    }

    /// Display name of a vertex: node id, or `s<id>` for internal switches.
    fn vertex_name(&self, v: usize) -> String {
        if v < self.n_nodes() {
            v.to_string()
        } else {
            format!("s{v}")
        }
    }

    /// Display label of a directed link, e.g. `"3->7"` or `"0->s4"`.
    fn link_label(&self, link: usize) -> String {
        let (a, b) = self.link_endpoints(link);
        format!("{}->{}", self.vertex_name(a), self.vertex_name(b))
    }
}

/// Hypercube with e-cube (dimension-order) routing, lowest differing bit
/// first — the link-visit order of the original analytical model.
#[derive(Debug, Clone)]
pub struct Hypercube {
    n: usize,
    dim: u32,
    links: LinkTable,
}

impl Hypercube {
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n > 0);
        let dim = n.trailing_zeros();
        let mut edges = Vec::with_capacity(n * dim as usize);
        for v in 0..n {
            for d in 0..dim {
                edges.push((v, v ^ (1 << d)));
            }
        }
        Self { n, dim, links: LinkTable::from_edges(edges) }
    }

    pub fn dim(&self) -> u32 {
        self.dim
    }
}

impl Topology for Hypercube {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Hypercube
    }
    fn n_nodes(&self) -> usize {
        self.n
    }
    fn n_vertices(&self) -> usize {
        self.n
    }
    fn links(&self) -> &LinkTable {
        &self.links
    }
    fn next_hop(&self, cur: usize, dst: usize) -> usize {
        cur ^ (1 << (cur ^ dst).trailing_zeros())
    }
    fn hops(&self, a: usize, b: usize) -> u32 {
        ((a ^ b) as u64).count_ones()
    }
    fn diameter(&self) -> u32 {
        self.dim
    }
}

/// Near-square factorization: the largest divisor of `n` not exceeding
/// `sqrt(n)` becomes the column count (so `cols <= rows`). Prime counts
/// degenerate to a 1-wide line, which is still a valid mesh.
fn grid_dims(n: usize) -> (usize, usize) {
    let mut cols = (n as f64).sqrt().floor() as usize;
    cols = cols.clamp(1, n);
    while !n.is_multiple_of(cols) {
        cols -= 1;
    }
    (n / cols, cols)
}

/// 2-D mesh with XY (column-first) dimension-order routing.
#[derive(Debug, Clone)]
pub struct Mesh2D {
    rows: usize,
    cols: usize,
    links: LinkTable,
}

impl Mesh2D {
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let (rows, cols) = grid_dims(n);
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1));
                    edges.push((v + 1, v));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols));
                    edges.push((v + cols, v));
                }
            }
        }
        Self { rows, cols, links: LinkTable::from_edges(edges) }
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

impl Topology for Mesh2D {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Mesh2D
    }
    fn n_nodes(&self) -> usize {
        self.rows * self.cols
    }
    fn n_vertices(&self) -> usize {
        self.rows * self.cols
    }
    fn links(&self) -> &LinkTable {
        &self.links
    }
    fn next_hop(&self, cur: usize, dst: usize) -> usize {
        let (cr, cc) = (cur / self.cols, cur % self.cols);
        let (dr, dc) = (dst / self.cols, dst % self.cols);
        if cc != dc {
            cur.wrapping_add_signed(if dc > cc { 1 } else { -1 })
        } else {
            cur.wrapping_add_signed(if dr > cr { self.cols as isize } else { -(self.cols as isize) })
        }
    }
    fn hops(&self, a: usize, b: usize) -> u32 {
        let (ar, ac) = (a / self.cols, a % self.cols);
        let (br, bc) = (b / self.cols, b % self.cols);
        (ar.abs_diff(br) + ac.abs_diff(bc)) as u32
    }
    fn diameter(&self) -> u32 {
        (self.rows - 1 + self.cols - 1) as u32
    }
}

/// Per-axis shortest wraparound step: `0` when aligned, else `+1`/`-1`
/// around a cycle of length `len` (ties resolve to the increasing
/// direction).
fn wrap_step(cur: usize, dst: usize, len: usize) -> isize {
    let fwd = (dst + len - cur) % len;
    if fwd == 0 {
        0
    } else if fwd <= len - fwd {
        1
    } else {
        -1
    }
}

fn wrap_dist(a: usize, b: usize, len: usize) -> usize {
    let fwd = (b + len - a) % len;
    fwd.min(len - fwd)
}

/// 2-D torus: the mesh grid plus wraparound links, per-axis
/// shortest-direction dimension-order routing (columns first).
#[derive(Debug, Clone)]
pub struct Torus2D {
    rows: usize,
    cols: usize,
    links: LinkTable,
}

impl Torus2D {
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let (rows, cols) = grid_dims(n);
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if cols > 1 {
                    let right = r * cols + (c + 1) % cols;
                    edges.push((v, right));
                    edges.push((right, v));
                }
                if rows > 1 {
                    let down = ((r + 1) % rows) * cols + c;
                    edges.push((v, down));
                    edges.push((down, v));
                }
            }
        }
        Self { rows, cols, links: LinkTable::from_edges(edges) }
    }

    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

impl Topology for Torus2D {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Torus2D
    }
    fn n_nodes(&self) -> usize {
        self.rows * self.cols
    }
    fn n_vertices(&self) -> usize {
        self.rows * self.cols
    }
    fn links(&self) -> &LinkTable {
        &self.links
    }
    fn next_hop(&self, cur: usize, dst: usize) -> usize {
        let (cr, cc) = (cur / self.cols, cur % self.cols);
        let (dr, dc) = (dst / self.cols, dst % self.cols);
        let dc_step = wrap_step(cc, dc, self.cols);
        if dc_step != 0 {
            let nc = (cc as isize + dc_step).rem_euclid(self.cols as isize) as usize;
            cr * self.cols + nc
        } else {
            let nr = (cr as isize + wrap_step(cr, dr, self.rows)).rem_euclid(self.rows as isize)
                as usize;
            nr * self.cols + cc
        }
    }
    fn hops(&self, a: usize, b: usize) -> u32 {
        let (ar, ac) = (a / self.cols, a % self.cols);
        let (br, bc) = (b / self.cols, b % self.cols);
        (wrap_dist(ar, br, self.rows) + wrap_dist(ac, bc, self.cols)) as u32
    }
    fn diameter(&self) -> u32 {
        (self.rows / 2 + self.cols / 2) as u32
    }
}

/// Ring with shortest-direction routing; the exact-half tie resolves
/// clockwise (increasing ids).
#[derive(Debug, Clone)]
pub struct Ring {
    n: usize,
    links: LinkTable,
}

impl Ring {
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        let mut edges = Vec::new();
        if n > 1 {
            for v in 0..n {
                edges.push((v, (v + 1) % n));
                edges.push((v, (v + n - 1) % n));
            }
        }
        Self { n, links: LinkTable::from_edges(edges) }
    }
}

impl Topology for Ring {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Ring
    }
    fn n_nodes(&self) -> usize {
        self.n
    }
    fn n_vertices(&self) -> usize {
        self.n
    }
    fn links(&self) -> &LinkTable {
        &self.links
    }
    fn next_hop(&self, cur: usize, dst: usize) -> usize {
        match wrap_step(cur, dst, self.n) {
            1 => (cur + 1) % self.n,
            _ => (cur + self.n - 1) % self.n,
        }
    }
    fn hops(&self, a: usize, b: usize) -> u32 {
        wrap_dist(a, b, self.n) as u32
    }
    fn diameter(&self) -> u32 {
        (self.n / 2) as u32
    }
}

/// Binary fat-tree over `n` (power-of-two) leaf nodes. Internal switches
/// are extra vertices `n..2n-1`; leaf `i` is heap index `n + i`, switch
/// vertex `v` is heap index `v - n + 1` (the root is vertex `n`). Packets
/// climb to the lowest common ancestor and descend. Link bandwidth is
/// uniform, so root links are the contention hot spot by construction —
/// the layout with the worst peak demand in the topology sweep.
#[derive(Debug, Clone)]
pub struct FatTree {
    n: usize,
    depth: u32,
    links: LinkTable,
}

impl FatTree {
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n > 0);
        let depth = n.trailing_zeros();
        let mut edges = Vec::new();
        for h in 2..2 * n {
            let (child, parent) = (Self::vertex_of(n, h), Self::vertex_of(n, h / 2));
            edges.push((child, parent));
            edges.push((parent, child));
        }
        Self { n, depth, links: LinkTable::from_edges(edges) }
    }

    fn heap_of(n: usize, v: usize) -> usize {
        if v < n {
            n + v
        } else {
            v - n + 1
        }
    }

    fn vertex_of(n: usize, h: usize) -> usize {
        if h >= n {
            h - n
        } else {
            n + h - 1
        }
    }

    fn depth_of(h: usize) -> u32 {
        usize::BITS - 1 - h.leading_zeros()
    }
}

impl Topology for FatTree {
    fn kind(&self) -> TopologyKind {
        TopologyKind::FatTree
    }
    fn n_nodes(&self) -> usize {
        self.n
    }
    fn n_vertices(&self) -> usize {
        2 * self.n - 1
    }
    fn links(&self) -> &LinkTable {
        &self.links
    }
    fn next_hop(&self, cur: usize, dst: usize) -> usize {
        let hc = Self::heap_of(self.n, cur);
        let hd = Self::heap_of(self.n, dst);
        let (dc, dd) = (Self::depth_of(hc), Self::depth_of(hd));
        if dd > dc && (hd >> (dd - dc)) == hc {
            // `cur` is an ancestor of the destination: descend toward it.
            Self::vertex_of(self.n, hd >> (dd - dc - 1))
        } else {
            Self::vertex_of(self.n, hc / 2)
        }
    }
    fn hops(&self, a: usize, b: usize) -> u32 {
        if a == b {
            return 0;
        }
        let (mut ha, mut hb) = (Self::heap_of(self.n, a), Self::heap_of(self.n, b));
        let mut hops = 0;
        while Self::depth_of(ha) > Self::depth_of(hb) {
            ha /= 2;
            hops += 1;
        }
        while Self::depth_of(hb) > Self::depth_of(ha) {
            hb /= 2;
            hops += 1;
        }
        while ha != hb {
            ha /= 2;
            hb /= 2;
            hops += 2;
        }
        hops
    }
    fn diameter(&self) -> u32 {
        2 * self.depth
    }
}

/// Static dispatch over the five layouts (no `dyn` on the message hot
/// path).
#[derive(Debug, Clone)]
pub enum AnyTopology {
    Hypercube(Hypercube),
    Mesh2D(Mesh2D),
    Torus2D(Torus2D),
    Ring(Ring),
    FatTree(FatTree),
}

macro_rules! dispatch {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            AnyTopology::Hypercube($t) => $body,
            AnyTopology::Mesh2D($t) => $body,
            AnyTopology::Torus2D($t) => $body,
            AnyTopology::Ring($t) => $body,
            AnyTopology::FatTree($t) => $body,
        }
    };
}

impl Topology for AnyTopology {
    fn kind(&self) -> TopologyKind {
        dispatch!(self, t => t.kind())
    }
    fn n_nodes(&self) -> usize {
        dispatch!(self, t => t.n_nodes())
    }
    fn n_vertices(&self) -> usize {
        dispatch!(self, t => t.n_vertices())
    }
    fn links(&self) -> &LinkTable {
        dispatch!(self, t => t.links())
    }
    fn next_hop(&self, cur: usize, dst: usize) -> usize {
        dispatch!(self, t => t.next_hop(cur, dst))
    }
    fn hops(&self, a: usize, b: usize) -> u32 {
        dispatch!(self, t => t.hops(a, b))
    }
    fn diameter(&self) -> u32 {
        dispatch!(self, t => t.diameter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_routes(topo: &AnyTopology) {
        let n = topo.n_nodes();
        let mut route = Vec::new();
        for a in 0..n {
            for b in 0..n {
                topo.route_into(a, b, &mut route);
                assert_eq!(route.len() as u32, topo.hops(a, b), "{a}->{b}");
                assert!(route.len() as u32 <= topo.diameter(), "{a}->{b} beyond diameter");
                let mut cur = a;
                for &l in &route {
                    let (from, to) = topo.link_endpoints(l);
                    assert_eq!(from, cur, "{a}->{b}: discontinuous route");
                    cur = to;
                }
                assert_eq!(cur, b, "{a}->{b}: route does not arrive");
            }
        }
    }

    #[test]
    fn all_layouts_route_validly_at_representative_sizes() {
        for kind in TopologyKind::ALL {
            for n in [1usize, 2, 4, 8, 16, 32] {
                if kind.supports(n) {
                    check_routes(&kind.build(n));
                }
            }
        }
        // Non-power-of-two sizes for the layouts that allow them.
        for kind in [TopologyKind::Mesh2D, TopologyKind::Torus2D, TopologyKind::Ring] {
            for n in [3usize, 5, 6, 7, 12, 15] {
                check_routes(&kind.build(n));
            }
        }
    }

    #[test]
    fn hypercube_matches_hamming_distance() {
        let t = TopologyKind::Hypercube.build(16);
        for a in 0..16usize {
            for b in 0..16usize {
                assert_eq!(t.hops(a, b), ((a ^ b) as u64).count_ones());
            }
        }
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.n_links(), 16 * 4);
    }

    #[test]
    fn hypercube_routes_fix_lowest_bit_first() {
        // The e-cube visit order of the analytical model: 0 -> 7 goes
        // 0 -> 1 -> 3 -> 7.
        let t = TopologyKind::Hypercube.build(8);
        let mut route = Vec::new();
        t.route_into(0, 7, &mut route);
        let hops: Vec<(usize, usize)> = route.iter().map(|&l| t.link_endpoints(l)).collect();
        assert_eq!(hops, vec![(0, 1), (1, 3), (3, 7)]);
    }

    #[test]
    fn mesh_factorization_is_near_square() {
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(12), (4, 3));
        assert_eq!(grid_dims(7), (7, 1));
        assert_eq!(grid_dims(1), (1, 1));
    }

    #[test]
    fn torus_wraps_and_mesh_does_not() {
        let mesh = TopologyKind::Mesh2D.build(16);
        let torus = TopologyKind::Torus2D.build(16);
        // Corner to corner: mesh pays the full Manhattan distance, the
        // torus wraps both axes.
        assert_eq!(mesh.hops(0, 15), 6);
        assert_eq!(torus.hops(0, 15), 2);
        assert!(torus.diameter() < mesh.diameter());
    }

    #[test]
    fn ring_tie_breaks_clockwise() {
        let t = TopologyKind::Ring.build(6);
        // Distance 3 both ways: the route must go 0 -> 1 -> 2 -> 3.
        let mut route = Vec::new();
        t.route_into(0, 3, &mut route);
        let hops: Vec<(usize, usize)> = route.iter().map(|&l| t.link_endpoints(l)).collect();
        assert_eq!(hops, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn fat_tree_climbs_to_the_lca() {
        let t = TopologyKind::FatTree.build(8);
        assert_eq!(t.n_vertices(), 15);
        assert_eq!(t.n_links(), 2 * (2 * 8 - 2));
        // Siblings share a parent switch: two hops.
        assert_eq!(t.hops(0, 1), 2);
        // Opposite halves route through the root: the full diameter.
        assert_eq!(t.hops(0, 7), 6);
        assert_eq!(t.diameter(), 6);
        // Every intermediate vertex of a cross-tree route is a switch.
        let mut route = Vec::new();
        t.route_into(0, 7, &mut route);
        for &l in &route[..route.len() - 1] {
            let (_, to) = t.link_endpoints(l);
            assert!(to >= t.n_nodes(), "intermediate vertex {to} is not a switch");
            assert!(t.link_label(l).contains("s"));
        }
    }

    #[test]
    fn uniprocessor_layouts_degenerate() {
        for kind in TopologyKind::ALL {
            let t = kind.build(1);
            assert_eq!(t.hops(0, 0), 0);
            assert_eq!(t.diameter(), 0);
            assert!(t.n_links() == 0);
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(TopologyKind::from_name("3d-chiplet"), None);
    }
}
