//! Snapshot-able simulator state: plain-data mirrors of every stateful
//! component, produced by [`crate::system::System::state_snapshot`] and
//! consumed by [`crate::system::System::restore_state`] (and serialized by
//! the `dsm-simpoint` checkpoint codec).
//!
//! A snapshot deliberately excludes anything derivable from the
//! [`crate::config::SystemConfig`] (cache geometry, interval length,
//! distance matrices, scheduler shape) and the instruction stream itself:
//! streams are deterministic functions of `(app, n_procs, scale)`, so a
//! restore re-creates a fresh stream and fast-forwards it by the recorded
//! per-processor fetch counts ([`SystemState::fetched`]) instead of
//! serializing workload internals. Everything else — down to the fault
//! layer's RNG draw counter — is captured, so restore-then-run is
//! bit-identical to running straight through.

use crate::config::CoreConfig;
use crate::directory::{DirState, DirectoryStats};
use crate::event::Event;
use crate::fault::FaultStats;
use crate::reconfig::ReconfigSnap;
use crate::stats::ProcStats;

/// One cache's dynamic state (tag/LRU arrays plus counters). Geometry is
/// config-derived and not stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    /// Packed per-line state words, set-major (see `crate::cache`).
    pub tags: Vec<u64>,
    /// Last-use clock per line, same indexing.
    pub lru: Vec<u64>,
    pub clock: u64,
    pub hits: u64,
    pub misses: u64,
}

/// gshare predictor state: counter table plus history and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GshareState {
    /// 2-bit saturating counters, one byte each.
    pub table: Vec<u8>,
    pub history: u64,
    pub predictions: u64,
    pub mispredictions: u64,
}

/// One processor's full dynamic state.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorState {
    pub cycle: u64,
    pub commit_carry: u64,
    pub fp_carry: u64,
    pub interval_progress: u64,
    pub interval_start_cycle: u64,
    pub interval_index: u64,
    pub finished: bool,
    pub blocked: bool,
    pub blocked_since: u64,
    pub stats: ProcStats,
    pub l1: CacheState,
    pub l2: CacheState,
    pub gshare: GshareState,
    /// The cycle-cost profile in force — dynamic since heterogeneous
    /// phase-to-core mapping can swap it mid-run.
    pub core: CoreConfig,
}

/// Directory contents, sorted by block index for deterministic encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryState {
    pub entries: Vec<(u64, DirState)>,
    pub stats: DirectoryStats,
}

/// Network traffic counters plus per-link occupancy horizons and flit
/// demand (both vectors are indexed by directed-link id of the configured
/// topology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkState {
    pub msgs: u64,
    pub payload_msgs: u64,
    pub total_hops: u64,
    pub link_wait_cycles: u64,
    pub total_flit_hops: u64,
    pub link_busy: Vec<u64>,
    pub link_flits: Vec<u64>,
}

/// One memory controller's bank horizons and counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemCtrlState {
    pub busy_until: Vec<u64>,
    pub requests: u64,
    pub total_queue_delay: u64,
}

/// Home-map page tables, each sorted by page index. The first-touch table
/// is empty for the stateless placement policies; overrides and touch
/// counters are empty unless phase-guided adaptation migrated pages or
/// enabled hot-page tracking.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HomeMapState {
    pub first_touch: Vec<(u64, usize)>,
    /// Migration overrides (page → home), consulted before the base policy.
    pub overrides: Vec<(u64, usize)>,
    /// Per-page per-node miss counts of the current tracking window.
    pub touches: Vec<(u64, Vec<u64>)>,
    /// Whether touch tracking is on.
    pub track: bool,
}

/// One lock's owner and FIFO waiter queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSnap {
    pub id: u32,
    pub owner: Option<usize>,
    pub waiters: Vec<usize>,
}

/// The (single) barrier's in-flight arrival state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierSnap {
    pub current_id: Option<u32>,
    /// Arrival bitmap, 64 processors per word (`⌈n/64⌉` words) — a single
    /// u64 would cap the machine at 64 nodes.
    pub arrived: Vec<u64>,
    pub arrival_cycle: Vec<u64>,
}

/// Fault layer: the RNG draw counter (the entire stream position) plus the
/// per-class counters. The plan itself lives in the config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSnap {
    pub draws: u64,
    pub stats: FaultStats,
}

/// Complete dynamic state of a [`crate::system::System`] at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemState {
    pub procs: Vec<ProcessorState>,
    pub directory: DirectoryState,
    pub network: NetworkState,
    pub memctrls: Vec<MemCtrlState>,
    pub home: HomeMapState,
    /// The reconfiguration layer (DVFS levels + counters); default on a
    /// machine adaptation never touched.
    pub reconfig: ReconfigSnap,
    /// Locks sorted by id for deterministic encoding.
    pub locks: Vec<LockSnap>,
    pub barrier: BarrierSnap,
    pub fault: FaultSnap,
    /// Fetched-but-unexecuted event per processor (the batched scheduler's
    /// parking slot).
    pub pending: Vec<Option<Event>>,
    pub events_executed: u64,
    /// Events fetched from the instruction stream per processor, including
    /// any parked in `pending`. Restore replays exactly this many
    /// `stream.next(p)` calls on a fresh stream before handing it to the
    /// system.
    pub fetched: Vec<u64>,
}

impl SystemState {
    /// Number of processors this snapshot describes.
    pub fn n_procs(&self) -> usize {
        self.procs.len()
    }

    /// Minimum interval index over unfinished processors (`u64::MAX` when
    /// every processor has finished) — the global interval boundary this
    /// snapshot sits at.
    pub fn min_interval_index(&self) -> u64 {
        self.procs
            .iter()
            .filter(|p| !p.finished)
            .map(|p| p.interval_index)
            .min()
            .unwrap_or(u64::MAX)
    }
}
