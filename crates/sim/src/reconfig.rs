//! Mid-run machine reconfiguration: the seam the phase-guided adaptation
//! subsystem (`dsm-adapt`) actuates through.
//!
//! The paper's §II loop locks a hardware configuration per detected phase
//! and re-applies it whenever the phase recurs. Historically this repo
//! modelled that abstractly (a cost multiplier in `dsm-harness`); the
//! [`Machine`] trait makes it concrete. It exposes exactly the knobs a
//! reconfiguration module may turn **at a sampling-interval boundary**:
//!
//! * **page re-homing** — move a page's home node (directory + memory
//!   service point), changing the DDV home distribution and remote-miss
//!   traffic for every later access ([`Machine::migrate_page`]);
//! * **DVFS epochs** — a per-node exposed-stall scaling factor in 1/256
//!   units, the same arithmetic shape as the fault layer's slowdown
//!   epochs ([`Machine::set_dvfs_level`]);
//! * **heterogeneous cores** — swap a node's [`CoreConfig`] cycle-cost
//!   profile (big/little phase-to-core mapping,
//!   [`Machine::set_core_profile`]).
//!
//! Every knob is **inert by construction** at its default setting: no
//! overrides, DVFS at [`DVFS_NOMINAL`], the configured core profile.
//! A run that never calls a mutating method is bit-identical to a build
//! without this module — the `adapt_equivalence` differential suite pins
//! that, mirroring the `FaultPlan::none` guarantee.

use serde::{Deserialize, Serialize};

use crate::addr::NodeId;
use crate::config::CoreConfig;

/// Nominal DVFS numerator: stall × 256/256 — exact identity.
pub const DVFS_NOMINAL: u64 = 256;

/// Cycles every running processor stalls per migrated page (TLB shootdown
/// plus the page DMA's exposed tail; the bulk of the copy is overlapped).
/// Charged by [`Machine::migrate_page`] at the interval boundary.
pub const PAGE_MIGRATE_STALL_CYCLES: u64 = 48;

/// One hot page candidate reported by [`Machine::hot_pages`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotPage {
    /// Page index (`addr >> PAGE_SHIFT`).
    pub page: u64,
    /// Current home node of the page.
    pub home: NodeId,
    /// Node that issued the most L2 misses to the page since tracking was
    /// last reset (ties broken toward the lower node id).
    pub dominant: NodeId,
    /// Misses from the dominant node in the tracked window.
    pub misses: u64,
    /// Total misses to the page in the tracked window.
    pub total_misses: u64,
}

/// Counters for every reconfiguration the machine has applied. All zero on
/// a run that never reconfigures (the no-op differential arm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigStats {
    /// Pages re-homed by [`Machine::migrate_page`].
    pub migrations: u64,
    /// Total stall cycles charged to processors for page moves.
    pub migration_stall_cycles: u64,
    /// DVFS level changes (per-node epoch starts).
    pub dvfs_epochs: u64,
    /// Extra stall cycles injected by DVFS levels above nominal.
    pub dvfs_extra_cycles: u64,
    /// Stall cycles removed by DVFS levels below nominal.
    pub dvfs_saved_cycles: u64,
    /// Core-profile swaps applied by [`Machine::set_core_profile`].
    pub core_switches: u64,
}

impl ReconfigStats {
    /// True when no reconfiguration ever touched the machine.
    pub fn is_inert(&self) -> bool {
        *self == Self::default()
    }

    /// Mirror the counters into a metrics registry under `prefix`
    /// (`adapt/migrations`, `adapt/epochs`, … for the default prefix).
    pub fn publish(&self, prefix: &str, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.counter_add(&format!("{prefix}/migrations"), self.migrations);
        reg.counter_add(
            &format!("{prefix}/migration_stall_cycles"),
            self.migration_stall_cycles,
        );
        reg.counter_add(&format!("{prefix}/epochs"), self.dvfs_epochs);
        reg.counter_add(&format!("{prefix}/dvfs_extra_cycles"), self.dvfs_extra_cycles);
        reg.counter_add(&format!("{prefix}/dvfs_saved_cycles"), self.dvfs_saved_cycles);
        reg.counter_add(&format!("{prefix}/core_switches"), self.core_switches);
    }
}

/// Snapshot of the reconfiguration layer (checkpointed as part of
/// [`crate::state::SystemState`] so DSMCKPT5 resumes mid-tuning
/// bit-exactly).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReconfigSnap {
    /// Per-node DVFS numerators (empty ⇒ all nominal).
    pub dvfs_num: Vec<u64>,
    pub stats: ReconfigStats,
}

/// The reconfigurable machine, as seen by an adaptation actuator.
///
/// Implemented by [`crate::system::System`] for every stream/observer
/// combination; object-safe so actuators can be written once against
/// `&mut dyn Machine`. Mutating methods are meant to be called at a
/// sampling-interval boundary (e.g. after
/// [`crate::system::System::run_to_interval`] returns): they may advance
/// processor clocks (migration stalls) and the caller must not hold a
/// partially executed event.
pub trait Machine {
    /// Number of processors/nodes.
    fn n_procs(&self) -> usize;

    /// Current cycle-cost profile of node `p`.
    fn core_profile(&self, p: usize) -> CoreConfig;

    /// Swap node `p`'s cycle-cost profile. The gshare geometry is fixed
    /// hardware — `profile.gshare_entries` must match the current one.
    /// Counts a `core_switches` epoch only when the profile changes.
    fn set_core_profile(&mut self, p: usize, profile: CoreConfig);

    /// Current DVFS numerator of node `p` ([`DVFS_NOMINAL`] = full speed).
    fn dvfs_level(&self, p: usize) -> u64;

    /// Set node `p`'s DVFS numerator: exposed memory stalls are scaled by
    /// `num/256` from the next miss on (above 256 = slower clock / more
    /// exposed stall, below = boosted). Counts an epoch when it changes.
    fn set_dvfs_level(&mut self, p: usize, num: u64);

    /// Start counting per-page L2 misses (the [`Machine::hot_pages`]
    /// signal). Off by default — tracking costs a hash update per miss.
    fn enable_touch_tracking(&mut self);

    /// The `k` most-missed pages in the current tracking window, hottest
    /// first (ties toward the lower page index). Empty when tracking is
    /// off or nothing missed.
    fn hot_pages(&self, k: usize) -> Vec<HotPage>;

    /// Reset the touch-tracking window (typically after a re-tune, so the
    /// next decision sees the current phase's traffic only).
    fn reset_touches(&mut self);

    /// Re-home `page` to `to`. Returns false (and charges nothing) when
    /// the page already lives there; otherwise installs the override,
    /// stalls every running processor by [`PAGE_MIGRATE_STALL_CYCLES`]
    /// (TLB shootdown), and counts the move.
    fn migrate_page(&mut self, page: u64, to: NodeId) -> bool;

    /// Whole-run memory-stall cycles charged to node `p` so far (the DVFS
    /// actuator's targeting signal).
    fn proc_mem_stall(&self, p: usize) -> u64;

    /// Reconfiguration counters so far.
    fn reconfig_stats(&self) -> ReconfigStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_inert() {
        assert!(ReconfigStats::default().is_inert());
        let s = ReconfigStats { migrations: 1, ..Default::default() };
        assert!(!s.is_inert());
    }

    #[test]
    fn publish_mirrors_counters() {
        let mut reg = dsm_telemetry::MetricsRegistry::new();
        let s = ReconfigStats {
            migrations: 3,
            migration_stall_cycles: 144,
            dvfs_epochs: 2,
            dvfs_extra_cycles: 10,
            dvfs_saved_cycles: 5,
            core_switches: 1,
        };
        s.publish("adapt", &mut reg);
        assert_eq!(reg.counter_value("adapt/migrations"), Some(3));
        assert_eq!(reg.counter_value("adapt/epochs"), Some(2));
        assert_eq!(reg.counter_value("adapt/core_switches"), Some(1));
    }
}
