//! Per-node SDRAM memory controller with a deterministic service queue.
//!
//! Each block transfer occupies the controller for
//! [`crate::config::MemoryConfig::service_gap_cycles`] (the 32 B /
//! 2.6 GB/s bandwidth term from Table I). Requests arriving while the
//! controller is busy are delayed until it frees up — this queueing delay is
//! the *contention* that the paper's DDV contention vector is designed to
//! capture, so hot home nodes genuinely slow accesses down.

use serde::{Deserialize, Serialize};

use crate::config::MemoryConfig;

/// Timing outcome of one memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemService {
    /// Cycle at which the data is available at the controller pins.
    pub done_at: u64,
    /// Cycles the request spent queued behind earlier requests.
    pub queue_delay: u64,
}

/// One node's memory controller with `banks` independently scheduled SDRAM
/// banks ("SDRAM interleaved" in Table I); consecutive blocks interleave
/// across banks, so streams spread their bandwidth demand while conflicting
/// hot blocks still queue.
#[derive(Debug, Clone)]
pub struct MemCtrl {
    cfg: MemoryConfig,
    busy_until: Vec<u64>,
    requests: u64,
    total_queue_delay: u64,
}

/// Counters for reporting / the contention analyses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemCtrlStats {
    pub requests: u64,
    pub total_queue_delay: u64,
}

impl MemCtrl {
    pub fn new(cfg: MemoryConfig) -> Self {
        assert!(cfg.banks >= 1);
        Self {
            busy_until: vec![0; cfg.banks],
            cfg,
            requests: 0,
            total_queue_delay: 0,
        }
    }

    /// Issue a request for `block` (a block index; consecutive blocks
    /// interleave across banks) arriving at cycle `now`. The bank starts
    /// servicing at `max(now, bank_busy_until)`, data is ready one DRAM
    /// latency later, and the bank is occupied for the bandwidth-derived
    /// service gap.
    pub fn request_block(&mut self, block: u64, now: u64) -> MemService {
        // Bank counts are powers of two in every shipped config (Table I has
        // one interleaved controller per node); mask instead of dividing.
        let n = self.busy_until.len() as u64;
        let bank = if n.is_power_of_two() {
            (block & (n - 1)) as usize
        } else {
            (block % n) as usize
        };
        let busy = &mut self.busy_until[bank];
        let start = now.max(*busy);
        let queue_delay = start - now;
        *busy = start + self.cfg.service_gap_cycles;
        self.requests += 1;
        self.total_queue_delay += queue_delay;
        MemService {
            done_at: start + self.cfg.latency_cycles,
            queue_delay,
        }
    }

    /// Single-bank convenience used by tests and the bank-0 path.
    pub fn request(&mut self, now: u64) -> MemService {
        self.request_block(0, now)
    }

    /// When bank 0 will next be idle.
    pub fn busy_until(&self) -> u64 {
        self.busy_until[0]
    }

    pub fn stats(&self) -> MemCtrlStats {
        MemCtrlStats {
            requests: self.requests,
            total_queue_delay: self.total_queue_delay,
        }
    }

    /// Export bank horizons and counters for checkpointing.
    pub fn export_state(&self) -> crate::state::MemCtrlState {
        crate::state::MemCtrlState {
            busy_until: self.busy_until.clone(),
            requests: self.requests,
            total_queue_delay: self.total_queue_delay,
        }
    }

    /// Restore state captured by [`MemCtrl::export_state`] on a controller
    /// with the same bank count.
    pub fn import_state(&mut self, st: &crate::state::MemCtrlState) {
        assert_eq!(st.busy_until.len(), self.busy_until.len(), "bank count mismatch");
        self.busy_until.copy_from_slice(&st.busy_until);
        self.requests = st.requests;
        self.total_queue_delay = st.total_queue_delay;
    }

    /// Mean queueing delay per request so far (0 when idle).
    pub fn mean_queue_delay(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_queue_delay as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> MemCtrl {
        ctrl_banked(1)
    }

    fn ctrl_banked(banks: usize) -> MemCtrl {
        MemCtrl::new(MemoryConfig { latency_cycles: 150, service_gap_cycles: 25, banks })
    }

    #[test]
    fn idle_request_pays_only_latency() {
        let mut c = ctrl();
        let s = c.request(1000);
        assert_eq!(s.queue_delay, 0);
        assert_eq!(s.done_at, 1150);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut c = ctrl();
        let a = c.request(0);
        let b = c.request(0);
        let d = c.request(0);
        assert_eq!(a.queue_delay, 0);
        assert_eq!(b.queue_delay, 25);
        assert_eq!(d.queue_delay, 50);
        assert_eq!(b.done_at, 25 + 150);
        assert_eq!(c.stats().requests, 3);
        assert_eq!(c.stats().total_queue_delay, 75);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut c = ctrl();
        c.request(0);
        let s = c.request(25);
        assert_eq!(s.queue_delay, 0);
        let s = c.request(100);
        assert_eq!(s.queue_delay, 0);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut c = ctrl();
        for _ in 0..4 {
            c.request(0);
        }
        assert_eq!(c.busy_until(), 100);
        // Long idle gap: next request sees an idle controller.
        let s = c.request(10_000);
        assert_eq!(s.queue_delay, 0);
    }

    #[test]
    fn mean_queue_delay_reflects_contention() {
        let mut c = ctrl();
        assert_eq!(c.mean_queue_delay(), 0.0);
        for _ in 0..10 {
            c.request(0);
        }
        assert!(c.mean_queue_delay() > 0.0);
    }

    #[test]
    fn banks_service_distinct_blocks_in_parallel() {
        let mut c = ctrl_banked(4);
        // Four consecutive blocks land on four banks: no queueing at all.
        for b in 0..4u64 {
            assert_eq!(c.request_block(b, 0).queue_delay, 0);
        }
        // The fifth wraps to bank 0 and queues.
        assert_eq!(c.request_block(4, 0).queue_delay, 25);
    }

    #[test]
    fn same_block_still_queues_with_banks() {
        let mut c = ctrl_banked(8);
        assert_eq!(c.request_block(9, 0).queue_delay, 0);
        assert_eq!(c.request_block(9, 0).queue_delay, 25);
    }

    #[test]
    fn one_bank_matches_legacy_behaviour() {
        let mut a = ctrl_banked(1);
        let mut b = ctrl();
        for (blk, now) in [(0u64, 0u64), (5, 3), (2, 60), (7, 61)] {
            assert_eq!(a.request_block(blk, now), b.request_block(blk, now));
        }
    }
}
