//! Home-based directory coherence protocol (MESI-flavoured).
//!
//! Every 32 B block has a home node; the home's directory tracks whether the
//! block is uncached, shared by a set of nodes, or exclusively owned. The
//! directory returns the *actions* a request implies (fetch from memory,
//! forward from a dirty owner, invalidate sharers); the system loop turns
//! those actions into network and memory-controller latencies and into
//! invalidations of the private caches.
//!
//! Node sets are stored as a `u64` bitmask, which comfortably covers the
//! paper's 32-node maximum.

use std::collections::hash_map::Entry;

use crate::util::FxHashMap;
use serde::{Deserialize, Serialize};

/// Directory state of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// Cached read-only by the nodes in the mask.
    Shared(u64),
    /// Cached with write permission by one node (possibly dirty there).
    Exclusive(usize),
}

/// Where the data for a read comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// Home memory supplies the block.
    Memory,
    /// A dirty remote owner forwards the block (home memory not accessed).
    Owner(usize),
}

/// Outcome of a read miss reaching the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    pub source: ReadSource,
}

/// Outcome of a write miss (or upgrade) reaching the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Nodes (excluding the requester) whose cached copies must be
    /// invalidated.
    pub invalidate_mask: u64,
    /// A dirty exclusive owner that forwards the block to the requester.
    pub owner_forward: Option<usize>,
    /// Whether home memory must supply the data (false on an upgrade from
    /// Shared when the requester already holds the block, and on owner
    /// forwarding).
    pub from_memory: bool,
}

/// Traffic/transition counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryStats {
    pub reads: u64,
    pub writes: u64,
    pub owner_forwards: u64,
    pub invalidations: u64,
    pub upgrades: u64,
    pub writebacks: u64,
    /// Duplicate request copies refused with a NACK (fault injection): the
    /// home recognized an already-committed transaction's sequence number
    /// and did not re-apply it, so `reads + writes` stays equal to the
    /// number of logical coherence transactions even under duplication.
    pub nacks: u64,
}

impl DirectoryStats {
    /// Mirror the transition counters into a metrics registry under
    /// `prefix` (e.g. `sim/directory`).
    pub fn publish(&self, prefix: &str, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.counter_add(&format!("{prefix}/reads"), self.reads);
        reg.counter_add(&format!("{prefix}/writes"), self.writes);
        reg.counter_add(&format!("{prefix}/owner_forwards"), self.owner_forwards);
        reg.counter_add(&format!("{prefix}/invalidations"), self.invalidations);
        reg.counter_add(&format!("{prefix}/upgrades"), self.upgrades);
        reg.counter_add(&format!("{prefix}/writebacks"), self.writebacks);
        reg.counter_add(&format!("{prefix}/nacks"), self.nacks);
    }
}

/// The (logically distributed) directory. Homes are a pure function of the
/// address, so a single map keyed by block index is behaviourally identical
/// to per-home maps; per-home latency is charged by the system loop.
#[derive(Debug, Default)]
pub struct Directory {
    map: FxHashMap<u64, DirState>,
    stats: DirectoryStats,
}

impl Directory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Directory pre-sized for an expected number of simultaneously tracked
    /// blocks (the system derives this from aggregate L2 capacity), so the
    /// hot coherence path does not rehash-grow the map mid-run. Capacity is
    /// only a hint; behaviour is identical to [`Directory::new`].
    pub fn with_capacity(blocks: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(blocks, Default::default()),
            stats: DirectoryStats::default(),
        }
    }

    /// Handle a read miss for `block` by `requester`.
    ///
    /// Both handlers go through the entry API so each request hashes the
    /// block exactly once — the directory lookup sits on the L2-miss path,
    /// where a second probe per request is measurable.
    pub fn read(&mut self, block: u64, requester: usize) -> ReadOutcome {
        self.stats.reads += 1;
        let bit = 1u64 << requester;
        match self.map.entry(block) {
            Entry::Vacant(v) => {
                // First reader gets the block exclusively (MESI E-state).
                v.insert(DirState::Exclusive(requester));
                ReadOutcome { source: ReadSource::Memory }
            }
            Entry::Occupied(mut o) => match *o.get() {
                DirState::Shared(mask) => {
                    o.insert(DirState::Shared(mask | bit));
                    ReadOutcome { source: ReadSource::Memory }
                }
                DirState::Exclusive(owner) if owner == requester => {
                    // Stale entry after a silent clean eviction at the owner;
                    // refetch from memory, ownership unchanged.
                    ReadOutcome { source: ReadSource::Memory }
                }
                DirState::Exclusive(owner) => {
                    self.stats.owner_forwards += 1;
                    o.insert(DirState::Shared(bit | (1u64 << owner)));
                    ReadOutcome { source: ReadSource::Owner(owner) }
                }
            },
        }
    }

    /// Handle a write miss (or upgrade) for `block` by `requester`.
    pub fn write(&mut self, block: u64, requester: usize) -> WriteOutcome {
        self.stats.writes += 1;
        let bit = 1u64 << requester;
        let (outcome, invalidations, upgrade) = match self.map.entry(block) {
            Entry::Vacant(v) => {
                v.insert(DirState::Exclusive(requester));
                (
                    WriteOutcome {
                        invalidate_mask: 0,
                        owner_forward: None,
                        from_memory: true,
                    },
                    0,
                    false,
                )
            }
            Entry::Occupied(mut o) => {
                let prev = *o.get();
                o.insert(DirState::Exclusive(requester));
                match prev {
                    DirState::Shared(mask) => {
                        let others = mask & !bit;
                        (
                            WriteOutcome {
                                invalidate_mask: others,
                                owner_forward: None,
                                // Upgrade: requester already holds the data.
                                from_memory: mask & bit == 0,
                            },
                            others.count_ones() as u64,
                            mask & bit != 0,
                        )
                    }
                    DirState::Exclusive(owner) if owner == requester => (
                        WriteOutcome {
                            // Stale after silent eviction; refetch.
                            invalidate_mask: 0,
                            owner_forward: None,
                            from_memory: true,
                        },
                        0,
                        false,
                    ),
                    DirState::Exclusive(owner) => (
                        WriteOutcome {
                            invalidate_mask: 1u64 << owner,
                            owner_forward: Some(owner),
                            from_memory: false,
                        },
                        1,
                        false,
                    ),
                }
            }
        };
        self.stats.invalidations += invalidations;
        self.stats.upgrades += upgrade as u64;
        outcome
    }

    /// A dirty writeback (cache eviction) from `node` arrived at the home.
    pub fn writeback(&mut self, block: u64, node: usize) {
        self.stats.writebacks += 1;
        match self.map.get(&block).copied() {
            Some(DirState::Exclusive(owner)) if owner == node => {
                self.map.remove(&block);
            }
            Some(DirState::Shared(mask)) => {
                let rest = mask & !(1u64 << node);
                if rest == 0 {
                    self.map.remove(&block);
                } else {
                    self.map.insert(block, DirState::Shared(rest));
                }
            }
            // Racy/stale writeback (already re-owned elsewhere): ignore, the
            // current owner's copy is authoritative.
            _ => {}
        }
    }

    /// The home received `n` duplicate copies of already-committed requests
    /// and refused each with a NACK. Protocol state is untouched — dedup is
    /// exactly what keeps duplicated messages from double-committing.
    pub fn nack(&mut self, n: u32) {
        self.stats.nacks += n as u64;
    }

    /// Current directory state of a block (None = uncached).
    pub fn state(&self, block: u64) -> Option<DirState> {
        self.map.get(&block).copied()
    }

    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// Number of tracked (cached-somewhere) blocks.
    pub fn tracked_blocks(&self) -> usize {
        self.map.len()
    }

    /// Export the directory contents (sorted by block index, so equal maps
    /// export to equal vectors) and stats for checkpointing.
    pub fn export_state(&self) -> crate::state::DirectoryState {
        let mut entries: Vec<(u64, DirState)> =
            self.map.iter().map(|(&b, &s)| (b, s)).collect();
        entries.sort_unstable_by_key(|&(b, _)| b);
        crate::state::DirectoryState { entries, stats: self.stats }
    }

    /// Restore state captured by [`Directory::export_state`], replacing the
    /// current contents.
    pub fn import_state(&mut self, st: &crate::state::DirectoryState) {
        self.map.clear();
        for &(b, s) in &st.entries {
            self.map.insert(b, s);
        }
        self.stats = st.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_is_exclusive_from_memory() {
        let mut d = Directory::new();
        let o = d.read(100, 3);
        assert_eq!(o.source, ReadSource::Memory);
        assert_eq!(d.state(100), Some(DirState::Exclusive(3)));
    }

    #[test]
    fn second_reader_triggers_owner_forward() {
        let mut d = Directory::new();
        d.read(100, 3);
        let o = d.read(100, 5);
        assert_eq!(o.source, ReadSource::Owner(3));
        assert_eq!(d.state(100), Some(DirState::Shared((1 << 3) | (1 << 5))));
        // Third reader now comes from memory (block is shared/clean).
        let o = d.read(100, 7);
        assert_eq!(o.source, ReadSource::Memory);
        assert_eq!(
            d.state(100),
            Some(DirState::Shared((1 << 3) | (1 << 5) | (1 << 7)))
        );
    }

    #[test]
    fn write_to_shared_invalidates_others() {
        let mut d = Directory::new();
        d.read(8, 0);
        d.read(8, 1);
        d.read(8, 2);
        let o = d.write(8, 1);
        assert_eq!(o.invalidate_mask, (1 << 0) | (1 << 2));
        assert!(o.owner_forward.is_none());
        assert!(!o.from_memory, "upgrade: requester already has data");
        assert_eq!(d.state(8), Some(DirState::Exclusive(1)));
        assert_eq!(d.stats().upgrades, 1);
        assert_eq!(d.stats().invalidations, 2);
    }

    #[test]
    fn write_by_non_sharer_fetches_memory() {
        let mut d = Directory::new();
        d.read(8, 0);
        d.read(8, 1); // Shared{0,1}
        let o = d.write(8, 4);
        assert_eq!(o.invalidate_mask, 0b11);
        assert!(o.from_memory);
        assert_eq!(d.state(8), Some(DirState::Exclusive(4)));
    }

    #[test]
    fn write_steals_from_exclusive_owner() {
        let mut d = Directory::new();
        d.write(40, 2);
        let o = d.write(40, 6);
        assert_eq!(o.owner_forward, Some(2));
        assert_eq!(o.invalidate_mask, 1 << 2);
        assert!(!o.from_memory);
        assert_eq!(d.state(40), Some(DirState::Exclusive(6)));
    }

    #[test]
    fn writeback_clears_exclusive_entry() {
        let mut d = Directory::new();
        d.write(40, 2);
        d.writeback(40, 2);
        assert_eq!(d.state(40), None);
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn stale_writeback_is_ignored() {
        let mut d = Directory::new();
        d.write(40, 2);
        d.write(40, 6); // 6 now owns
        d.writeback(40, 2); // stale
        assert_eq!(d.state(40), Some(DirState::Exclusive(6)));
    }

    #[test]
    fn reread_after_silent_eviction_keeps_ownership() {
        let mut d = Directory::new();
        d.read(64, 9);
        // Owner 9's cache silently evicted the clean block; directory is
        // stale. A re-read by 9 must come from memory without deadlock.
        let o = d.read(64, 9);
        assert_eq!(o.source, ReadSource::Memory);
        assert_eq!(d.state(64), Some(DirState::Exclusive(9)));
    }

    #[test]
    fn shared_writeback_removes_only_that_node() {
        let mut d = Directory::new();
        d.read(12, 0);
        d.read(12, 1);
        d.writeback(12, 0);
        assert_eq!(d.state(12), Some(DirState::Shared(1 << 1)));
        d.writeback(12, 1);
        assert_eq!(d.state(12), None);
    }

    #[test]
    fn nacks_count_without_touching_protocol_state() {
        let mut d = Directory::new();
        d.read(9, 1);
        let before = d.state(9);
        d.nack(3);
        assert_eq!(d.state(9), before);
        assert_eq!(d.stats().nacks, 3);
        assert_eq!(d.stats().reads, 1, "a NACK is not a transaction");
    }

    #[test]
    fn read_write_read_sequence() {
        let mut d = Directory::new();
        d.read(1, 0); // E(0)
        d.write(1, 1); // forward from 0, E(1)
        let o = d.read(1, 0); // forward from 1
        assert_eq!(o.source, ReadSource::Owner(1));
        assert_eq!(d.state(1), Some(DirState::Shared(0b11)));
    }
}
