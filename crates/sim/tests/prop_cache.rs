//! Model-based property tests: the tag-array cache must behave exactly
//! like an abstract set-associative LRU reference model on arbitrary
//! access sequences.

use proptest::prelude::*;

use dsm_sim::cache::{Cache, Lookup};
use dsm_sim::config::CacheConfig;

/// Naive reference: per set, an ordered list of (tag, dirty), most recently
/// used last.
struct RefCache {
    sets: Vec<Vec<(u64, bool)>>,
    assoc: usize,
    block_shift: u32,
    set_bits: u32,
}

impl RefCache {
    fn new(n_sets: usize, assoc: usize, block_shift: u32) -> Self {
        Self {
            sets: vec![Vec::new(); n_sets],
            assoc,
            block_shift,
            set_bits: n_sets.trailing_zeros(),
        }
    }

    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let set_idx = ((addr >> self.block_shift) & ((1 << self.set_bits) - 1)) as usize;
        let tag = addr >> (self.block_shift + self.set_bits);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|(t, _)| *t == tag) {
            let (t, d) = set.remove(pos);
            set.push((t, d | write));
            return (true, None);
        }
        let mut writeback = None;
        if set.len() == self.assoc {
            let (vt, vd) = set.remove(0);
            if vd {
                writeback = Some(
                    (vt << (self.block_shift + self.set_bits))
                        | ((set_idx as u64) << self.block_shift),
                );
            }
        }
        set.push((tag, write));
        (false, writeback)
    }
}

fn cfg(sets: u64, assoc: u32) -> CacheConfig {
    CacheConfig { size_bytes: sets * assoc as u64 * 32, assoc, line_bytes: 32, latency_cycles: 1 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(
        accesses in prop::collection::vec((0u64..4096, any::<bool>()), 1..400),
        assoc in 1u32..8,
    ) {
        let sets = 8u64;
        let mut real = Cache::new(cfg(sets, assoc));
        let mut reference = RefCache::new(sets as usize, assoc as usize, 5);
        for (addr, write) in accesses {
            let got = real.access(addr, write);
            let (hit, wb) = reference.access(addr, write);
            match got {
                Lookup::Hit => prop_assert!(hit, "real hit, model miss at {addr:#x}"),
                Lookup::Miss { writeback } => {
                    prop_assert!(!hit, "real miss, model hit at {addr:#x}");
                    prop_assert_eq!(writeback, wb, "writeback mismatch at {:#x}", addr);
                }
            }
        }
    }

    #[test]
    fn invalidate_then_access_misses(
        addr in 0u64..100_000,
        warmup in prop::collection::vec(0u64..100_000, 0..50),
    ) {
        let mut c = Cache::new(cfg(16, 2));
        for a in warmup {
            c.access(a, false);
        }
        c.access(addr, true);
        c.invalidate(addr);
        prop_assert!(!c.probe(addr));
        let miss = matches!(c.access(addr, false), Lookup::Miss { .. });
        prop_assert!(miss);
    }

    #[test]
    fn hit_rate_bounded_and_stats_consistent(
        accesses in prop::collection::vec((0u64..2048, any::<bool>()), 1..200),
    ) {
        let mut c = Cache::new(cfg(8, 4));
        let n = accesses.len() as u64;
        for (a, w) in accesses {
            c.access(a, w);
        }
        prop_assert_eq!(c.hits() + c.misses(), n);
    }
}
