//! Property tests for the directory protocol: on arbitrary operation
//! sequences the directory state machine stays coherent — at most one
//! exclusive owner, writes always end exclusive at the writer, sharer sets
//! only contain live readers.

use proptest::prelude::*;

use dsm_sim::directory::{DirState, Directory, ReadSource};

#[derive(Debug, Clone)]
enum Op {
    Read(usize),
    Write(usize),
    Writeback(usize),
}

fn op_strategy(n_nodes: usize) -> impl Strategy<Value = Op> {
    (0..3u8, 0..n_nodes).prop_map(|(k, node)| match k {
        0 => Op::Read(node),
        1 => Op::Write(node),
        _ => Op::Writeback(node),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn directory_state_stays_coherent(
        ops in prop::collection::vec(op_strategy(8), 1..200),
    ) {
        let mut dir = Directory::new();
        let block = 42u64;
        // Shadow: which nodes could legitimately hold the block.
        let mut holders: u64 = 0;
        for op in ops {
            match op {
                Op::Read(p) => {
                    let o = dir.read(block, p);
                    if let ReadSource::Owner(owner) = o.source {
                        prop_assert_ne!(owner, p, "cannot forward from self");
                        prop_assert!(holders & (1 << owner) != 0, "forward from non-holder");
                    }
                    holders |= 1 << p;
                }
                Op::Write(p) => {
                    let o = dir.write(block, p);
                    prop_assert_eq!(o.invalidate_mask & (1 << p), 0,
                        "never invalidate the requester");
                    prop_assert!(o.invalidate_mask & !holders == 0,
                        "invalidation sent to a node that never held the block");
                    holders = 1 << p;
                    prop_assert_eq!(dir.state(block), Some(DirState::Exclusive(p)));
                }
                Op::Writeback(p) => {
                    dir.writeback(block, p);
                    holders &= !(1 << p);
                }
            }
            // Global invariant: directory never tracks an empty sharer set,
            // and the tracked set is a subset of legitimate holders plus
            // stale entries (stale only possible after writebacks).
            match dir.state(block) {
                Some(DirState::Shared(mask)) => prop_assert!(mask != 0),
                Some(DirState::Exclusive(_)) | None => {}
            }
        }
    }

    #[test]
    fn write_always_wins_ownership(
        readers in prop::collection::vec(0usize..8, 0..20),
        writer in 0usize..8,
    ) {
        let mut dir = Directory::new();
        for r in readers {
            dir.read(7, r);
        }
        let o = dir.write(7, writer);
        prop_assert_eq!(dir.state(7), Some(DirState::Exclusive(writer)));
        // Everyone but the writer must be gone after the invalidations.
        prop_assert_eq!(o.invalidate_mask & (1 << writer), 0);
    }

    #[test]
    fn distinct_blocks_are_independent(
        ops_a in prop::collection::vec(op_strategy(4), 1..50),
    ) {
        let mut with_noise = Directory::new();
        let mut clean = Directory::new();
        for (i, op) in ops_a.iter().enumerate() {
            // Interleave noise traffic on a different block.
            with_noise.read(999, i % 4);
            match op {
                Op::Read(p) => {
                    let a = with_noise.read(5, *p);
                    let b = clean.read(5, *p);
                    prop_assert_eq!(a, b);
                }
                Op::Write(p) => {
                    let a = with_noise.write(5, *p);
                    let b = clean.write(5, *p);
                    prop_assert_eq!(a, b);
                }
                Op::Writeback(p) => {
                    with_noise.writeback(5, *p);
                    clean.writeback(5, *p);
                }
            }
            prop_assert_eq!(with_noise.state(5), clean.state(5));
        }
    }
}
