//! Property tests for [`HomeMap`]: home resolution under every placement
//! policy stays a *partition* of the page space (each page has exactly one
//! home, in range), first-touch assignment is deterministic under replay,
//! migration overrides re-home whole pages without disturbing others, and
//! `export_state`/`import_state` round-trips bit-exactly (the `DSMCKPT5`
//! substrate for mid-tuning resume).

use proptest::prelude::*;

use dsm_sim::addr::{explicit_addr, HomeMap, PAGE_BYTES, PAGE_SHIFT};
use dsm_sim::config::DistributionPolicy;

const POLICIES: [DistributionPolicy; 4] = [
    DistributionPolicy::PageInterleave,
    DistributionPolicy::BlockInterleave,
    DistributionPolicy::FirstTouch,
    DistributionPolicy::Explicit,
];

/// An address within the first `pages` pages that is valid under *every*
/// policy (Explicit encodes the home in the high bits, so synthesize it).
fn addr_for(policy: DistributionPolicy, page: u64, offset: u64, n_nodes: usize) -> u64 {
    let raw = page * PAGE_BYTES + (offset % PAGE_BYTES);
    match policy {
        DistributionPolicy::Explicit => explicit_addr((page % n_nodes as u64) as usize, raw),
        _ => raw,
    }
}

/// The page index [`HomeMap`] keys its tables by for logical page `page`.
/// Under `Explicit` the home bits sit *above* `PAGE_SHIFT`, so the stored
/// key is `(home << 28) | page`, not the plain page number.
fn page_key(policy: DistributionPolicy, page: u64, n_nodes: usize) -> u64 {
    addr_for(policy, page, 0, n_nodes) >> PAGE_SHIFT
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Replaying an identical touch sequence over a fresh map yields
    /// identical homes — first-touch state is a pure function of the
    /// access history (the property the first-touch capture arms rely on).
    #[test]
    fn first_touch_is_deterministic_under_replay(
        touches in prop::collection::vec((0u64..32, 0usize..8), 1..64),
    ) {
        let n = 8;
        let mut a = HomeMap::new(DistributionPolicy::FirstTouch, n);
        let mut b = HomeMap::new(DistributionPolicy::FirstTouch, n);
        let homes_a: Vec<usize> =
            touches.iter().map(|&(p, t)| a.home(p * PAGE_BYTES, t % n)).collect();
        let homes_b: Vec<usize> =
            touches.iter().map(|&(p, t)| b.home(p * PAGE_BYTES, t % n)).collect();
        prop_assert_eq!(&homes_a, &homes_b);
        // Sticky: re-touching by anyone else never moves a decided page.
        for &(p, t) in &touches {
            let first = a.home(p * PAGE_BYTES, 0);
            prop_assert_eq!(a.home(p * PAGE_BYTES, (t + 1) % n), first);
        }
        prop_assert_eq!(a.export_state(), b.export_state());
    }

    /// After arbitrary touches and migrations, homes still partition the
    /// page space: every offset of a migrated page resolves to the override
    /// target, every other page resolves exactly as an untouched map with
    /// the same first-touch history, and every home is in range.
    #[test]
    fn migration_preserves_page_home_partition(
        policy_sel in 0usize..4,
        n_nodes in 1usize..9,
        touches in prop::collection::vec((0u64..16, 0usize..8, 0u64..4096), 0..32),
        migrations in prop::collection::vec((0u64..16, 0usize..8), 1..8),
    ) {
        let policy = POLICIES[policy_sel];
        let mut map = HomeMap::new(policy, n_nodes);
        let mut base = HomeMap::new(policy, n_nodes);
        for &(p, t, off) in &touches {
            let a = addr_for(policy, p, off, n_nodes);
            map.home(a, t % n_nodes);
            base.home(a, t % n_nodes);
        }
        let mut moved: Vec<(u64, usize)> = Vec::new();
        for &(p, h) in &migrations {
            let key = page_key(policy, p, n_nodes);
            let home = h % n_nodes;
            map.set_page_home(key, home);
            moved.retain(|&(q, _)| q != key);
            moved.push((key, home));
        }
        prop_assert_eq!(map.override_count(), moved.len());
        for page in 0..16u64 {
            let key = page_key(policy, page, n_nodes);
            let want_override = moved.iter().find(|&&(p, _)| p == key).map(|&(_, h)| h);
            for off in [0u64, 31, PAGE_BYTES / 2, PAGE_BYTES - 1] {
                let a = addr_for(policy, page, off, n_nodes);
                let got = map.home(a, 0);
                prop_assert!(got < n_nodes);
                match want_override {
                    // Every block of a migrated page follows the override.
                    Some(h) => prop_assert_eq!(got, h),
                    // Unmigrated pages are exactly the base policy.
                    None => prop_assert_eq!(got, base.home(a, 0)),
                }
            }
            if let Some(h) = want_override {
                prop_assert_eq!(map.page_home(key), Some(h));
            }
        }
    }

    /// export → import into a fresh map reproduces resolution and counters
    /// exactly, and re-export is bit-identical (canonical sorted form) —
    /// the invariant `DSMCKPT5` mid-tuning resume rests on.
    #[test]
    fn export_import_roundtrip_is_exact(
        policy_sel in 0usize..4,
        n_nodes in 1usize..9,
        touches in prop::collection::vec((0u64..16, 0usize..8, 0u64..4096), 0..32),
        migrations in prop::collection::vec((0u64..16, 0usize..8), 0..6),
        track in any::<bool>(),
    ) {
        let policy = POLICIES[policy_sel];
        let mut map = HomeMap::new(policy, n_nodes);
        if track {
            map.enable_touch_tracking();
        }
        for &(p, t, off) in &touches {
            let a = addr_for(policy, p, off, n_nodes);
            let toucher = t % n_nodes;
            map.home(a, toucher);
            if track {
                map.note_miss(a, toucher);
            }
        }
        for &(p, h) in &migrations {
            map.set_page_home(p, h % n_nodes);
        }
        let st = map.export_state();
        let mut back = HomeMap::new(policy, n_nodes);
        back.import_state(&st);
        prop_assert_eq!(back.export_state(), st.clone());
        prop_assert_eq!(back.tracking(), map.tracking());
        for page in 0..16u64 {
            for off in [0u64, PAGE_BYTES - 1] {
                let a = addr_for(policy, page, off, n_nodes);
                prop_assert_eq!(back.home(a, 0), map.home(a, 0));
            }
            prop_assert_eq!(back.page_home(page), map.page_home(page));
        }
        // The hot-page ranking (migration's input signal) survives too.
        prop_assert_eq!(back.hot_pages(8), map.hot_pages(8));
        // Export is canonical: page tables come out sorted by page index.
        prop_assert!(st.first_touch.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert!(st.overrides.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert!(st.touches.windows(2).all(|w| w[0].0 < w[1].0));
    }

    /// `hot_pages` is a deterministic top-k: ordered hottest-first with ties
    /// toward the lower page index, `dominant` really is the argmax node,
    /// and `k` truncates without reordering.
    #[test]
    fn hot_pages_ranking_is_deterministic(
        misses in prop::collection::vec((0u64..8, 0usize..4), 1..64),
        k in 1usize..6,
    ) {
        let n = 4;
        let mut map = HomeMap::new(DistributionPolicy::PageInterleave, n);
        map.enable_touch_tracking();
        for &(p, t) in &misses {
            map.note_miss(p * PAGE_BYTES, t % n);
        }
        let all = map.hot_pages(usize::MAX);
        for w in all.windows(2) {
            prop_assert!(
                (w[0].total_misses, std::cmp::Reverse(w[0].page))
                    >= (w[1].total_misses, std::cmp::Reverse(w[1].page))
            );
        }
        for hp in &all {
            prop_assert!(hp.dominant < n);
            prop_assert!(hp.misses <= hp.total_misses);
            let expect: u64 =
                misses.iter().filter(|&&(p, _)| p == hp.page).count() as u64;
            prop_assert_eq!(hp.total_misses, expect);
        }
        prop_assert_eq!(&map.hot_pages(k)[..], &all[..k.min(all.len())]);
        map.reset_touches();
        prop_assert!(map.hot_pages(usize::MAX).is_empty());
    }
}

/// Page-shift sanity pin: the adaptation subsystem's page math assumes 4 KiB.
#[test]
fn page_shift_is_stable() {
    assert_eq!(PAGE_SHIFT, 12);
    assert_eq!(PAGE_BYTES, 4096);
}
