//! Property tests for the fault layer's retry-with-timeout state machine:
//! under *arbitrary* drop/duplicate/spike schedules no request is lost or
//! double-committed, and every delivery terminates within the
//! [`RetryPolicy`] recovery budget.

use proptest::prelude::*;

use dsm_sim::config::{FaultPlan, RetryPolicy, SystemConfig};
use dsm_sim::fault::{resolve_delivery, FaultState, MsgFate};
use dsm_sim::network::Network;

fn fate_strategy() -> impl Strategy<Value = MsgFate> {
    (0..4u8).prop_map(|k| match k {
        0 => MsgFate::Deliver,
        1 => MsgFate::Drop,
        2 => MsgFate::Duplicate,
        _ => MsgFate::Spike,
    })
}

fn policy_strategy() -> impl Strategy<Value = RetryPolicy> {
    (1u64..2_000, 0u64..20_000, 0u32..12).prop_map(|(timeout, cap, retries)| RetryPolicy {
        timeout_cycles: timeout,
        max_backoff_cycles: cap,
        max_retries: retries,
    })
}

/// Replay a schedule through the state machine, defaulting to `Deliver`
/// once the schedule is exhausted (the fabric cannot misbehave forever).
fn run_schedule(
    policy: &RetryPolicy,
    spike: u64,
    now: u64,
    lat: u64,
    schedule: &[MsgFate],
) -> (dsm_sim::fault::Delivery, u32) {
    let mut commits = 0u32;
    let d = resolve_delivery(
        policy,
        spike,
        now,
        |_| lat,
        |attempt| {
            let f = schedule
                .get(attempt as usize - 1)
                .copied()
                .unwrap_or(MsgFate::Deliver);
            // Every fate that ends the state machine commits the protocol
            // action exactly once; count the terminal draws we hand out.
            if f != MsgFate::Drop || attempt > policy.max_retries {
                commits += 1;
            }
            f
        },
    );
    (d, commits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No request is lost: the machine always returns, and it returns
    /// having committed the protocol action exactly once — never zero
    /// times (loss) and never twice (double commit). A duplicate copy is
    /// flagged for the receiver to NACK instead of committing again.
    #[test]
    fn exactly_one_commit_under_arbitrary_schedules(
        policy in policy_strategy(),
        spike in 0u64..1_000,
        now in 0u64..1_000_000,
        lat in 1u64..500,
        schedule in prop::collection::vec(fate_strategy(), 0..64),
    ) {
        let (d, commits) = run_schedule(&policy, spike, now, lat, &schedule);
        prop_assert_eq!(commits, 1, "the terminal fate commits exactly once");
        prop_assert!(d.duplicates <= 1, "at most one extra copy per delivery");
        if d.duplicates == 1 {
            // The duplicated copy must be flagged for a NACK, and the
            // delivery itself is the ordinary (non-escalated) path.
            prop_assert!(!d.forced);
        }
    }

    /// Termination within the bounded cycle budget: attempts never exceed
    /// `max_retries + 1`, and end-to-end latency never exceeds the policy's
    /// worst-case recovery budget plus one transmission and one spike.
    #[test]
    fn termination_within_recovery_budget(
        policy in policy_strategy(),
        spike in 0u64..1_000,
        now in 0u64..1_000_000,
        lat in 1u64..500,
        schedule in prop::collection::vec(fate_strategy(), 0..64),
    ) {
        let (d, _) = run_schedule(&policy, spike, now, lat, &schedule);
        prop_assert!(d.attempts <= policy.max_retries + 1);
        prop_assert!(
            d.latency <= policy.worst_case_recovery_cycles() + lat + spike,
            "latency {} beyond recovery budget {} (+{lat}+{spike})",
            d.latency,
            policy.worst_case_recovery_cycles()
        );
        // Forced deliveries exist only past the retry budget.
        if d.forced {
            prop_assert_eq!(d.attempts, policy.max_retries + 1);
        }
    }

    /// The state machine is a pure function of the schedule: absolute start
    /// time shifts latency bookkeeping but never the outcome shape.
    #[test]
    fn outcome_is_independent_of_start_time(
        policy in policy_strategy(),
        schedule in prop::collection::vec(fate_strategy(), 0..32),
        t0 in 0u64..1_000_000,
        t1 in 0u64..1_000_000,
    ) {
        let (a, _) = run_schedule(&policy, 100, t0, 70, &schedule);
        let (b, _) = run_schedule(&policy, 100, t1, 70, &schedule);
        prop_assert_eq!(a, b);
    }

    /// Backoff is monotone in the attempt number and respects both the
    /// floor (one timeout) and the configured cap.
    #[test]
    fn backoff_is_monotone_and_bounded(policy in policy_strategy()) {
        let mut prev = 0u64;
        for attempt in 1..=policy.max_retries.max(1) + 4 {
            let b = policy.backoff(attempt);
            prop_assert!(b >= policy.timeout_cycles, "backoff below one timeout");
            prop_assert!(
                b <= policy.max_backoff_cycles.max(policy.timeout_cycles),
                "backoff above the cap"
            );
            prop_assert!(b >= prev, "backoff must not shrink with retries");
            prev = b;
        }
    }

    /// End-to-end through [`FaultState::deliver`] on a real network: for
    /// arbitrary ppm mixes every delivery stays within the budget and the
    /// counters reconcile (each drop armed exactly one retry, messages
    /// cover every attempt and duplicate copy).
    #[test]
    fn fault_state_counters_reconcile(
        seed in any::<u64>(),
        drop_ppm in 0u32..400_000,
        duplicate_ppm in 0u32..300_000,
        spike_ppm in 0u32..300_000,
        n_msgs in 1usize..120,
    ) {
        let mut plan = FaultPlan::none();
        plan.seed = seed;
        plan.drop_ppm = drop_ppm;
        plan.duplicate_ppm = duplicate_ppm;
        plan.spike_ppm = spike_ppm;
        plan.spike_cycles = 300;
        prop_assert!(plan.validate().is_ok());
        let mut net = Network::new(SystemConfig::paper(8).network, 8);
        let mut f = FaultState::new(plan);
        let budget = plan.retry.worst_case_recovery_cycles()
            + net.max_one_way(true)
            + plan.spike_cycles;
        let mut attempts = 0u64;
        let mut dups = 0u64;
        for i in 0..n_msgs {
            let d = f.deliver(&mut net, i % 8, (i * 3 + 1) % 8, i % 2 == 0, i as u64 * 37);
            prop_assert!(d.attempts <= plan.retry.max_retries + 1);
            prop_assert!(d.latency <= budget, "latency {} > budget {budget}", d.latency);
            attempts += d.attempts as u64;
            dups += d.duplicates as u64;
        }
        let s = f.stats();
        prop_assert_eq!(s.drops, s.retries, "each drop arms exactly one retry");
        prop_assert_eq!(s.messages, attempts + dups, "every copy is accounted");
        prop_assert_eq!(s.duplicates, dups);
    }
}
