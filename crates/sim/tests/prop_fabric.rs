//! Property tests for the route-aware fabric: every topology produces
//! valid routes at arbitrary (supported) node counts, per-link flit
//! accounting conserves the total flit-hop count under any message
//! schedule, and the fabric is deterministic — bit-identical stats across
//! replays and under [`NetworkStats::absorb`] merging of partial runs.

use proptest::prelude::*;

use dsm_sim::config::SystemConfig;
use dsm_sim::network::{Network, NetworkStats};
use dsm_sim::topology::{Topology, TopologyKind};

/// Pick a node count the layout supports: hypercube and fat-tree need a
/// power of two; the grid/ring layouts accept any `n >= 1`.
fn node_count(kind: TopologyKind, exp: u32, raw: usize) -> usize {
    match kind {
        TopologyKind::Hypercube | TopologyKind::FatTree => 1 << (exp % 6),
        _ => 1 + raw % 64,
    }
}

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    (0..TopologyKind::ALL.len()).prop_map(|k| TopologyKind::ALL[k])
}

/// One message in a synthetic schedule.
#[derive(Debug, Clone)]
struct Msg {
    a_sel: usize,
    b_sel: usize,
    payload: bool,
    /// Issue-time offset; schedules replay with a monotone clock.
    dt: u64,
    /// Replay this transmission as a fault-layer duplicate (no hop count).
    duplicate: bool,
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    (any::<usize>(), any::<usize>(), any::<bool>(), 0u64..200, any::<bool>()).prop_map(
        |(a_sel, b_sel, payload, dt, duplicate)| Msg { a_sel, b_sel, payload, dt, duplicate },
    )
}

fn fabric(kind: TopologyKind, n: usize, contention: bool) -> Network {
    let mut cfg = SystemConfig::paper(2).network;
    cfg.topology = kind;
    cfg.link_contention = contention;
    Network::new(cfg, n)
}

/// Replay a schedule and return the per-message latencies alongside the
/// final statistics.
fn replay(net: &mut Network, schedule: &[Msg]) -> (Vec<u64>, NetworkStats) {
    let n = net.n_nodes();
    let mut now = 0;
    let lat: Vec<u64> = schedule
        .iter()
        .map(|m| {
            now += m.dt;
            let (a, b) = (m.a_sel % n, m.b_sel % n);
            if m.duplicate {
                net.resend_at(a, b, m.payload, now)
            } else {
                net.send_at(a, b, m.payload, now)
            }
        })
        .collect();
    (lat, net.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every route is a contiguous chain of directed links from source to
    /// destination, its length equals `hops`, and no route exceeds the
    /// layout's claimed diameter.
    #[test]
    fn routes_are_valid_on_every_layout(
        kind in kind_strategy(),
        exp in any::<u32>(),
        raw in any::<usize>(),
        pairs in prop::collection::vec((any::<usize>(), any::<usize>()), 1..24),
    ) {
        let n = node_count(kind, exp, raw); // supported by construction
        let topo = kind.build(n);
        let mut route = Vec::new();
        for (a_sel, b_sel) in pairs {
            let (a, b) = (a_sel % n, b_sel % n);
            topo.route_into(a, b, &mut route);
            prop_assert_eq!(route.len() as u32, topo.hops(a, b));
            prop_assert!(topo.hops(a, b) <= topo.diameter());
            let mut cur = a;
            for &link in &route {
                let (from, to) = topo.link_endpoints(link);
                prop_assert_eq!(from, cur, "route breaks at link {}", link);
                cur = to;
            }
            prop_assert_eq!(cur, b, "route does not arrive");
        }
    }

    /// Under any schedule — contended or not, duplicates included — the
    /// per-directed-link flit counters sum exactly to the total flit-hop
    /// count, and the counter vector matches the link table.
    #[test]
    fn flits_are_conserved(
        kind in kind_strategy(),
        exp in any::<u32>(),
        raw in any::<usize>(),
        contention in any::<bool>(),
        schedule in prop::collection::vec(msg_strategy(), 0..48),
    ) {
        let n = node_count(kind, exp, raw); // supported by construction
        let mut net = fabric(kind, n, contention);
        let (_, stats) = replay(&mut net, &schedule);
        prop_assert_eq!(stats.link_flits.len(), net.n_links());
        prop_assert_eq!(
            stats.link_flits.iter().sum::<u64>(),
            stats.total_flit_hops,
            "per-link flits must conserve the flit-hop total"
        );
    }

    /// Replaying the same schedule on a fresh fabric yields bit-identical
    /// latencies and statistics.
    #[test]
    fn replay_is_deterministic(
        kind in kind_strategy(),
        exp in any::<u32>(),
        raw in any::<usize>(),
        contention in any::<bool>(),
        schedule in prop::collection::vec(msg_strategy(), 0..48),
    ) {
        let n = node_count(kind, exp, raw); // supported by construction
        let (lat_a, stats_a) = replay(&mut fabric(kind, n, contention), &schedule);
        let (lat_b, stats_b) = replay(&mut fabric(kind, n, contention), &schedule);
        prop_assert_eq!(lat_a, lat_b);
        prop_assert_eq!(stats_a, stats_b);
    }

    /// Absorb-merging the stats of two partial runs is commutative and
    /// equals the elementwise sum — so sharded captures aggregate to the
    /// same totals regardless of merge order.
    #[test]
    fn absorb_merges_partial_runs(
        kind in kind_strategy(),
        exp in any::<u32>(),
        raw in any::<usize>(),
        s1 in prop::collection::vec(msg_strategy(), 0..24),
        s2 in prop::collection::vec(msg_strategy(), 0..24),
    ) {
        let n = node_count(kind, exp, raw); // supported by construction
        let (_, a) = replay(&mut fabric(kind, n, true), &s1);
        let (_, b) = replay(&mut fabric(kind, n, true), &s2);

        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        prop_assert_eq!(&ab, &ba, "absorb must be commutative");

        prop_assert_eq!(ab.msgs, a.msgs + b.msgs);
        prop_assert_eq!(ab.total_hops, a.total_hops + b.total_hops);
        prop_assert_eq!(ab.total_flit_hops, a.total_flit_hops + b.total_flit_hops);
        for (i, &f) in ab.link_flits.iter().enumerate() {
            let fa = a.link_flits.get(i).copied().unwrap_or(0);
            let fb = b.link_flits.get(i).copied().unwrap_or(0);
            prop_assert_eq!(f, fa + fb, "link {} merges elementwise", i);
        }
        // Conservation survives the merge.
        prop_assert_eq!(ab.link_flits.iter().sum::<u64>(), ab.total_flit_hops);
        prop_assert!(ab.peak_link_flits() >= a.peak_link_flits().max(b.peak_link_flits()));
    }

    /// Stats vectors from *different* topologies still merge: the result is
    /// as long as the longer vector and conserves both totals (the sweep
    /// aggregates per-layout shards this way).
    #[test]
    fn absorb_resizes_across_layouts(
        k1 in kind_strategy(),
        k2 in kind_strategy(),
        schedule in prop::collection::vec(msg_strategy(), 1..24),
    ) {
        let n = 8; // supported by every layout
        let (_, a) = replay(&mut fabric(k1, n, true), &schedule);
        let (_, b) = replay(&mut fabric(k2, n, true), &schedule);
        let mut ab = a.clone();
        ab.absorb(&b);
        prop_assert_eq!(ab.link_flits.len(), a.link_flits.len().max(b.link_flits.len()));
        prop_assert_eq!(ab.link_flits.iter().sum::<u64>(), a.total_flit_hops + b.total_flit_hops);
    }
}
