//! Whole-system property test: arbitrary *well-formed* workloads (random
//! compute/memory mixes with aligned barriers and matched lock pairs) must
//! run to completion with coherent statistics on any machine size.

use proptest::prelude::*;

use dsm_sim::addr::explicit_addr;
use dsm_sim::config::SystemConfig;
use dsm_sim::event::{Event, InstructionStream};
use dsm_sim::observer::NullObserver;
use dsm_sim::system::System;

struct Script {
    events: Vec<Vec<Event>>,
    pos: Vec<usize>,
}

impl InstructionStream for Script {
    fn n_procs(&self) -> usize {
        self.events.len()
    }
    fn next(&mut self, proc: usize) -> Event {
        let i = self.pos[proc];
        if i < self.events[proc].len() {
            self.pos[proc] += 1;
            self.events[proc][i]
        } else {
            Event::End
        }
    }
}

/// A compact recipe for one processor's work between synchronization
/// points.
#[derive(Debug, Clone)]
struct Burst {
    insns: u32,
    fp: u32,
    mem: Vec<(usize, u32, bool)>, // (home, line, write)
    take_lock: bool,
}

fn burst_strategy(n_procs: usize) -> impl Strategy<Value = Burst> {
    (
        1u32..5000,
        0u32..2000,
        prop::collection::vec((0..n_procs, 0u32..64, any::<bool>()), 0..30),
        any::<bool>(),
    )
        .prop_map(|(insns, fp, mem, take_lock)| Burst { insns, fp, mem, take_lock })
}

/// Expand per-proc bursts into event streams with `n_barriers` aligned
/// barriers woven between bursts.
fn build_streams(bursts: &[Vec<Burst>], n_barriers: usize) -> Vec<Vec<Event>> {
    bursts
        .iter()
        .map(|proc_bursts| {
            let mut evs = Vec::new();
            let per_seg = proc_bursts.len() / (n_barriers + 1);
            for (i, b) in proc_bursts.iter().enumerate() {
                evs.push(Event::Block { bb: (i % 11) as u32, insns: b.insns, taken: i % 3 != 0 });
                if b.fp > 0 {
                    evs.push(Event::Fp { ops: b.fp });
                }
                if b.take_lock {
                    evs.push(Event::Acquire { lock: 1 });
                    evs.push(Event::Block { bb: 99, insns: 5, taken: false });
                    evs.push(Event::Release { lock: 1 });
                }
                for &(home, line, write) in &b.mem {
                    evs.push(Event::Mem { addr: explicit_addr(home, line as u64 * 32), write });
                }
                // Barrier after every segment boundary.
                if per_seg > 0 && (i + 1) % per_seg == 0 {
                    let id = ((i + 1) / per_seg - 1) as u32;
                    if (id as usize) < n_barriers {
                        evs.push(Event::Barrier { id });
                    }
                }
            }
            // Everyone arrives at any barrier they haven't hit yet (tail
            // alignment so the run cannot deadlock).
            let hit = evs.iter().filter(|e| matches!(e, Event::Barrier { .. })).count();
            for id in hit..n_barriers {
                evs.push(Event::Barrier { id: id as u32 });
            }
            evs
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_wellformed_workloads_complete_with_sane_stats(
        logp in 0u32..4,
        n_barriers in 0usize..4,
        seed_bursts in prop::collection::vec(burst_strategy(8), 8..40),
    ) {
        let p = 1usize << logp;
        // Same burst pool sliced per proc (lengths equal => barriers align).
        let bursts: Vec<Vec<Burst>> = (0..p)
            .map(|q| {
                seed_bursts
                    .iter()
                    .cloned()
                    .map(|mut b| {
                        b.mem.retain(|(h, _, _)| *h < p);
                        b.insns = b.insns.wrapping_add(q as u32 * 7) % 5000 + 1;
                        b
                    })
                    .collect()
            })
            .collect();
        let events = build_streams(&bursts, n_barriers);
        let total_expected: u64 = events
            .iter()
            .flatten()
            .map(|e| e.nonsync_insns())
            .sum();

        let cfg = SystemConfig::with_interval_base(p, 50_000);
        let sys = System::new(cfg, Script { events, pos: vec![0; p] }, NullObserver);
        let (stats, _) = sys.run();

        prop_assert_eq!(stats.total_insns(), total_expected);
        prop_assert!(stats.finish_cycle >= total_expected / (6 * p as u64));
        for pr in &stats.procs {
            prop_assert!(pr.l1_misses <= pr.mem_refs);
            prop_assert!(pr.l2_misses <= pr.l1_misses);
            prop_assert_eq!(pr.local_home_misses + pr.remote_home_misses, pr.l2_misses);
            prop_assert!(pr.cycles >= pr.insns / 6);
        }
        // Determinism: a second identical run agrees exactly.
        let events2 = build_streams(&bursts, n_barriers);
        let cfg2 = SystemConfig::with_interval_base(p, 50_000);
        let sys2 = System::new(cfg2, Script { events: events2, pos: vec![0; p] }, NullObserver);
        let (stats2, _) = sys2.run();
        prop_assert_eq!(stats, stats2);
    }
}
