//! Property test for the conservative time-window barrier of the sharded
//! core (ISSUE 7): on *every* topology layout, no horizon-gated event may
//! execute at or past its window's horizon, and the horizon must cover the
//! earliest possible cross-shard dependency — the window lookahead can
//! never exceed the minimum uncontended cross-shard delivery latency of
//! the routed fabric. A message sent by another shard inside the current
//! window therefore cannot arrive before the window closes, which is what
//! makes deferring cross-shard observer work to the boundary safe.

use proptest::prelude::*;

use dsm_sim::addr::explicit_addr;
use dsm_sim::config::SystemConfig;
use dsm_sim::event::{Event, InstructionStream};
use dsm_sim::network::Network;
use dsm_sim::observer::NullObserver;
use dsm_sim::shard::{cross_shard_lookahead, ShardLayout};
use dsm_sim::system::System;
use dsm_sim::topology::TopologyKind;

struct Script {
    events: Vec<Vec<Event>>,
    pos: Vec<usize>,
}

impl InstructionStream for Script {
    fn n_procs(&self) -> usize {
        self.events.len()
    }
    fn next(&mut self, proc: usize) -> Event {
        let i = self.pos[proc];
        if i < self.events[proc].len() {
            self.pos[proc] += 1;
            self.events[proc][i]
        } else {
            Event::End
        }
    }
}

/// Mixed compute/memory/sync streams: enough cross-node traffic that the
/// run closes many windows and exercises every gate path.
fn build_streams(p: usize, seed: u64) -> Vec<Vec<Event>> {
    let mut state = seed | 1;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..p)
        .map(|q| {
            let mut evs = Vec::new();
            for i in 0..40 {
                evs.push(Event::Block {
                    bb: (i % 7) as u32,
                    insns: (rng() % 900 + 50) as u32,
                    taken: rng() % 2 == 0,
                });
                // Remote-leaning traffic so deliveries cross shards.
                let home = (q + 1 + rng() as usize % p.max(2)) % p;
                evs.push(Event::Mem {
                    addr: explicit_addr(home, (rng() % 64) * 32),
                    write: rng() % 3 == 0,
                });
                if i % 13 == 5 {
                    evs.push(Event::Acquire { lock: 1 });
                    evs.push(Event::Block { bb: 99, insns: 5, taken: false });
                    evs.push(Event::Release { lock: 1 });
                }
            }
            evs.push(Event::Barrier { id: 0 });
            evs.push(Event::Block { bb: 3, insns: 200, taken: true });
            evs
        })
        .collect()
}

/// Brute-force reference for the lookahead bound: the smallest
/// uncontended one-way delivery latency between any two nodes in
/// different shards.
fn min_cross_shard_latency(net: &Network, layout: &ShardLayout) -> u64 {
    let mut min = u64::MAX;
    for a in 0..layout.n_nodes() {
        for b in 0..layout.n_nodes() {
            if layout.shard_of(a) != layout.shard_of(b) {
                min = min.min(net.latency(a, b, false));
            }
        }
    }
    min
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every topology layout and shard count: every gated event lands
    /// strictly inside its window, the horizon sits exactly one lookahead
    /// past the base, the lookahead never exceeds the fabric's minimum
    /// cross-shard delivery latency, and windows only move forward.
    #[test]
    fn no_event_executes_past_the_conservative_horizon(
        logp in 2u32..4,
        shards_sel in 0usize..3,
        seed in any::<u64>(),
    ) {
        let p = 1usize << logp;
        let shards = [2, 4, p][shards_sel].min(p);
        for kind in TopologyKind::ALL {
            let mut cfg = SystemConfig::with_interval_base(p, 16_000);
            cfg.network.topology = kind;
            let net = Network::new(cfg.network, p);
            let layout = ShardLayout::contiguous(p, shards);
            let lookahead = cross_shard_lookahead(&net, &layout);

            // The conservative bound itself: lookahead never exceeds the
            // earliest possible cross-shard delivery.
            let brute = min_cross_shard_latency(&net, &layout);
            prop_assert!(brute >= 1, "{kind:?}: fabric delivery must cost at least a cycle");
            prop_assert_eq!(
                lookahead, brute,
                "{:?}: lookahead must equal the min cross-shard latency", kind
            );

            let events = build_streams(p, seed);
            let mut sys = System::new(cfg, Script { events, pos: vec![0; p] }, NullObserver);
            sys.enable_sharding(shards);
            sys.enable_window_log();
            sys.run_to_interval(u64::MAX);
            let counters = sys.window_counters();
            prop_assert_eq!(counters.lookahead, lookahead);
            let log = sys.window_events().expect("window log enabled").to_vec();
            prop_assert!(!log.is_empty(), "{kind:?}: gated events must be recorded");
            prop_assert_eq!(counters.gated_events, log.len() as u64);

            let mut prev: Option<dsm_sim::shard::WindowEvent> = None;
            for e in &log {
                prop_assert!(e.shard < layout.n_shards());
                prop_assert!(
                    e.base <= e.cycle && e.cycle < e.horizon,
                    "{:?}: event at cycle {} escaped window [{}, {})",
                    kind, e.cycle, e.base, e.horizon
                );
                prop_assert_eq!(e.horizon, e.base.saturating_add(lookahead));
                if let Some(pr) = prev {
                    prop_assert!(e.window >= pr.window, "{kind:?}: window index went backwards");
                    if e.window == pr.window {
                        prop_assert_eq!(e.base, pr.base);
                        // Global (cycle, id) order means cycles never
                        // regress inside a window either.
                        prop_assert!(e.cycle >= pr.cycle);
                    } else {
                        // A window closes only when a pick crosses the
                        // horizon; the new base is that pick.
                        prop_assert!(
                            e.base >= pr.horizon,
                            "{:?}: window {} reopened before the previous horizon",
                            kind, e.window
                        );
                    }
                }
                prev = Some(*e);
            }
            let (stats, _) = sys.run_to_end();
            prop_assert!(stats.total_insns() > 0);
        }
    }
}
