//! Serve-side diagnosis integration:
//!
//! * the stalled-consumer regression — the sink observes at classification
//!   time, so output-buffer stalls must never desynchronize or skew the
//!   diagnosis window (this is the fix for the tick path losing the
//!   originating interval index when outputs stall);
//! * the `tenant_diagnosis` API surface and its
//!   `serve/tenant/<id>/diagnose/…` metrics;
//! * `ClassifierBank` isolation under mixed degraded/clean interleavings
//!   across tenants.

use dsm_diagnose::NodeTelemetry;
use dsm_phase::detector::{DetectorMode, Thresholds};
use dsm_phase::signature::{ClassifierBank, IntervalSignature};
use dsm_phase::ClassifiedInterval;
use dsm_serve::{Ingest, PhaseServer, ServeConfig, TenantConfig};

fn tcfg(n_procs: usize) -> TenantConfig {
    let mut c =
        TenantConfig::new(n_procs, DetectorMode::BbvDdv, Thresholds { bbv: 0.4, dds: 0.25 });
    c.bbv_entries = 4;
    c
}

fn sig(proc: usize, index: u64, flavor: u64, degraded: bool) -> IntervalSignature {
    let mut bbv = vec![0.0; 4];
    bbv[(flavor % 4) as usize] = 1.0;
    IntervalSignature {
        proc,
        index,
        insns: 1000,
        cycles: 2000 + flavor * 400,
        bbv,
        dds: 10.0 + flavor as f64,
        degraded,
    }
}

/// Per-proc round-robin feed: every proc gets the same number of intervals,
/// proc 1 running a divergent flavor sequence when `divergent` is set.
fn feed(srv: &mut PhaseServer, t: dsm_serve::TenantId, n_procs: usize, len: u64, divergent: bool) {
    for i in 0..len {
        for p in 0..n_procs {
            let flavor = if divergent && p == 1 { 1 + i % 3 } else { 0 };
            assert!(
                matches!(srv.offer(t, sig(p, i, flavor, false)).unwrap(), Ingest::Enqueued { .. }),
                "feed assumes queue capacity covers the stream"
            );
        }
    }
}

#[test]
fn stalled_consumer_never_skews_the_diagnosis_window() {
    // Same stream into two servers: one with an ample output buffer and an
    // eager consumer, one with a tiny buffer and a dribbling consumer that
    // forces repeated classification stalls.
    let smooth_cfg = ServeConfig { diagnose_window: 64, ..ServeConfig::default() };
    let stalled_cfg = ServeConfig {
        diagnose_window: 64,
        output_capacity: 2,
        batch_size: 16,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let mut smooth = PhaseServer::new(smooth_cfg);
    let mut stalled = PhaseServer::new(stalled_cfg);
    let ts = smooth.admit(tcfg(2)).unwrap();
    let tt = stalled.admit(tcfg(2)).unwrap();
    feed(&mut smooth, ts, 2, 12, true);
    feed(&mut stalled, tt, 2, 12, true);

    while smooth.run_batch() > 0 {
        smooth.drain_output(ts, usize::MAX).unwrap();
    }
    loop {
        let n = stalled.run_batch();
        // Dribble one interval per batch: the output buffer stays pinned at
        // capacity, stalling classification over and over.
        stalled.drain_output(tt, 1).unwrap();
        if n == 0 && stalled.queue_depth(tt) == Some(0) {
            break;
        }
    }
    while !stalled.drain_output(tt, usize::MAX).unwrap().is_empty() {}

    let st = stalled.stats(tt).unwrap();
    assert!(st.output_stalls > 0, "scenario must actually exercise stalls");
    assert_eq!(st.classified, 24);

    let a = smooth.tenant_diagnosis(ts, None).unwrap().expect("diagnosis enabled");
    let b = stalled.tenant_diagnosis(tt, None).unwrap().expect("diagnosis enabled");
    assert_eq!(a.realigns, 0, "smooth path must stay index-aligned");
    assert_eq!(b.realigns, 0, "stalls must not break interval-index alignment");
    assert_eq!(a.observed, b.observed);
    assert_eq!(a.diagnosis, b.diagnosis, "stalling the consumer must not change the verdict");
    assert_eq!(a.diagnosis.outliers.len(), 1);
    assert_eq!(a.diagnosis.outliers[0].node, 1);
}

#[test]
fn tenant_diagnosis_surfaces_through_the_api_and_metrics() {
    let cfg =
        ServeConfig { diagnose_window: 32, per_tenant_metrics: true, ..ServeConfig::default() };
    let mut srv = PhaseServer::new(cfg);
    let t = srv.admit(tcfg(2)).unwrap();
    feed(&mut srv, t, 2, 8, true);
    while srv.run_batch() > 0 {
        srv.drain_output(t, usize::MAX).unwrap();
    }

    let telemetry =
        vec![NodeTelemetry::default(), NodeTelemetry { retries: 50, ..NodeTelemetry::default() }];
    let d = srv.tenant_diagnosis(t, Some(&telemetry)).unwrap().expect("enabled");
    assert_eq!(d.tenant, t);
    assert_eq!(d.window, 32);
    assert_eq!(d.observed, 16);
    assert_eq!(d.diagnosis.outliers[0].node, 1);
    assert!(!d.diagnosis.outliers[0].hints.is_empty(), "telemetry produces hints");

    let snap = srv.telemetry_snapshot();
    let get = |name: String| {
        snap.metrics
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("missing metric {name}"))
            .value
            .clone()
    };
    assert_eq!(
        get(format!("serve/tenant/{}/diagnose/observed", t.0)),
        dsm_telemetry::MetricValue::Counter(16)
    );
    assert_eq!(
        get(format!("serve/tenant/{}/diagnose/realigns", t.0)),
        dsm_telemetry::MetricValue::Gauge(0.0)
    );
    assert_eq!(
        get(format!("serve/tenant/{}/diagnose/outliers", t.0)),
        dsm_telemetry::MetricValue::Gauge(1.0)
    );
}

#[test]
fn diagnosis_disabled_by_default() {
    let mut srv = PhaseServer::new(ServeConfig::default());
    let t = srv.admit(tcfg(1)).unwrap();
    srv.offer(t, sig(0, 0, 0, false)).unwrap();
    srv.run_batch();
    assert_eq!(srv.tenant_diagnosis(t, None).unwrap(), None);
}

#[test]
fn classifier_bank_is_isolated_under_mixed_degraded_interleavings() {
    // Three tenants, each with its own degraded pattern, offered round-robin
    // so the server interleaves their batches. Each tenant's served output
    // must be bit-identical to a standalone ClassifierBank fed only that
    // tenant's sequence — degraded flags included.
    let mut srv = PhaseServer::new(ServeConfig { shards: 2, ..ServeConfig::default() });
    let cfgs = [tcfg(2), tcfg(2), tcfg(2)];
    let ids: Vec<_> = cfgs.iter().map(|c| srv.admit(*c).unwrap()).collect();
    // Tenant k degrades intervals where (i + k) % (k + 2) == 0 — three
    // different clean/degraded interleavings.
    let degraded_at = |k: usize, i: u64| (i + k as u64) % (k as u64 + 2) == 0;

    let mut sent: Vec<Vec<IntervalSignature>> = vec![Vec::new(); 3];
    for i in 0..10u64 {
        for (k, &t) in ids.iter().enumerate() {
            for p in 0..2 {
                let s = sig(p, i, (i + k as u64) % 3, degraded_at(k, i));
                sent[k].push(s.clone());
                assert!(matches!(srv.offer(t, s).unwrap(), Ingest::Enqueued { .. }));
            }
        }
    }
    while srv.run_batch() > 0 {}

    for (k, &t) in ids.iter().enumerate() {
        let served = srv.drain_output(t, usize::MAX).unwrap();
        let c = cfgs[k];
        let mut bank = ClassifierBank::new(c.n_procs, c.mode, c.thresholds, c.footprint_vectors);
        let expected: Vec<ClassifiedInterval> =
            sent[k].iter().map(|s| bank.classify_signature(s)).collect();
        assert_eq!(served, expected, "tenant {t} diverged from standalone bank");
        // The degraded flags came through exactly as offered.
        let flags: Vec<bool> = served.iter().map(|c| c.degraded).collect();
        let offered_flags: Vec<bool> = sent[k].iter().map(|s| s.degraded).collect();
        assert_eq!(flags, offered_flags);
    }
}
