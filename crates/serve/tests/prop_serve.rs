//! Property suite for the streaming phase server.
//!
//! Three invariants, over arbitrary tenant fleets and arrival schedules:
//!
//! 1. **Interleaving invariance** — per-tenant state is fully isolated, so
//!    any interleaving of N tenants' arrivals yields each tenant the exact
//!    classification stream a solo run yields.
//! 2. **Backpressure conservation** — `accepted + rejected == offered`,
//!    and every accepted signature is accounted for at eviction as
//!    classified-or-pending, every classification as delivered-or-
//!    undelivered. Nothing is ever dropped silently.
//! 3. **Determinism** — a fixed seed and schedule reproduce byte-identical
//!    outputs, reports, and latency percentiles.

use proptest::prelude::*;

use dsm_phase::detector::{DetectorMode, Thresholds};
use dsm_phase::ClassifiedInterval;
use dsm_serve::{Ingest, PhaseServer, ServeConfig, SynthStream, TenantConfig, TenantId};

const THR: Thresholds = Thresholds { bbv: 0.4, dds: 0.25 };

fn tenant_cfg() -> TenantConfig {
    TenantConfig::new(1, DetectorMode::BbvDdv, THR)
}

/// Admit one tenant per stream and feed signatures following `schedule`
/// (a sequence of tenant indices; each occurrence sends that tenant's next
/// signature, retrying through backpressure). Returns per-tenant outputs.
fn feed(
    cfg: ServeConfig,
    streams: &[(SynthStream, usize)],
    schedule: &[usize],
) -> (PhaseServer, Vec<TenantId>, Vec<Vec<ClassifiedInterval>>) {
    feed_threaded(cfg, streams, schedule, 1)
}

/// [`feed`], with batches run on up to `threads` host threads.
fn feed_threaded(
    cfg: ServeConfig,
    streams: &[(SynthStream, usize)],
    schedule: &[usize],
    threads: usize,
) -> (PhaseServer, Vec<TenantId>, Vec<Vec<ClassifiedInterval>>) {
    let mut srv = PhaseServer::new(cfg);
    let ids: Vec<TenantId> = streams.iter().map(|_| srv.admit(tenant_cfg()).unwrap()).collect();
    let mut out: Vec<Vec<ClassifiedInterval>> = vec![Vec::new(); streams.len()];
    let mut next = vec![0u64; streams.len()];

    let drain_all =
        |srv: &mut PhaseServer, out: &mut Vec<Vec<ClassifiedInterval>>, ids: &[TenantId]| {
            for (k, &id) in ids.iter().enumerate() {
                out[k].extend(srv.drain_output(id, usize::MAX).unwrap());
            }
        };

    // The schedule, then each tenant's leftovers in tenant order: every
    // signature is sent exactly once regardless of the schedule's shape.
    let full: Vec<usize> = schedule
        .iter()
        .copied()
        .chain((0..streams.len()).flat_map(|k| std::iter::repeat_n(k, streams[k].1)))
        .collect();
    for k in full {
        let (stream, len) = streams[k];
        if next[k] as usize >= len {
            continue;
        }
        let sig = stream.signature(0, next[k]);
        loop {
            match srv.offer(ids[k], sig.clone()).unwrap() {
                Ingest::Enqueued { .. } => break,
                Ingest::Busy => {
                    srv.run_batch_parallel(threads);
                    drain_all(&mut srv, &mut out, &ids);
                }
            }
        }
        next[k] += 1;
    }
    while srv.run_batch_parallel(threads) > 0 {
        drain_all(&mut srv, &mut out, &ids);
    }
    drain_all(&mut srv, &mut out, &ids);
    (srv, ids, out)
}

fn arb_fleet() -> impl Strategy<Value = Vec<(u64, usize)>> {
    prop::collection::vec((0u64..1_000, 1usize..40), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any arrival interleaving gives each tenant its solo classification.
    #[test]
    fn interleaving_invariance(
        fleet in arb_fleet(),
        schedule in prop::collection::vec(0usize..6, 0..120),
    ) {
        let streams: Vec<(SynthStream, usize)> = fleet
            .iter()
            .map(|&(seed, len)| (SynthStream::new(seed, 1, 32), len))
            .collect();
        let schedule: Vec<usize> = schedule.iter().map(|&s| s % streams.len()).collect();
        let cfg = ServeConfig { shards: 3, queue_capacity: 4, batch_size: 2, ..ServeConfig::default() };
        let (_, _, interleaved) = feed(cfg, &streams, &schedule);
        for (k, stream) in streams.iter().enumerate() {
            let (_, _, solo) = feed(ServeConfig::default(), &[*stream], &[]);
            prop_assert_eq!(&interleaved[k], &solo[0], "tenant {} diverged from solo run", k);
        }
    }

    /// Offered = accepted + rejected; accepted = classified + pending;
    /// classified = delivered + undelivered. Checked mid-flight (without
    /// retries, Busy outcomes stay rejected) and at eviction.
    #[test]
    fn backpressure_conservation(
        fleet in arb_fleet(),
        queue_capacity in 1usize..5,
        batches_every in 1usize..8,
    ) {
        let cfg = ServeConfig {
            queue_capacity,
            output_capacity: 4,
            batch_size: 2,
            ..ServeConfig::default()
        };
        let mut srv = PhaseServer::new(cfg);
        let ids: Vec<TenantId> =
            fleet.iter().map(|_| srv.admit(tenant_cfg()).unwrap()).collect();
        let mut offered = vec![0u64; fleet.len()];
        let mut accepted = vec![0u64; fleet.len()];
        let mut rejected = vec![0u64; fleet.len()];
        let mut delivered = vec![0u64; fleet.len()];
        let mut sent = 0usize;
        for (k, &(seed, len)) in fleet.iter().enumerate() {
            let stream = SynthStream::new(seed, 1, 32);
            for i in 0..len as u64 {
                offered[k] += 1;
                match srv.offer(ids[k], stream.signature(0, i)).unwrap() {
                    Ingest::Enqueued { .. } => accepted[k] += 1,
                    Ingest::Busy => rejected[k] += 1, // caller drops it: still counted
                }
                sent += 1;
                if sent.is_multiple_of(batches_every) {
                    srv.run_batch();
                    // Drain only even tenants: odd ones model slow consumers.
                    for (j, &id) in ids.iter().enumerate().filter(|(j, _)| j % 2 == 0) {
                        delivered[j] += srv.drain_output(id, usize::MAX).unwrap().len() as u64;
                    }
                }
            }
        }
        let mut total_pending = 0u64;
        for (k, &id) in ids.iter().enumerate() {
            let s = srv.stats(id).unwrap();
            prop_assert_eq!(s.offered, offered[k]);
            prop_assert_eq!(s.accepted + s.rejected, s.offered, "conservation violated");
            prop_assert_eq!(s.accepted, accepted[k]);
            prop_assert_eq!(s.rejected, rejected[k]);
            prop_assert!(s.queue_high_water <= queue_capacity as u64);
            let summary = srv.evict(id).unwrap();
            // Every accepted signature is classified or explicitly pending;
            // every classification delivered or explicitly undelivered.
            prop_assert_eq!(summary.stats.classified + summary.pending, s.accepted);
            prop_assert_eq!(summary.stats.delivered + summary.undelivered, summary.stats.classified);
            prop_assert_eq!(summary.stats.delivered, delivered[k]);
            total_pending += summary.pending;
        }
        prop_assert_eq!(srv.live_tenants(), 0);
        prop_assert_eq!(srv.resident_footprint_vectors(), 0, "evicted state leaked");
        let totals = srv.totals();
        prop_assert_eq!(totals.offered, totals.accepted + totals.rejected);
        prop_assert_eq!(totals.classified + total_pending, totals.accepted);
    }

    /// Same seed, same schedule → byte-identical everything, at any shard
    /// parallelism.
    #[test]
    fn deterministic_under_fixed_seed(
        fleet in arb_fleet(),
        schedule in prop::collection::vec(0usize..6, 0..60),
        threads in 1usize..5,
    ) {
        let streams: Vec<(SynthStream, usize)> = fleet
            .iter()
            .map(|&(seed, len)| (SynthStream::new(seed, 1, 32), len))
            .collect();
        let schedule: Vec<usize> = schedule.iter().map(|&s| s % streams.len()).collect();
        let cfg = ServeConfig { shards: 4, queue_capacity: 3, batch_size: 2, ..ServeConfig::default() };
        let (srv_a, _, out_a) = feed(cfg, &streams, &schedule);
        let (srv_b, _, out_b) = feed(cfg, &streams, &schedule);
        prop_assert_eq!(&out_a, &out_b, "rerun diverged");
        prop_assert_eq!(srv_a.report(), srv_b.report());
        prop_assert_eq!(
            srv_a.latency_percentiles(&[0.5, 0.99, 0.999]),
            srv_b.latency_percentiles(&[0.5, 0.99, 0.999])
        );
        // Shard-parallel batches reproduce the serial run exactly —
        // outputs, report, and latency distribution.
        let (srv_p, _, out_p) = feed_threaded(cfg, &streams, &schedule, threads);
        prop_assert_eq!(&out_a, &out_p, "parallel batches diverged from serial");
        prop_assert_eq!(srv_a.report(), srv_p.report());
    }
}
