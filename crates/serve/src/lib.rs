//! # dsm-serve — phase detection as a service
//!
//! The paper's detector runs *online*, classifying interval signatures as
//! the program executes. This crate productionizes that: the classify half
//! of the detector (extracted into
//! [`dsm_phase::signature::ClassifierBank`]) behind a streaming,
//! multi-tenant sink. One tenant = one replayed workload run (or synthetic
//! stream); per-tenant footprint-table state lives in sharded slot tables;
//! ingest is bounded with explicit backpressure; classification is batched
//! across tenants and can run shard-parallel, bit-identically to the
//! serial schedule.
//!
//! * [`server`] — [`PhaseServer`]: admit/offer/run_batch/drain/evict, with
//!   conservation-checked accounting and tick-based deterministic latency.
//! * [`tenant`] — per-tenant configuration, state, and accounting. With
//!   [`ServeConfig::diagnose_window`] set, each tenant also carries a
//!   [`dsm_diagnose::DiagnosisSink`] fed at classification time —
//!   upstream of the output buffer, so a stalled consumer never skews the
//!   diagnosis window — surfaced via
//!   [`PhaseServer::tenant_diagnosis`](server::PhaseServer::tenant_diagnosis).
//! * [`synth`] — deterministic phase-structured synthetic signature
//!   streams for load beyond what the trace corpus holds.
//!
//! Correctness is pinned two ways: the crate-level tests here, and the
//! repo-level `serve_differential` suite proving a single tenant replayed
//! through the server classifies bit-identically to the in-simulator
//! [`OnlineDetector`](dsm_phase::OnlineDetector) on all five workloads —
//! degraded flags included — because both run the *same* kernel.

pub mod server;
pub mod synth;
pub mod tenant;

pub use server::{
    AdmitError, Ingest, PhaseServer, ServeConfig, ServeError, ServerReport, TenantDiagnosis,
};
pub use synth::SynthStream;
pub use tenant::{TenantConfig, TenantId, TenantStats, TenantSummary};
