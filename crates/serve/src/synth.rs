//! Deterministic synthetic signature streams.
//!
//! Replayed traces cover fidelity; scale needs thousands of tenants, far
//! more than the trace store holds. A [`SynthStream`] is a pure function
//! from `(seed, proc, index)` to an [`IntervalSignature`] with realistic
//! phase structure: the stream cycles through `phases` stable base
//! signatures in runs of `run_len` intervals, with per-interval jitter well
//! under the classification thresholds — so a correctly working server
//! assigns each tenant a small stable phase vocabulary, and any two runs of
//! the same seed are bit-identical.

use dsm_phase::signature::IntervalSignature;

/// Local splitmix64 (matches `dsm_sim::util::splitmix64`; re-implemented so
/// this crate does not need the simulator).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1) from a hash.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic phase-structured signature generator for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthStream {
    pub seed: u64,
    pub n_procs: usize,
    pub bbv_entries: usize,
    /// Distinct stable phases the stream cycles through.
    pub phases: u64,
    /// Intervals per phase run before switching.
    pub run_len: u64,
}

impl SynthStream {
    pub fn new(seed: u64, n_procs: usize, bbv_entries: usize) -> Self {
        Self { seed, n_procs, bbv_entries, phases: 4, run_len: 8 }
    }

    /// Which phase interval `index` belongs to.
    pub fn phase_of(&self, index: u64) -> u64 {
        (index / self.run_len) % self.phases
    }

    /// The signature of interval `index` on `proc`. Pure: same arguments,
    /// same bits, on any call order.
    pub fn signature(&self, proc: usize, index: u64) -> IntervalSignature {
        assert!(proc < self.n_procs);
        let phase = self.phase_of(index);
        // Stable per-phase base BBV: positive weights, normalized below.
        let mut bbv = vec![0.0f64; self.bbv_entries];
        for (e, w) in bbv.iter_mut().enumerate() {
            let h = splitmix64(self.seed ^ phase.wrapping_mul(0x517c_c1b7_2722_0a95) ^ e as u64);
            // Sparse-ish: a quarter of the entries carry most of the mass.
            *w = if h.is_multiple_of(4) { 1.0 + unit(splitmix64(h)) } else { 0.05 * unit(h) };
        }
        // Per-interval jitter far below the BBV threshold, then normalize.
        let j = splitmix64(
            self.seed ^ ((proc as u64) << 32) ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d),
        );
        bbv[(j as usize) % self.bbv_entries] += 1e-3 * unit(splitmix64(j));
        let total: f64 = bbv.iter().sum();
        for w in &mut bbv {
            *w /= total;
        }
        // Per-phase DDS with sub-threshold relative jitter.
        let dds_base = 8.0 + 6.0 * phase as f64;
        let dds = dds_base * (1.0 + 0.01 * (unit(splitmix64(j ^ 0xabcd)) - 0.5));
        // CPI varies by phase; insns fixed at a paper-like interval length.
        let insns = 16_000u64;
        let cycles = (insns as f64 * (1.2 + 0.3 * phase as f64)) as u64 + (j % 32);
        IntervalSignature { proc, index, insns, cycles, bbv, dds, degraded: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Ingest, PhaseServer, ServeConfig};
    use crate::tenant::TenantConfig;
    use dsm_phase::detector::{DetectorMode, Thresholds};

    #[test]
    fn deterministic_and_normalized() {
        let s = SynthStream::new(42, 2, 32);
        let a = s.signature(1, 17);
        let b = s.signature(1, 17);
        assert_eq!(a, b);
        let sum: f64 = a.bbv.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "bbv normalized, got {sum}");
        assert!(a.dds > 0.0);
        assert_ne!(a, s.signature(0, 17), "procs jitter independently");
        assert_ne!(a, SynthStream::new(43, 2, 32).signature(1, 17), "seed matters");
    }

    #[test]
    fn phase_structure_classifies_stably() {
        let s = SynthStream::new(7, 1, 32);
        let mut srv = PhaseServer::new(ServeConfig::default());
        let t = srv
            .admit(TenantConfig::new(
                1,
                DetectorMode::BbvDdv,
                Thresholds { bbv: 0.4, dds: 0.25 },
            ))
            .unwrap();
        let mut out = Vec::new();
        for i in 0..(s.phases * s.run_len * 2) {
            assert!(matches!(srv.offer(t, s.signature(0, i)).unwrap(), Ingest::Enqueued { .. }));
            if i % 8 == 7 {
                srv.run_batch();
                out.extend(srv.drain_output(t, usize::MAX).unwrap());
            }
        }
        srv.run_batch();
        out.extend(srv.drain_output(t, usize::MAX).unwrap());
        assert_eq!(out.len(), (s.phases * s.run_len * 2) as usize);
        // Exactly `phases` distinct phase ids, each new exactly once, and
        // the second cycle re-detects the first cycle's ids.
        let new_count = out.iter().filter(|c| c.is_new_phase).count() as u64;
        assert_eq!(new_count, s.phases, "each synthetic phase detected once");
        let ids: std::collections::BTreeSet<u32> = out.iter().map(|c| c.phase_id).collect();
        assert_eq!(ids.len() as u64, s.phases);
        for (i, c) in out.iter().enumerate() {
            assert_eq!(
                c.phase_id,
                out[i % (s.phases * s.run_len) as usize].phase_id,
                "cycle 2 must repeat cycle 1 at interval {i}"
            );
        }
    }
}
