//! Per-tenant state: configuration, detector bank, bounded queues, and the
//! conservation-checked ingest accounting.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use dsm_diagnose::{DiagnoseConfig, DiagnosisSink};
use dsm_phase::detector::{DetectorMode, Thresholds};
use dsm_phase::signature::{ClassifierBank, IntervalSignature};
use dsm_phase::ClassifiedInterval;
use dsm_telemetry::{CounterId, GaugeId, HistId, MetricsRegistry};

/// Opaque tenant handle. Ids are allocated monotonically by the server and
/// never reused, so a stale handle to an evicted tenant can only miss — it
/// can never alias a later tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Everything the server needs to know about a tenant's detector: the shape
/// of its machine and the classifier knobs. One tenant = one replayed
/// workload run (or synthetic stream) = one bank of per-processor footprint
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TenantConfig {
    /// Processors in the tenant's machine; signatures carry a `proc` index
    /// that must stay below this.
    pub n_procs: usize,
    pub mode: DetectorMode,
    pub thresholds: Thresholds,
    /// Footprint-table capacity per processor (32 in the paper).
    pub footprint_vectors: usize,
    /// BBV accumulator entries; every ingested signature's `bbv` must have
    /// exactly this length.
    pub bbv_entries: usize,
}

impl TenantConfig {
    /// Paper-default geometry (32-entry BBV, 32-vector footprint table).
    pub fn new(n_procs: usize, mode: DetectorMode, thresholds: Thresholds) -> Self {
        Self {
            n_procs,
            mode,
            thresholds,
            footprint_vectors: dsm_phase::DEFAULT_FOOTPRINT_VECTORS,
            bbv_entries: dsm_phase::DEFAULT_BBV_ENTRIES,
        }
    }
}

/// Ingest/classify/deliver accounting for one tenant. The conservation
/// invariant — `accepted + rejected == offered`, and every accepted
/// signature is eventually `classified` or reported as `pending` at evict —
/// is what "no signature dropped silently" means; the property suite pins
/// it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Signatures presented to `offer`.
    pub offered: u64,
    /// Signatures enqueued (`Ingest::Enqueued`).
    pub accepted: u64,
    /// Signatures refused with `Ingest::Busy` (queue full). The caller
    /// still owns them; nothing is dropped.
    pub rejected: u64,
    /// Signatures classified out of the ingest queue.
    pub classified: u64,
    /// Classified intervals handed to the caller via `drain_output`.
    pub delivered: u64,
    /// Highest ingest-queue depth ever observed.
    pub queue_high_water: u64,
    /// Highest output-buffer depth ever observed.
    pub output_high_water: u64,
    /// Batch steps that halted early because the output buffer was full
    /// (slow consumer): classification stalls rather than dropping output.
    pub output_stalls: u64,
}

impl TenantStats {
    /// Fold another tenant's counters into this aggregate (high-waters max,
    /// everything else sums).
    pub fn absorb(&mut self, other: &TenantStats) {
        self.offered += other.offered;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.classified += other.classified;
        self.delivered += other.delivered;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.output_high_water = self.output_high_water.max(other.output_high_water);
        self.output_stalls += other.output_stalls;
    }
}

/// What `evict` hands back: final accounting plus explicit counts of work
/// that was in flight, so nothing disappears silently with the tenant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    pub id: TenantId,
    pub stats: TenantStats,
    /// Accepted signatures still queued (never classified).
    pub pending: u64,
    /// Classified intervals never drained by the caller.
    pub undelivered: u64,
    /// Footprint-table capacity released back to the server.
    pub footprint_vectors: usize,
}

/// Per-tenant metric ids, registered once at admit under
/// `serve/tenant/<id>/...` via the scoped registry (only when the server is
/// configured with `per_tenant_metrics`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TenantProbes {
    pub offered: CounterId,
    pub classified: CounterId,
    pub busy: CounterId,
    pub queue_depth: GaugeId,
    pub latency: HistId,
    /// Intervals the diagnosis sink has observed
    /// (`serve/tenant/<id>/diagnose/observed`).
    pub diag_observed: CounterId,
    /// Window re-anchors after a non-consecutive interval index — zero on a
    /// correct producer (`serve/tenant/<id>/diagnose/realigns`).
    pub diag_realigns: GaugeId,
    /// Outliers in the most recent on-demand diagnosis
    /// (`serve/tenant/<id>/diagnose/outliers`).
    pub diag_outliers: GaugeId,
}

impl TenantProbes {
    pub(crate) fn register(reg: &mut MetricsRegistry, id: TenantId) -> Self {
        let mut scope = reg.scoped(&format!("serve/tenant/{}", id.0));
        Self {
            offered: scope.counter("offered"),
            classified: scope.counter("classified"),
            busy: scope.counter("busy"),
            queue_depth: scope.gauge("queue_depth"),
            latency: scope.histogram("latency_ticks"),
            diag_observed: scope.counter("diagnose/observed"),
            diag_realigns: scope.gauge("diagnose/realigns"),
            diag_outliers: scope.gauge("diagnose/outliers"),
        }
    }
}

/// A live tenant: its bank, its bounded queues, and its accounting.
#[derive(Debug)]
pub(crate) struct TenantState {
    pub id: TenantId,
    pub cfg: TenantConfig,
    pub bank: ClassifierBank,
    /// Ingest queue: `(arrival_tick, signature)`, FIFO, bounded by the
    /// server's `queue_capacity`.
    pub queue: VecDeque<(u64, IntervalSignature)>,
    /// Classified intervals awaiting `drain_output`, bounded by
    /// `output_capacity`.
    pub output: VecDeque<ClassifiedInterval>,
    pub stats: TenantStats,
    pub probes: Option<TenantProbes>,
    /// Cross-node similarity state, fed at classification time (never from
    /// the drain path, so a stalled consumer cannot skew the window). `None`
    /// when the server runs with `diagnose_window == 0`.
    pub diag: Option<DiagnosisSink>,
}

impl TenantState {
    pub(crate) fn new(
        id: TenantId,
        cfg: TenantConfig,
        probes: Option<TenantProbes>,
        diagnose_window: usize,
    ) -> Self {
        Self {
            id,
            cfg,
            bank: ClassifierBank::new(
                cfg.n_procs,
                cfg.mode,
                cfg.thresholds,
                cfg.footprint_vectors,
            ),
            queue: VecDeque::new(),
            output: VecDeque::new(),
            stats: TenantStats::default(),
            probes,
            diag: (diagnose_window > 0)
                .then(|| DiagnosisSink::new(cfg.n_procs, diagnose_window, DiagnoseConfig::default())),
        }
    }
}
