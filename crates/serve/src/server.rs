//! The streaming phase-classification server.
//!
//! ## Model
//!
//! The server is a synchronous sink with an explicit batch clock. Callers
//! [`offer`](PhaseServer::offer) interval signatures for a tenant and
//! observe [`Ingest::Enqueued`] or [`Ingest::Busy`] (bounded queue —
//! backpressure, never silent drops); [`run_batch`](PhaseServer::run_batch)
//! advances one logical tick and classifies up to `batch_size` queued
//! signatures per tenant; [`drain_output`](PhaseServer::drain_output)
//! hands classified intervals back. A tenant whose consumer is slow fills
//! its bounded output buffer and classification for it *stalls* (counted)
//! instead of dropping results.
//!
//! ## Determinism
//!
//! Everything is keyed to the logical tick, not wall time: ingest-to-
//! classify latency is `classify_tick - arrival_tick`. Batches visit shards
//! and slots in index order, and [`run_batch_parallel`](PhaseServer::run_batch_parallel)
//! runs whole shards on separate host threads — shards share no tenant
//! state, and results are merged in shard order, so the parallel batch is
//! bit-identical to the serial one at any thread count.

use std::collections::HashMap;

use dsm_diagnose::{Diagnosis, NodeTelemetry};
use dsm_phase::signature::IntervalSignature;
use dsm_phase::ClassifiedInterval;
use dsm_telemetry::{MetricsRegistry, Snapshot, SpanSink};

use crate::tenant::{TenantConfig, TenantId, TenantProbes, TenantState, TenantStats, TenantSummary};

/// Server sizing and policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Tenant shards. Tenants land on shard `id % shards`; batches may
    /// process shards on separate host threads.
    pub shards: usize,
    /// Per-tenant ingest-queue bound; offers beyond it observe
    /// [`Ingest::Busy`].
    pub queue_capacity: usize,
    /// Per-tenant output-buffer bound; classification stalls (never drops)
    /// when a slow consumer lets it fill.
    pub output_capacity: usize,
    /// Max signatures classified per tenant per batch.
    pub batch_size: usize,
    /// Admission bound on concurrently live tenants.
    pub max_tenants: usize,
    /// Register per-tenant counters/gauges/histograms under
    /// `serve/tenant/<id>/...`. Costs registry space per tenant; off for
    /// large fleets, on for debugging a few tenants.
    pub per_tenant_metrics: bool,
    /// Cross-node diagnosis window in intervals per node; `0` disables the
    /// per-tenant [`DiagnosisSink`](dsm_diagnose::DiagnosisSink). The sink
    /// observes intervals at classification time — upstream of the output
    /// buffer — so a slow consumer stalls delivery but never the diagnosis
    /// window.
    pub diagnose_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            queue_capacity: 64,
            output_capacity: 256,
            batch_size: 32,
            max_tenants: 4096,
            per_tenant_metrics: false,
            diagnose_window: 0,
        }
    }
}

/// Outcome of an [`offer`](PhaseServer::offer): the signature was either
/// queued or refused. `Busy` means the caller still owns the signature and
/// may retry after a batch — backpressure is explicit, nothing is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ingest {
    /// Enqueued; `depth` is the queue depth after the push.
    Enqueued { depth: usize },
    /// Ingest queue full; retry after `run_batch`.
    Busy,
}

/// A structurally invalid request (unknown tenant, malformed signature).
/// Distinct from [`Ingest::Busy`], which is a valid request at a bad time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    UnknownTenant(TenantId),
    /// Signature's `proc` is outside the tenant's machine.
    BadProc { tenant: TenantId, proc: usize, n_procs: usize },
    /// Signature's BBV length does not match the tenant's configured
    /// accumulator size.
    BadBbvLen { tenant: TenantId, len: usize, expected: usize },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(id) => write!(f, "unknown tenant {id}"),
            ServeError::BadProc { tenant, proc, n_procs } => {
                write!(f, "tenant {tenant}: proc {proc} outside machine of {n_procs}")
            }
            ServeError::BadBbvLen { tenant, len, expected } => {
                write!(f, "tenant {tenant}: bbv length {len}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Admission refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The server is at `max_tenants` live tenants.
    AtCapacity { max_tenants: usize },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::AtCapacity { max_tenants } => {
                write!(f, "server at capacity ({max_tenants} tenants)")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// One tenant shard: a slab of tenant slots (freelist-reused), its own
/// metrics registry and span track, and the shard's latency samples.
#[derive(Debug)]
struct Shard {
    slots: Vec<Option<TenantState>>,
    free: Vec<usize>,
    reg: MetricsRegistry,
    spans: SpanSink,
    /// Ingest-to-classify latencies in ticks, in classification order.
    latencies: Vec<u64>,
}

impl Shard {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            reg: MetricsRegistry::new(),
            spans: SpanSink::new(1, dsm_telemetry::DEFAULT_RING_CAPACITY),
            latencies: Vec::new(),
        }
    }

    /// Classify up to `batch_size` queued signatures for every tenant in
    /// this shard, in slot order. Returns the number classified.
    fn run_batch(&mut self, tick: u64, batch_size: usize, output_capacity: usize) -> u64 {
        let mut classified = 0u64;
        for slot in self.slots.iter_mut().flatten() {
            let mut done = 0usize;
            while done < batch_size {
                if slot.output.len() >= output_capacity {
                    // Slow consumer: stall, keep the signature queued.
                    slot.stats.output_stalls += 1;
                    break;
                }
                let Some((arrival, sig)) = slot.queue.pop_front() else {
                    break;
                };
                let c = slot.bank.classify_signature(&sig);
                if let Some(d) = slot.diag.as_mut() {
                    d.observe(&c);
                    if let Some(p) = slot.probes {
                        self.reg.add(p.diag_observed, 1);
                        self.reg.set(p.diag_realigns, d.realigns() as f64);
                    }
                }
                slot.output.push_back(c);
                slot.stats.classified += 1;
                slot.stats.output_high_water =
                    slot.stats.output_high_water.max(slot.output.len() as u64);
                let latency = tick - arrival;
                self.latencies.push(latency);
                if let Some(p) = slot.probes {
                    self.reg.add(p.classified, 1);
                    self.reg.record(p.latency, latency);
                    self.reg.set(p.queue_depth, slot.queue.len() as f64);
                }
                done += 1;
            }
            classified += done as u64;
        }
        classified
    }
}

/// One tenant's cross-node diagnosis as served by
/// [`tenant_diagnosis`](PhaseServer::tenant_diagnosis): the engine's
/// [`Diagnosis`] over the retained window plus the sink's own accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantDiagnosis {
    pub tenant: TenantId,
    /// Server tick at which the diagnosis was taken.
    pub tick: u64,
    /// Configured window, in intervals per node.
    pub window: usize,
    /// Intervals observed by the sink so far (all nodes).
    pub observed: u64,
    /// Window re-anchors after non-consecutive interval indices — zero on a
    /// correct producer.
    pub realigns: u64,
    pub diagnosis: Diagnosis,
}

/// A point-in-time summary of the whole server (live + retired tenants).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    pub tick: u64,
    pub live_tenants: usize,
    pub retired_tenants: u64,
    /// Aggregate accounting across live and retired tenants.
    pub totals: TenantStats,
    /// Footprint-table capacity currently resident (live tenants only) —
    /// the leak-check signal for churn tests.
    pub resident_footprint_vectors: usize,
    /// Deepest ingest queue right now.
    pub max_queue_depth: usize,
    /// Latency percentiles over all classifications so far, in ticks:
    /// `(p50, p99, p999)`. Zeros when nothing was classified.
    pub latency_ticks: (u64, u64, u64),
}

/// The multi-tenant phase-classification server. See the module docs for
/// the execution model.
#[derive(Debug)]
pub struct PhaseServer {
    cfg: ServeConfig,
    shards: Vec<Shard>,
    /// Tenant id → (shard, slot).
    dir: HashMap<u64, (usize, usize)>,
    next_id: u64,
    tick: u64,
    /// Accounting folded in from evicted tenants.
    retired: TenantStats,
    retired_tenants: u64,
}

impl PhaseServer {
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.queue_capacity > 0 && cfg.output_capacity > 0 && cfg.batch_size > 0);
        Self {
            shards: (0..cfg.shards).map(|_| Shard::new()).collect(),
            cfg,
            dir: HashMap::new(),
            next_id: 0,
            tick: 0,
            retired: TenantStats::default(),
            retired_tenants: 0,
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The logical batch clock: number of `run_batch` calls so far.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    pub fn live_tenants(&self) -> usize {
        self.dir.len()
    }

    pub fn retired_tenants(&self) -> u64 {
        self.retired_tenants
    }

    /// Admit a tenant; its id is unique for the server's lifetime.
    pub fn admit(&mut self, cfg: TenantConfig) -> Result<TenantId, AdmitError> {
        if self.dir.len() >= self.cfg.max_tenants {
            return Err(AdmitError::AtCapacity { max_tenants: self.cfg.max_tenants });
        }
        let id = TenantId(self.next_id);
        self.next_id += 1;
        let shard_ix = (id.0 % self.cfg.shards as u64) as usize;
        let shard = &mut self.shards[shard_ix];
        let probes = self
            .cfg
            .per_tenant_metrics
            .then(|| TenantProbes::register(&mut shard.reg, id));
        let state = TenantState::new(id, cfg, probes, self.cfg.diagnose_window);
        let slot = match shard.free.pop() {
            Some(s) => {
                shard.slots[s] = Some(state);
                s
            }
            None => {
                shard.slots.push(Some(state));
                shard.slots.len() - 1
            }
        };
        shard.reg.counter_add("serve/admitted", 1);
        self.dir.insert(id.0, (shard_ix, slot));
        Ok(id)
    }

    fn tenant_mut(&mut self, id: TenantId) -> Result<(&mut Shard, usize), ServeError> {
        let &(shard, slot) = self.dir.get(&id.0).ok_or(ServeError::UnknownTenant(id))?;
        Ok((&mut self.shards[shard], slot))
    }

    /// Offer one signature for ingest. `Ok(Busy)` is backpressure (retry
    /// after a batch); `Err` is a malformed request and counts nothing.
    pub fn offer(&mut self, id: TenantId, sig: IntervalSignature) -> Result<Ingest, ServeError> {
        let queue_capacity = self.cfg.queue_capacity;
        let tick = self.tick;
        let (shard, slot) = self.tenant_mut(id)?;
        let t = shard.slots[slot].as_mut().expect("directory points at live slot");
        if sig.proc >= t.cfg.n_procs {
            return Err(ServeError::BadProc { tenant: id, proc: sig.proc, n_procs: t.cfg.n_procs });
        }
        if sig.bbv.len() != t.cfg.bbv_entries {
            return Err(ServeError::BadBbvLen {
                tenant: id,
                len: sig.bbv.len(),
                expected: t.cfg.bbv_entries,
            });
        }
        t.stats.offered += 1;
        if let Some(p) = t.probes {
            shard.reg.add(p.offered, 1);
        }
        if t.queue.len() >= queue_capacity {
            t.stats.rejected += 1;
            if let Some(p) = t.probes {
                shard.reg.add(p.busy, 1);
            }
            shard.reg.counter_add("serve/busy", 1);
            return Ok(Ingest::Busy);
        }
        t.queue.push_back((tick, sig));
        let depth = t.queue.len();
        t.stats.accepted += 1;
        t.stats.queue_high_water = t.stats.queue_high_water.max(depth as u64);
        if let Some(p) = t.probes {
            shard.reg.set(p.queue_depth, depth as f64);
        }
        Ok(Ingest::Enqueued { depth })
    }

    /// Advance one tick and classify up to `batch_size` signatures per
    /// tenant, serially. Returns the number classified.
    pub fn run_batch(&mut self) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        let (batch, out_cap) = (self.cfg.batch_size, self.cfg.output_capacity);
        let mut classified = 0u64;
        for shard in &mut self.shards {
            let n = shard.run_batch(tick, batch, out_cap);
            let name = shard.spans.intern("batch");
            shard.spans.record(0, name, tick, n);
            classified += n;
        }
        classified
    }

    /// [`run_batch`](Self::run_batch) with shards processed on up to
    /// `threads` host threads. Shards share no state and per-shard results
    /// are merged in shard order, so the outcome is bit-identical to the
    /// serial batch.
    pub fn run_batch_parallel(&mut self, threads: usize) -> u64 {
        if threads <= 1 || self.shards.len() <= 1 {
            return self.run_batch();
        }
        self.tick += 1;
        let tick = self.tick;
        let (batch, out_cap) = (self.cfg.batch_size, self.cfg.output_capacity);
        let threads = threads.min(self.shards.len());
        let chunk = self.shards.len().div_ceil(threads);
        let counts: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .chunks_mut(chunk)
                .map(|shards| {
                    scope.spawn(move || {
                        shards
                            .iter_mut()
                            .map(|s| {
                                let n = s.run_batch(tick, batch, out_cap);
                                let name = s.spans.intern("batch");
                                s.spans.record(0, name, tick, n);
                                n
                            })
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard batch thread panicked"))
                .collect()
        });
        counts.iter().sum()
    }

    /// Pop up to `max` classified intervals for a tenant, in classification
    /// order.
    pub fn drain_output(
        &mut self,
        id: TenantId,
        max: usize,
    ) -> Result<Vec<ClassifiedInterval>, ServeError> {
        let (shard, slot) = self.tenant_mut(id)?;
        let t = shard.slots[slot].as_mut().expect("directory points at live slot");
        let n = max.min(t.output.len());
        let out: Vec<ClassifiedInterval> = t.output.drain(..n).collect();
        t.stats.delivered += out.len() as u64;
        Ok(out)
    }

    /// Run the cross-node diagnosis over a tenant's retained window.
    /// `Ok(None)` when the server runs with `diagnose_window == 0`;
    /// `telemetry`, when supplied, must be indexed by the tenant's node
    /// (proc) ids. Also refreshes the tenant's
    /// `serve/tenant/<id>/diagnose/outliers` gauge.
    pub fn tenant_diagnosis(
        &mut self,
        id: TenantId,
        telemetry: Option<&[NodeTelemetry]>,
    ) -> Result<Option<TenantDiagnosis>, ServeError> {
        let tick = self.tick;
        let (shard, slot) = self.tenant_mut(id)?;
        let t = shard.slots[slot].as_mut().expect("directory points at live slot");
        let Some(d) = t.diag.as_ref() else {
            return Ok(None);
        };
        let diagnosis = d.diagnose(telemetry);
        if let Some(p) = t.probes {
            shard.reg.set(p.diag_outliers, diagnosis.outliers.len() as f64);
        }
        Ok(Some(TenantDiagnosis {
            tenant: id,
            tick,
            window: d.window(),
            observed: d.observed(),
            realigns: d.realigns(),
            diagnosis,
        }))
    }

    /// Current ingest-queue depth of a tenant.
    pub fn queue_depth(&self, id: TenantId) -> Option<usize> {
        let &(shard, slot) = self.dir.get(&id.0)?;
        Some(self.shards[shard].slots[slot].as_ref()?.queue.len())
    }

    /// A tenant's accounting so far.
    pub fn stats(&self, id: TenantId) -> Option<TenantStats> {
        let &(shard, slot) = self.dir.get(&id.0)?;
        Some(self.shards[shard].slots[slot].as_ref()?.stats)
    }

    /// Evict a tenant, releasing its slot and folding its accounting into
    /// the server totals. In-flight work is reported explicitly — `pending`
    /// signatures and `undelivered` classifications do not vanish silently.
    pub fn evict(&mut self, id: TenantId) -> Option<TenantSummary> {
        let (shard_ix, slot) = self.dir.remove(&id.0)?;
        let shard = &mut self.shards[shard_ix];
        let t = shard.slots[slot].take().expect("directory points at live slot");
        shard.free.push(slot);
        shard.reg.counter_add("serve/evicted", 1);
        self.retired.absorb(&t.stats);
        self.retired_tenants += 1;
        Some(TenantSummary {
            id: t.id,
            stats: t.stats,
            pending: t.queue.len() as u64,
            undelivered: t.output.len() as u64,
            footprint_vectors: t.bank.footprint_capacity(),
        })
    }

    /// Footprint-table capacity resident across live tenants (the churn
    /// tests' leak signal: evicting a tenant must release its share).
    pub fn resident_footprint_vectors(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.slots.iter().flatten())
            .map(|t| t.bank.footprint_capacity())
            .sum()
    }

    /// Ingest-to-classify latency percentiles in ticks over every
    /// classification so far. Quantiles use the nearest-rank method on the
    /// sorted merged samples; shard interleaving is irrelevant after the
    /// sort, so this is deterministic at any thread count.
    pub fn latency_percentiles(&self, quantiles: &[f64]) -> Vec<u64> {
        let mut all: Vec<u64> = self.shards.iter().flat_map(|s| s.latencies.iter().copied()).collect();
        if all.is_empty() {
            return vec![0; quantiles.len()];
        }
        all.sort_unstable();
        quantiles
            .iter()
            .map(|&q| {
                let rank = ((q * all.len() as f64).ceil() as usize).clamp(1, all.len());
                all[rank - 1]
            })
            .collect()
    }

    /// Aggregate accounting across live and retired tenants.
    pub fn totals(&self) -> TenantStats {
        let mut totals = self.retired;
        for t in self.shards.iter().flat_map(|s| s.slots.iter().flatten()) {
            totals.absorb(&t.stats);
        }
        totals
    }

    /// Point-in-time server summary.
    pub fn report(&self) -> ServerReport {
        let p = self.latency_percentiles(&[0.50, 0.99, 0.999]);
        ServerReport {
            tick: self.tick,
            live_tenants: self.dir.len(),
            retired_tenants: self.retired_tenants,
            totals: self.totals(),
            resident_footprint_vectors: self.resident_footprint_vectors(),
            max_queue_depth: self
                .shards
                .iter()
                .flat_map(|s| s.slots.iter().flatten())
                .map(|t| t.queue.len())
                .max()
                .unwrap_or(0),
            latency_ticks: (p[0], p[1], p[2]),
        }
    }

    /// Merged telemetry: shard registries absorbed in shard order plus the
    /// server-level totals, and one span track per shard.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut reg = MetricsRegistry::new();
        for shard in &self.shards {
            reg.absorb(&shard.reg.samples());
        }
        let totals = self.totals();
        reg.counter_add("serve/offered", totals.offered);
        reg.counter_add("serve/accepted", totals.accepted);
        reg.counter_add("serve/rejected", totals.rejected);
        reg.counter_add("serve/classified", totals.classified);
        reg.counter_add("serve/delivered", totals.delivered);
        reg.counter_add("serve/output_stalls", totals.output_stalls);
        reg.gauge_set("serve/live_tenants", self.dir.len() as f64);
        reg.gauge_set("serve/resident_footprint_vectors", self.resident_footprint_vectors() as f64);
        let mut tracks = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let mut t = shard.spans.snapshot_tracks();
            for (j, track) in t.iter_mut().enumerate() {
                track.name = format!("shard{i}/{j}");
            }
            tracks.append(&mut t);
        }
        Snapshot { enabled: true, metrics: reg.samples(), tracks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_phase::detector::{DetectorMode, Thresholds};

    fn tcfg(n_procs: usize) -> TenantConfig {
        let mut c = TenantConfig::new(
            n_procs,
            DetectorMode::BbvDdv,
            Thresholds { bbv: 0.4, dds: 0.25 },
        );
        c.bbv_entries = 4;
        c
    }

    fn sig(proc: usize, index: u64, flavor: u64) -> IntervalSignature {
        let mut bbv = vec![0.0; 4];
        bbv[(flavor % 4) as usize] = 1.0;
        IntervalSignature {
            proc,
            index,
            insns: 1000,
            cycles: 2000 + flavor * 100,
            bbv,
            dds: 10.0 + flavor as f64,
            degraded: false,
        }
    }

    #[test]
    fn offer_classify_drain_round_trip() {
        let mut srv = PhaseServer::new(ServeConfig::default());
        let t = srv.admit(tcfg(1)).unwrap();
        for i in 0..5 {
            let r = srv.offer(t, sig(0, i, i % 2)).unwrap();
            assert_eq!(r, Ingest::Enqueued { depth: i as usize + 1 });
        }
        assert_eq!(srv.run_batch(), 5);
        let out = srv.drain_output(t, usize::MAX).unwrap();
        assert_eq!(out.len(), 5);
        // Two alternating signatures → two phases, each new exactly once.
        assert_eq!(out.iter().filter(|c| c.is_new_phase).count(), 2);
        assert_eq!(out[0].index, 0);
        assert_eq!(out[4].index, 4);
        let st = srv.stats(t).unwrap();
        assert_eq!(st.offered, 5);
        assert_eq!(st.accepted, 5);
        assert_eq!(st.rejected, 0);
        assert_eq!(st.classified, 5);
        assert_eq!(st.delivered, 5);
    }

    #[test]
    fn bounded_queue_reports_busy_and_conserves() {
        let cfg = ServeConfig { queue_capacity: 2, ..ServeConfig::default() };
        let mut srv = PhaseServer::new(cfg);
        let t = srv.admit(tcfg(1)).unwrap();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for i in 0..7 {
            match srv.offer(t, sig(0, i, 0)).unwrap() {
                Ingest::Enqueued { .. } => accepted += 1,
                Ingest::Busy => rejected += 1,
            }
        }
        assert_eq!((accepted, rejected), (2, 5));
        let st = srv.stats(t).unwrap();
        assert_eq!(st.offered, st.accepted + st.rejected);
        assert_eq!(st.queue_high_water, 2);
        // After a batch the queue drains and offers are accepted again.
        srv.run_batch();
        assert!(matches!(srv.offer(t, sig(0, 7, 0)).unwrap(), Ingest::Enqueued { depth: 1 }));
    }

    #[test]
    fn slow_consumer_stalls_instead_of_dropping() {
        let cfg = ServeConfig {
            output_capacity: 3,
            batch_size: 10,
            queue_capacity: 16,
            ..ServeConfig::default()
        };
        let mut srv = PhaseServer::new(cfg);
        let t = srv.admit(tcfg(1)).unwrap();
        for i in 0..8 {
            srv.offer(t, sig(0, i, 0)).unwrap();
        }
        // Output bound 3: only 3 classified, 5 remain queued, stall counted.
        assert_eq!(srv.run_batch(), 3);
        assert_eq!(srv.queue_depth(t), Some(5));
        let st = srv.stats(t).unwrap();
        assert_eq!(st.classified, 3);
        assert_eq!(st.output_stalls, 1);
        // Draining unblocks the next batch; nothing was lost.
        assert_eq!(srv.drain_output(t, usize::MAX).unwrap().len(), 3);
        assert_eq!(srv.run_batch(), 3);
        assert_eq!(srv.drain_output(t, usize::MAX).unwrap().len(), 3);
        assert_eq!(srv.run_batch(), 2);
        srv.drain_output(t, usize::MAX).unwrap();
        let st = srv.stats(t).unwrap();
        assert_eq!(st.classified, 8);
        assert_eq!(st.delivered, 8);
    }

    #[test]
    fn admit_evict_lifecycle_and_capacity_accounting() {
        let cfg = ServeConfig { max_tenants: 2, shards: 2, ..ServeConfig::default() };
        let mut srv = PhaseServer::new(cfg);
        let a = srv.admit(tcfg(2)).unwrap();
        let b = srv.admit(tcfg(4)).unwrap();
        assert_eq!(srv.admit(tcfg(1)), Err(AdmitError::AtCapacity { max_tenants: 2 }));
        let per_proc = dsm_phase::DEFAULT_FOOTPRINT_VECTORS;
        assert_eq!(srv.resident_footprint_vectors(), 6 * per_proc);
        srv.offer(a, sig(0, 0, 0)).unwrap();
        let summary = srv.evict(a).unwrap();
        assert_eq!(summary.pending, 1, "queued signature reported, not dropped");
        assert_eq!(summary.footprint_vectors, 2 * per_proc);
        assert_eq!(srv.resident_footprint_vectors(), 4 * per_proc);
        assert_eq!(srv.evict(a), None, "double evict misses");
        assert!(srv.offer(a, sig(0, 1, 0)).is_err(), "stale handle rejected");
        // Slot freed: a new tenant fits, with a fresh id.
        let c = srv.admit(tcfg(1)).unwrap();
        assert_ne!(c, a);
        assert_ne!(c, b);
        assert_eq!(srv.live_tenants(), 2);
        assert_eq!(srv.retired_tenants(), 1);
        assert_eq!(srv.totals().offered, 1, "retired accounting survives eviction");
    }

    #[test]
    fn malformed_signatures_rejected_without_accounting() {
        let mut srv = PhaseServer::new(ServeConfig::default());
        let t = srv.admit(tcfg(2)).unwrap();
        assert!(matches!(
            srv.offer(t, sig(5, 0, 0)),
            Err(ServeError::BadProc { proc: 5, n_procs: 2, .. })
        ));
        let mut bad = sig(0, 0, 0);
        bad.bbv = vec![1.0; 7];
        assert!(matches!(
            srv.offer(t, bad),
            Err(ServeError::BadBbvLen { len: 7, expected: 4, .. })
        ));
        assert_eq!(srv.stats(t).unwrap().offered, 0);
        assert!(matches!(
            srv.offer(TenantId(999), sig(0, 0, 0)),
            Err(ServeError::UnknownTenant(TenantId(999)))
        ));
    }

    #[test]
    fn parallel_batches_bit_identical_to_serial() {
        let mk = || {
            let cfg = ServeConfig { shards: 4, batch_size: 3, ..ServeConfig::default() };
            let mut srv = PhaseServer::new(cfg);
            let ids: Vec<TenantId> = (0..9).map(|_| srv.admit(tcfg(1)).unwrap()).collect();
            for (k, &t) in ids.iter().enumerate() {
                for i in 0..6 {
                    srv.offer(t, sig(0, i, (k as u64 + i) % 3)).unwrap();
                }
            }
            (srv, ids)
        };
        let (mut serial, ids) = mk();
        let (mut par, _) = mk();
        loop {
            let a = serial.run_batch();
            let b = par.run_batch_parallel(4);
            assert_eq!(a, b);
            if a == 0 {
                break;
            }
        }
        for &t in &ids {
            assert_eq!(
                serial.drain_output(t, usize::MAX).unwrap(),
                par.drain_output(t, usize::MAX).unwrap(),
                "tenant {t} diverged"
            );
        }
        assert_eq!(
            serial.latency_percentiles(&[0.5, 0.99, 0.999]),
            par.latency_percentiles(&[0.5, 0.99, 0.999])
        );
    }

    #[test]
    fn latency_is_tick_based_and_deterministic() {
        let mut srv = PhaseServer::new(ServeConfig::default());
        let t = srv.admit(tcfg(1)).unwrap();
        srv.offer(t, sig(0, 0, 0)).unwrap();
        srv.run_batch(); // classified at tick 1, arrived at tick 0 → latency 1
        srv.offer(t, sig(0, 1, 0)).unwrap();
        srv.run_batch(); // arrived tick 1, classified tick 2 → latency 1
        srv.run_batch();
        srv.offer(t, sig(0, 2, 0)).unwrap();
        srv.run_batch();
        assert_eq!(srv.latency_percentiles(&[1.0]), vec![1]);
        assert_eq!(srv.report().latency_ticks, (1, 1, 1));
    }

    #[test]
    fn percentiles_of_empty_latency_set_are_zero() {
        let srv = PhaseServer::new(ServeConfig::default());
        assert_eq!(srv.latency_percentiles(&[0.0, 0.5, 0.99, 1.0]), vec![0, 0, 0, 0]);
        assert_eq!(srv.latency_percentiles(&[]), Vec::<u64>::new());
        assert_eq!(srv.report().latency_ticks, (0, 0, 0));
    }

    #[test]
    fn percentiles_of_single_sample_all_return_it() {
        let mut srv = PhaseServer::new(ServeConfig::default());
        let t = srv.admit(tcfg(1)).unwrap();
        srv.offer(t, sig(0, 0, 0)).unwrap();
        srv.run_batch();
        // Nearest rank clamps to [1, len], so every quantile — including the
        // degenerate 0.0 — lands on the lone sample.
        assert_eq!(srv.latency_percentiles(&[0.0, 0.001, 0.5, 0.999, 1.0]), vec![1; 5]);
    }

    #[test]
    fn percentiles_of_all_equal_ticks_are_flat() {
        let mut srv = PhaseServer::new(ServeConfig::default());
        let t = srv.admit(tcfg(1)).unwrap();
        for i in 0..5 {
            srv.offer(t, sig(0, i, 0)).unwrap();
            srv.run_batch(); // each classified one tick after arrival
        }
        assert_eq!(srv.latency_percentiles(&[0.1, 0.5, 0.9, 1.0]), vec![1; 4]);
        assert_eq!(srv.report().latency_ticks, (1, 1, 1));
    }

    #[test]
    fn percentiles_use_nearest_rank_on_distinct_samples() {
        // batch_size 1 forces queued signals to wait: three offers at tick 0
        // classify at ticks 1, 2, 3 → latencies [1, 2, 3].
        let cfg = ServeConfig { batch_size: 1, ..ServeConfig::default() };
        let mut srv = PhaseServer::new(cfg);
        let t = srv.admit(tcfg(1)).unwrap();
        for i in 0..3 {
            srv.offer(t, sig(0, i, 0)).unwrap();
        }
        while srv.run_batch() > 0 {}
        // ceil(q·3) ranks: 1/3 → 1st, 0.5 → 2nd, 1.0 → 3rd.
        assert_eq!(srv.latency_percentiles(&[1.0 / 3.0, 0.5, 1.0]), vec![1, 2, 3]);
    }

    #[test]
    fn per_tenant_metrics_scoped_by_id() {
        let cfg = ServeConfig { per_tenant_metrics: true, ..ServeConfig::default() };
        let mut srv = PhaseServer::new(cfg);
        let t = srv.admit(tcfg(1)).unwrap();
        srv.offer(t, sig(0, 0, 0)).unwrap();
        srv.run_batch();
        let snap = srv.telemetry_snapshot();
        let get = |name: &str| {
            snap.metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        let offered = get(&format!("serve/tenant/{}/offered", t.0));
        assert_eq!(offered.value, dsm_telemetry::MetricValue::Counter(1));
        get(&format!("serve/tenant/{}/latency_ticks", t.0));
        assert_eq!(get("serve/classified").value, dsm_telemetry::MetricValue::Counter(1));
    }
}
