//! Fixed-width ASCII table rendering (for reproducing Tables I and II and
//! the experiment reports).

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            title: None,
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn with_title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Widest cell a [`Table::kv`] column may grow to. Metric names come
    /// from telemetry registries and fault-plan labels, which are
    /// machine-generated and occasionally pathological; without a clamp a
    /// single long key stretches every row of the report.
    pub const KV_MAX_WIDTH: usize = 40;

    /// A titled two-column key/value table (metric summaries, run reports).
    /// Cells longer than [`Table::KV_MAX_WIDTH`] characters are truncated
    /// deterministically with a trailing `...`.
    pub fn kv<S: Into<String>>(title: S, pairs: &[(String, String)]) -> Self {
        let clamp = |s: &str| -> String {
            if s.chars().count() <= Self::KV_MAX_WIDTH {
                s.to_string()
            } else {
                let mut out: String = s.chars().take(Self::KV_MAX_WIDTH - 3).collect();
                out.push_str("...");
                out
            }
        };
        let mut t = Table::new(vec!["metric", "value"]).with_title(title);
        for (k, v) in pairs {
            t.row(vec![clamp(k), clamp(v)]);
        }
        t
    }

    /// Render with box-drawing rules.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep = |l: char, m: char, r: char| {
            let mut s = String::new();
            s.push(l);
            for (i, w) in widths.iter().enumerate() {
                s.push_str(&"-".repeat(w + 2));
                s.push(if i + 1 == ncols { r } else { m });
            }
            s.push('\n');
            s
        };
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!(" {c:<w$} |"));
            }
            s.push('\n');
            s
        };
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        out.push_str(&sep('+', '+', '+'));
        out.push_str(&fmt_row(&self.headers));
        out.push_str(&sep('+', '+', '+'));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out.push_str(&sep('+', '+', '+'));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Parameter", "Value"]).with_title("TABLE I");
        t.row(vec!["Processor Frequency", "2GHz"]);
        t.row(vec!["L1", "16kB"]);
        let s = t.render();
        assert!(s.starts_with("TABLE I\n"));
        assert!(s.contains("| Parameter           | Value |"));
        assert!(s.contains("| L1                  | 16kB  |"));
        // All lines same width.
        let widths: std::collections::HashSet<usize> =
            s.lines().skip(1).map(|l| l.len()).collect();
        assert_eq!(widths.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn kv_builds_two_column_table() {
        let t = Table::kv(
            "summary",
            &[("sim/events".to_string(), "12".to_string())],
        );
        let s = t.render();
        assert!(s.starts_with("summary\n"));
        assert!(s.contains("| sim/events | 12    |"));
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn kv_clamps_pathological_cells() {
        let long_key = "x".repeat(200);
        let t = Table::kv(
            "summary",
            &[
                (long_key, "v".repeat(77)),
                ("sim/events".to_string(), "12".to_string()),
            ],
        );
        let s = t.render();
        // Every cell is clamped, so no rendered line can exceed the two
        // clamped columns plus borders and padding.
        let max_line = s.lines().map(|l| l.chars().count()).max().unwrap();
        assert!(max_line <= 2 * Table::KV_MAX_WIDTH + 7, "line width {max_line}");
        let expect_key = format!("{}...", "x".repeat(Table::KV_MAX_WIDTH - 3));
        let expect_val = format!("{}...", "v".repeat(Table::KV_MAX_WIDTH - 3));
        assert!(s.contains(&expect_key));
        assert!(s.contains(&expect_val));
        // Deterministic: same input renders identically.
        assert_eq!(s, t.render());
        // Short cells are untouched.
        assert!(s.contains("sim/events"));
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(vec!["x"]);
        let s = t.render();
        assert!(s.contains("| x |"));
        assert_eq!(t.n_rows(), 0);
    }
}
