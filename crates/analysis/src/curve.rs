//! The CoV curve (the paper's third contribution): identifier CoV plotted
//! against the number of phases as the detector threshold sweeps.
//!
//! Each swept threshold (or threshold pair, for BBV+DDV) yields one point
//! `(phases, CoV)`. Because a 2-D threshold grid produces many points at
//! the same phase count, the curve used for plotting and comparison is the
//! *lower envelope*: the best (smallest) CoV achievable at each phase
//! count. Queries in both directions — "CoV at a fixed number of phases"
//! and "phases needed for a target CoV" — support the paper's headline
//! claims (e.g., FMM at 32P: 29 % CoV needs 25 phases with BBV but 11 with
//! BBV+DDV).

use serde::{Deserialize, Serialize};

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Mean number of distinct phases across processors.
    pub phases: f64,
    /// System-wide identifier CoV (per-processor CoVs averaged, §III-A).
    pub cov: f64,
    /// BBV Manhattan threshold that produced this point.
    pub bbv_threshold: f64,
    /// DDS relative-difference threshold (None for BBV-only sweeps).
    pub dds_threshold: Option<f64>,
}

/// A full threshold sweep for one (application, system size, detector).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CovCurve {
    pub points: Vec<CurvePoint>,
}

impl CovCurve {
    pub fn new(points: Vec<CurvePoint>) -> Self {
        Self { points }
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Lower envelope over integer phase counts `1..=max_phases`: for each
    /// phase count (points rounded to nearest integer), the minimum CoV.
    /// Phase counts with no sweep point are omitted.
    pub fn lower_envelope(&self, max_phases: usize) -> Vec<(usize, f64)> {
        let mut best: Vec<Option<f64>> = vec![None; max_phases + 1];
        for p in &self.points {
            let k = p.phases.round() as usize;
            if k >= 1 && k <= max_phases {
                let slot = &mut best[k];
                if slot.is_none_or(|c| p.cov < c) {
                    *slot = Some(p.cov);
                }
            }
        }
        (1..=max_phases)
            .filter_map(|k| best[k].map(|c| (k, c)))
            .collect()
    }

    /// Best CoV achievable with at most `phases` phases.
    pub fn cov_at_phases(&self, phases: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.phases <= phases + 0.5)
            .map(|p| p.cov)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Fewest phases achieving CoV at or below `target`.
    pub fn phases_at_cov(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.cov <= target)
            .map(|p| p.phases)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Maximum phase count over the sweep.
    pub fn max_phases(&self) -> f64 {
        self.points.iter().map(|p| p.phases).fold(0.0, f64::max)
    }

    /// True when `self`'s envelope is at or below `other`'s at every phase
    /// count both cover, with `tolerance` slack (for curve-dominance shape
    /// assertions).
    pub fn dominates(&self, other: &CovCurve, max_phases: usize, tolerance: f64) -> bool {
        let a = self.lower_envelope(max_phases);
        let b = other.lower_envelope(max_phases);
        let bmap: std::collections::BTreeMap<usize, f64> = b.into_iter().collect();
        let mut compared = 0;
        for (k, cov) in a {
            if let Some(&oc) = bmap.get(&k) {
                compared += 1;
                if cov > oc + tolerance {
                    return false;
                }
            }
        }
        compared > 0
    }

    /// The §II form of the CoV curve: CoV against the *fraction of
    /// intervals spent tuning* instead of the raw phase count ("the CoV
    /// curve, which plots CoV against a measure of tuning overhead (the
    /// fraction of intervals that are spent in tuning)").
    ///
    /// Every distinct phase costs `trials_per_phase` exploratory intervals
    /// out of `intervals_per_proc` total, so a point at `k` phases maps to
    /// x = min(1, k·trials / intervals).
    pub fn tuning_axis(
        &self,
        trials_per_phase: usize,
        intervals_per_proc: usize,
        max_phases: usize,
    ) -> Vec<(f64, f64)> {
        self.lower_envelope(max_phases)
            .into_iter()
            .map(|(k, cov)| {
                let frac = (k * trials_per_phase) as f64 / intervals_per_proc.max(1) as f64;
                (frac.min(1.0), cov)
            })
            .collect()
    }

    /// Mean CoV over the envelope in `[lo, hi]` phases — a scalar summary
    /// used for cross-configuration comparisons.
    pub fn mean_envelope_cov(&self, lo: usize, hi: usize) -> Option<f64> {
        let env = self.lower_envelope(hi);
        let vals: Vec<f64> = env
            .into_iter()
            .filter(|(k, _)| *k >= lo)
            .map(|(_, c)| c)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(phases: f64, cov: f64) -> CurvePoint {
        CurvePoint { phases, cov, bbv_threshold: 0.1, dds_threshold: None }
    }

    #[test]
    fn envelope_takes_minimum_per_phase_count() {
        let c = CovCurve::new(vec![pt(3.0, 0.5), pt(3.2, 0.3), pt(5.0, 0.2)]);
        let env = c.lower_envelope(10);
        assert_eq!(env, vec![(3, 0.3), (5, 0.2)]);
    }

    #[test]
    fn envelope_respects_max_phases() {
        let c = CovCurve::new(vec![pt(3.0, 0.5), pt(50.0, 0.01)]);
        let env = c.lower_envelope(25);
        assert_eq!(env, vec![(3, 0.5)]);
    }

    #[test]
    fn cov_at_phases_allows_fewer() {
        let c = CovCurve::new(vec![pt(2.0, 0.6), pt(7.0, 0.2), pt(20.0, 0.05)]);
        assert_eq!(c.cov_at_phases(7.0), Some(0.2));
        assert_eq!(c.cov_at_phases(100.0), Some(0.05));
        assert_eq!(c.cov_at_phases(1.0), None);
    }

    #[test]
    fn phases_at_cov_finds_cheapest() {
        let c = CovCurve::new(vec![pt(2.0, 0.6), pt(7.0, 0.2), pt(20.0, 0.05)]);
        assert_eq!(c.phases_at_cov(0.29), Some(7.0));
        assert_eq!(c.phases_at_cov(0.7), Some(2.0));
        assert_eq!(c.phases_at_cov(0.01), None);
    }

    #[test]
    fn dominance() {
        let better = CovCurve::new(vec![pt(3.0, 0.2), pt(5.0, 0.1)]);
        let worse = CovCurve::new(vec![pt(3.0, 0.5), pt(5.0, 0.4)]);
        assert!(better.dominates(&worse, 25, 0.0));
        assert!(!worse.dominates(&better, 25, 0.0));
        // Tolerance lets near-ties pass.
        assert!(worse.dominates(&better, 25, 1.0));
    }

    #[test]
    fn dominance_requires_overlap() {
        let a = CovCurve::new(vec![pt(3.0, 0.2)]);
        let b = CovCurve::new(vec![pt(9.0, 0.2)]);
        assert!(!a.dominates(&b, 25, 0.0), "no common phase counts");
    }

    #[test]
    fn mean_envelope_cov_summary() {
        let c = CovCurve::new(vec![pt(1.0, 0.9), pt(2.0, 0.4), pt(3.0, 0.2)]);
        let m = c.mean_envelope_cov(2, 3).unwrap();
        assert!((m - 0.3).abs() < 1e-12);
        assert!(c.mean_envelope_cov(10, 20).is_none());
    }

    #[test]
    fn tuning_axis_maps_phases_to_fractions() {
        let c = CovCurve::new(vec![pt(5.0, 0.4), pt(10.0, 0.2)]);
        let axis = c.tuning_axis(4, 100, 25);
        // 5 phases * 4 trials / 100 intervals = 0.2; 10 * 4 / 100 = 0.4.
        assert_eq!(axis, vec![(0.2, 0.4), (0.4, 0.2)]);
        // Clamped at 1.0 for absurd budgets.
        let axis = c.tuning_axis(40, 100, 25);
        assert!(axis.iter().all(|(x, _)| *x <= 1.0));
    }

    #[test]
    fn empty_curve() {
        let c = CovCurve::default();
        assert!(c.is_empty());
        assert!(c.lower_envelope(25).is_empty());
        assert_eq!(c.cov_at_phases(5.0), None);
        assert_eq!(c.max_phases(), 0.0);
    }
}
