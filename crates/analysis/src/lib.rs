//! # dsm-analysis — statistics and reporting for phase-detection quality
//!
//! Implements the paper's evaluation metrics:
//!
//! * [`stats`] — mean / variance / coefficient of variation primitives;
//! * [`cov`] — per-phase CoV of CPI and the *identifier CoV* (per-phase CoV
//!   weighted by how many intervals belong to each phase, §II);
//! * [`curve`] — the **CoV curve** (the paper's third contribution): CoV
//!   against number of phases (a proxy for tuning overhead) across a
//!   threshold sweep, with lower-envelope extraction and fixed-CoV /
//!   fixed-phase-count queries;
//! * [`table`] — fixed-width ASCII tables (Tables I/II reproduction);
//! * [`plot`] — ASCII log-scale charts (Figures 2/4 reproduction) and CSV
//!   export for external plotting.

pub mod cov;
pub mod curve;
pub mod plot;
pub mod stats;
pub mod table;

pub use cov::identifier_cov;
pub use curve::{CovCurve, CurvePoint};
pub use plot::AsciiChart;
pub use table::Table;
