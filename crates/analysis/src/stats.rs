//! Basic statistics over f64 samples (population moments, as appropriate
//! for "all the per-interval CPI values in that phase").

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation: `stddev / mean`. Zero when the mean is ~zero
/// (no meaningful normalization) or there are fewer than two samples.
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m.abs() <= f64::EPSILON {
        0.0
    } else {
        stddev(xs) / m
    }
}

/// Weighted mean of (value, weight) pairs; 0 when total weight is 0.
pub fn weighted_mean(pairs: &[(f64, f64)]) -> f64 {
    let w: f64 = pairs.iter().map(|(_, w)| w).sum();
    if w <= 0.0 {
        0.0
    } else {
        pairs.iter().map(|(v, wi)| v * wi).sum::<f64>() / w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cov_of_constant_series_is_zero() {
        assert_eq!(cov(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn cov_is_scale_free() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((cov(&a) - cov(&b)).abs() < 1e-12);
    }

    #[test]
    fn cov_of_zero_mean_is_zero() {
        assert_eq!(cov(&[0.0, 0.0]), 0.0);
        assert_eq!(cov(&[-1.0, 1.0]), 0.0);
    }

    #[test]
    fn weighted_mean_weights_properly() {
        assert_eq!(weighted_mean(&[]), 0.0);
        assert_eq!(weighted_mean(&[(1.0, 1.0), (3.0, 3.0)]), 2.5);
        assert_eq!(weighted_mean(&[(7.0, 0.0)]), 0.0);
    }

    #[test]
    fn single_sample_cov_is_zero() {
        // A phase with one interval is perfectly homogeneous by definition
        // (the paper: singleton phases make CoV "trivially zero").
        assert_eq!(cov(&[42.0]), 0.0);
    }
}
