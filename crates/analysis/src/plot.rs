//! ASCII charts (log-y, multi-series) for rendering the paper's figures in
//! a terminal, plus CSV export for external plotting.

use std::io::{self, Write};

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub symbol: char,
    pub points: Vec<(f64, f64)>,
}

/// A multi-series scatter chart on a character grid, with optional log-10
/// y-axis (the paper's figures use log CoV axes).
#[derive(Debug, Clone)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    log_y: bool,
    series: Vec<Series>,
    title: String,
    x_label: String,
    y_label: String,
}

impl AsciiChart {
    pub fn new<S: Into<String>>(title: S, width: usize, height: usize) -> Self {
        assert!(width >= 10 && height >= 4);
        Self {
            width,
            height,
            log_y: false,
            series: Vec::new(),
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
        }
    }

    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    pub fn labels<S: Into<String>>(mut self, x: S, y: S) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    pub fn series<S: Into<String>>(&mut self, name: S, symbol: char, points: Vec<(f64, f64)>) {
        self.series.push(Series { name: name.into(), symbol, points });
    }

    fn y_transform(&self, y: f64) -> f64 {
        if self.log_y {
            y.max(1e-6).log10()
        } else {
            y
        }
    }

    /// Render the chart to a string.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if all.is_empty() {
            return format!("{}\n(no data)\n", self.title);
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            let ty = self.y_transform(y);
            ymin = ymin.min(ty);
            ymax = ymax.max(ty);
        }
        if (xmax - xmin).abs() < 1e-12 {
            xmax = xmin + 1.0;
        }
        if (ymax - ymin).abs() < 1e-12 {
            ymax = ymin + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for s in &self.series {
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let cx = ((x - xmin) / (xmax - xmin) * (self.width - 1) as f64).round() as usize;
                let ty = self.y_transform(y);
                let cy = ((ymax - ty) / (ymax - ymin) * (self.height - 1) as f64).round() as usize;
                let cell = &mut grid[cy.min(self.height - 1)][cx.min(self.width - 1)];
                // First series wins on collision unless the cell is free.
                if *cell == ' ' {
                    *cell = s.symbol;
                }
            }
        }

        let y_disp = |t: f64| if self.log_y { 10f64.powf(t) } else { t };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        if !self.y_label.is_empty() {
            out.push_str(&format!("y: {}{}\n", self.y_label, if self.log_y { " (log)" } else { "" }));
        }
        for (r, row) in grid.iter().enumerate() {
            let frac = r as f64 / (self.height - 1) as f64;
            let yv = y_disp(ymax - frac * (ymax - ymin));
            out.push_str(&format!("{yv:>9.3} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!(
            "{:>9} +{}\n",
            "",
            "-".repeat(self.width)
        ));
        out.push_str(&format!(
            "{:>10} {:<.1}{}{:>.1}  ({})\n",
            "",
            xmin,
            " ".repeat(self.width.saturating_sub(8)),
            xmax,
            self.x_label
        ));
        for s in &self.series {
            out.push_str(&format!("  {} = {}\n", s.symbol, s.name));
        }
        out
    }
}

/// Render a classified phase stream as a one-line-per-phase ASCII timeline
/// (a Gantt-style strip: `#` where the phase is active, `.` elsewhere),
/// most-frequent phases first. `max_phases` rows are shown; the rest are
/// folded into an "other" row.
pub fn phase_timeline(ids: &[u32], max_phases: usize) -> String {
    if ids.is_empty() {
        return "(no intervals)\n".into();
    }
    let mut counts: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for &id in ids {
        *counts.entry(id).or_default() += 1;
    }
    let mut order: Vec<(u32, usize)> = counts.into_iter().collect();
    order.sort_by_key(|&(id, n)| (std::cmp::Reverse(n), id));
    let shown: Vec<u32> = order.iter().take(max_phases).map(|&(id, _)| id).collect();

    let mut out = String::new();
    out.push_str(&format!("{} intervals, {} phases\n", ids.len(), order.len()));
    for &id in &shown {
        out.push_str(&format!("phase {id:>4} |"));
        for &x in ids {
            out.push(if x == id { '#' } else { '.' });
        }
        out.push('\n');
    }
    if order.len() > shown.len() {
        out.push_str(&format!("{:>10} |", "other"));
        for &x in ids {
            out.push(if shown.contains(&x) { '.' } else { '#' });
        }
        out.push('\n');
    }
    out
}

/// Write rows as CSV (numeric cells formatted with full precision).
pub fn write_csv<W: Write>(
    w: &mut W,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    writeln!(w, "{}", headers.join(","))?;
    for r in rows {
        writeln!(w, "{}", r.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_grid() {
        let mut c = AsciiChart::new("test", 40, 10).labels("# of Phases", "CoV");
        c.series("BBV", 'o', vec![(1.0, 0.9), (10.0, 0.3), (25.0, 0.1)]);
        let s = c.render();
        assert!(s.contains("test"));
        assert!(s.matches('o').count() >= 3);
        assert!(s.contains("BBV"));
    }

    #[test]
    fn log_scale_compresses_high_values() {
        let mut lin = AsciiChart::new("lin", 30, 8);
        lin.series("s", 'x', vec![(0.0, 0.01), (1.0, 1.0)]);
        let mut log = AsciiChart::new("log", 30, 8).log_y();
        log.series("s", 'x', vec![(0.0, 0.01), (1.0, 1.0)]);
        // Both render; log version shows 0.01 farther from 1.0's row.
        assert!(lin.render().contains('x'));
        assert!(log.render().contains('x'));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let c = AsciiChart::new("empty", 20, 5);
        assert!(c.render().contains("no data"));
    }

    #[test]
    fn nonfinite_points_are_skipped() {
        let mut c = AsciiChart::new("nan", 20, 5);
        c.series("s", 'x', vec![(f64::NAN, 1.0), (1.0, 2.0)]);
        assert!(c.render().matches('x').count() >= 1);
    }

    #[test]
    fn timeline_renders_rows_per_phase() {
        let ids = [0, 0, 1, 1, 0, 2];
        let t = phase_timeline(&ids, 2);
        assert!(t.starts_with("6 intervals, 3 phases"));
        assert!(t.contains("phase    0 |##..#."));
        assert!(t.contains("phase    1 |..##.."));
        assert!(t.contains("other |.....#"), "folded row:\n{t}");
    }

    #[test]
    fn timeline_handles_empty_and_single() {
        assert!(phase_timeline(&[], 4).contains("no intervals"));
        let t = phase_timeline(&[9, 9], 4);
        assert!(t.contains("phase    9 |##"));
        assert!(!t.contains("other"));
    }

    #[test]
    fn csv_roundtrip_format() {
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &["app", "phases", "cov"],
            &[
                vec!["LU".into(), "7".into(), "0.1".into()],
                vec!["FMM".into(), "11".into(), "0.29".into()],
            ],
        )
        .unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert_eq!(s.lines().count(), 3);
        assert!(s.starts_with("app,phases,cov\n"));
        assert!(s.contains("FMM,11,0.29"));
    }
}
