//! CoV of CPI and identifier CoV (paper §II).
//!
//! "For a given program phase, its CoV of CPI is the ratio of the standard
//! deviation to the mean of all the per-interval CPI values in that phase.
//! The identifier CoV is then defined as the average of all per-phase
//! CoVs, weighted by how many intervals belong to each phase."

use std::collections::BTreeMap;

use crate::stats;

/// Group per-interval (phase, CPI) pairs into per-phase CPI vectors.
pub fn group_by_phase(pairs: &[(u32, f64)]) -> BTreeMap<u32, Vec<f64>> {
    let mut m: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for &(p, cpi) in pairs {
        m.entry(p).or_default().push(cpi);
    }
    m
}

/// The identifier CoV over a classified interval stream: per-phase CoV of
/// CPI, weighted by interval count.
pub fn identifier_cov(pairs: &[(u32, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let groups = group_by_phase(pairs);
    let weighted: Vec<(f64, f64)> = groups
        .values()
        .map(|cpis| (stats::cov(cpis), cpis.len() as f64))
        .collect();
    stats::weighted_mean(&weighted)
}

/// Number of distinct phases in a classified stream.
pub fn phase_count(pairs: &[(u32, f64)]) -> usize {
    group_by_phase(pairs).len()
}

/// Fraction of intervals spent tuning, the x-axis alternative for CoV
/// curves (paper §II: "a measure of tuning overhead (the fraction of
/// intervals that are spent in tuning)"). Each distinct phase must try
/// `trials_per_phase` configurations before settling.
pub fn tuning_fraction(phases: usize, trials_per_phase: usize, total_intervals: usize) -> f64 {
    if total_intervals == 0 {
        return 0.0;
    }
    ((phases * trials_per_phase) as f64 / total_intervals as f64).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_homogeneous_phases_give_zero() {
        // Two phases, constant CPI within each.
        let pairs = [(0, 1.0), (0, 1.0), (1, 3.0), (1, 3.0)];
        assert_eq!(identifier_cov(&pairs), 0.0);
    }

    #[test]
    fn every_interval_its_own_phase_is_trivially_zero() {
        // The paper's degenerate extreme.
        let pairs: Vec<(u32, f64)> = (0..10).map(|i| (i, i as f64 + 1.0)).collect();
        assert_eq!(identifier_cov(&pairs), 0.0);
        assert_eq!(phase_count(&pairs), 10);
    }

    #[test]
    fn one_phase_for_everything_has_large_cov() {
        let pairs: Vec<(u32, f64)> = vec![(0, 1.0), (0, 1.0), (0, 10.0), (0, 10.0)];
        let c = identifier_cov(&pairs);
        assert!(c > 0.5, "heterogeneous single phase must score badly, got {c}");
    }

    #[test]
    fn weighting_by_interval_count() {
        // Phase 0: 8 intervals with CoV 0; phase 1: 2 intervals with known CoV.
        let mut pairs = vec![(0u32, 2.0); 8];
        pairs.push((1, 1.0));
        pairs.push((1, 3.0));
        let phase1_cov = crate::stats::cov(&[1.0, 3.0]);
        let expected = (8.0 * 0.0 + 2.0 * phase1_cov) / 10.0;
        assert!((identifier_cov(&pairs) - expected).abs() < 1e-12);
    }

    #[test]
    fn splitting_a_heterogeneous_phase_reduces_cov() {
        // The core trade-off the CoV curve captures.
        let merged = [(0, 1.0), (0, 1.0), (0, 4.0), (0, 4.0)];
        let split = [(0, 1.0), (0, 1.0), (1, 4.0), (1, 4.0)];
        assert!(identifier_cov(&split) < identifier_cov(&merged));
    }

    #[test]
    fn empty_stream() {
        assert_eq!(identifier_cov(&[]), 0.0);
        assert_eq!(phase_count(&[]), 0);
    }

    #[test]
    fn tuning_fraction_behaviour() {
        assert_eq!(tuning_fraction(5, 4, 100), 0.2);
        assert_eq!(tuning_fraction(0, 4, 100), 0.0);
        assert_eq!(tuning_fraction(1000, 4, 100), 1.0, "clamped");
        assert_eq!(tuning_fraction(5, 4, 0), 0.0);
    }
}
