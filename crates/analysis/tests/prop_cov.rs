//! Property tests for the CoV machinery: bounds, relabeling invariance,
//! and the degenerate extremes the paper calls out.

use proptest::prelude::*;

use dsm_analysis::cov::{identifier_cov, phase_count};
use dsm_analysis::curve::{CovCurve, CurvePoint};
use dsm_analysis::stats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn identifier_cov_is_nonnegative_and_bounded(
        pairs in prop::collection::vec((0u32..6, 0.01f64..100.0), 1..200),
    ) {
        let cov = identifier_cov(&pairs);
        prop_assert!(cov >= 0.0);
        // Weighted mean of per-phase CoVs is bounded by the max per-phase CoV,
        // which for positive samples is bounded by sqrt(n).
        let max_cov = pairs.len() as f64;
        prop_assert!(cov <= max_cov);
    }

    #[test]
    fn relabeling_phases_does_not_change_cov(
        pairs in prop::collection::vec((0u32..5, 0.01f64..10.0), 1..100),
        offset in 1u32..1000,
    ) {
        let relabeled: Vec<(u32, f64)> =
            pairs.iter().map(|(p, c)| (p * 7 + offset, *c)).collect();
        let a = identifier_cov(&pairs);
        let b = identifier_cov(&relabeled);
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert_eq!(phase_count(&pairs), phase_count(&relabeled));
    }

    #[test]
    fn all_singletons_give_zero_cov(cpis in prop::collection::vec(0.01f64..100.0, 1..100)) {
        // "in the extreme case, every sampling interval would constitute a
        // distinct phase ... with CoV trivially zero".
        let pairs: Vec<(u32, f64)> =
            cpis.iter().enumerate().map(|(i, &c)| (i as u32, c)).collect();
        prop_assert_eq!(identifier_cov(&pairs), 0.0);
    }

    #[test]
    fn constant_cpi_gives_zero_cov_regardless_of_phases(
        phases in prop::collection::vec(0u32..8, 1..100),
        cpi in 0.1f64..10.0,
    ) {
        let pairs: Vec<(u32, f64)> = phases.iter().map(|&p| (p, cpi)).collect();
        prop_assert!(identifier_cov(&pairs) < 1e-12);
    }

    #[test]
    fn cov_scale_invariance(
        xs in prop::collection::vec(0.1f64..100.0, 2..50),
        k in 0.1f64..100.0,
    ) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        prop_assert!((stats::cov(&xs) - stats::cov(&scaled)).abs() < 1e-9);
    }

    #[test]
    fn envelope_is_pointwise_minimal(
        pts in prop::collection::vec((1.0f64..30.0, 0.0f64..2.0), 1..100),
    ) {
        let curve = CovCurve::new(
            pts.iter()
                .map(|&(phases, cov)| CurvePoint {
                    phases,
                    cov,
                    bbv_threshold: 0.1,
                    dds_threshold: None,
                })
                .collect(),
        );
        for (k, env_cov) in curve.lower_envelope(25) {
            // No raw point at this phase count may lie below the envelope.
            for &(phases, cov) in &pts {
                if phases.round() as usize == k {
                    prop_assert!(cov >= env_cov - 1e-12);
                }
            }
        }
    }

    #[test]
    fn phases_at_cov_and_cov_at_phases_are_consistent(
        pts in prop::collection::vec((1.0f64..30.0, 0.0f64..2.0), 1..50),
    ) {
        let curve = CovCurve::new(
            pts.iter()
                .map(|&(phases, cov)| CurvePoint {
                    phases,
                    cov,
                    bbv_threshold: 0.1,
                    dds_threshold: None,
                })
                .collect(),
        );
        if let Some(cov) = curve.cov_at_phases(15.0) {
            let phases = curve.phases_at_cov(cov).unwrap();
            prop_assert!(phases <= 15.5, "found at {phases} phases for cov {cov}");
        }
    }
}
