//! Span recording: per-track fixed-capacity ring buffers with explicit
//! drop counting.
//!
//! A *span* is a completed unit of work — one directory transaction, one
//! sampling interval — with a start timestamp and a duration, both in
//! simulated cycles. Each track (by convention, one per node per span
//! family) owns a buffer of fixed capacity decided at construction; the
//! recording path is a bounds check and a push into pre-allocated storage.
//! When a track fills up further spans increment a drop counter instead of
//! blocking, reallocating, or evicting — *keep-first* semantics, which keep
//! recording O(1), allocation-free, and deterministic. Exporters surface
//! the drop counts so truncation is never silent.

/// Interned id of a span name (index into the sink's name table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NameId(pub(crate) u16);

impl NameId {
    /// Sentinel handed out by the disabled stub.
    pub const DISABLED: NameId = NameId(u16::MAX);
}

/// Default per-track span capacity. Sized so a full-scale run costs a few
/// MB at most; overflow is counted, not stored.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct SpanRecord {
    name: NameId,
    ts: u64,
    dur: u64,
}

#[derive(Debug, Clone)]
struct Track {
    name: String,
    spans: Vec<SpanRecord>,
    dropped: u64,
}

/// The span sink: a name table plus one bounded buffer per track.
#[derive(Debug, Clone)]
pub struct SpanSink {
    names: Vec<&'static str>,
    tracks: Vec<Track>,
    capacity: usize,
}

impl SpanSink {
    pub fn new(n_tracks: usize, capacity: usize) -> Self {
        Self {
            names: Vec::new(),
            tracks: (0..n_tracks)
                .map(|i| Track {
                    name: format!("track{i}"),
                    spans: Vec::with_capacity(capacity),
                    dropped: 0,
                })
                .collect(),
            capacity,
        }
    }

    /// Intern a static span name; repeated interning returns the same id.
    pub fn intern(&mut self, name: &'static str) -> NameId {
        if let Some(i) = self.names.iter().position(|&n| n == name) {
            return NameId(i as u16);
        }
        assert!(self.names.len() < u16::MAX as usize, "span name table full");
        self.names.push(name);
        NameId(self.names.len() as u16 - 1)
    }

    /// Rename a track for the exporters.
    pub fn set_track_name(&mut self, track: usize, name: &str) {
        self.tracks[track].name = name.to_string();
    }

    /// Record one completed span; counts a drop when the track is full.
    #[inline]
    pub fn record(&mut self, track: usize, name: NameId, ts: u64, dur: u64) {
        let t = &mut self.tracks[track];
        if t.spans.len() < self.capacity {
            t.spans.push(SpanRecord { name, ts, dur });
        } else {
            t.dropped += 1;
        }
    }

    /// Spans recorded (not dropped) across all tracks.
    pub fn recorded(&self) -> u64 {
        self.tracks.iter().map(|t| t.spans.len() as u64).sum()
    }

    /// Spans dropped across all tracks.
    pub fn dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// Owned snapshot of every track, names resolved.
    pub fn snapshot_tracks(&self) -> Vec<TrackSnapshot> {
        self.tracks
            .iter()
            .map(|t| TrackSnapshot {
                name: t.name.clone(),
                spans: t
                    .spans
                    .iter()
                    .map(|s| SpanEvent {
                        name: self.names[s.name.0 as usize].to_string(),
                        ts: s.ts,
                        dur: s.dur,
                    })
                    .collect(),
                dropped: t.dropped,
            })
            .collect()
    }
}

/// One span in a snapshot, name resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: String,
    pub ts: u64,
    pub dur: u64,
}

/// One track in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackSnapshot {
    pub name: String,
    pub spans: Vec<SpanEvent>,
    pub dropped: u64,
}

/// Everything a telemetry facade recorded: metrics plus span tracks.
/// Always a real (owned) type, even in feature-off builds — the stub just
/// returns [`Snapshot::empty`] — so exporters downstream are feature-free.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// False when produced by the disabled stub.
    pub enabled: bool,
    /// All metrics, sorted by name.
    pub metrics: Vec<crate::metrics::MetricSample>,
    pub tracks: Vec<TrackSnapshot>,
}

impl Snapshot {
    pub fn empty() -> Self {
        Self { enabled: false, metrics: Vec::new(), tracks: Vec::new() }
    }

    /// Total spans dropped across all tracks.
    pub fn dropped_spans(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// Total spans recorded across all tracks.
    pub fn recorded_spans(&self) -> u64 {
        self.tracks.iter().map(|t| t.spans.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let mut s = SpanSink::new(1, 4);
        let a = s.intern("alpha");
        let b = s.intern("beta");
        assert_ne!(a, b);
        assert_eq!(s.intern("alpha"), a);
    }

    #[test]
    fn ring_keeps_first_and_counts_drops() {
        let mut s = SpanSink::new(2, 3);
        let n = s.intern("w");
        for i in 0..5 {
            s.record(0, n, i * 10, 5);
        }
        s.record(1, n, 0, 1);
        assert_eq!(s.recorded(), 4);
        assert_eq!(s.dropped(), 2);
        let tracks = s.snapshot_tracks();
        assert_eq!(tracks[0].spans.len(), 3);
        assert_eq!(tracks[0].dropped, 2);
        // Keep-first: the earliest spans survive.
        assert_eq!(tracks[0].spans[0].ts, 0);
        assert_eq!(tracks[0].spans[2].ts, 20);
        assert_eq!(tracks[1].dropped, 0);
    }

    #[test]
    fn snapshot_resolves_names_and_track_labels() {
        let mut s = SpanSink::new(1, 4);
        let n = s.intern("dir_read");
        s.set_track_name(0, "node0 coherence");
        s.record(0, n, 7, 3);
        let t = s.snapshot_tracks();
        assert_eq!(t[0].name, "node0 coherence");
        assert_eq!(t[0].spans[0], SpanEvent { name: "dir_read".into(), ts: 7, dur: 3 });
    }

    #[test]
    fn empty_snapshot_is_disabled() {
        let s = Snapshot::empty();
        assert!(!s.enabled);
        assert_eq!(s.dropped_spans(), 0);
        assert_eq!(s.recorded_spans(), 0);
    }
}
