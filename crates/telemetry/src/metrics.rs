//! Typed metrics registry: counters, gauges, and log2 histograms.
//!
//! Registration (name → id) happens once, at setup time, and may allocate
//! and hash; updates go through the returned id and are plain indexed
//! integer arithmetic. Snapshots are deterministic: [`MetricsRegistry::samples`]
//! returns metrics sorted by name, so two identical runs serialize to
//! identical bytes.

use std::collections::HashMap;

/// Id of a registered counter (index into the registry's counter table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(pub(crate) u32);

/// Id of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(pub(crate) u32);

/// Id of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(pub(crate) u32);

impl CounterId {
    /// Sentinel handed out by the disabled stub; never valid in a registry.
    pub const DISABLED: CounterId = CounterId(u32::MAX);
}
impl GaugeId {
    pub const DISABLED: GaugeId = GaugeId(u32::MAX);
}
impl HistId {
    pub const DISABLED: HistId = HistId(u32::MAX);
}

/// A fixed-bucket base-2 logarithmic histogram of `u64` observations.
///
/// Bucket 0 holds the value 0; bucket `b > 0` holds values in
/// `[2^(b-1), 2^b)`. 65 buckets cover the whole `u64` range, so recording
/// never allocates or saturates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    buckets: [u64; 65],
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; 65] }
    }
}

impl Log2Histogram {
    /// Bucket index of a value: 0 for 0, `ilog2(v) + 1` otherwise.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Arithmetic mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u8, c))
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

/// The value of one metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram {
        count: u64,
        sum: u64,
        /// `u64::MAX` when empty (mirrors [`Log2Histogram::min`]).
        min: u64,
        max: u64,
        /// Non-empty `(bucket_index, count)` pairs, ascending.
        buckets: Vec<(u8, u64)>,
    },
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    pub name: String,
    pub value: MetricValue,
}

/// The registry: name-addressed at registration, id-addressed on update.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    hists: Vec<(String, Log2Histogram)>,
    // One shared name index; ids are per-kind, so the map value carries the
    // kind to reject a name registered twice under different kinds.
    index: HashMap<String, (Kind, u32)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Hist,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total registered metrics of all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register(&mut self, name: &str, kind: Kind) -> u32 {
        if let Some(&(k, id)) = self.index.get(name) {
            assert_eq!(
                k, kind,
                "metric {name:?} already registered with a different kind"
            );
            return id;
        }
        let id = match kind {
            Kind::Counter => {
                self.counters.push((name.to_string(), 0));
                self.counters.len() as u32 - 1
            }
            Kind::Gauge => {
                self.gauges.push((name.to_string(), 0.0));
                self.gauges.len() as u32 - 1
            }
            Kind::Hist => {
                self.hists.push((name.to_string(), Log2Histogram::default()));
                self.hists.len() as u32 - 1
            }
        };
        self.index.insert(name.to_string(), (kind, id));
        id
    }

    /// Register (or look up) a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        CounterId(self.register(name, Kind::Counter))
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        GaugeId(self.register(name, Kind::Gauge))
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&mut self, name: &str) -> HistId {
        HistId(self.register(name, Kind::Hist))
    }

    /// Hot path: add to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize].1 += n;
    }

    /// Hot path: set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize].1 = v;
    }

    /// Hot path: record into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistId, v: u64) {
        self.hists[id.0 as usize].1.record(v);
    }

    /// Cold path: register-or-get and add in one call (publish bridges).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        let id = self.counter(name);
        self.add(id, n);
    }

    /// Cold path: register-or-get and set in one call.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        let id = self.gauge(name);
        self.set(id, v);
    }

    /// Cold path: register-or-get and record in one call.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        let id = self.histogram(name);
        self.record(id, v);
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.index.get(name) {
            Some(&(Kind::Counter, id)) => Some(self.counters[id as usize].1),
            _ => None,
        }
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.index.get(name) {
            Some(&(Kind::Gauge, id)) => Some(self.gauges[id as usize].1),
            _ => None,
        }
    }

    /// Current state of a histogram, if registered.
    pub fn histogram_value(&self, name: &str) -> Option<&Log2Histogram> {
        match self.index.get(name) {
            Some(&(Kind::Hist, id)) => Some(&self.hists[id as usize].1),
            _ => None,
        }
    }

    /// Deterministic snapshot: every metric, sorted by name.
    pub fn samples(&self) -> Vec<MetricSample> {
        let mut out: Vec<MetricSample> = Vec::with_capacity(self.len());
        for (name, v) in &self.counters {
            out.push(MetricSample { name: name.clone(), value: MetricValue::Counter(*v) });
        }
        for (name, v) in &self.gauges {
            out.push(MetricSample { name: name.clone(), value: MetricValue::Gauge(*v) });
        }
        for (name, h) in &self.hists {
            out.push(MetricSample {
                name: name.clone(),
                value: MetricValue::Histogram {
                    count: h.count,
                    sum: h.sum,
                    min: h.min,
                    max: h.max,
                    buckets: h.nonzero_buckets(),
                },
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Borrow this registry under a name prefix. Every metric registered
    /// through the returned [`ScopedRegistry`] gets `prefix` prepended
    /// (joined with `/`), so independent components — e.g. tenants of the
    /// streaming phase server — can publish the same logical metric names
    /// without colliding. Scopes nest: `r.scoped("serve").scoped("tenant/7")`
    /// addresses `serve/tenant/7/...`.
    pub fn scoped(&mut self, prefix: &str) -> ScopedRegistry<'_> {
        ScopedRegistry { reg: self, prefix: format!("{prefix}/") }
    }

    /// Merge a snapshot's samples into this registry: counters add,
    /// gauges overwrite, histogram buckets accumulate. Used by the harness
    /// to fold a component snapshot into the run-level registry.
    pub fn absorb(&mut self, samples: &[MetricSample]) {
        for s in samples {
            match &s.value {
                MetricValue::Counter(v) => self.counter_add(&s.name, *v),
                MetricValue::Gauge(v) => self.gauge_set(&s.name, *v),
                MetricValue::Histogram { count, sum, min, max, buckets } => {
                    let mut h = Log2Histogram {
                        count: *count,
                        sum: *sum,
                        min: *min,
                        max: *max,
                        buckets: [0; 65],
                    };
                    for &(b, c) in buckets {
                        h.buckets[b as usize] = c;
                    }
                    let id = self.histogram(&s.name);
                    self.hists[id.0 as usize].1.merge(&h);
                }
            }
        }
    }
}

/// A name-prefixing view over a [`MetricsRegistry`].
///
/// Registration goes through the prefix; the returned ids address the
/// underlying registry directly, so the hot path ([`MetricsRegistry::add`]
/// etc. via [`ScopedRegistry::add`]) pays no per-update string work — the
/// prefix is resolved once, at registration.
#[derive(Debug)]
pub struct ScopedRegistry<'a> {
    reg: &'a mut MetricsRegistry,
    /// Prefix including its trailing separator.
    prefix: String,
}

impl ScopedRegistry<'_> {
    /// Nest a further scope under this one.
    pub fn scoped(&mut self, prefix: &str) -> ScopedRegistry<'_> {
        ScopedRegistry { reg: self.reg, prefix: format!("{}{prefix}/", self.prefix) }
    }

    fn name(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    /// Register (or look up) a counter under the scope prefix.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.reg.counter(&self.name(name))
    }

    /// Register (or look up) a gauge under the scope prefix.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.reg.gauge(&self.name(name))
    }

    /// Register (or look up) a histogram under the scope prefix.
    pub fn histogram(&mut self, name: &str) -> HistId {
        self.reg.histogram(&self.name(name))
    }

    /// Hot path: add to a counter id obtained from any scope of this registry.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.reg.add(id, n);
    }

    /// Hot path: set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.reg.set(id, v);
    }

    /// Hot path: record into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistId, v: u64) {
        self.reg.record(id, v);
    }

    /// Cold path: register-or-get and add in one call.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        let id = self.counter(name);
        self.reg.add(id, n);
    }

    /// Cold path: register-or-get and set in one call.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        let id = self.gauge(name);
        self.reg.set(id, v);
    }

    /// Cold path: register-or-get and record in one call.
    pub fn hist_record(&mut self, name: &str, v: u64) {
        let id = self.histogram(name);
        self.reg.record(id, v);
    }

    /// Current value of a counter under the scope prefix.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.reg.counter_value(&self.name(name))
    }

    /// Current value of a gauge under the scope prefix.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.reg.gauge_value(&self.name(name))
    }

    /// Current state of a histogram under the scope prefix.
    pub fn histogram_value(&self, name: &str) -> Option<&Log2Histogram> {
        self.reg.histogram_value(&self.name(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_updates_indexed() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("a");
        let b = r.counter("b");
        assert_ne!(a, b);
        assert_eq!(r.counter("a"), a, "re-registration returns the same id");
        r.add(a, 2);
        r.add(a, 3);
        r.add(b, 1);
        assert_eq!(r.counter_value("a"), Some(5));
        assert_eq!(r.counter_value("b"), Some(1));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let mut r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn log2_bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(1023), 10);
        assert_eq!(Log2Histogram::bucket_index(1024), 11);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in [0, 1, 2, 3, 100] {
            r.record(h, v);
        }
        let hist = r.histogram_value("lat").unwrap();
        assert_eq!(hist.count, 5);
        assert_eq!(hist.sum, 106);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 100);
        assert!((hist.mean() - 21.2).abs() < 1e-12);
        assert_eq!(hist.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (7, 1)]);
    }

    #[test]
    fn samples_sorted_by_name_across_kinds() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z", 1);
        r.gauge_set("a", 0.5);
        r.hist_record("m", 7);
        let names: Vec<String> = r.samples().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn scoped_prefixes_and_nests() {
        let mut r = MetricsRegistry::new();
        {
            let mut s = r.scoped("serve");
            s.counter_add("offered", 3);
            let mut t = s.scoped("tenant/7");
            t.gauge_set("queue_depth", 4.0);
            t.hist_record("latency", 9);
            assert_eq!(t.counter_value("offered"), None, "scopes are disjoint");
        }
        assert_eq!(r.counter_value("serve/offered"), Some(3));
        assert_eq!(r.gauge_value("serve/tenant/7/queue_depth"), Some(4.0));
        assert_eq!(r.histogram_value("serve/tenant/7/latency").unwrap().count, 1);
        // Same scope re-created resolves to the same underlying metric.
        assert_eq!(r.scoped("serve").counter_value("offered"), Some(3));
        r.scoped("serve").counter_add("offered", 2);
        assert_eq!(r.counter_value("serve/offered"), Some(5));
    }

    #[test]
    fn scoped_ids_address_underlying_registry() {
        let mut r = MetricsRegistry::new();
        let id = r.scoped("a").counter("c");
        // The id is usable on the root registry and on any scope.
        r.add(id, 1);
        r.scoped("b").add(id, 1);
        assert_eq!(r.counter_value("a/c"), Some(2));
    }

    #[test]
    fn absorb_merges_all_kinds() {
        let mut src = MetricsRegistry::new();
        src.counter_add("c", 5);
        src.gauge_set("g", 2.0);
        src.hist_record("h", 8);
        let mut dst = MetricsRegistry::new();
        dst.counter_add("c", 1);
        dst.hist_record("h", 1);
        dst.absorb(&src.samples());
        assert_eq!(dst.counter_value("c"), Some(6));
        assert_eq!(dst.gauge_value("g"), Some(2.0));
        let h = dst.histogram_value("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 9);
        assert_eq!(h.nonzero_buckets(), vec![(1, 1), (4, 1)]);
    }
}
