//! Chrome `trace_event` exporter.
//!
//! Serializes a [`Snapshot`] into the JSON Object Format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one complete
//! (`"ph":"X"`) event per span, one process, one thread per track, with
//! thread-name metadata events labelling the tracks. Ring-buffer drop
//! counts are reported in `otherData` (total) and per track on the
//! thread-name metadata, so a truncated trace declares itself.
//!
//! Timestamps are simulated cycles written as integer `ts`/`dur` — the
//! viewer's absolute time unit is meaningless here, only relative layout
//! matters. Output is fully deterministic: tracks in index order, spans in
//! recording order, object keys in fixed order, no floats.

use crate::span::Snapshot;

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Export a snapshot as a Chrome trace JSON document.
pub fn export(snapshot: &Snapshot) -> String {
    let mut out = String::with_capacity(64 + snapshot.recorded_spans() as usize * 64);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, body: &str| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(body);
    };
    for (tid, track) in snapshot.tracks.iter().enumerate() {
        let mut meta = String::new();
        meta.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
        meta.push_str(&tid.to_string());
        meta.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut meta, &track.name);
        meta.push_str("\",\"dropped\":");
        meta.push_str(&track.dropped.to_string());
        meta.push_str("}}");
        push_event(&mut out, &meta);
        for span in &track.spans {
            let mut ev = String::new();
            ev.push_str("{\"name\":\"");
            escape_into(&mut ev, &span.name);
            ev.push_str("\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":0,\"tid\":");
            ev.push_str(&tid.to_string());
            ev.push_str(",\"ts\":");
            ev.push_str(&span.ts.to_string());
            ev.push_str(",\"dur\":");
            ev.push_str(&span.dur.to_string());
            ev.push('}');
            push_event(&mut out, &ev);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{");
    out.push_str("\"format\":\"dsm-telemetry-chrome/v1\",\"clock\":\"cycles\",");
    out.push_str("\"enabled\":");
    out.push_str(if snapshot.enabled { "true" } else { "false" });
    out.push_str(",\"recorded_spans\":");
    out.push_str(&snapshot.recorded_spans().to_string());
    out.push_str(",\"dropped_spans\":");
    out.push_str(&snapshot.dropped_spans().to_string());
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanEvent, TrackSnapshot};

    fn snap() -> Snapshot {
        Snapshot {
            enabled: true,
            metrics: Vec::new(),
            tracks: vec![
                TrackSnapshot {
                    name: "node0 coherence".into(),
                    spans: vec![
                        SpanEvent { name: "dir_read".into(), ts: 10, dur: 40 },
                        SpanEvent { name: "dir_write".into(), ts: 60, dur: 25 },
                    ],
                    dropped: 0,
                },
                TrackSnapshot { name: "node0 intervals".into(), spans: vec![], dropped: 3 },
            ],
        }
    }

    #[test]
    fn export_contains_spans_metadata_and_drops() {
        let t = export(&snap());
        assert!(t.starts_with("{\"traceEvents\":["));
        assert!(t.contains("\"thread_name\""));
        assert!(t.contains("\"node0 coherence\""));
        assert!(t.contains("\"dir_read\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":10,\"dur\":40"));
        assert!(t.contains("\"dropped\":3"));
        assert!(t.contains("\"dropped_spans\":3"));
        assert!(t.contains("\"recorded_spans\":2"));
        assert!(t.ends_with("}}"));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(export(&snap()), export(&snap()));
    }

    #[test]
    fn names_are_escaped() {
        let s = Snapshot {
            enabled: true,
            metrics: Vec::new(),
            tracks: vec![TrackSnapshot {
                name: "a\"b\\c\nd".into(),
                spans: vec![SpanEvent { name: "x\ty".into(), ts: 0, dur: 0 }],
                dropped: 0,
            }],
        };
        let t = export(&s);
        assert!(t.contains("a\\\"b\\\\c\\nd"));
        assert!(t.contains("x\\ty"));
    }

    #[test]
    fn empty_snapshot_still_valid_document() {
        let t = export(&Snapshot::empty());
        assert!(t.contains("\"traceEvents\":[]"));
        assert!(t.contains("\"enabled\":false"));
    }
}
