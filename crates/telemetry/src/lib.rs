//! # dsm-telemetry — zero-overhead observability
//!
//! A unified telemetry layer for the simulator, the detectors, and the
//! experiment harness, replacing the per-subsystem ad-hoc reporting paths
//! (hand-rolled `SystemStats` fields, `RunReport` cache counters, detector
//! degradation events, allocation tracking) with one registry and one span
//! stream. Three pieces:
//!
//! * [`metrics`] — a [`MetricsRegistry`] of typed counters, gauges, and
//!   fixed-bucket log2 histograms. Metrics are allocated once at
//!   registration time and updated through plain integer ids
//!   ([`CounterId`]/[`GaugeId`]/[`HistId`]); the update path is a bounds
//!   check and a `u64` add — no allocation, no hashing, no locking.
//! * [`span`] — per-track span recording into fixed-capacity ring buffers
//!   with *keep-first* semantics: once a track's buffer is full further
//!   spans are counted in an explicit drop counter instead of blocking or
//!   reallocating, so instrumentation can never perturb simulated timing.
//! * [`chrome`] — a deterministic Chrome `trace_event` JSON exporter;
//!   the artifact loads directly in `chrome://tracing` or Perfetto.
//!
//! ## Disabled form
//!
//! Instrumented crates gate their telemetry behind their own `telemetry`
//! cargo feature and import either the real [`Telemetry`] or
//! [`stub::Telemetry`] — a zero-sized type whose methods are empty
//! `#[inline(always)]` bodies, so a disabled build compiles every probe
//! down to nothing (the bench harness verifies events/sec against the
//! recorded `BENCH_SIM.json` baseline). Both types expose the identical
//! API and both hand out the same id types, so instrumentation sites are
//! written once with no `cfg` at the call site.
//!
//! This crate itself always compiles the real implementation (its unit
//! tests run in every build); *selection* happens in the consuming crates.

pub mod chrome;
pub mod metrics;
pub mod span;
pub mod stub;

pub use metrics::{
    CounterId, GaugeId, HistId, Log2Histogram, MetricSample, MetricValue, MetricsRegistry,
    ScopedRegistry,
};
pub use span::{NameId, Snapshot, SpanEvent, SpanSink, TrackSnapshot, DEFAULT_RING_CAPACITY};

/// The real telemetry facade: a metrics registry plus a span sink.
///
/// One instance is owned by each instrumented component (the simulator's
/// `System`, the online detector); components expose a [`Snapshot`] that
/// the harness merges and exports. See [`stub::Telemetry`] for the
/// feature-off mirror.
#[derive(Debug, Clone)]
pub struct Telemetry {
    reg: MetricsRegistry,
    spans: SpanSink,
}

impl Telemetry {
    /// A facade with `n_tracks` span tracks of [`DEFAULT_RING_CAPACITY`].
    pub fn new(n_tracks: usize) -> Self {
        Self::with_capacity(n_tracks, DEFAULT_RING_CAPACITY)
    }

    /// A facade with `n_tracks` span tracks of `capacity` spans each.
    pub fn with_capacity(n_tracks: usize, capacity: usize) -> Self {
        Self {
            reg: MetricsRegistry::new(),
            spans: SpanSink::new(n_tracks, capacity),
        }
    }

    /// Whether this facade records anything (`false` only on the stub).
    pub const fn enabled(&self) -> bool {
        true
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        self.reg.counter(name)
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        self.reg.gauge(name)
    }

    /// Register (or look up) a log2 histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistId {
        self.reg.histogram(name)
    }

    /// Intern a span name (static strings only: span names are a fixed
    /// vocabulary decided at instrumentation time, not formatted per event).
    pub fn intern(&mut self, name: &'static str) -> NameId {
        self.spans.intern(name)
    }

    /// Give span track `track` a human-readable name for the exporters.
    pub fn set_track_name(&mut self, track: usize, name: &str) {
        self.spans.set_track_name(track, name);
    }

    /// Hot path: add `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.reg.add(id, n);
    }

    /// Hot path: set a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.reg.set(id, v);
    }

    /// Hot path: record a histogram observation.
    #[inline]
    pub fn record(&mut self, id: HistId, v: u64) {
        self.reg.record(id, v);
    }

    /// Hot path: record a completed span on `track` starting at `ts` and
    /// lasting `dur` (both in cycles). Never blocks: a full ring counts the
    /// span as dropped instead.
    #[inline]
    pub fn span(&mut self, track: usize, name: NameId, ts: u64, dur: u64) {
        self.spans.record(track, name, ts, dur);
    }

    /// Cold-path access to the registry for bulk publication of existing
    /// stats structs. Returns `None` only on the stub, so publish bridges
    /// are written `if let Some(reg) = telem.registry_mut() { ... }` and
    /// vanish entirely in a disabled build.
    #[inline]
    pub fn registry_mut(&mut self) -> Option<&mut MetricsRegistry> {
        Some(&mut self.reg)
    }

    /// An owned snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            enabled: true,
            metrics: self.reg.samples(),
            tracks: self.spans.snapshot_tracks(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_round_trip() {
        let mut t = Telemetry::with_capacity(2, 8);
        assert!(t.enabled());
        let c = t.counter("x/count");
        let g = t.gauge("x/level");
        let h = t.histogram("x/lat");
        let n = t.intern("work");
        t.set_track_name(0, "node0");
        t.add(c, 3);
        t.add(c, 4);
        t.set(g, 2.5);
        t.record(h, 100);
        t.span(0, n, 10, 5);
        let snap = t.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.tracks.len(), 2);
        assert_eq!(snap.tracks[0].name, "node0");
        assert_eq!(snap.tracks[0].spans.len(), 1);
        assert_eq!(snap.tracks[0].spans[0].name, "work");
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["x/count", "x/lat", "x/level"], "samples sorted by name");
        assert_eq!(snap.metrics[0].value, MetricValue::Counter(7));
    }

    #[test]
    fn stub_mirrors_api_and_records_nothing() {
        let mut t = stub::Telemetry::new(4);
        assert!(!t.enabled());
        let c = t.counter("x");
        let n = t.intern("w");
        let h = t.histogram("h");
        let g = t.gauge("g");
        t.set_track_name(0, "ignored");
        t.add(c, 1);
        t.set(g, 1.0);
        t.record(h, 1);
        t.span(0, n, 0, 1);
        assert!(t.registry_mut().is_none());
        let snap = t.snapshot();
        assert!(!snap.enabled);
        assert!(snap.metrics.is_empty());
        assert!(snap.tracks.is_empty());
    }

    #[test]
    fn stub_is_zero_sized() {
        assert_eq!(std::mem::size_of::<stub::Telemetry>(), 0);
    }
}
