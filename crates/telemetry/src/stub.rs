//! The disabled form of the telemetry facade: a zero-sized type with the
//! exact API of [`crate::Telemetry`], every method an empty
//! `#[inline(always)]` body. Instrumented crates select between the two
//! with their own `telemetry` cargo feature:
//!
//! ```ignore
//! #[cfg(feature = "telemetry")]
//! pub use dsm_telemetry::Telemetry as SimTelemetry;
//! #[cfg(not(feature = "telemetry"))]
//! pub use dsm_telemetry::stub::Telemetry as SimTelemetry;
//! ```
//!
//! so a disabled build compiles every probe to nothing — no branch, no
//! store, no memory — and the id types flowing through instrumentation
//! sites stay identical in both builds. [`Telemetry::registry_mut`]
//! returning `None` lets cold-path publish bridges disappear too.

use crate::metrics::{CounterId, GaugeId, HistId, MetricsRegistry};
use crate::span::{NameId, Snapshot};

/// No-op mirror of [`crate::Telemetry`]. See the module docs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Telemetry;

impl Telemetry {
    #[inline(always)]
    pub fn new(_n_tracks: usize) -> Self {
        Telemetry
    }

    #[inline(always)]
    pub fn with_capacity(_n_tracks: usize, _capacity: usize) -> Self {
        Telemetry
    }

    /// Always false: nothing is recorded.
    pub const fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    pub fn counter(&mut self, _name: &str) -> CounterId {
        CounterId::DISABLED
    }

    #[inline(always)]
    pub fn gauge(&mut self, _name: &str) -> GaugeId {
        GaugeId::DISABLED
    }

    #[inline(always)]
    pub fn histogram(&mut self, _name: &str) -> HistId {
        HistId::DISABLED
    }

    #[inline(always)]
    pub fn intern(&mut self, _name: &'static str) -> NameId {
        NameId::DISABLED
    }

    #[inline(always)]
    pub fn set_track_name(&mut self, _track: usize, _name: &str) {}

    #[inline(always)]
    pub fn add(&mut self, _id: CounterId, _n: u64) {}

    #[inline(always)]
    pub fn set(&mut self, _id: GaugeId, _v: f64) {}

    #[inline(always)]
    pub fn record(&mut self, _id: HistId, _v: u64) {}

    #[inline(always)]
    pub fn span(&mut self, _track: usize, _name: NameId, _ts: u64, _dur: u64) {}

    /// Always `None`: publish bridges guarded on this vanish when disabled.
    #[inline(always)]
    pub fn registry_mut(&mut self) -> Option<&mut MetricsRegistry> {
        None
    }

    #[inline(always)]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::empty()
    }
}
