//! Property tests over the workload generators: for every application and
//! any power-of-two processor count, streams terminate, barrier/lock
//! sequences are well-formed and identical across processors, every event
//! is sane, and generation is deterministic.

use proptest::prelude::*;

use dsm_sim::event::Event;
use dsm_workloads::mem::NodeAlloc;
use dsm_workloads::{App, Scale};

fn drain(w: &mut dyn dsm_workloads::Workload, proc: usize, cap: usize) -> Vec<Event> {
    let mut all = Vec::new();
    loop {
        let mut buf = Vec::new();
        w.fill(proc, &mut buf);
        if buf.is_empty() {
            break;
        }
        all.extend(buf);
        assert!(all.len() < cap, "stream for proc {proc} exceeds {cap} events");
    }
    all
}

fn app_strategy() -> impl Strategy<Value = App> {
    prop::sample::select(App::EXTENDED.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn streams_are_wellformed_for_all_apps(
        app in app_strategy(),
        logp in 0u32..4,
    ) {
        let p = 1usize << logp;
        let mut w = app.build(p, Scale::Test);
        let mut barrier_seqs: Vec<Vec<u32>> = Vec::new();
        for proc in 0..p {
            let evs = drain(w.as_mut(), proc, 40_000_000);
            prop_assert!(!evs.is_empty(), "{} proc {proc} emitted nothing", app.name());

            let mut barriers = Vec::new();
            let mut held: Option<u32> = None;
            let mut insns = 0u64;
            for e in &evs {
                insns += e.nonsync_insns();
                match e {
                    Event::Block { insns, .. } => prop_assert!(*insns > 0),
                    Event::Fp { ops } => prop_assert!(*ops > 0),
                    Event::Mem { addr, .. } => {
                        let home = (*addr >> dsm_sim::addr::HOME_SHIFT) as usize;
                        prop_assert!(home < p, "home {home} out of range for p={p}");
                    }
                    Event::Barrier { id } => {
                        prop_assert!(held.is_none(), "barrier while holding a lock");
                        barriers.push(*id);
                    }
                    Event::Acquire { lock } => {
                        prop_assert!(held.is_none(), "nested lock");
                        held = Some(*lock);
                    }
                    Event::Release { lock } => {
                        prop_assert_eq!(held, Some(*lock), "release without acquire");
                        held = None;
                    }
                    Event::End => {}
                }
            }
            prop_assert!(held.is_none(), "lock held at end of stream");
            prop_assert!(insns > 0);
            barrier_seqs.push(barriers);
        }
        // All processors must arrive at the same barriers in the same order.
        for s in &barrier_seqs[1..] {
            prop_assert_eq!(s, &barrier_seqs[0]);
        }
    }

    #[test]
    fn generation_is_deterministic(app in app_strategy(), logp in 0u32..3) {
        let p = 1usize << logp;
        let a = drain(app.build(p, Scale::Test).as_mut(), p - 1, 40_000_000);
        let b = drain(app.build(p, Scale::Test).as_mut(), p - 1, 40_000_000);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn allocator_regions_never_overlap(
        sizes in prop::collection::vec((0usize..4, 1u64..5000), 1..50),
    ) {
        let mut alloc = NodeAlloc::new(4);
        let mut ranges: Vec<(usize, u64, u64)> = Vec::new();
        for (home, bytes) in sizes {
            let r = alloc.alloc(home, bytes);
            let start = r.addr(0);
            let end = start + r.bytes();
            for &(h, s, e) in &ranges {
                if h == home {
                    prop_assert!(end <= s || start >= e, "overlap on home {home}");
                }
            }
            ranges.push((home, start, end));
        }
    }
}
