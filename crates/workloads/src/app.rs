//! Application registry: uniform construction of any workload at any scale.

use dsm_sim::event::{ChunkGen, ChunkedStream, Event};
use serde::{Deserialize, Serialize};

use crate::inputs::Scale;

/// A workload: a chunk generator with a name and input description.
pub trait Workload: ChunkGen {
    fn name(&self) -> &'static str;
    fn input_desc(&self) -> String;
    /// Every shared-data region the workload will touch, in allocation
    /// order. Placement studies use this to model alternative initial
    /// homings (e.g. the serial-initialization first-touch pathology in
    /// [`crate::serial_init`]) without changing the compute stream.
    fn footprint(&self) -> Vec<crate::mem::Region>;
}

impl ChunkGen for Box<dyn Workload> {
    fn n_procs(&self) -> usize {
        (**self).n_procs()
    }
    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
        (**self).fill(proc, buf)
    }
}

impl Workload for Box<dyn Workload> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn input_desc(&self) -> String {
        (**self).input_desc()
    }
    fn footprint(&self) -> Vec<crate::mem::Region> {
        (**self).footprint()
    }
}

/// The four applications of the paper's Table II, plus the Ocean
/// extension (not part of the paper's evaluation — see
/// [`crate::ocean`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum App {
    Lu,
    Fmm,
    Art,
    Equake,
    Ocean,
}

impl App {
    /// The paper's evaluated applications (Table II). Figures iterate this
    /// set; [`App::Ocean`] is an extension reached explicitly.
    pub const ALL: [App; 4] = [App::Lu, App::Fmm, App::Art, App::Equake];
    /// Everything the workspace can simulate, extensions included.
    pub const EXTENDED: [App; 5] = [App::Lu, App::Fmm, App::Art, App::Equake, App::Ocean];

    pub fn name(&self) -> &'static str {
        match self {
            App::Lu => "LU",
            App::Fmm => "FMM",
            App::Art => "Art",
            App::Equake => "Equake",
            App::Ocean => "Ocean",
        }
    }

    /// Build the workload at a given scale for `n_procs` processors.
    pub fn build(&self, n_procs: usize, scale: Scale) -> Box<dyn Workload> {
        match self {
            App::Lu => Box::new(crate::lu::Lu::new(n_procs, crate::inputs::LuInput::at(scale))),
            App::Fmm => Box::new(crate::fmm::Fmm::new(n_procs, crate::inputs::FmmInput::at(scale))),
            App::Art => Box::new(crate::art::Art::new(n_procs, crate::inputs::ArtInput::at(scale))),
            App::Equake => Box::new(crate::equake::Equake::new(
                n_procs,
                crate::inputs::EquakeInput::at(scale),
            )),
            App::Ocean => Box::new(crate::ocean::Ocean::new(
                n_procs,
                crate::inputs::OceanInput::at(scale),
            )),
        }
    }
}

impl std::str::FromStr for App {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lu" => Ok(App::Lu),
            "fmm" => Ok(App::Fmm),
            "art" => Ok(App::Art),
            "equake" => Ok(App::Equake),
            "ocean" => Ok(App::Ocean),
            other => Err(format!("unknown app '{other}' (lu|fmm|art|equake|ocean)")),
        }
    }
}

/// Build a buffered instruction stream for an application.
pub fn make_stream(app: App, n_procs: usize, scale: Scale) -> ChunkedStream<Box<dyn Workload>> {
    ChunkedStream::new(app.build(n_procs, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_parsing() {
        assert_eq!("lu".parse::<App>().unwrap(), App::Lu);
        assert_eq!("EQUAKE".parse::<App>().unwrap(), App::Equake);
        assert!("mp3d".parse::<App>().is_err());
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = App::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["LU", "FMM", "Art", "Equake"]);
    }
}
