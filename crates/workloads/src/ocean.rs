//! Structural model of SPLASH-2 Ocean (eddy-current simulation: red-black
//! Gauss-Seidel relaxation with a multigrid solver on a regular 2-D grid).
//!
//! This application is **not** part of the paper's Table II — it is an
//! extension demonstrating that the detectors generalize beyond the four
//! evaluated workloads. Its DSM phase structure is distinctive:
//!
//! * **red/black stencil sweeps** exchange fixed subgrid boundaries with
//!   the four mesh neighbours (steady near-neighbour traffic);
//! * the **multigrid V-cycle** re-partitions the problem at every level:
//!   coarse grids live on a shrinking subset of processors, so identical
//!   stencil code touches a *different* set of remote homes at each level
//!   — invisible to the BBV, visible to the DDV;
//! * the **relaxation iteration count decays over timesteps** as the
//!   solution converges (same code, shrinking work — a temporal phase).

use dsm_sim::event::{ChunkGen, Event};

use crate::app::Workload;
use crate::emit;
use crate::inputs::OceanInput;
use crate::mem::{NodeAlloc, Region};

const BB_STENCIL: u32 = 0x5000;
const BB_STENCIL_INNER: u32 = 0x5001;
const BB_RESTRICT: u32 = 0x5010;
const BB_PROLONG: u32 = 0x5011;
const BB_REDUCE: u32 = 0x5020;

/// Global error-reduction lock.
const ERROR_LOCK: u32 = 0x50;

pub struct Ocean {
    p: usize,
    input: OceanInput,
    /// Per-level, per-owning-proc grid partitions. Level 0 is the fine
    /// grid (all procs); each coarser level halves the grid side and the
    /// number of participating processors.
    levels: Vec<Vec<Region>>,
    state: Vec<usize>, // next timestep per proc
}

impl Ocean {
    pub fn new(p: usize, input: OceanInput) -> Self {
        assert!(p.is_power_of_two());
        let mut alloc = NodeAlloc::new(p);
        let mut levels = Vec::new();
        let mut side = input.grid;
        let mut procs = p;
        for _ in 0..input.levels {
            let rows_per = (side / procs).max(1) as u64;
            let level: Vec<Region> = (0..procs)
                .map(|q| alloc.alloc(q, rows_per * side as u64 * 8))
                .collect();
            levels.push(level);
            side = (side / 2).max(4);
            procs = (procs / 2).max(1);
        }
        Self { p, input, levels, state: vec![0; p] }
    }

    /// Number of multigrid levels actually built.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Processors participating at a level (halves per level).
    pub fn procs_at_level(&self, level: usize) -> usize {
        (self.p >> level).max(1)
    }

    /// Owner of this proc's data at a coarser level (coarse partitions
    /// merge pairs of fine partitions).
    pub fn coarse_owner(&self, proc: usize, level: usize) -> usize {
        proc >> level
    }

    /// Relaxation sweeps at timestep `t`: starts high and decays as the
    /// solver converges (never below 1).
    pub fn sweeps_at(&self, t: usize) -> usize {
        let decay = t * self.input.sweeps_initial / self.input.timesteps.max(1) / 2;
        (self.input.sweeps_initial - decay).max(1)
    }

    /// One red or black half-sweep over this proc's partition at a level.
    fn emit_half_sweep(&self, buf: &mut Vec<Event>, proc: usize, level: usize) {
        let procs = self.procs_at_level(level);
        let owner = self.coarse_owner(proc, level).min(procs - 1);
        if proc != owner * (1 << level) {
            // This proc does not participate at this level; it idles to
            // the barrier (coarse-grid serialization imbalance).
            return;
        }
        let part = &self.levels[level][owner];
        let lines = part.lines();
        // Interior stencil: stream half the cells (red or black).
        emit::read_lines(buf, part, 0, lines / 2);
        for i in 0..lines / 2 {
            buf.push(Event::Mem { addr: part.line(i), write: true });
        }
        // Boundary exchange with the ring neighbours at this level.
        for nbr in [
            (owner + procs - 1) % procs,
            (owner + 1) % procs,
        ] {
            if nbr != owner {
                let npart = &self.levels[level][nbr];
                let ghost = 8.min(npart.lines());
                emit::read_lines(buf, npart, 0, ghost);
            }
        }
        emit::fp(buf, (lines * 5) as u32);
        emit::loop_burst(buf, BB_STENCIL_INNER, (lines * 3) as u32);
        emit::straight(buf, BB_STENCIL, 20);
    }

    fn emit_transfer(&self, buf: &mut Vec<Event>, proc: usize, from: usize, to: usize) {
        // Restriction/prolongation between levels: the coarse owner reads
        // the fine partitions it absorbs (or vice versa).
        let (fine, coarse, bb) =
            if from < to { (from, to, BB_RESTRICT) } else { (to, from, BB_PROLONG) };
        let coarse_procs = self.procs_at_level(coarse);
        let owner = self.coarse_owner(proc, coarse).min(coarse_procs - 1);
        if proc != owner * (1 << coarse) {
            return;
        }
        // The coarse owner gathers from the fine partitions of the procs it
        // represents.
        let fine_procs = self.procs_at_level(fine);
        let group = fine_procs / coarse_procs;
        for k in 0..group {
            let src = (owner * group + k).min(self.levels[fine].len() - 1);
            let part = &self.levels[fine][src];
            emit::read_lines(buf, part, 0, (part.lines() / 4).max(1));
        }
        let own = &self.levels[coarse][owner];
        emit::write_region(buf, own);
        emit::fp(buf, (own.lines() * 4) as u32);
        emit::loop_burst(buf, bb, (own.lines() * 2) as u32);
    }
}

impl ChunkGen for Ocean {
    fn n_procs(&self) -> usize {
        self.p
    }

    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
        let t = self.state[proc];
        if t >= self.input.timesteps {
            return;
        }
        let mut barrier = (t * (2 * self.n_levels() + 2)) as u32 * 8;

        // Fine-grid relaxation (converging sweep count).
        for _ in 0..self.sweeps_at(t) {
            self.emit_half_sweep(buf, proc, 0); // red
            self.emit_half_sweep(buf, proc, 0); // black
        }
        buf.push(Event::Barrier { id: barrier });
        barrier += 1;

        // Multigrid V-cycle: down (restrict + relax), then up (prolong).
        for level in 1..self.n_levels() {
            self.emit_transfer(buf, proc, level - 1, level);
            self.emit_half_sweep(buf, proc, level);
            buf.push(Event::Barrier { id: barrier });
            barrier += 1;
        }
        for level in (1..self.n_levels()).rev() {
            self.emit_transfer(buf, proc, level, level - 1);
            buf.push(Event::Barrier { id: barrier });
            barrier += 1;
        }

        // Global error reduction.
        buf.push(Event::Acquire { lock: ERROR_LOCK });
        emit::straight(buf, BB_REDUCE, 18);
        buf.push(Event::Release { lock: ERROR_LOCK });
        buf.push(Event::Barrier { id: barrier });

        self.state[proc] += 1;
    }
}

impl Workload for Ocean {
    fn name(&self) -> &'static str {
        "Ocean"
    }
    fn input_desc(&self) -> String {
        format!(
            "{g}x{g} grid, {l} multigrid levels, {t} timesteps (extension; not in the paper)",
            g = self.input.grid,
            l = self.input.levels,
            t = self.input.timesteps
        )
    }
    fn footprint(&self) -> Vec<Region> {
        self.levels.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::Scale;
    use dsm_sim::addr::HOME_SHIFT;

    fn drain(w: &mut Ocean, proc: usize) -> Vec<Event> {
        let mut all = Vec::new();
        loop {
            let mut buf = Vec::new();
            w.fill(proc, &mut buf);
            if buf.is_empty() {
                break;
            }
            all.extend(buf);
        }
        all
    }

    #[test]
    fn coarse_levels_halve_participants() {
        let o = Ocean::new(8, OceanInput::at(Scale::Test));
        assert_eq!(o.procs_at_level(0), 8);
        assert_eq!(o.procs_at_level(1), 4);
        assert_eq!(o.procs_at_level(2), 2);
    }

    #[test]
    fn sweeps_decay_over_timesteps() {
        let o = Ocean::new(2, OceanInput::at(Scale::Test));
        let first = o.sweeps_at(0);
        let last = o.sweeps_at(OceanInput::at(Scale::Test).timesteps - 1);
        assert!(first > last, "solver converges: {first} -> {last}");
        assert!(last >= 1);
    }

    #[test]
    fn coarse_sweep_touches_different_homes_than_fine() {
        let o = Ocean::new(8, OceanInput::at(Scale::Test));
        let homes = |level: usize| {
            let mut buf = Vec::new();
            o.emit_half_sweep(&mut buf, 0, level);
            buf.iter()
                .filter_map(|e| match e {
                    Event::Mem { addr, .. } => Some((*addr >> HOME_SHIFT) as usize),
                    _ => None,
                })
                .collect::<std::collections::BTreeSet<usize>>()
        };
        let fine = homes(0);
        let coarse = homes(2);
        assert!(!fine.is_empty() && !coarse.is_empty());
        assert_ne!(fine, coarse, "levels must shift the home set");
    }

    #[test]
    fn nonparticipants_emit_nothing_at_coarse_levels() {
        let o = Ocean::new(8, OceanInput::at(Scale::Test));
        let mut buf = Vec::new();
        o.emit_half_sweep(&mut buf, 3, 2); // only procs 0 and 4 participate
        assert!(buf.is_empty());
    }

    #[test]
    fn barrier_sequences_agree_and_locks_balance() {
        let mut o = Ocean::new(4, OceanInput::at(Scale::Test));
        let seq = |evs: &[Event]| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect::<Vec<u32>>()
        };
        let e0 = drain(&mut o, 0);
        for p in 1..4 {
            let ep = drain(&mut o, p);
            assert_eq!(seq(&ep), seq(&e0));
            let acq = ep.iter().filter(|x| matches!(x, Event::Acquire { .. })).count();
            let rel = ep.iter().filter(|x| matches!(x, Event::Release { .. })).count();
            assert_eq!(acq, rel);
        }
    }

    #[test]
    fn work_decreases_across_run() {
        let input = OceanInput::at(Scale::Test);
        let mut o = Ocean::new(2, input);
        // Compare non-sync instructions in the first vs last timestep.
        let mut first = Vec::new();
        o.fill(0, &mut first);
        let mut last = Vec::new();
        for _ in 1..input.timesteps {
            last.clear();
            o.fill(0, &mut last);
        }
        let insns = |evs: &[Event]| evs.iter().map(|e| e.nonsync_insns()).sum::<u64>();
        assert!(insns(&first) > insns(&last));
    }
}
