//! Data placement for workloads: a per-node bump allocator over the
//! explicit-home address space, and contiguous single-home regions.

use dsm_sim::addr::{explicit_addr, Addr, NodeId, BLOCK_BYTES};

/// Allocates non-overlapping regions in each node's explicit address range.
#[derive(Debug, Clone)]
pub struct NodeAlloc {
    next: Vec<u64>,
}

/// Per-home base-offset stagger, in bytes (33 cache lines). Without it,
/// every node's hottest structure would start at offset 0 and all homes'
/// data would collide in the same cache sets (set indices come from low
/// address bits, the home from high bits). Real allocators never hand every
/// node the same node-local offsets; the odd-line stagger models that.
const HOME_STAGGER_BYTES: u64 = 33 * BLOCK_BYTES;

impl NodeAlloc {
    pub fn new(n_nodes: usize) -> Self {
        Self {
            next: (0..n_nodes as u64).map(|h| h * HOME_STAGGER_BYTES).collect(),
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.next.len()
    }

    /// Allocate `bytes` homed at `home`, block-aligned.
    pub fn alloc(&mut self, home: NodeId, bytes: u64) -> Region {
        let aligned = bytes.div_ceil(BLOCK_BYTES) * BLOCK_BYTES;
        let base = self.next[home];
        self.next[home] += aligned;
        Region { home, base, bytes: aligned }
    }
}

/// A contiguous, block-aligned allocation homed at a single node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub home: NodeId,
    base: u64,
    bytes: u64,
}

impl Region {
    /// Address of byte `off` within the region.
    #[inline]
    pub fn addr(&self, off: u64) -> Addr {
        debug_assert!(off < self.bytes, "offset {off} out of region ({} bytes)", self.bytes);
        explicit_addr(self.home, self.base + off)
    }

    /// Address of the `i`-th cache line.
    #[inline]
    pub fn line(&self, i: u64) -> Addr {
        self.addr(i * BLOCK_BYTES)
    }

    /// Number of cache lines in the region.
    #[inline]
    pub fn lines(&self) -> u64 {
        self.bytes / BLOCK_BYTES
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::addr::HOME_SHIFT;

    #[test]
    fn alloc_is_block_aligned_and_disjoint() {
        let mut a = NodeAlloc::new(4);
        let r1 = a.alloc(2, 100); // rounds to 128
        let r2 = a.alloc(2, 32);
        assert_eq!(r1.bytes(), 128);
        assert_eq!(r1.lines(), 4);
        // r2 starts where r1 ends.
        assert_eq!(r2.addr(0), r1.addr(0) + 128);
    }

    #[test]
    fn regions_on_different_homes_are_independent() {
        let mut a = NodeAlloc::new(4);
        let r1 = a.alloc(0, 64);
        let r2 = a.alloc(3, 64);
        assert_eq!(r1.addr(0) >> HOME_SHIFT, 0);
        assert_eq!(r2.addr(0) >> HOME_SHIFT, 3);
    }

    #[test]
    fn homes_start_at_staggered_offsets() {
        // First allocations on different homes must not share low address
        // bits, or every node's hot data would collide in the same cache
        // sets.
        let mut a = NodeAlloc::new(8);
        let offs: Vec<u64> = (0..8)
            .map(|h| a.alloc(h, 32).addr(0) & ((1 << HOME_SHIFT) - 1))
            .collect();
        let distinct: std::collections::HashSet<u64> = offs.iter().copied().collect();
        assert_eq!(distinct.len(), 8, "staggered bases must differ: {offs:?}");
        assert_eq!(offs[1] - offs[0], HOME_STAGGER_BYTES);
    }

    #[test]
    fn line_addressing() {
        let mut a = NodeAlloc::new(2);
        let r = a.alloc(1, 96);
        assert_eq!(r.line(0), r.addr(0));
        assert_eq!(r.line(2), r.addr(64));
        assert_eq!(r.lines(), 3);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_region_access_panics_in_debug() {
        let mut a = NodeAlloc::new(2);
        let r = a.alloc(0, 32);
        let _ = r.addr(32);
    }
}
