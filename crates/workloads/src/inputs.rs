//! Input sets (the paper's Table II) at three scales.
//!
//! `Paper` reproduces the parameter magnitudes of Table II; `Scaled` is the
//! reduced default used by the experiment harness (DESIGN.md §7) — mirroring
//! the paper's own use of MinneSPEC-reduced inputs and 3 M-instruction
//! intervals; `Test` is tiny, for unit/integration tests.

use serde::{Deserialize, Serialize};

/// Input scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny inputs for tests (runs in milliseconds).
    Test,
    /// Reduced default inputs for the harness (seconds per run).
    Scaled,
    /// Table II magnitudes (minutes per run).
    Paper,
}

/// LU: dense matrix dimension and block size ("512×512 matrix, 16×16
/// block" in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LuInput {
    pub n: usize,
    pub block: usize,
}

impl LuInput {
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self { n: 64, block: 16 },
            Scale::Scaled => Self { n: 384, block: 16 },
            Scale::Paper => Self { n: 512, block: 16 },
        }
    }
}

/// FMM: particle count ("65,536 particles"), leaf-cell occupancy, timesteps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FmmInput {
    pub particles: usize,
    pub cell_cap: usize,
    pub timesteps: usize,
}

impl FmmInput {
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self { particles: 512, cell_cap: 32, timesteps: 3 },
            Scale::Scaled => Self { particles: 6144, cell_cap: 32, timesteps: 16 },
            Scale::Paper => Self { particles: 65_536, cell_cap: 64, timesteps: 10 },
        }
    }
}

/// Art: F2 neuron count, F1 window size in cache lines, scanfield
/// positions, trained objects (MinneSPEC-Large in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtInput {
    pub f2_neurons: usize,
    pub f1_lines: u64,
    pub positions: usize,
    pub objects: usize,
}

impl ArtInput {
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self { f2_neurons: 8, f1_lines: 16, positions: 40, objects: 2 },
            Scale::Scaled => Self { f2_neurons: 32, f1_lines: 64, positions: 400, objects: 2 },
            Scale::Paper => Self { f2_neurons: 100, f1_lines: 128, positions: 4000, objects: 2 },
        }
    }
}

/// Equake: mesh nodes, sparsity, timesteps, source-active prefix
/// (MinneSPEC-Large in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquakeInput {
    pub mesh_nodes: usize,
    pub nnz_per_row: usize,
    pub timesteps: usize,
    pub quake_steps: usize,
}

impl EquakeInput {
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self { mesh_nodes: 1024, nnz_per_row: 8, timesteps: 6, quake_steps: 2 },
            Scale::Scaled => Self { mesh_nodes: 4096, nnz_per_row: 8, timesteps: 48, quake_steps: 12 },
            Scale::Paper => Self { mesh_nodes: 30_000, nnz_per_row: 8, timesteps: 160, quake_steps: 40 },
        }
    }
}

/// Ocean (extension, not in the paper's Table II): grid side, multigrid
/// levels, timesteps, initial relaxation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OceanInput {
    pub grid: usize,
    pub levels: usize,
    pub timesteps: usize,
    pub sweeps_initial: usize,
}

impl OceanInput {
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => Self { grid: 64, levels: 3, timesteps: 6, sweeps_initial: 4 },
            Scale::Scaled => Self { grid: 130, levels: 4, timesteps: 30, sweeps_initial: 6 },
            Scale::Paper => Self { grid: 258, levels: 5, timesteps: 100, sweeps_initial: 8 },
        }
    }
}

/// Union of the per-app inputs, with Table II rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppInput {
    Lu(LuInput),
    Fmm(FmmInput),
    Art(ArtInput),
    Equake(EquakeInput),
}

impl AppInput {
    /// Paper-style input description (Table II's "Input Set" column).
    pub fn describe(&self) -> String {
        match self {
            AppInput::Lu(i) => format!("{}x{} matrix, {}x{} block", i.n, i.n, i.block, i.block),
            AppInput::Fmm(i) => format!("{} particles", i.particles),
            AppInput::Art(i) => format!(
                "{} F2 neurons, {} positions (Minnespec-Large analogue)",
                i.f2_neurons, i.positions
            ),
            AppInput::Equake(i) => format!(
                "{}-node mesh, {} timesteps (Minnespec-Large analogue)",
                i.mesh_nodes, i.timesteps
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_inputs_match_table_two() {
        let lu = LuInput::at(Scale::Paper);
        assert_eq!((lu.n, lu.block), (512, 16));
        assert_eq!(FmmInput::at(Scale::Paper).particles, 65_536);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(LuInput::at(Scale::Test).n < LuInput::at(Scale::Scaled).n);
        assert!(LuInput::at(Scale::Scaled).n <= LuInput::at(Scale::Paper).n);
        assert!(FmmInput::at(Scale::Test).particles < FmmInput::at(Scale::Scaled).particles);
        assert!(
            EquakeInput::at(Scale::Scaled).mesh_nodes < EquakeInput::at(Scale::Paper).mesh_nodes
        );
    }

    #[test]
    fn blocks_divide_matrices() {
        for s in [Scale::Test, Scale::Scaled, Scale::Paper] {
            let lu = LuInput::at(s);
            assert_eq!(lu.n % lu.block, 0);
        }
    }

    #[test]
    fn table_two_descriptions() {
        assert_eq!(
            AppInput::Lu(LuInput::at(Scale::Paper)).describe(),
            "512x512 matrix, 16x16 block"
        );
        assert_eq!(
            AppInput::Fmm(FmmInput::at(Scale::Paper)).describe(),
            "65536 particles"
        );
    }
}
