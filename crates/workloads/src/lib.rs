//! # dsm-workloads — structural workload models
//!
//! The paper evaluates on SPLASH-2 LU and FMM and SPEC-OMP Art and Equake
//! (Table II). We cannot run the original binaries inside a from-scratch
//! simulator, so each application is modelled *structurally*: a
//! per-processor state machine that emits the real algorithm's basic-block
//! and memory-reference pattern — who owns which data, which homes each
//! phase of the computation touches, how work shrinks/rotates over time,
//! and where the synchronization points are. The phase detectors consume
//! only committed basic blocks and per-home access counts, so these are
//! exactly the properties that must be faithful (see DESIGN.md §2).
//!
//! * [`lu`] — blocked dense LU with 2-D scatter block ownership
//!   (diagonal → perimeter → interior steps, shrinking active window);
//! * [`fmm`] — adaptive fast multipole N-body (tree build, upward pass,
//!   multipole interactions with rotating remote partners, direct
//!   neighbour forces, particle update);
//! * [`art`] — ART2 neural-net image scanner (F1 layer, distributed F2
//!   weight matching, lock-guarded winner search, moving-hot-spot weight
//!   updates);
//! * [`equake`] — unstructured-mesh seismic FEM (sparse MVP with ghost
//!   exchange, vector updates, early-timestep source application, global
//!   reductions);
//! * [`synth`] — synthetic phased workloads with ground-truth labels for
//!   validating detectors and the CoV machinery;
//! * [`serial_init`] — opt-in serial-initialization prologue reproducing
//!   the first-touch placement pathology for the placement studies.

pub mod app;
pub mod art;
pub mod emit;
pub mod equake;
pub mod fmm;
pub mod inputs;
pub mod lu;
pub mod mem;
pub mod ocean;
pub mod serial_init;
pub mod synth;

pub use app::{make_stream, App, Workload};
pub use serial_init::{make_serial_init_stream, SerialInit};
pub use inputs::{AppInput, Scale};
