//! Structural model of SPEC-OMP Equake (seismic wave propagation, explicit
//! FEM time integration on an unstructured mesh).
//!
//! Mesh nodes are partitioned contiguously (1-D) across processors; the
//! stiffness matrix rows live with their owner, and the per-step sparse
//! matrix-vector product reads ghost entries of the displacement vector
//! from ring neighbours at partition boundaries. Each timestep:
//!
//! 1. **SMVP** over owned rows (boundary chunks read remote ghosts);
//! 2. **vector updates** (velocity/displacement, fully local, streaming);
//! 3. **source application** — only during the first `quake_steps` steps and
//!    only on the processor owning the epicentre (distinct code + load
//!    imbalance early in the run: a program phase in time);
//! 4. a lock-guarded **global reduction** (energy/norm) at node 0, then a
//!    barrier; every 10th step adds an **output sampling** pass with its own
//!    code signature.
//!
//! As the processor count grows the per-processor partition shrinks while
//! the ghost boundary stays fixed, so the remote share of traffic — and the
//! reduction hot-spot at node 0 — grow with the machine, which is the
//! scaling behaviour the paper's DSM study depends on.

use dsm_sim::event::{ChunkGen, Event};

use crate::app::Workload;
use crate::emit;
use crate::inputs::EquakeInput;
use crate::mem::{NodeAlloc, Region};

const BB_SMVP: u32 = 0x4000;
const BB_SMVP_INNER: u32 = 0x4001;
const BB_VECTOR: u32 = 0x4010;
const BB_SOURCE: u32 = 0x4020;
const BB_REDUCE: u32 = 0x4030;
const BB_OUTPUT: u32 = 0x4040;

/// Rows per emitted SMVP chunk.
const CHUNK_ROWS: u64 = 16;
/// Ghost lines read from each neighbour per boundary chunk.
const GHOST_LINES: u64 = 24;
/// Extra ghost lines exchanged with the partition the seismic wavefront is
/// currently crossing (same code path as ordinary ghost reads — the
/// signature is purely in the data distribution).
const FRONT_LINES: u64 = 48;
/// Global reduction lock.
const REDUCE_LOCK: u32 = 0x40;
/// Steps between output sampling passes.
const OUTPUT_PERIOD: usize = 10;

pub struct Equake {
    p: usize,
    input: EquakeInput,
    /// Per-proc stiffness-matrix partition (rows + column indices).
    matrix: Vec<Region>,
    /// Per-proc displacement-vector slice.
    disp: Vec<Region>,
    /// Per-proc velocity-vector slice.
    vel: Vec<Region>,
    /// Shared reduction cell at node 0.
    sum: Region,
    state: Vec<usize>, // next timestep per proc
}

impl Equake {
    pub fn new(p: usize, input: EquakeInput) -> Self {
        assert!(p.is_power_of_two());
        let rows_per_proc = (input.mesh_nodes / p).max(CHUNK_ROWS as usize);
        let mut alloc = NodeAlloc::new(p);
        let row_bytes = (input.nnz_per_row * 12) as u64; // value + column index
        let matrix = (0..p)
            .map(|q| alloc.alloc(q, rows_per_proc as u64 * row_bytes))
            .collect();
        let disp = (0..p).map(|q| alloc.alloc(q, rows_per_proc as u64 * 8)).collect();
        let vel = (0..p).map(|q| alloc.alloc(q, rows_per_proc as u64 * 8)).collect();
        let sum = alloc.alloc(0, 32);
        Self { p, input, matrix, disp, vel, sum, state: vec![0; p] }
    }

    fn rows_per_proc(&self) -> u64 {
        (self.input.mesh_nodes / self.p).max(CHUNK_ROWS as usize) as u64
    }

    /// Whether the quake source is active at timestep `t` on `proc`
    /// (epicentre owned by processor 0).
    pub fn source_active(&self, proc: usize, t: usize) -> bool {
        proc == 0 && t < self.input.quake_steps
    }

    /// Partition the seismic wavefront is crossing at timestep `t`: it
    /// starts at the epicentre (processor 0) and sweeps outward over the
    /// run.
    pub fn front(&self, t: usize) -> usize {
        let stride = (self.input.timesteps / self.p).max(1);
        (t / stride) % self.p
    }

    fn emit_smvp(&self, buf: &mut Vec<Event>, proc: usize, t: usize) {
        let rows = self.rows_per_proc();
        let chunks = rows / CHUNK_ROWS;
        let mat = &self.matrix[proc];
        let x = &self.disp[proc];
        let mat_lines_per_chunk = (mat.lines() / chunks.max(1)).max(1);
        let x_lines_per_chunk = (x.lines() / chunks.max(1)).max(1);
        let left = (proc + self.p - 1) % self.p;
        let right = (proc + 1) % self.p;
        for c in 0..chunks {
            // Stream the matrix partition and the local vector slice.
            let m0 = c * mat_lines_per_chunk;
            emit::read_lines(buf, mat, m0, mat_lines_per_chunk.min(mat.lines() - m0));
            let x0 = c * x_lines_per_chunk;
            emit::read_lines(buf, x, x0, x_lines_per_chunk.min(x.lines() - x0));
            // Boundary chunks read ghost displacements from ring neighbours.
            if c == 0 && left != proc {
                let nx = &self.disp[left];
                emit::read_lines(buf, nx, nx.lines() - GHOST_LINES.min(nx.lines()), GHOST_LINES.min(nx.lines()));
            }
            if c == chunks - 1 && right != proc {
                let nx = &self.disp[right];
                emit::read_lines(buf, nx, 0, GHOST_LINES.min(nx.lines()));
            }
            emit::fp(buf, (CHUNK_ROWS * self.input.nnz_per_row as u64 * 2) as u32);
            emit::loop_burst(buf, BB_SMVP_INNER, (CHUNK_ROWS * 10) as u32);
        }
        // Wavefront exchange: partitions adjacent to the front refine
        // against the front's displacements. Identical code (the ordinary
        // ghost-read loop) aimed at a home that rotates over the run —
        // invisible to the BBV, visible to the DDV.
        let front = self.front(t);
        let ring_dist = (proc + self.p - front) % self.p;
        if self.p > 2 && (ring_dist == 1 || ring_dist == self.p - 1) {
            let fx = &self.disp[front];
            let lines = FRONT_LINES.min(fx.lines());
            emit::read_lines(buf, fx, 0, lines);
            emit::loop_burst(buf, BB_SMVP_INNER, (lines * 4) as u32);
        }
        emit::straight(buf, BB_SMVP, 24);
    }

    fn emit_vector_update(&self, buf: &mut Vec<Event>, proc: usize) {
        for r in [&self.vel[proc], &self.disp[proc]] {
            emit::update_region(buf, r);
            emit::fp(buf, (r.lines() * 8) as u32);
            emit::loop_burst(buf, BB_VECTOR, (r.lines() * 4) as u32);
        }
    }

    fn emit_source(&self, buf: &mut Vec<Event>, proc: usize) {
        // Epicentre excitation: concentrated update at the start of the
        // owner's displacement slice.
        let d = &self.disp[proc];
        let lines = 16.min(d.lines());
        for i in 0..lines {
            buf.push(Event::Mem { addr: d.line(i), write: false });
            buf.push(Event::Mem { addr: d.line(i), write: true });
        }
        emit::fp(buf, 1200);
        emit::loop_burst(buf, BB_SOURCE, 400);
    }

    fn emit_reduction(&self, buf: &mut Vec<Event>, _proc: usize) {
        buf.push(Event::Acquire { lock: REDUCE_LOCK });
        emit::update_region(buf, &self.sum);
        emit::straight(buf, BB_REDUCE, 14);
        buf.push(Event::Release { lock: REDUCE_LOCK });
    }

    fn emit_output(&self, buf: &mut Vec<Event>, proc: usize) {
        emit::read_region(buf, &self.disp[proc]);
        emit::loop_burst(buf, BB_OUTPUT, (self.disp[proc].lines() * 6) as u32);
    }
}

impl ChunkGen for Equake {
    fn n_procs(&self) -> usize {
        self.p
    }

    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
        let t = self.state[proc];
        if t >= self.input.timesteps {
            return;
        }
        self.emit_smvp(buf, proc, t);
        buf.push(Event::Barrier { id: (t * 2) as u32 });
        self.emit_vector_update(buf, proc);
        if self.source_active(proc, t) {
            self.emit_source(buf, proc);
        }
        self.emit_reduction(buf, proc);
        if t % OUTPUT_PERIOD == OUTPUT_PERIOD - 1 {
            self.emit_output(buf, proc);
        }
        buf.push(Event::Barrier { id: (t * 2 + 1) as u32 });
        self.state[proc] += 1;
    }
}

impl Workload for Equake {
    fn name(&self) -> &'static str {
        "Equake"
    }
    fn input_desc(&self) -> String {
        crate::inputs::AppInput::Equake(self.input).describe()
    }
    fn footprint(&self) -> Vec<Region> {
        let mut f = self.matrix.clone();
        f.extend_from_slice(&self.disp);
        f.extend_from_slice(&self.vel);
        f.push(self.sum);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::Scale;
    use dsm_sim::addr::HOME_SHIFT;

    fn drain(w: &mut Equake, proc: usize) -> Vec<Event> {
        let mut all = Vec::new();
        loop {
            let mut buf = Vec::new();
            w.fill(proc, &mut buf);
            if buf.is_empty() {
                break;
            }
            all.extend(buf);
        }
        all
    }

    #[test]
    fn smvp_reads_ghosts_from_both_neighbours() {
        let e = Equake::new(4, EquakeInput::at(Scale::Test));
        let mut buf = Vec::new();
        e.emit_smvp(&mut buf, 1, 0);
        let homes: std::collections::HashSet<usize> = buf
            .iter()
            .filter_map(|ev| match ev {
                Event::Mem { addr, .. } => Some((*addr >> HOME_SHIFT) as usize),
                _ => None,
            })
            .collect();
        assert!(homes.contains(&0), "left neighbour ghost");
        assert!(homes.contains(&2), "right neighbour ghost");
        assert!(homes.contains(&1), "own partition");
        assert!(!homes.contains(&3), "no traffic to non-neighbours");
    }

    #[test]
    fn source_only_on_proc0_early_steps() {
        let input = EquakeInput::at(Scale::Test);
        let e = Equake::new(4, input);
        assert!(e.source_active(0, 0));
        assert!(!e.source_active(1, 0));
        assert!(!e.source_active(0, input.quake_steps));
    }

    #[test]
    fn source_phase_appears_only_early_in_stream() {
        let input = EquakeInput::at(Scale::Test);
        let mut e = Equake::new(2, input);
        let evs = drain(&mut e, 0);
        // Count BB_SOURCE bursts per timestep via barrier positions.
        let mut t = 0usize;
        let mut per_step = vec![0usize; input.timesteps];
        for ev in &evs {
            match ev {
                Event::Barrier { id } if id % 2 == 1 => t += 1,
                Event::Block { bb: BB_SOURCE, .. } => per_step[t] += 1,
                _ => {}
            }
        }
        assert!(per_step[..input.quake_steps].iter().all(|&c| c > 0));
        assert!(per_step[input.quake_steps..].iter().all(|&c| c == 0));
    }

    #[test]
    fn remote_share_grows_with_processor_count() {
        let frac = |p: usize| {
            let e = Equake::new(p, EquakeInput::at(Scale::Scaled));
            let mut buf = Vec::new();
            e.emit_smvp(&mut buf, 1 % p, 20);
            let (mut remote, mut total) = (0usize, 0usize);
            for ev in &buf {
                if let Event::Mem { addr, .. } = ev {
                    total += 1;
                    if (*addr >> HOME_SHIFT) as usize != 1 % p {
                        remote += 1;
                    }
                }
            }
            remote as f64 / total as f64
        };
        assert!(frac(16) > frac(2), "ghost share must grow as partitions shrink");
    }

    #[test]
    fn reduction_locks_are_balanced_and_barriers_agree() {
        let input = EquakeInput::at(Scale::Test);
        let mut e = Equake::new(2, input);
        let seq = |evs: &[Event]| {
            evs.iter()
                .filter_map(|ev| match ev {
                    Event::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect::<Vec<u32>>()
        };
        let e0 = drain(&mut e, 0);
        let e1 = drain(&mut e, 1);
        assert_eq!(seq(&e0), seq(&e1));
        assert_eq!(seq(&e0).len(), 2 * input.timesteps);
        for evs in [&e0, &e1] {
            let acq = evs.iter().filter(|x| matches!(x, Event::Acquire { .. })).count();
            let rel = evs.iter().filter(|x| matches!(x, Event::Release { .. })).count();
            assert_eq!(acq, rel);
            assert_eq!(acq, input.timesteps);
        }
    }

    #[test]
    fn output_phase_every_tenth_step() {
        let input = EquakeInput { timesteps: 20, ..EquakeInput::at(Scale::Test) };
        let mut e = Equake::new(2, input);
        let evs = drain(&mut e, 0);
        let outputs = evs
            .iter()
            .filter(|ev| matches!(ev, Event::Block { bb: BB_OUTPUT, taken: false, .. }))
            .count();
        assert_eq!(outputs, 2, "steps 10 and 20");
    }

    #[test]
    fn deterministic_stream() {
        let a = drain(&mut Equake::new(2, EquakeInput::at(Scale::Test)), 0);
        let b = drain(&mut Equake::new(2, EquakeInput::at(Scale::Test)), 0);
        assert_eq!(a, b);
    }
}
