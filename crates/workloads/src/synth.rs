//! Synthetic phased workloads with ground-truth labels.
//!
//! Used to validate the detectors and the CoV machinery: each emitted
//! *chunk* of work carries a known phase label, chunk size is chosen to
//! match one sampling interval, and the phase sequence is a configurable
//! square wave. Two axes can change between phases:
//!
//! * the **code signature** (which basic blocks execute) — visible to BBV;
//! * the **data signature** (which homes are accessed) — visible only to
//!   the DDV.

use dsm_sim::event::{ChunkGen, Event};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::app::Workload;
use crate::emit;
use crate::mem::{NodeAlloc, Region};

/// What one synthetic phase looks like.
#[derive(Debug, Clone)]
pub struct PhaseSpec {
    /// Basic blocks executed (weights spread equally).
    pub bbs: Vec<u32>,
    /// Non-memory instructions per chunk.
    pub insns: u32,
    /// Home nodes targeted by this phase's memory traffic.
    pub homes: Vec<usize>,
    /// Cache lines touched per home per chunk.
    pub lines_per_home: u64,
    /// Whether the touches are writes (shared writes keep coherence
    /// traffic alive in steady state; reads of unwritten data eventually
    /// cache and go quiet).
    pub write: bool,
    /// Extra compute jitter in instructions (deterministic, seeded).
    pub jitter: u32,
}

/// A square-wave phased workload: cycles through its phases, spending
/// `period` chunks in each, for `total_chunks` chunks per processor.
pub struct SquareWave {
    p: usize,
    phases: Vec<PhaseSpec>,
    period: usize,
    total_chunks: usize,
    regions: Vec<Vec<Region>>, // [proc][home] scratch region homed per node
    emitted: Vec<usize>,
    rng_seed: u64,
}

impl SquareWave {
    pub fn new(
        p: usize,
        phases: Vec<PhaseSpec>,
        period: usize,
        total_chunks: usize,
        seed: u64,
    ) -> Self {
        assert!(!phases.is_empty() && period > 0);
        let mut alloc = NodeAlloc::new(p);
        let regions = (0..p)
            .map(|_| (0..p).map(|h| alloc.alloc(h, 256 * 32)).collect())
            .collect();
        Self { p, phases, period, total_chunks, regions, emitted: vec![0; p], rng_seed: seed }
    }

    /// Ground-truth phase label of chunk `i`.
    pub fn truth(&self, chunk: usize) -> u32 {
        ((chunk / self.period) % self.phases.len()) as u32
    }

    /// Two phases with different *code*, same data (BBV-detectable).
    pub fn code_phases(p: usize, period: usize, total: usize) -> Self {
        let phases = vec![
            PhaseSpec { bbs: vec![0x100, 0x101, 0x102], insns: 3000, homes: vec![0], lines_per_home: 16, jitter: 50, write: false },
            PhaseSpec { bbs: vec![0x200, 0x201], insns: 3000, homes: vec![0], lines_per_home: 16, jitter: 50, write: false },
        ];
        Self::new(p, phases, period, total, 42)
    }

    /// Two phases with identical code but different *data homes*
    /// (only DDV-detectable). Phase 0 is local, phase 1 hammers node 0.
    pub fn data_phases(p: usize, period: usize, total: usize) -> Self {
        assert!(p >= 2);
        let phases = vec![
            PhaseSpec { bbs: vec![0x300, 0x301], insns: 3000, homes: vec![usize::MAX], lines_per_home: 32, jitter: 50, write: false },
            PhaseSpec { bbs: vec![0x300, 0x301], insns: 3000, homes: vec![0], lines_per_home: 32, jitter: 50, write: true },
        ];
        Self::new(p, phases, period, total, 43)
    }

    fn emit_chunk(&self, buf: &mut Vec<Event>, proc: usize, chunk: usize) {
        let spec = &self.phases[self.truth(chunk) as usize];
        let mut rng = StdRng::seed_from_u64(
            self.rng_seed ^ ((proc as u64) << 32) ^ chunk as u64,
        );
        let share = (spec.insns / spec.bbs.len() as u32).max(1);
        for &bb in &spec.bbs {
            let jit = if spec.jitter > 0 { rng.gen_range(0..spec.jitter) } else { 0 };
            emit::loop_burst(buf, bb, share + jit);
        }
        for &h in &spec.homes {
            // usize::MAX means "this processor's own node"; shared homes
            // use processor 0's region so every processor touches the same
            // lines (a true hot spot).
            let (owner, home) = if h == usize::MAX { (proc, proc) } else { (0, h) };
            let region = &self.regions[owner][home];
            let start = if spec.jitter == 0 {
                0
            } else {
                rng.gen_range(0..region.lines() - spec.lines_per_home)
            };
            for i in start..start + spec.lines_per_home {
                buf.push(dsm_sim::event::Event::Mem { addr: region.line(i), write: spec.write });
            }
        }
    }
}

impl ChunkGen for SquareWave {
    fn n_procs(&self) -> usize {
        self.p
    }

    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
        let chunk = self.emitted[proc];
        if chunk >= self.total_chunks {
            return;
        }
        self.emit_chunk(buf, proc, chunk);
        self.emitted[proc] += 1;
    }
}

impl Workload for SquareWave {
    fn name(&self) -> &'static str {
        "SquareWave"
    }
    fn input_desc(&self) -> String {
        format!(
            "{} phases, period {}, {} chunks",
            self.phases.len(),
            self.period,
            self.total_chunks
        )
    }
    fn footprint(&self) -> Vec<Region> {
        self.regions.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::addr::HOME_SHIFT;

    #[test]
    fn truth_follows_square_wave() {
        let w = SquareWave::code_phases(2, 5, 40);
        assert_eq!(w.truth(0), 0);
        assert_eq!(w.truth(4), 0);
        assert_eq!(w.truth(5), 1);
        assert_eq!(w.truth(9), 1);
        assert_eq!(w.truth(10), 0);
    }

    #[test]
    fn code_phases_emit_disjoint_bbs() {
        let mut w = SquareWave::code_phases(1, 1, 2);
        let mut c0 = Vec::new();
        w.fill(0, &mut c0);
        let mut c1 = Vec::new();
        w.fill(0, &mut c1);
        let bbs = |evs: &[Event]| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Block { bb, .. } => Some(*bb),
                    _ => None,
                })
                .collect::<std::collections::HashSet<u32>>()
        };
        assert!(bbs(&c0).is_disjoint(&bbs(&c1)));
    }

    #[test]
    fn data_phases_emit_same_bbs_different_homes() {
        let mut w = SquareWave::data_phases(4, 1, 2);
        let mut c0 = Vec::new();
        w.fill(1, &mut c0);
        let mut c1 = Vec::new();
        w.fill(1, &mut c1);
        let bbs = |evs: &[Event]| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Block { bb, .. } => Some(*bb),
                    _ => None,
                })
                .collect::<std::collections::HashSet<u32>>()
        };
        let homes = |evs: &[Event]| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Mem { addr, .. } => Some((*addr >> HOME_SHIFT) as usize),
                    _ => None,
                })
                .collect::<std::collections::HashSet<usize>>()
        };
        assert_eq!(bbs(&c0), bbs(&c1), "identical code");
        assert_eq!(homes(&c0), [1].into_iter().collect(), "phase 0 is local");
        assert_eq!(homes(&c1), [0].into_iter().collect(), "phase 1 hits node 0");
    }

    #[test]
    fn stream_length_matches_total_chunks() {
        let mut w = SquareWave::code_phases(2, 3, 7);
        let mut chunks = 0;
        loop {
            let mut buf = Vec::new();
            w.fill(0, &mut buf);
            if buf.is_empty() {
                break;
            }
            chunks += 1;
        }
        assert_eq!(chunks, 7);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = SquareWave::code_phases(2, 3, 7);
        let mut b = SquareWave::code_phases(2, 3, 7);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.fill(0, &mut ba);
        b.fill(0, &mut bb);
        assert_eq!(ba, bb);
    }
}
