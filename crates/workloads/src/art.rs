//! Structural model of SPEC-OMP Art (ART2 neural-network image scanner).
//!
//! Scanfield positions are distributed round-robin across processors. Each
//! position runs the ART2 match cycle: F1 layer feature computation over a
//! local image window, an F2 match pass that reads *every* F2 neuron's
//! weight vector (weights are distributed across nodes neuron-by-neuron —
//! all-to-all read traffic), a lock-guarded global winner search, and — in
//! the learning epochs — a weight update that *writes to the winner's home
//! node*. Training object A activates winners in the low half of the F2
//! layer, object B in the high half, and the final recognition scan does no
//! updates at all: the write hot-spot moves across the machine over time
//! while the match-loop code stays identical, which is exactly the signal
//! the DDV captures and the BBV cannot.

use dsm_sim::event::{ChunkGen, Event};
use dsm_sim::util::splitmix64;

use crate::app::Workload;
use crate::emit;
use crate::inputs::ArtInput;
use crate::mem::{NodeAlloc, Region};

const BB_F1: u32 = 0x3000;
const BB_F2_MATCH: u32 = 0x3010;
const BB_F2_INNER: u32 = 0x3011;
const BB_WINNER: u32 = 0x3020;
const BB_UPDATE: u32 = 0x3030;
const BB_SCAN: u32 = 0x3040;

/// Cache lines per F2 neuron weight vector.
const WEIGHT_LINES: u64 = 16;
/// Scanfield positions per epoch (between barriers).
const EPOCH_POSITIONS: usize = 40;
/// Global lock id for the winner search.
const WINNER_LOCK: u32 = 0x30;

/// Workload stages over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Training on object A (winners in low F2 half, updates).
    TrainA,
    /// Training on object B (winners in high F2 half, updates).
    TrainB,
    /// Recognition scan (no updates).
    Scan,
}

pub struct Art {
    p: usize,
    input: ArtInput,
    /// One weight region per F2 neuron, homed at `neuron % p`.
    weights: Vec<Region>,
    /// Per-proc local image window.
    image: Vec<Region>,
    /// Shared winner scoreboard, homed at node 0.
    scoreboard: Region,
    epochs: usize,
    state: Vec<usize>, // next epoch per proc
}

impl Art {
    pub fn new(p: usize, input: ArtInput) -> Self {
        assert!(p.is_power_of_two());
        assert!(input.f2_neurons >= 2);
        let mut alloc = NodeAlloc::new(p);
        let weights = (0..input.f2_neurons)
            .map(|f| alloc.alloc(f % p, WEIGHT_LINES * 32))
            .collect();
        let image = (0..p).map(|q| alloc.alloc(q, input.f1_lines * 32)).collect();
        let scoreboard = alloc.alloc(0, 32);
        let epochs = input.positions.div_ceil(EPOCH_POSITIONS);
        Self { p, input, weights, image, scoreboard, epochs, state: vec![0; p] }
    }

    /// The run stage a scanfield position belongs to: first third trains
    /// object A, second third object B, final third scans.
    pub fn stage_of(&self, position: usize) -> Stage {
        let third = self.input.positions / 3;
        if position < third {
            Stage::TrainA
        } else if position < 2 * third {
            Stage::TrainB
        } else {
            Stage::Scan
        }
    }

    /// Deterministic winner neuron for a position, biased into the stage's
    /// half of the F2 layer.
    pub fn winner_of(&self, position: usize) -> usize {
        let n2 = self.input.f2_neurons;
        let r = splitmix64(0xa27 ^ (position as u64)) as usize;
        match self.stage_of(position) {
            Stage::TrainA => r % (n2 / 2),
            Stage::TrainB => n2 / 2 + r % (n2 - n2 / 2),
            Stage::Scan => r % n2,
        }
    }

    /// Match-cycle repetitions (ART reset cycles) for a position.
    fn passes(&self, position: usize) -> usize {
        1 + (splitmix64(0xbeef ^ (position as u64)) % 4) as usize
    }

    /// Whether a training presentation ends in resonance (weight update);
    /// roughly half do, the rest reset. Deterministic per position.
    pub fn resonates(&self, position: usize) -> bool {
        splitmix64(0x77aa ^ (position as u64)).is_multiple_of(2)
    }

    fn emit_position(&self, buf: &mut Vec<Event>, proc: usize, position: usize) {
        let stage = self.stage_of(position);
        // F1 layer: local image window features.
        emit::read_region(buf, &self.image[proc]);
        emit::fp(buf, 4 * self.input.f1_lines as u32);
        emit::loop_burst(buf, BB_F1, 6 * self.input.f1_lines as u32);

        for _pass in 0..self.passes(position) {
            // F2 match: read every neuron's weights (distributed).
            for w in &self.weights {
                emit::read_region(buf, w);
                emit::fp(buf, 8 * WEIGHT_LINES as u32);
                emit::straight(buf, BB_F2_INNER, 12);
            }
            emit::loop_burst(buf, BB_F2_MATCH, 8 * self.input.f2_neurons as u32);

            // Winner search: global lock + scoreboard at node 0.
            buf.push(Event::Acquire { lock: WINNER_LOCK });
            emit::update_region(buf, &self.scoreboard);
            emit::straight(buf, BB_WINNER, 16);
            buf.push(Event::Release { lock: WINNER_LOCK });
        }

        match stage {
            Stage::TrainA | Stage::TrainB if self.resonates(position) => {
                // Resonance: update the active prefix of the winner's
                // weight vector at its home node (only the committed F1
                // features change, not the whole vector).
                let w = &self.weights[self.winner_of(position)];
                let lines = WEIGHT_LINES / 4;
                for i in 0..lines {
                    buf.push(Event::Mem { addr: w.line(i), write: false });
                    buf.push(Event::Mem { addr: w.line(i), write: true });
                }
                emit::fp(buf, 10 * lines as u32);
                emit::loop_burst(buf, BB_UPDATE, 4 * lines as u32);
            }
            Stage::TrainA | Stage::TrainB => {
                // Mismatch reset: no weight update this presentation.
                emit::loop_burst(buf, BB_SCAN, 24);
            }
            Stage::Scan => {
                // Recognition bookkeeping only.
                emit::loop_burst(buf, BB_SCAN, 40);
            }
        }
    }

    pub fn epochs(&self) -> usize {
        self.epochs
    }
}

impl ChunkGen for Art {
    fn n_procs(&self) -> usize {
        self.p
    }

    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
        let epoch = self.state[proc];
        if epoch >= self.epochs {
            return;
        }
        let lo = epoch * EPOCH_POSITIONS;
        let hi = ((epoch + 1) * EPOCH_POSITIONS).min(self.input.positions);
        for position in lo..hi {
            if position % self.p == proc {
                self.emit_position(buf, proc, position);
            }
        }
        buf.push(Event::Barrier { id: epoch as u32 });
        self.state[proc] += 1;
    }
}

impl Workload for Art {
    fn name(&self) -> &'static str {
        "Art"
    }
    fn input_desc(&self) -> String {
        crate::inputs::AppInput::Art(self.input).describe()
    }
    fn footprint(&self) -> Vec<Region> {
        let mut f = self.weights.clone();
        f.extend_from_slice(&self.image);
        f.push(self.scoreboard);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::Scale;
    use dsm_sim::addr::HOME_SHIFT;

    fn drain(w: &mut Art, proc: usize) -> Vec<Event> {
        let mut all = Vec::new();
        loop {
            let mut buf = Vec::new();
            w.fill(proc, &mut buf);
            if buf.is_empty() {
                break;
            }
            all.extend(buf);
        }
        all
    }

    #[test]
    fn stages_cover_run_in_order() {
        let a = Art::new(2, ArtInput::at(Scale::Test));
        let n = ArtInput::at(Scale::Test).positions;
        assert_eq!(a.stage_of(0), Stage::TrainA);
        assert_eq!(a.stage_of(n / 2), Stage::TrainB);
        assert_eq!(a.stage_of(n - 1), Stage::Scan);
    }

    #[test]
    fn winners_are_biased_by_stage() {
        let a = Art::new(4, ArtInput::at(Scale::Scaled));
        let n2 = ArtInput::at(Scale::Scaled).f2_neurons;
        let third = ArtInput::at(Scale::Scaled).positions / 3;
        for s in 0..third {
            assert!(a.winner_of(s) < n2 / 2, "TrainA winners in low half");
        }
        for s in third..2 * third {
            assert!(a.winner_of(s) >= n2 / 2, "TrainB winners in high half");
        }
    }

    #[test]
    fn match_reads_every_weight_home() {
        let a = Art::new(4, ArtInput::at(Scale::Test));
        let mut buf = Vec::new();
        a.emit_position(&mut buf, 1, 0);
        let homes: std::collections::HashSet<usize> = buf
            .iter()
            .filter_map(|e| match e {
                Event::Mem { addr, write: false } => Some((*addr >> HOME_SHIFT) as usize),
                _ => None,
            })
            .collect();
        assert_eq!(homes.len(), 4, "weights are spread over all 4 nodes");
    }

    #[test]
    fn scan_stage_emits_no_weight_writes() {
        let a = Art::new(2, ArtInput::at(Scale::Test));
        let n = ArtInput::at(Scale::Test).positions;
        let mut buf = Vec::new();
        a.emit_position(&mut buf, 0, n - 2); // scan stage
        // The only writes should be the scoreboard (winner search).
        let scoreboard_home0_writes = buf
            .iter()
            .filter(|e| matches!(e, Event::Mem { write: true, .. }))
            .count();
        assert!(scoreboard_home0_writes <= a.passes(n - 2));
    }

    #[test]
    fn locks_are_balanced() {
        let mut a = Art::new(2, ArtInput::at(Scale::Test));
        for p in 0..2 {
            let evs = drain(&mut a, p);
            let acq = evs.iter().filter(|e| matches!(e, Event::Acquire { .. })).count();
            let rel = evs.iter().filter(|e| matches!(e, Event::Release { .. })).count();
            assert_eq!(acq, rel);
            assert!(acq > 0);
        }
    }

    #[test]
    fn round_robin_position_assignment_is_disjoint_and_total() {
        let input = ArtInput::at(Scale::Test);
        let mut a = Art::new(4, input);
        // Count per-proc update bursts == owned training positions.
        let mut total_f1 = 0usize;
        for p in 0..4 {
            let evs = drain(&mut a, p);
            total_f1 += evs
                .iter()
                .filter(|e| matches!(e, Event::Block { bb: BB_F1, taken: false, .. }))
                .count();
        }
        assert_eq!(total_f1, input.positions, "every position processed exactly once");
    }

    #[test]
    fn weight_updates_match_resonant_training_positions_exactly() {
        let input = ArtInput::at(Scale::Test);
        let mut a = Art::new(4, input);
        let expected = (0..input.positions)
            .filter(|&s| {
                !matches!(Art::new(4, input).stage_of(s), Stage::Scan)
                    && Art::new(4, input).resonates(s)
            })
            .count();
        let mut updates = 0usize;
        for p in 0..4 {
            updates += drain(&mut a, p)
                .iter()
                .filter(|e| matches!(e, Event::Block { bb: BB_UPDATE, taken: false, .. }))
                .count();
        }
        assert_eq!(updates, expected);
    }

    #[test]
    fn barrier_sequences_agree() {
        let mut a = Art::new(4, ArtInput::at(Scale::Test));
        let seq = |evs: &[Event]| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect::<Vec<u32>>()
        };
        let s0 = seq(&drain(&mut a, 0));
        for p in 1..4 {
            assert_eq!(seq(&drain(&mut a, p)), s0);
        }
        assert_eq!(s0.len(), a.epochs());
    }
}
