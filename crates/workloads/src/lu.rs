//! Structural model of SPLASH-2 blocked dense LU factorization.
//!
//! The matrix is partitioned into B×B blocks owned by processors in a 2-D
//! scatter decomposition (as in SPLASH-2's contiguous LU); each block is a
//! contiguous region homed at its owner. Factorization step `k` has three
//! sub-phases separated by barriers:
//!
//! 1. **Diagonal** — the owner of block (k,k) factorizes it;
//! 2. **Perimeter** — owners of row/column-k blocks apply the diagonal
//!    block (one remote read of the diagonal block each);
//! 3. **Interior** — owners of blocks (i,j), i,j > k update them with the
//!    perimeter blocks (i,k) and (k,j) — two likely-remote block reads per
//!    update, with the *set of remote homes rotating as k advances* and the
//!    active window shrinking.
//!
//! The interior phase executes identical code for the whole run (one BBV
//! signature) while its data distribution, traffic volume, and contention
//! drift with `k` — precisely the behaviour the paper's DDV exists to
//! expose.

use dsm_sim::event::{ChunkGen, Event};

use crate::app::Workload;
use crate::emit;
use crate::inputs::LuInput;
use crate::mem::{NodeAlloc, Region};

// Basic-block addresses (distinct code regions of the LU kernels).
const BB_DIAG_OUTER: u32 = 0x1000;
const BB_DIAG_INNER: u32 = 0x1001;
const BB_BDIV: u32 = 0x1010;
const BB_BMOD_ROW: u32 = 0x1020;
const BB_INTERIOR_OUTER: u32 = 0x1030;
const BB_INTERIOR_INNER: u32 = 0x1031;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Diag,
    Perim,
    Interior,
    Done,
}

#[derive(Debug, Clone, Copy)]
struct ProcState {
    k: usize,
    phase: Phase,
}

/// Blocked LU workload.
pub struct Lu {
    p: usize,
    nb: usize,
    b: usize,
    pr: usize,
    pc: usize,
    input: LuInput,
    blocks: Vec<Region>, // nb * nb, row-major
    state: Vec<ProcState>,
}

impl Lu {
    pub fn new(p: usize, input: LuInput) -> Self {
        assert!(p.is_power_of_two());
        assert_eq!(input.n % input.block, 0);
        let nb = input.n / input.block;
        assert!(nb >= 2, "need at least a 2x2 block grid");
        // 2-D scatter grid: pr x pc with pr <= pc, both powers of two.
        let logp = p.trailing_zeros();
        let pr = 1usize << (logp / 2);
        let pc = p / pr;

        let mut alloc = NodeAlloc::new(p);
        let block_bytes = (input.block * input.block * 8) as u64;
        let mut blocks = Vec::with_capacity(nb * nb);
        for i in 0..nb {
            for j in 0..nb {
                let owner = (i % pr) * pc + (j % pc);
                blocks.push(alloc.alloc(owner, block_bytes));
            }
        }
        Self {
            p,
            nb,
            b: input.block,
            pr,
            pc,
            input,
            blocks,
            state: vec![ProcState { k: 0, phase: Phase::Diag }; p],
        }
    }

    /// Owner of block (i, j) under the 2-D scatter decomposition.
    #[inline]
    pub fn owner(&self, i: usize, j: usize) -> usize {
        (i % self.pr) * self.pc + (j % self.pc)
    }

    #[inline]
    fn block(&self, i: usize, j: usize) -> Region {
        self.blocks[i * self.nb + j]
    }

    /// Blocks per matrix side.
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Barrier id for (step k, sub-phase index).
    fn barrier_id(k: usize, phase: u32) -> u32 {
        (k as u32) * 3 + phase
    }

    /// Diagonal factorization: dense LU of one B×B block in place.
    fn emit_lu0(&self, buf: &mut Vec<Event>, k: usize) {
        let b = self.b as u32;
        let diag = self.block(k, k);
        emit::straight(buf, BB_DIAG_OUTER, 6 * b);
        emit::update_region(buf, &diag);
        emit::fp(buf, b * b * b / 3);
        emit::loop_burst(buf, BB_DIAG_INNER, 4 * b * b);
    }

    /// Column-perimeter division: block(i,k) /= L(k,k).
    fn emit_bdiv(&self, buf: &mut Vec<Event>, i: usize, k: usize) {
        let b = self.b as u32;
        let diag = self.block(k, k);
        let own = self.block(i, k);
        emit::read_region(buf, &diag);
        emit::update_region(buf, &own);
        emit::fp(buf, b * b * b / 2);
        emit::loop_burst(buf, BB_BDIV, 2 * b * b);
    }

    /// Row-perimeter modification: block(k,j) = U-solve with the diagonal.
    fn emit_bmod_row(&self, buf: &mut Vec<Event>, k: usize, j: usize) {
        let b = self.b as u32;
        let diag = self.block(k, k);
        let own = self.block(k, j);
        emit::read_region(buf, &diag);
        emit::update_region(buf, &own);
        emit::fp(buf, b * b * b / 2);
        emit::loop_burst(buf, BB_BMOD_ROW, 2 * b * b);
    }

    /// Interior update: block(i,j) -= block(i,k) * block(k,j) (dgemm).
    fn emit_bmodd(&self, buf: &mut Vec<Event>, i: usize, j: usize, k: usize) {
        let b = self.b as u32;
        let left = self.block(i, k);
        let up = self.block(k, j);
        let own = self.block(i, j);
        emit::straight(buf, BB_INTERIOR_OUTER, 3 * b);
        emit::read_region(buf, &left);
        emit::read_region(buf, &up);
        emit::update_region(buf, &own);
        emit::fp(buf, 2 * b * b * b);
        emit::loop_burst(buf, BB_INTERIOR_INNER, 3 * b * b);
    }
}

impl ChunkGen for Lu {
    fn n_procs(&self) -> usize {
        self.p
    }

    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
        let ProcState { k, phase } = self.state[proc];
        if phase == Phase::Done {
            return;
        }
        let nb = self.nb;
        match phase {
            Phase::Diag => {
                if self.owner(k, k) == proc {
                    self.emit_lu0(buf, k);
                }
                buf.push(Event::Barrier { id: Self::barrier_id(k, 0) });
                self.state[proc].phase = Phase::Perim;
            }
            Phase::Perim => {
                for j in k + 1..nb {
                    if self.owner(k, j) == proc {
                        self.emit_bmod_row(buf, k, j);
                    }
                }
                for i in k + 1..nb {
                    if self.owner(i, k) == proc {
                        self.emit_bdiv(buf, i, k);
                    }
                }
                buf.push(Event::Barrier { id: Self::barrier_id(k, 1) });
                self.state[proc].phase = Phase::Interior;
            }
            Phase::Interior => {
                for i in k + 1..nb {
                    for j in k + 1..nb {
                        if self.owner(i, j) == proc {
                            self.emit_bmodd(buf, i, j, k);
                        }
                    }
                }
                buf.push(Event::Barrier { id: Self::barrier_id(k, 2) });
                if k + 1 < nb {
                    self.state[proc] = ProcState { k: k + 1, phase: Phase::Diag };
                } else {
                    self.state[proc].phase = Phase::Done;
                }
            }
            Phase::Done => unreachable!(),
        }
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }
    fn input_desc(&self) -> String {
        crate::inputs::AppInput::Lu(self.input).describe()
    }
    fn footprint(&self) -> Vec<Region> {
        self.blocks.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::Scale;
    use dsm_sim::event::Event;

    fn drain(lu: &mut Lu, proc: usize) -> Vec<Event> {
        let mut all = Vec::new();
        loop {
            let mut buf = Vec::new();
            lu.fill(proc, &mut buf);
            if buf.is_empty() {
                break;
            }
            all.extend(buf);
        }
        all
    }

    #[test]
    fn ownership_is_a_2d_scatter_over_all_procs() {
        let lu = Lu::new(8, LuInput::at(Scale::Test));
        let mut owners = std::collections::HashSet::new();
        for i in 0..lu.nb() {
            for j in 0..lu.nb() {
                let o = lu.owner(i, j);
                assert!(o < 8);
                owners.insert(o);
            }
        }
        assert_eq!(owners.len(), 8, "every proc owns some block");
    }

    #[test]
    fn every_proc_emits_identical_barrier_sequence() {
        let mut lu = Lu::new(4, LuInput::at(Scale::Test));
        let barrier_seq = |evs: &[Event]| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let s0 = barrier_seq(&drain(&mut lu, 0));
        for p in 1..4 {
            assert_eq!(barrier_seq(&drain(&mut lu, p)), s0);
        }
        // 3 barriers per step, nb steps, strictly increasing ids.
        assert_eq!(s0.len(), 3 * lu.nb());
        assert!(s0.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn work_shrinks_as_factorization_proceeds() {
        let mut lu = Lu::new(2, LuInput::at(Scale::Test));
        // Count interior-phase instructions per step for proc 0.
        let nb = lu.nb();
        let mut per_step = Vec::new();
        for _ in 0..nb {
            let mut diag = Vec::new();
            lu.fill(0, &mut diag);
            let mut perim = Vec::new();
            lu.fill(0, &mut perim);
            let mut interior = Vec::new();
            lu.fill(0, &mut interior);
            let insns: u64 = interior.iter().map(|e| e.nonsync_insns()).sum();
            per_step.push(insns);
        }
        assert!(per_step[0] > per_step[nb - 2], "interior work must shrink");
        assert_eq!(per_step[nb - 1], 0, "last step has no interior");
    }

    #[test]
    fn interior_reads_perimeter_blocks_from_their_owners() {
        let lu = Lu::new(4, LuInput::at(Scale::Test));
        // Find an interior block whose k-column or k-row source block has a
        // different owner; its update must read a region homed there.
        let nb = lu.nb();
        let k = 0usize;
        let mut found = false;
        'outer: for i in k + 1..nb {
            for j in k + 1..nb {
                let me = lu.owner(i, j);
                let remote_home = if lu.owner(i, k) != me {
                    lu.owner(i, k)
                } else if lu.owner(k, j) != me {
                    lu.owner(k, j)
                } else {
                    continue;
                };
                let mut buf = Vec::new();
                lu.emit_bmodd(&mut buf, i, j, k);
                let homes: std::collections::HashSet<usize> = buf
                    .iter()
                    .filter_map(|e| match e {
                        Event::Mem { addr, .. } => {
                            Some((*addr >> dsm_sim::addr::HOME_SHIFT) as usize)
                        }
                        _ => None,
                    })
                    .collect();
                assert!(homes.contains(&remote_home));
                assert!(homes.contains(&me), "own block is homed locally");
                found = true;
                break 'outer;
            }
        }
        assert!(found, "test precondition: some interior block qualifies");
    }

    #[test]
    fn total_flops_match_lu_complexity() {
        // Sum of FP ops across all procs ~ 2/3 n^3 for dense LU.
        let input = LuInput::at(Scale::Test);
        let mut lu = Lu::new(2, input);
        let mut fp_total: u64 = 0;
        for p in 0..2 {
            for e in drain(&mut lu, p) {
                if let Event::Fp { ops } = e {
                    fp_total += ops as u64;
                }
            }
        }
        let n = input.n as u64;
        let expected = 2 * n * n * n / 3;
        let ratio = fp_total as f64 / expected as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "flops {fp_total} vs expected {expected} (ratio {ratio})"
        );
    }

    #[test]
    fn operation_counts_match_blocked_lu_exactly() {
        // Across all processors: nb diagonal factorizations, sum(nb-1-k)
        // bdiv and bmod-row ops per step, and sum(nb-1-k)^2 interior
        // updates. Count the not-taken loop exits of each kernel's bb.
        let input = LuInput::at(Scale::Test);
        let nb = input.n / input.block;
        let mut lu = Lu::new(4, input);
        let mut diag = 0usize;
        let mut bdiv = 0usize;
        let mut bmod = 0usize;
        let mut interior = 0usize;
        for p in 0..4 {
            for e in drain(&mut lu, p) {
                if let Event::Block { bb, taken: false, .. } = e {
                    match bb {
                        BB_DIAG_INNER => diag += 1,
                        BB_BDIV => bdiv += 1,
                        BB_BMOD_ROW => bmod += 1,
                        BB_INTERIOR_INNER => interior += 1,
                        _ => {}
                    }
                }
            }
        }
        let perim: usize = (0..nb).map(|k| nb - 1 - k).sum();
        let inner: usize = (0..nb).map(|k| (nb - 1 - k) * (nb - 1 - k)).sum();
        assert_eq!(diag, nb);
        assert_eq!(bdiv, perim);
        assert_eq!(bmod, perim);
        assert_eq!(interior, inner);
    }

    #[test]
    fn stream_terminates_and_is_deterministic() {
        let evs1: Vec<Event> = {
            let mut lu = Lu::new(2, LuInput::at(Scale::Test));
            drain(&mut lu, 1)
        };
        let evs2: Vec<Event> = {
            let mut lu = Lu::new(2, LuInput::at(Scale::Test));
            drain(&mut lu, 1)
        };
        assert_eq!(evs1, evs2);
        assert!(!evs1.is_empty());
        // After exhaustion, fill stays empty.
        let mut lu = Lu::new(2, LuInput::at(Scale::Test));
        let _ = drain(&mut lu, 0);
        let mut buf = Vec::new();
        lu.fill(0, &mut buf);
        assert!(buf.is_empty());
    }
}
