//! Event-emission helpers shared by the workload models.
//!
//! Events are coarse on purpose (one `Block` per loop burst, one `Mem` per
//! cache line) — see `dsm_sim::event`. These helpers keep the per-app state
//! machines readable.

use dsm_sim::event::Event;

use crate::mem::Region;

/// Emit a loop burst: the body's basic block `bb` committing `insns`
/// instructions in total (taken back-edge), followed by the loop exit
/// (not-taken occurrence of the same branch).
pub fn loop_burst(buf: &mut Vec<Event>, bb: u32, insns: u32) {
    if insns == 0 {
        return;
    }
    if insns > 2 {
        buf.push(Event::Block { bb, insns: insns - 2, taken: true });
        buf.push(Event::Block { bb, insns: 2, taken: false });
    } else {
        buf.push(Event::Block { bb, insns, taken: false });
    }
}

/// Emit a straight-line block (unconditional control transfer at the end).
pub fn straight(buf: &mut Vec<Event>, bb: u32, insns: u32) {
    if insns > 0 {
        buf.push(Event::Block { bb, insns, taken: true });
    }
}

/// Emit a floating-point burst.
pub fn fp(buf: &mut Vec<Event>, ops: u32) {
    if ops > 0 {
        buf.push(Event::Fp { ops });
    }
}

/// Read every cache line of a region once.
pub fn read_region(buf: &mut Vec<Event>, r: &Region) {
    for i in 0..r.lines() {
        buf.push(Event::Mem { addr: r.line(i), write: false });
    }
}

/// Read a sub-range of lines `[start, start+count)`.
pub fn read_lines(buf: &mut Vec<Event>, r: &Region, start: u64, count: u64) {
    debug_assert!(start + count <= r.lines());
    for i in start..start + count {
        buf.push(Event::Mem { addr: r.line(i), write: false });
    }
}

/// Write every cache line of a region once.
pub fn write_region(buf: &mut Vec<Event>, r: &Region) {
    for i in 0..r.lines() {
        buf.push(Event::Mem { addr: r.line(i), write: true });
    }
}

/// Read-modify-write every cache line of a region.
pub fn update_region(buf: &mut Vec<Event>, r: &Region) {
    for i in 0..r.lines() {
        buf.push(Event::Mem { addr: r.line(i), write: false });
        buf.push(Event::Mem { addr: r.line(i), write: true });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NodeAlloc;

    #[test]
    fn loop_burst_ends_not_taken() {
        let mut buf = vec![];
        loop_burst(&mut buf, 5, 100);
        assert_eq!(buf.len(), 2);
        assert!(matches!(buf[0], Event::Block { bb: 5, insns: 98, taken: true }));
        assert!(matches!(buf[1], Event::Block { bb: 5, insns: 2, taken: false }));
        // Total instruction weight is preserved.
        let total: u64 = buf.iter().map(|e| e.nonsync_insns()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn tiny_and_empty_bursts() {
        let mut buf = vec![];
        loop_burst(&mut buf, 1, 0);
        assert!(buf.is_empty());
        loop_burst(&mut buf, 1, 2);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn region_traffic_counts() {
        let mut a = NodeAlloc::new(2);
        let r = a.alloc(1, 4 * 32);
        let mut buf = vec![];
        read_region(&mut buf, &r);
        assert_eq!(buf.len(), 4);
        assert!(buf.iter().all(|e| matches!(e, Event::Mem { write: false, .. })));

        buf.clear();
        update_region(&mut buf, &r);
        assert_eq!(buf.len(), 8);
        let writes = buf
            .iter()
            .filter(|e| matches!(e, Event::Mem { write: true, .. }))
            .count();
        assert_eq!(writes, 4);
    }

    #[test]
    fn read_lines_subrange() {
        let mut a = NodeAlloc::new(1);
        let r = a.alloc(0, 10 * 32);
        let mut buf = vec![];
        read_lines(&mut buf, &r, 2, 3);
        assert_eq!(buf.len(), 3);
        assert!(matches!(buf[0], Event::Mem { addr, .. } if addr == r.line(2)));
    }
}
