//! Structural model of SPLASH-2 FMM (adaptive fast multipole N-body).
//!
//! Particles live in leaf cells distributed blockwise across processors
//! (spatial locality). Each timestep runs five barrier-separated phases
//! whose code signatures differ (tree build, upward pass, multipole
//! interactions, direct neighbour forces, particle update). Two properties
//! drive the DSM phase behaviour:
//!
//! * the **interaction phase** reads multipole expansions from a window of
//!   partner processors that *rotates every timestep* (particles move, so
//!   interaction lists change) — same code, drifting remote-home mix;
//! * **cell occupancy fluctuates** deterministically per (cell, timestep),
//!   so the per-interval instruction and traffic mix breathes even within
//!   one phase.

use dsm_sim::event::{ChunkGen, Event};
use dsm_sim::util::splitmix64;

use crate::app::Workload;
use crate::emit;
use crate::inputs::FmmInput;
use crate::mem::{NodeAlloc, Region};

const BB_TREE_SCAN: u32 = 0x2000;
const BB_TREE_INSERT: u32 = 0x2001;
const BB_UPWARD: u32 = 0x2010;
const BB_M2L: u32 = 0x2020;
const BB_M2L_INNER: u32 = 0x2021;
const BB_DIRECT: u32 = 0x2030;
const BB_DIRECT_INNER: u32 = 0x2031;
const BB_UPDATE: u32 = 0x2040;

/// Bytes per particle (position, velocity, force, mass).
const PARTICLE_BYTES: u64 = 64;
/// Cache lines per multipole expansion.
const MULTIPOLE_LINES: u64 = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    TreeBuild,
    Upward,
    Interact,
    Direct,
    Update,
}

const PHASES: [Phase; 5] =
    [Phase::TreeBuild, Phase::Upward, Phase::Interact, Phase::Direct, Phase::Update];

#[derive(Debug, Clone, Copy)]
struct ProcState {
    t: usize,
    phase_idx: usize,
    done: bool,
}

/// FMM workload.
pub struct Fmm {
    p: usize,
    input: FmmInput,
    cells: usize,
    cells_per_proc: usize,
    /// Particle storage per leaf cell, homed at the cell's owner.
    particles: Vec<Region>,
    /// Multipole expansion per leaf cell, homed at the cell's owner.
    multipoles: Vec<Region>,
    /// Shared internal tree nodes, homed round-robin.
    tree: Vec<Region>,
    state: Vec<ProcState>,
}

impl Fmm {
    pub fn new(p: usize, input: FmmInput) -> Self {
        assert!(p.is_power_of_two());
        let cells = (input.particles / input.cell_cap).max(p);
        let cells_per_proc = cells / p;
        let mut alloc = NodeAlloc::new(p);
        let mut particles = Vec::with_capacity(cells);
        let mut multipoles = Vec::with_capacity(cells);
        for c in 0..cells {
            let owner = c / cells_per_proc;
            particles.push(alloc.alloc(owner, input.cell_cap as u64 * PARTICLE_BYTES));
            multipoles.push(alloc.alloc(owner, MULTIPOLE_LINES * 32));
        }
        let tree_nodes = (cells / 4).max(1);
        let tree = (0..tree_nodes)
            .map(|n| alloc.alloc(n % p, 2 * 32))
            .collect();
        Self {
            p,
            input,
            cells,
            cells_per_proc,
            particles,
            multipoles,
            tree,
            state: vec![ProcState { t: 0, phase_idx: 0, done: false }; p],
        }
    }

    /// Owner of a leaf cell (blocked distribution).
    #[inline]
    pub fn cell_owner(&self, c: usize) -> usize {
        (c / self.cells_per_proc).min(self.p - 1)
    }

    /// Cells owned by `proc`.
    fn own_cells(&self, proc: usize) -> std::ops::Range<usize> {
        let lo = proc * self.cells_per_proc;
        let hi = if proc == self.p - 1 { self.cells } else { lo + self.cells_per_proc };
        lo..hi
    }

    /// Effective occupancy of cell `c` at timestep `t` (particles drift
    /// between cells over time; deterministic pseudo-random walk around
    /// half-full to full).
    fn occupancy(&self, c: usize, t: usize) -> u64 {
        let cap = self.input.cell_cap as u64;
        let r = splitmix64((c as u64) << 32 | t as u64) % (cap / 8).max(1);
        cap * 7 / 8 + r
    }

    /// Partner processors whose multipoles this proc reads at timestep `t`.
    ///
    /// As particles drift, interaction lists shift from near cells to far
    /// ones and back: the partner set sweeps outward in hypercube distance
    /// over the run (XOR masks of growing popcount), every two timesteps.
    /// The M2L *code* is identical throughout — only the distance and homes
    /// of the data change, which is precisely the paper's DDV signal.
    pub fn partners(&self, proc: usize, t: usize) -> Vec<usize> {
        if self.p == 1 {
            return vec![];
        }
        let dim = self.p.trailing_zeros() as usize;
        let k = 1 + (t / 2) % dim; // current interaction radius in hops
        let mask = (1usize << k) - 1;
        let near = proc ^ (1 << (k - 1));
        let far = proc ^ mask;
        let mut ps = vec![near];
        if far != near {
            ps.push(far);
        }
        ps
    }

    fn barrier_id(&self, t: usize, phase_idx: usize) -> u32 {
        (t * PHASES.len() + phase_idx) as u32
    }

    fn emit_tree_build(&self, buf: &mut Vec<Event>, proc: usize, t: usize) {
        for c in self.own_cells(proc) {
            let occ = self.occupancy(c, t);
            // Scan own particles, insert into cells and shared tree nodes.
            emit::read_lines(buf, &self.particles[c], 0, (occ * PARTICLE_BYTES / 32).max(1));
            emit::loop_burst(buf, BB_TREE_SCAN, (occ * 6) as u32);
            let node = &self.tree[(c / 4) % self.tree.len()];
            emit::update_region(buf, node);
            emit::straight(buf, BB_TREE_INSERT, 20);
        }
    }

    fn emit_upward(&self, buf: &mut Vec<Event>, proc: usize, t: usize) {
        for c in self.own_cells(proc) {
            let occ = self.occupancy(c, t);
            emit::read_lines(buf, &self.particles[c], 0, (occ * PARTICLE_BYTES / 32).max(1));
            emit::write_region(buf, &self.multipoles[c]);
            emit::fp(buf, (occ * 20) as u32); // P2M
            emit::loop_burst(buf, BB_UPWARD, (occ * 4) as u32);
        }
    }

    fn emit_interact(&self, buf: &mut Vec<Event>, proc: usize, t: usize) {
        let partners = self.partners(proc, t);
        for c in self.own_cells(proc) {
            // M2L against a sample of each partner's cells.
            for &q in &partners {
                let q_cells = self.own_cells(q);
                let span = q_cells.end - q_cells.start;
                // Interaction lists are large in FMM (O(189) cells per
                // cell in 3-D); model them as the partner's whole leaf set.
                for s in 0..span.min(8) {
                    let pick = q_cells.start
                        + (splitmix64((c as u64) << 40 | (q as u64) << 20 | t as u64) as usize
                            + s)
                            % span;
                    emit::read_region(buf, &self.multipoles[pick]);
                    emit::fp(buf, 900); // M2L kernel
                    emit::loop_burst(buf, BB_M2L_INNER, 120);
                }
            }
            emit::update_region(buf, &self.multipoles[c]); // accumulate locals
            emit::straight(buf, BB_M2L, 30);
        }
    }

    fn emit_direct(&self, buf: &mut Vec<Event>, proc: usize, t: usize) {
        // Every leaf cell interacts with its two ring-adjacent cells plus
        // itself, so the total direct work is independent of the processor
        // count; adjacency crosses a partition boundary only for edge
        // cells, so the *remote* share of this fixed work grows with p.
        for c in self.own_cells(proc) {
            let occ = self.occupancy(c, t);
            for nc in [(c + self.cells - 1) % self.cells, (c + 1) % self.cells] {
                let occ_n = self.occupancy(nc, t);
                emit::read_lines(
                    buf,
                    &self.particles[nc],
                    0,
                    (occ_n * PARTICLE_BYTES / 32).max(1),
                );
                emit::fp(buf, (occ * occ_n * 2) as u32); // pairwise forces
                emit::loop_burst(buf, BB_DIRECT_INNER, (occ * 6) as u32);
            }
            // Self-interactions and force accumulation.
            emit::update_region(buf, &self.particles[c]);
            emit::fp(buf, (occ * occ) as u32);
            emit::loop_burst(buf, BB_DIRECT, (occ * 4) as u32);
        }
    }

    fn emit_update(&self, buf: &mut Vec<Event>, proc: usize, t: usize) {
        for c in self.own_cells(proc) {
            let occ = self.occupancy(c, t);
            emit::update_region(buf, &self.particles[c]);
            emit::fp(buf, (occ * 6) as u32);
            emit::loop_burst(buf, BB_UPDATE, (occ * 3) as u32);
        }
    }

    /// Total leaf cells.
    pub fn cells(&self) -> usize {
        self.cells
    }
}

impl ChunkGen for Fmm {
    fn n_procs(&self) -> usize {
        self.p
    }

    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
        let st = self.state[proc];
        if st.done {
            return;
        }
        match PHASES[st.phase_idx] {
            Phase::TreeBuild => self.emit_tree_build(buf, proc, st.t),
            Phase::Upward => self.emit_upward(buf, proc, st.t),
            Phase::Interact => self.emit_interact(buf, proc, st.t),
            Phase::Direct => self.emit_direct(buf, proc, st.t),
            Phase::Update => self.emit_update(buf, proc, st.t),
        }
        buf.push(Event::Barrier { id: self.barrier_id(st.t, st.phase_idx) });
        let st = &mut self.state[proc];
        st.phase_idx += 1;
        if st.phase_idx == PHASES.len() {
            st.phase_idx = 0;
            st.t += 1;
            if st.t == self.input.timesteps {
                st.done = true;
            }
        }
    }
}

impl Workload for Fmm {
    fn name(&self) -> &'static str {
        "FMM"
    }
    fn input_desc(&self) -> String {
        crate::inputs::AppInput::Fmm(self.input).describe()
    }
    fn footprint(&self) -> Vec<Region> {
        let mut f = self.particles.clone();
        f.extend_from_slice(&self.multipoles);
        f.extend_from_slice(&self.tree);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::Scale;
    use dsm_sim::addr::HOME_SHIFT;

    fn drain(w: &mut Fmm, proc: usize) -> Vec<Event> {
        let mut all = Vec::new();
        loop {
            let mut buf = Vec::new();
            w.fill(proc, &mut buf);
            if buf.is_empty() {
                break;
            }
            all.extend(buf);
        }
        all
    }

    #[test]
    fn cells_cover_all_procs() {
        let f = Fmm::new(8, FmmInput::at(Scale::Test));
        assert!(f.cells() >= 8);
        let owners: std::collections::HashSet<usize> =
            (0..f.cells()).map(|c| f.cell_owner(c)).collect();
        assert_eq!(owners.len(), 8);
    }

    #[test]
    fn partners_rotate_over_time() {
        let f = Fmm::new(8, FmmInput::at(Scale::Test));
        let p0 = f.partners(3, 0);
        let p2 = f.partners(3, 2);
        let p4 = f.partners(3, 4);
        assert_ne!(p0, p2, "interaction radius must grow with timestep");
        assert_ne!(p2, p4);
        for ps in [&p0, &p2, &p4] {
            assert!(ps.iter().all(|&q| q != 3 && q < 8));
        }
        // The far partner at radius k is exactly k hops away.
        let hops = |a: usize, b: usize| ((a ^ b) as u64).count_ones();
        assert_eq!(hops(3, *p0.last().unwrap()), 1);
        assert_eq!(hops(3, *p2.last().unwrap()), 2);
        assert_eq!(hops(3, *p4.last().unwrap()), 3);
    }

    #[test]
    fn uniprocessor_has_no_partners() {
        let f = Fmm::new(1, FmmInput::at(Scale::Test));
        assert!(f.partners(0, 0).is_empty());
    }

    #[test]
    fn barrier_sequences_agree_across_procs() {
        let mut f = Fmm::new(4, FmmInput::at(Scale::Test));
        let seq = |evs: &[Event]| {
            evs.iter()
                .filter_map(|e| match e {
                    Event::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect::<Vec<u32>>()
        };
        let s0 = seq(&drain(&mut f, 0));
        for p in 1..4 {
            assert_eq!(seq(&drain(&mut f, p)), s0);
        }
        assert_eq!(s0.len(), 5 * FmmInput::at(Scale::Test).timesteps);
    }

    #[test]
    fn interact_phase_touches_rotating_remote_homes() {
        let f = Fmm::new(8, FmmInput::at(Scale::Test));
        let homes_at = |t: usize| {
            let mut buf = Vec::new();
            f.emit_interact(&mut buf, 0, t);
            buf.iter()
                .filter_map(|e| match e {
                    Event::Mem { addr, write: false } => {
                        Some((*addr >> HOME_SHIFT) as usize)
                    }
                    _ => None,
                })
                .filter(|&h| h != 0)
                .collect::<std::collections::BTreeSet<usize>>()
        };
        let h0 = homes_at(0);
        let h3 = homes_at(3);
        assert!(!h0.is_empty());
        assert_ne!(h0, h3, "remote home set must drift with t");
    }

    #[test]
    fn occupancy_is_bounded_and_varies() {
        let f = Fmm::new(2, FmmInput::at(Scale::Test));
        let cap = FmmInput::at(Scale::Test).cell_cap as u64;
        let mut distinct = std::collections::HashSet::new();
        for c in 0..f.cells() {
            for t in 0..3 {
                let o = f.occupancy(c, t);
                assert!(o >= cap / 2 && o < cap + cap / 2);
                distinct.insert(o);
            }
        }
        assert!(distinct.len() > 3, "occupancy must actually vary");
    }

    #[test]
    fn m2l_kernel_count_matches_interaction_lists() {
        // Per timestep, every cell runs one M2L per (partner, sampled cell)
        // pair; count the not-taken M2L-inner exits across all procs.
        let input = FmmInput::at(Scale::Test);
        let p = 4usize;
        let mut f = Fmm::new(p, input);
        let mut m2l = 0usize;
        for proc in 0..p {
            m2l += drain(&mut f, proc)
                .iter()
                .filter(|e| matches!(e, Event::Block { bb: BB_M2L_INNER, taken: false, .. }))
                .count();
        }
        let f2 = Fmm::new(p, input);
        let mut expected = 0usize;
        for t in 0..input.timesteps {
            for proc in 0..p {
                let partners = f2.partners(proc, t).len();
                let own = f2.cells() / p; // even split at these parameters
                let span = f2.cells() / p;
                expected += own * partners * span.min(8);
            }
        }
        assert_eq!(m2l, expected);
    }

    #[test]
    fn stream_terminates_deterministically() {
        let a = drain(&mut Fmm::new(2, FmmInput::at(Scale::Test)), 0);
        let b = drain(&mut Fmm::new(2, FmmInput::at(Scale::Test)), 0);
        assert_eq!(a, b);
        assert!(a.len() > 100);
    }
}
