//! Serial-initialization prologue: the classic first-touch placement
//! pathology.
//!
//! The SPLASH-2 "non-contiguous" applications (LU, Ocean, FMM's tree
//! build) initialize their shared data from a single thread before the
//! parallel section starts. On a first-touch DSM machine that serial pass
//! is the *first* touch, so every page ends up homed at node 0 — the
//! motivating scenario for dynamic page migration in the paper's class of
//! machines. The default [`crate::app::make_stream`] workloads allocate
//! data directly at its compute-time owner (no init phase), which makes
//! static first-touch placement unrealistically perfect; this wrapper
//! restores the pathology *without touching the compute stream*:
//!
//! 1. processor 0 writes one line on every page of the workload's
//!    [`Workload::footprint`] (the initialization sweep);
//! 2. all processors meet at a dedicated barrier;
//! 3. the wrapped workload's stream follows unchanged.
//!
//! Every placement arm (static first-touch, static round-robin, tuned
//! migration) runs the *same* prologue, so comparisons stay apples to
//! apples; only the page-homing consequences differ by policy.

use std::collections::BTreeSet;

use dsm_sim::addr::{Addr, PAGE_SHIFT};
use dsm_sim::event::{ChunkGen, ChunkedStream, Event};

use crate::app::{App, Workload};
use crate::inputs::Scale;
use crate::mem::Region;

/// Barrier id of the init/compute rendezvous. Outside the id space any
/// modelled workload uses (their ids grow from 0 with the step count).
pub const SERIAL_INIT_BARRIER: u32 = u32::MAX;

/// Wraps a workload with a serial-initialization prologue on processor 0.
pub struct SerialInit<W: Workload> {
    inner: W,
    /// One representative address per distinct footprint page, ascending.
    pages: Vec<Addr>,
    init_emitted: bool,
    released: Vec<bool>,
}

impl<W: Workload> SerialInit<W> {
    pub fn new(inner: W) -> Self {
        let pages = distinct_pages(&inner.footprint());
        let n = inner.n_procs();
        Self { inner, pages, init_emitted: false, released: vec![false; n] }
    }

    /// Number of distinct pages the prologue touches.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }
}

/// One block-aligned representative address per page covered by `regions`,
/// in ascending address order.
fn distinct_pages(regions: &[Region]) -> Vec<Addr> {
    let mut pages = BTreeSet::new();
    for r in regions {
        let mut off = 0;
        while off < r.bytes() {
            pages.insert((r.addr(off) >> PAGE_SHIFT) << PAGE_SHIFT);
            off += 1 << PAGE_SHIFT;
        }
        // Regions need not start page-aligned: cover the tail page too.
        pages.insert((r.addr(r.bytes() - 1) >> PAGE_SHIFT) << PAGE_SHIFT);
    }
    pages.into_iter().collect()
}

impl<W: Workload> ChunkGen for SerialInit<W> {
    fn n_procs(&self) -> usize {
        self.inner.n_procs()
    }

    fn fill(&mut self, proc: usize, buf: &mut Vec<Event>) {
        if !self.released[proc] {
            if proc == 0 && !self.init_emitted {
                for &addr in &self.pages {
                    buf.push(Event::Mem { addr, write: true });
                }
                self.init_emitted = true;
            }
            buf.push(Event::Barrier { id: SERIAL_INIT_BARRIER });
            self.released[proc] = true;
            return;
        }
        self.inner.fill(proc, buf);
    }
}

impl<W: Workload> Workload for SerialInit<W> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn input_desc(&self) -> String {
        format!("{} + serial init ({} pages)", self.inner.input_desc(), self.pages.len())
    }
    fn footprint(&self) -> Vec<Region> {
        self.inner.footprint()
    }
}

/// Build an application stream with the serial-initialization prologue
/// (same machine-facing type as [`crate::app::make_stream`]).
pub fn make_serial_init_stream(
    app: App,
    n_procs: usize,
    scale: Scale,
) -> ChunkedStream<Box<dyn Workload>> {
    let wrapped: Box<dyn Workload> = Box::new(SerialInit::new(app.build(n_procs, scale)));
    ChunkedStream::new(wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_sim::event::InstructionStream;

    fn drain(stream: &mut dyn InstructionStream, proc: usize) -> Vec<Event> {
        let mut out = Vec::new();
        loop {
            match stream.next(proc) {
                Event::End => return out,
                e => out.push(e),
            }
        }
    }

    #[test]
    fn prologue_touches_every_footprint_page_once() {
        for app in App::EXTENDED {
            let inner = app.build(4, Scale::Test);
            let expected = distinct_pages(&inner.footprint());
            assert!(!expected.is_empty(), "{}: empty footprint", app.name());

            let mut s = make_serial_init_stream(app, 4, Scale::Test);
            let mut touched = Vec::new();
            loop {
                match s.next(0) {
                    Event::Mem { addr, write } => {
                        assert!(write, "init sweep must write");
                        touched.push(addr);
                    }
                    Event::Barrier { id } => {
                        assert_eq!(id, SERIAL_INIT_BARRIER);
                        break;
                    }
                    other => panic!("{}: unexpected prologue event {other:?}", app.name()),
                }
            }
            assert_eq!(touched, expected, "{}: prologue page sweep mismatch", app.name());
        }
    }

    #[test]
    fn every_processor_waits_at_the_init_barrier_first() {
        let mut s = make_serial_init_stream(App::Fmm, 4, Scale::Test);
        for p in 1..4 {
            assert_eq!(s.next(p), Event::Barrier { id: SERIAL_INIT_BARRIER });
        }
    }

    #[test]
    fn compute_stream_is_unchanged_after_the_prologue() {
        for app in [App::Lu, App::Ocean] {
            let mut plain = crate::app::make_stream(app, 2, Scale::Test);
            let mut wrapped = make_serial_init_stream(app, 2, Scale::Test);
            for p in 0..2 {
                // Skip the prologue: everything up to and including the
                // init barrier.
                loop {
                    if let Event::Barrier { id: SERIAL_INIT_BARRIER } = wrapped.next(p) {
                        break;
                    }
                }
                assert_eq!(
                    drain(&mut wrapped, p),
                    drain(&mut plain, p),
                    "{} proc {p}: compute stream perturbed",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn footprint_pages_are_distinct_and_page_aligned() {
        let inner = App::Equake.build(8, Scale::Test);
        let pages = distinct_pages(&inner.footprint());
        for w in pages.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &p in &pages {
            assert_eq!(p & ((1 << PAGE_SHIFT) - 1), 0);
        }
    }
}
