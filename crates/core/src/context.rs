//! Multiprogramming support: save/restore of per-thread phase-detection
//! state across context switches.
//!
//! The paper (§III-B) notes: "In a multiprogrammed environment, the phase
//! identification information can be incorporated into the thread's state
//! on a context switch. Alternatively, phase information associated with
//! threads can be cleared at the expense of more tuning." Both options are
//! implemented here: [`DetectorContext::save`] / [`DetectorContext::restore`] round-trips the
//! footprint table, accumulator, and DDV counters through a serializable
//! snapshot, and [`DetectorContext::cleared`] produces the cheap-hardware
//! alternative.

use serde::{Deserialize, Serialize};

use crate::bbv::BbvAccumulator;
use crate::detector::OnlineDetector;
use crate::footprint::FootprintTable;

/// A serializable snapshot of one processor's detector state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorContext {
    pub accumulator: BbvAccumulator,
    pub footprint: FootprintTable,
}

impl DetectorContext {
    /// Capture processor `proc`'s state from a running detector.
    pub fn save(detector: &mut OnlineDetector, proc: usize) -> Self {
        let (bbv, _, tables) = detector.parts_mut();
        Self {
            accumulator: bbv[proc].clone(),
            footprint: tables[proc].clone(),
        }
    }

    /// Re-capture processor `proc`'s state into this existing snapshot,
    /// reusing its buffers: repeated save/restore cycles (one per context
    /// switch) allocate nothing once sizes reach steady state.
    pub fn save_into(&mut self, detector: &mut OnlineDetector, proc: usize) {
        let (bbv, _, tables) = detector.parts_mut();
        self.accumulator.copy_from(&bbv[proc]);
        self.footprint.copy_from(&tables[proc]);
    }

    /// Restore this snapshot into processor `proc` of a detector (the
    /// incoming thread's state replaces the outgoing one's). Buffers already
    /// resident in the detector are reused rather than reallocated. Any
    /// staleness state of a deadline-degraded gather is forgotten: cached
    /// stale rows belong to the outgoing thread's access pattern.
    pub fn restore(&self, detector: &mut OnlineDetector, proc: usize) {
        let (bbv, _, tables) = detector.parts_mut();
        bbv[proc].copy_from(&self.accumulator);
        tables[proc].copy_from(&self.footprint);
        detector.reset_staleness(proc);
    }

    /// The "clear on switch" alternative: fresh state sized like `self`.
    pub fn cleared(&self) -> Self {
        let mut fp = self.footprint.clone();
        fp.clear();
        Self {
            accumulator: BbvAccumulator::new(self.accumulator.len()),
            footprint: fp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorGeometry, DetectorMode, Thresholds};
    use dsm_sim::observer::{IntervalStats, SimObserver};

    fn detector() -> OnlineDetector {
        OnlineDetector::new(
            1,
            vec![1.0],
            DetectorMode::Bbv,
            Thresholds::bbv_only(0.5),
            DetectorGeometry::default(),
        )
    }

    fn run_interval(d: &mut OnlineDetector, code: u32, idx: u64) -> u32 {
        for _ in 0..10 {
            d.on_block_commit(0, code, 50);
        }
        d.on_interval(0, IntervalStats { index: idx, insns: 500, cycles: 700 });
        d.current_phase(0).unwrap()
    }

    #[test]
    fn save_restore_preserves_phase_identity() {
        let mut d = detector();
        let p_a = run_interval(&mut d, 7, 0);
        let ctx = DetectorContext::save(&mut d, 0);

        // Another thread runs and pollutes the table with its own phases.
        for i in 0..40 {
            run_interval(&mut d, 1000 + i, 1 + i as u64);
        }

        // Restore thread A: its phase must be recognized, not re-allocated.
        ctx.restore(&mut d, 0);
        let p_a2 = run_interval(&mut d, 7, 100);
        assert_eq!(p_a, p_a2, "restored thread must keep its phase ids");
    }

    /// Run an interval built from a *pair* of basic blocks, giving a
    /// two-bucket BBV signature.
    fn run_pair_interval(d: &mut OnlineDetector, a: u32, b: u32, idx: u64) -> u32 {
        for _ in 0..5 {
            d.on_block_commit(0, a, 50);
            d.on_block_commit(0, b, 50);
        }
        d.on_interval(0, IntervalStats { index: idx, insns: 500, cycles: 700 });
        d.current_phase(0).unwrap()
    }

    /// Normalized BBV of a code pattern, for collision screening.
    fn signature(codes: &[u32]) -> Vec<f64> {
        let mut acc = crate::bbv::BbvAccumulator::new(32);
        for &c in codes {
            acc.record(c, 50);
        }
        acc.normalized()
    }

    #[test]
    fn without_restore_phase_ids_are_lost() {
        let mut d = detector();
        let p_a = run_interval(&mut d, 7, 0);

        // Pollute with enough mutually distant signatures to evict A from
        // the 32-entry table. Screen candidate block pairs against hash
        // collisions first so every pollution interval is a genuinely new
        // phase that does not refresh A's entry.
        let a_sig = signature(&[7; 10]);
        let mut chosen: Vec<(u32, u32)> = Vec::new();
        let mut sigs: Vec<Vec<f64>> = vec![a_sig];
        let mut cand = 1000u32;
        while chosen.len() < 40 {
            let pair = (cand, cand + 1);
            cand += 2;
            let s = signature(&[pair.0, pair.1, pair.0, pair.1]);
            if sigs.iter().all(|t| crate::distance::manhattan(&s, t) >= 0.6) {
                sigs.push(s);
                chosen.push(pair);
            }
        }
        for (i, (a, b)) in chosen.iter().enumerate() {
            run_pair_interval(&mut d, *a, *b, 1 + i as u64);
        }

        let p_a2 = run_interval(&mut d, 7, 100);
        assert_ne!(p_a, p_a2, "evicted phase must be re-learned (more tuning)");
    }

    #[test]
    fn save_into_reuses_snapshot_and_matches_save() {
        let mut d = detector();
        run_interval(&mut d, 7, 0);
        // A stale snapshot from earlier...
        let mut ctx = DetectorContext::save(&mut d, 0);
        run_interval(&mut d, 900, 1);
        run_interval(&mut d, 901, 2);
        // ...re-captured in place must equal a freshly allocated capture.
        ctx.save_into(&mut d, 0);
        assert_eq!(ctx, DetectorContext::save(&mut d, 0));

        // And restoring it round-trips the detector state exactly.
        let before = DetectorContext::save(&mut d, 0);
        for i in 0..40 {
            run_interval(&mut d, 2000 + i, 3 + i as u64);
        }
        ctx.restore(&mut d, 0);
        assert_eq!(before, DetectorContext::save(&mut d, 0));
    }

    #[test]
    fn cleared_context_is_empty() {
        let mut d = detector();
        run_interval(&mut d, 7, 0);
        let ctx = DetectorContext::save(&mut d, 0);
        let fresh = ctx.cleared();
        assert_eq!(fresh.footprint.phases_allocated(), 0);
        assert!(fresh.accumulator.is_empty());
        assert_eq!(fresh.accumulator.len(), ctx.accumulator.len());
    }
}
