//! The Data Distribution Vector (DDV) — the paper's contribution (§III-B).
//!
//! Each node keeps a frequency matrix `F`: on behalf of every processor `i`
//! in the system, it counts the loads/stores *this node* committed to blocks
//! with home `j` since `i` last started a new interval. When processor `i`
//! ends an interval it queries every node's `F_i` row (each node zeroes its
//! row as it answers), sums the rows into the contention vector `C`, and
//! computes the data distribution scalar
//!
//! ```text
//! DDS = Σ_j  F[i][j] · D[i][j] · C[j]
//! ```
//!
//! where `F[i][j]` are `i`'s own per-home access counts, `D` is the
//! pre-programmed distance matrix (1 on the diagonal), and `C[j]` is the
//! system-wide access frequency to home `j` during `i`'s interval.
//!
//! ### Implementation note: O(1) hardware-equivalent counters
//!
//! The paper's hardware increments *all* `F_kj, 1 ≤ k ≤ n` on every commit
//! (n counters ticking in parallel). In software that would cost O(n) per
//! memory event. We store instead one cumulative counter per home plus a
//! per-requester snapshot taken at query time: `F_i[j] = cum[j] - snap[i][j]`.
//! Since every `F_kj` in the paper's scheme counts exactly the accesses to
//! home `j` between `k`'s queries, the two representations are equal at
//! every query point — [`NaiveFrequencyMatrix`] implements the literal
//! hardware scheme and the property tests assert the equivalence.
//!
//! ### Implementation note: O(n) aggregate gather
//!
//! The per-node snapshot trick makes *recording* O(1), but the gather that
//! ends an interval still walked all n matrices draining n-entry rows —
//! O(n²) per interval, and the measured hot spot of a 64P+ capture. The
//! same algebra collapses it to O(n): keep one *global* cumulative vector
//! `G[j] = Σ_q cum_q[j]` (one extra add per commit) plus a per-requester
//! snapshot `S_i` of `G` taken at `i`'s gathers. Then
//!
//! ```text
//! C[j] = Σ_q (cum_q[j] - snap_q[i][j]) = G[j] - S_i[j]
//! ```
//!
//! because every `snap_q[i]` row is pinned at the same gather point, so
//! their sum *is* `G` at that point. Differences of u64 sums equal sums of
//! u64 differences exactly, so the fast gather is bit-identical to the
//! reference walk — [`DdvState::end_interval_reference_into`] keeps the
//! O(n²) walk alive purely to pin that equivalence in tests. `F_i` itself
//! only needs node `i`'s own matrix (one row drain, O(n)).
//!
//! The [`DegradedCollector`] cannot use the aggregate: it must know *which*
//! node's row arrived, so it keeps the per-matrix walk. A given `DdvState`
//! instance must therefore stick to one gather style — mixing the fast
//! path with the reference/degraded walks on one instance desynchronizes
//! `S_i` (the detectors never mix them; each picks a style at
//! construction).

use serde::{Deserialize, Serialize};

/// One node's frequency matrix (snapshot representation).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencyMatrix {
    n: usize,
    /// Cumulative committed accesses by this node, per home.
    cum: Vec<u64>,
    /// Per-requester snapshot of `cum` at its last query, row-major `[i][j]`.
    snap: Vec<u64>,
}

impl FrequencyMatrix {
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        Self { n, cum: vec![0; n], snap: vec![0; n * n] }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// This node committed a load/store to a block homed at `home`.
    #[inline]
    pub fn record(&mut self, home: usize) {
        self.cum[home] += 1;
    }

    /// Answer requester `i`'s query: return `F_i` (accesses per home since
    /// `i`'s last query) and zero the row, per the paper's protocol.
    pub fn query(&mut self, i: usize) -> Vec<u64> {
        let mut out = vec![0u64; self.n];
        self.drain_row_into(i, &mut out);
        out
    }

    /// Allocation-free form of [`Self::query`]: *add* `F_i` into `acc`
    /// (which must have length `n`) and zero the row. Adding rather than
    /// overwriting lets the caller accumulate the contention vector `C`
    /// across all nodes without a temporary per-node buffer.
    #[inline]
    pub fn drain_row_into(&mut self, i: usize, acc: &mut [u64]) {
        debug_assert_eq!(acc.len(), self.n);
        let row = &mut self.snap[i * self.n..(i + 1) * self.n];
        for ((a, &c), s) in acc.iter_mut().zip(self.cum.iter()).zip(row.iter_mut()) {
            *a += c - *s;
            *s = c;
        }
    }

    /// Read `F_i` without zeroing (diagnostics only; hardware can't do this).
    pub fn peek(&self, i: usize) -> Vec<u64> {
        self.snap[i * self.n..(i + 1) * self.n]
            .iter()
            .zip(&self.cum)
            .map(|(s, c)| c - s)
            .collect()
    }

    /// Reset everything (context switch).
    pub fn clear(&mut self) {
        self.cum.iter_mut().for_each(|c| *c = 0);
        self.snap.iter_mut().for_each(|s| *s = 0);
    }
}

/// One frequency matrix's dynamic state (checkpointing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrequencySnap {
    pub cum: Vec<u64>,
    pub snap: Vec<u64>,
}

/// [`DdvState`]'s dynamic state: per-node matrices plus gather counters.
/// The distance matrix is config-derived and not stored.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdvSnap {
    pub mats: Vec<FrequencySnap>,
    /// Global cumulative per-home commit counts (`G`).
    pub gcum: Vec<u64>,
    /// Per-requester snapshot of `G` at its last gather, row-major.
    pub gsnap: Vec<u64>,
    pub queries: u64,
    pub vectors_exchanged: u64,
    /// Critical-path collection rounds accumulated across gathers.
    pub gather_rounds: u64,
}

/// Literal implementation of the paper's hardware: n×n counters, all rows
/// incremented on every commit. Used to validate [`FrequencyMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaiveFrequencyMatrix {
    n: usize,
    /// `counts[i][j]`: accesses to home j on behalf of requester i.
    counts: Vec<u64>,
}

impl NaiveFrequencyMatrix {
    pub fn new(n: usize) -> Self {
        Self { n, counts: vec![0; n * n] }
    }

    pub fn record(&mut self, home: usize) {
        // "Every time processor p commits a load or a store ... it
        // increments all F_kj, 1 <= k <= n."
        for i in 0..self.n {
            self.counts[i * self.n + home] += 1;
        }
    }

    pub fn query(&mut self, i: usize) -> Vec<u64> {
        let row = &mut self.counts[i * self.n..(i + 1) * self.n];
        let out = row.to_vec();
        row.iter_mut().for_each(|c| *c = 0);
        out
    }
}

/// A sample produced at the end of one processor's interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdsSample {
    /// `F_i`: the requester's own per-home access counts this interval.
    pub fvec: Vec<u64>,
    /// `C`: system-wide per-home access counts over the same window.
    pub cvec: Vec<u64>,
    /// The data distribution scalar.
    pub dds: f64,
}

impl DdsSample {
    /// An empty sample, suitable as a reusable scratch target for
    /// [`DdvState::end_interval_into`].
    pub fn empty() -> Self {
        Self { fvec: Vec::new(), cvec: Vec::new(), dds: 0.0 }
    }
}

/// How the end-of-interval row collection is organized on the wire.
///
/// Either way the *values* gathered are identical (u64 sums are
/// associative); what changes is the simulated collection shape: the star
/// funnels `n - 1` rows straight into the requester in one round, the
/// fan-in tree combines them along a reduction tree so the critical path
/// grows O(log n) and the root only ever receives `arity` messages. The
/// shape is accounted in [`DdvState::gather_rounds`]; total vectors on the
/// wire stay `n - 1` for both (every non-root node sends exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatherTopology {
    /// The paper's all-to-one gather: one round, root fan-in `n - 1`.
    Star,
    /// Fan-in reduction tree of the given arity (≥ 2); `ceil(log_a n)`
    /// rounds, root fan-in ≤ `arity`.
    Tree { arity: usize },
}

impl GatherTopology {
    /// Critical-path rounds to collect `n - 1` remote rows.
    pub fn depth(self, n: usize) -> u32 {
        match self {
            _ if n <= 1 => 0,
            GatherTopology::Star => 1,
            GatherTopology::Tree { arity } => {
                assert!(arity >= 2, "reduction tree needs arity >= 2");
                // Rounds of a heap-shaped arity-a fan-in tree over n ranks:
                // every rank (internal ones too) contributes a row, so a
                // depth-d tree covers 1 + a + ... + a^d ranks.
                let mut rounds = 0u32;
                let mut covered = 1usize;
                let mut level = 1usize;
                while covered < n {
                    level = level.saturating_mul(arity);
                    covered = covered.saturating_add(level);
                    rounds += 1;
                }
                rounds
            }
        }
    }

    /// Messages the requester itself must sink during one gather.
    pub fn root_fan_in(self, n: usize) -> usize {
        match self {
            _ if n <= 1 => 0,
            GatherTopology::Star => n - 1,
            GatherTopology::Tree { arity } => arity.min(n - 1),
        }
    }
}

/// System-wide DDV state: one frequency matrix per node plus the
/// pre-programmed distance matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdvState {
    n: usize,
    mats: Vec<FrequencyMatrix>,
    /// Global cumulative per-home commit counts: `gcum[j] = Σ_q cum_q[j]`.
    gcum: Vec<u64>,
    /// Per-requester snapshot of `gcum` at its last gather, row-major.
    gsnap: Vec<u64>,
    /// Distance matrix, row-major; `dist[i*n+j]`, 1.0 on the diagonal.
    dist: Vec<f64>,
    /// Simulated collection shape (cost accounting only; values identical).
    collection: GatherTopology,
    queries: u64,
    vectors_exchanged: u64,
    gather_rounds: u64,
}

impl DdvState {
    /// `dist` must be an n×n row-major matrix with `dist[i][i] == 1`.
    pub fn new(n: usize, dist: Vec<f64>) -> Self {
        assert_eq!(dist.len(), n * n, "distance matrix must be n x n");
        for i in 0..n {
            assert!(
                (dist[i * n + i] - 1.0).abs() < 1e-12,
                "D[i][i] must be 1 (paper definition)"
            );
        }
        Self {
            n,
            mats: (0..n).map(|_| FrequencyMatrix::new(n)).collect(),
            gcum: vec![0; n],
            gsnap: vec![0; n * n],
            dist,
            collection: GatherTopology::Star,
            queries: 0,
            vectors_exchanged: 0,
            gather_rounds: 0,
        }
    }

    /// Convenience: build with the hypercube distance matrix `1 + hops`.
    pub fn for_hypercube(n: usize) -> Self {
        assert!(n.is_power_of_two());
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                dist[i * n + j] = if i == j {
                    1.0
                } else {
                    1.0 + ((i ^ j) as u64).count_ones() as f64
                };
            }
        }
        Self::new(n, dist)
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Processor `p` committed an access to a block homed at `home`.
    #[inline]
    pub fn record_access(&mut self, p: usize, home: usize) {
        self.mats[p].record(home);
        self.gcum[home] += 1;
    }

    /// Coordinator half of [`Self::record_access`]: bump only the global
    /// cumulative vector. The sharded collector calls this on the serial
    /// side and defers the per-node `mats[p]` bump to the owning shard
    /// worker ([`FrequencyMatrix::record`] via [`Self::mats_mut`]).
    #[inline]
    pub fn record_home_global(&mut self, home: usize) {
        self.gcum[home] += 1;
    }

    /// The per-node matrices, for shard workers that update disjoint
    /// processors in parallel. Combined with [`Self::record_home_global`]
    /// this reproduces [`Self::record_access`] exactly.
    pub fn mats_mut(&mut self) -> &mut [FrequencyMatrix] {
        &mut self.mats
    }

    /// Processor `i` ends an interval: gather all `F_i` rows (zeroing them),
    /// build `C`, and compute the DDS.
    pub fn end_interval(&mut self, i: usize) -> DdsSample {
        let mut sample = DdsSample::empty();
        self.end_interval_into(i, &mut sample);
        sample
    }

    /// [`Self::end_interval`] into a caller-owned sample, reusing its `fvec`
    /// and `cvec` buffers. This is the per-interval hot path: the O(n)
    /// aggregate gather (see the module notes) — `C = G - S_i` plus one row
    /// drain for `F_i` — bit-identical to the O(n²) reference walk kept in
    /// [`Self::end_interval_reference_into`].
    pub fn end_interval_into(&mut self, i: usize, sample: &mut DdsSample) {
        sample.fvec.clear();
        sample.fvec.resize(self.n, 0);
        self.mats[i].drain_row_into(i, &mut sample.fvec);
        self.gather_cvec_into(i, &mut sample.cvec);
        sample.dds = Self::dds_of(&sample.fvec, &self.dist[i * self.n..(i + 1) * self.n], &sample.cvec);
    }

    /// Coordinator half of the fast gather: build `C` for requester `i`
    /// from the aggregate (`C = G - S_i`, then `S_i := G`) and account the
    /// gather. `F_i` and the DDS are per-processor work the sharded
    /// collector computes on the owning shard.
    pub fn gather_cvec_into(&mut self, i: usize, cvec: &mut Vec<u64>) {
        self.queries += 1;
        self.vectors_exchanged += (self.n - 1) as u64; // remote rows fetched
        self.gather_rounds += self.collection.depth(self.n) as u64;
        cvec.clear();
        cvec.resize(self.n, 0);
        let srow = &mut self.gsnap[i * self.n..(i + 1) * self.n];
        for ((c, &g), s) in cvec.iter_mut().zip(self.gcum.iter()).zip(srow.iter_mut()) {
            *c = g - *s;
            *s = g;
        }
    }

    /// The pre-optimization reference gather: walk every node's matrix and
    /// drain its `F_i` row. O(n²) per interval. Kept (and exercised by
    /// tests) purely to pin the bit-equivalence of the fast aggregate path;
    /// do not mix both paths on one instance — each maintains snapshot
    /// state the other does not.
    pub fn end_interval_reference_into(&mut self, i: usize, sample: &mut DdsSample) {
        self.queries += 1;
        self.vectors_exchanged += (self.n - 1) as u64;
        self.gather_rounds += self.collection.depth(self.n) as u64;
        sample.fvec.clear();
        sample.fvec.resize(self.n, 0);
        sample.cvec.clear();
        sample.cvec.resize(self.n, 0);
        for (q, mat) in self.mats.iter_mut().enumerate() {
            // `F_i` goes straight into fvec; every other node's row is summed
            // into cvec. `C = Σ_q row_q` is restored below by adding fvec —
            // u64 sums commute, so this equals the reference per-row gather.
            if q == i {
                mat.drain_row_into(i, &mut sample.fvec);
            } else {
                mat.drain_row_into(i, &mut sample.cvec);
            }
        }
        for (c, &f) in sample.cvec.iter_mut().zip(sample.fvec.iter()) {
            *c += f;
        }
        sample.dds = Self::dds_of(&sample.fvec, &self.dist[i * self.n..(i + 1) * self.n], &sample.cvec);
    }

    /// The DDS formula over explicit vectors (exposed for ablations, which
    /// recompute DDS with `C ≡ 1` or `D ≡ 1`).
    pub fn dds_of(fvec: &[u64], dist_row: &[f64], cvec: &[u64]) -> f64 {
        fvec.iter()
            .zip(dist_row)
            .zip(cvec)
            .map(|((&f, &d), &c)| f as f64 * d * c as f64)
            .sum()
    }

    /// Distance-matrix row for processor `i`.
    pub fn dist_row(&self, i: usize) -> &[f64] {
        &self.dist[i * self.n..(i + 1) * self.n]
    }

    /// Total end-of-interval queries served (for the §III-B overhead model).
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Total remote `F_i` vectors exchanged.
    pub fn vectors_exchanged(&self) -> u64 {
        self.vectors_exchanged
    }

    /// Critical-path collection rounds accumulated across all gathers
    /// (queries × depth of the configured [`GatherTopology`]).
    pub fn gather_rounds(&self) -> u64 {
        self.gather_rounds
    }

    /// The simulated collection shape in force.
    pub fn collection_topology(&self) -> GatherTopology {
        self.collection
    }

    /// Select the simulated collection shape. Gather *values* are
    /// unaffected (sums are associative); only the round accounting
    /// changes, so the default star keeps every committed golden intact.
    pub fn set_collection_topology(&mut self, t: GatherTopology) {
        if let GatherTopology::Tree { arity } = t {
            assert!(arity >= 2, "reduction tree needs arity >= 2");
        }
        self.collection = t;
    }

    /// The per-node matrices *and* the shared distance matrix, borrowed
    /// together (disjoint fields): shard workers mutate disjoint matrices
    /// while all of them read distance rows for the DDS.
    pub(crate) fn mats_and_dist(&mut self) -> (&mut [FrequencyMatrix], &[f64]) {
        (&mut self.mats, &self.dist)
    }

    /// Mirror the gather counters into a metrics registry under `prefix`
    /// (e.g. `detector/ddv`) — the same numbers the §III-B overhead model
    /// consumes, now reportable alongside every other run metric.
    pub fn publish_metrics(&self, prefix: &str, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.counter_add(&format!("{prefix}/queries"), self.queries);
        reg.counter_add(&format!("{prefix}/vectors_exchanged"), self.vectors_exchanged);
        reg.counter_add(&format!("{prefix}/gather_rounds"), self.gather_rounds);
    }

    /// Reset all counters (context switch).
    pub fn clear(&mut self) {
        for m in &mut self.mats {
            m.clear();
        }
        self.gcum.iter_mut().for_each(|g| *g = 0);
        self.gsnap.iter_mut().for_each(|s| *s = 0);
    }

    /// Export the full dynamic state for checkpointing.
    pub fn export_state(&self) -> DdvSnap {
        DdvSnap {
            mats: self
                .mats
                .iter()
                .map(|m| FrequencySnap { cum: m.cum.clone(), snap: m.snap.clone() })
                .collect(),
            gcum: self.gcum.clone(),
            gsnap: self.gsnap.clone(),
            queries: self.queries,
            vectors_exchanged: self.vectors_exchanged,
            gather_rounds: self.gather_rounds,
        }
    }

    /// Restore state captured by [`DdvState::export_state`]. Panics when the
    /// snapshot was taken on a differently sized system.
    pub fn import_state(&mut self, st: &DdvSnap) {
        assert_eq!(st.mats.len(), self.n, "DDV snapshot is for a different machine");
        assert_eq!(st.gcum.len(), self.n, "DDV snapshot is for a different machine");
        assert_eq!(st.gsnap.len(), self.n * self.n, "DDV snapshot is for a different machine");
        for (m, s) in self.mats.iter_mut().zip(&st.mats) {
            assert_eq!(s.cum.len(), m.cum.len(), "DDV snapshot is for a different machine");
            assert_eq!(s.snap.len(), m.snap.len(), "DDV snapshot is for a different machine");
            m.cum.copy_from_slice(&s.cum);
            m.snap.copy_from_slice(&s.snap);
        }
        self.gcum.copy_from_slice(&st.gcum);
        self.gsnap.copy_from_slice(&st.gsnap);
        self.queries = st.queries;
        self.vectors_exchanged = st.vectors_exchanged;
        self.gather_rounds = st.gather_rounds;
    }
}

// ---------------------------------------------------------------------------
// Hierarchical fan-in reduction
// ---------------------------------------------------------------------------

/// A deterministic fan-in reduction tree over `n` ranks rooted at rank 0.
///
/// Rank `r`'s parent is `(r - 1) / arity` — the heap shape — so the tree is
/// fully determined by `(n, arity)` and every combine is a plain u64 vector
/// add. Used two ways: as the simulated shape behind
/// [`GatherTopology::Tree`] (cost accounting), and as the actual combine
/// order of the sharded collector's drain, where per-shard partial rows
/// fan into the requester instead of `n - 1` separate messages. Because
/// u64 addition is commutative and associative, the tree-combined result
/// is bit-identical to the star gather — pinned by tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReductionTree {
    n: usize,
    arity: usize,
}

impl ReductionTree {
    pub fn new(n: usize, arity: usize) -> Self {
        assert!(n > 0, "reduction over zero ranks");
        assert!(arity >= 2, "reduction tree needs arity >= 2");
        Self { n, arity }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Parent rank of `r` (`None` for the root).
    pub fn parent(&self, r: usize) -> Option<usize> {
        debug_assert!(r < self.n);
        if r == 0 {
            None
        } else {
            Some((r - 1) / self.arity)
        }
    }

    /// Depth of rank `r` below the root (root = 0): the number of combine
    /// rounds `r`'s contribution traverses.
    pub fn depth_of(&self, r: usize) -> u32 {
        let mut d = 0;
        let mut cur = r;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    /// Critical-path rounds: the maximum leaf depth.
    pub fn depth(&self) -> u32 {
        (0..self.n).map(|r| self.depth_of(r)).max().unwrap_or(0)
    }

    /// Combine one vector per rank bottom-up along the tree and return the
    /// root's total. Each rank folds its children's partials into its own
    /// vector before forwarding — exactly `n - 1` vector messages, like the
    /// star, but with O(log n) critical path and root fan-in ≤ arity.
    pub fn reduce(&self, rows: &[Vec<u64>]) -> Vec<u64> {
        assert_eq!(rows.len(), self.n, "one row per rank");
        let width = rows.first().map_or(0, |r| r.len());
        let mut partial: Vec<Vec<u64>> = rows.to_vec();
        // Children have strictly larger rank indices than their parents, so
        // a single reverse sweep folds bottom-up.
        for r in (1..self.n).rev() {
            assert_eq!(partial[r].len(), width, "ragged reduction rows");
            let p = self.parent(r).expect("non-root has a parent");
            let (head, tail) = partial.split_at_mut(r);
            for (dst, &v) in head[p].iter_mut().zip(tail[0].iter()) {
                *dst += v;
            }
        }
        partial.swap_remove(0)
    }
}

// ---------------------------------------------------------------------------
// Deadline-degraded row collection
// ---------------------------------------------------------------------------

/// Gathers `F_i` rows under a collection deadline, tolerating missing rows.
///
/// In a faulty system a remote node's `F_i` row may not reach the requester
/// before the end-of-interval deadline (derived from the network's
/// worst-case one-way latency plus the retry budget). The paper's gather is
/// all-or-nothing; this collector implements the graceful fallback: a
/// missing row is substituted by the *last row actually received* from that
/// node, weighted down by its staleness — each consecutive miss halves the
/// substituted counts (`row >> staleness`), so a long-silent node's stale
/// contribution decays toward zero instead of freezing the contention
/// vector `C` in the past.
///
/// The remote node keeps counting while silent (rows are only drained on a
/// successful gather), so when it reappears its next row covers the whole
/// silent window and `C` catches up; nothing is permanently lost.
///
/// Staleness is tracked per `(requester, source)` pair. The caller maps the
/// maximum staleness among substituted rows to a classification decision
/// (see `AvailabilityModel` in the detector: past a configurable bound the
/// DDS is too stale to trust and classification degrades to BBV-only).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedCollector {
    n: usize,
    /// Last successfully received row, flattened `[requester][source][home]`.
    last_rows: Vec<u64>,
    /// Consecutive missed gathers, flattened `[requester][source]`.
    staleness: Vec<u64>,
    /// Rows substituted from stale caches, total.
    substitutions: u64,
    scratch: Vec<u64>,
}

impl DegradedCollector {
    pub fn new(n: usize) -> Self {
        Self {
            n,
            last_rows: vec![0; n * n * n],
            staleness: vec![0; n * n],
            substitutions: 0,
            scratch: vec![0; n],
        }
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Total rows substituted from stale caches so far.
    pub fn substitutions(&self) -> u64 {
        self.substitutions
    }

    /// Consecutive misses of `source`'s row for `requester`'s gathers.
    pub fn staleness(&self, requester: usize, source: usize) -> u64 {
        self.staleness[requester * self.n + source]
    }

    /// Forget everything known on behalf of `requester` (context switch: an
    /// incoming thread must not inherit the outgoing thread's stale rows).
    pub fn reset_requester(&mut self, requester: usize) {
        let n = self.n;
        self.staleness[requester * n..(requester + 1) * n].fill(0);
        self.last_rows[requester * n * n..(requester + 1) * n * n].fill(0);
    }

    /// End requester `i`'s interval against `ddv`. `arrived(q)` reports
    /// whether node `q`'s row met the collection deadline (`q == i` is the
    /// local row and never queried). Returns the maximum staleness among
    /// substituted rows — 0 when every row arrived, in which case the sample
    /// is bit-identical to [`DdvState::end_interval_into`].
    pub fn end_interval_into(
        &mut self,
        ddv: &mut DdvState,
        i: usize,
        sample: &mut DdsSample,
        mut arrived: impl FnMut(usize) -> bool,
    ) -> u64 {
        let n = self.n;
        assert_eq!(n, ddv.n(), "collector and DDV state sized differently");
        ddv.queries += 1;
        ddv.gather_rounds += ddv.collection.depth(n) as u64;
        sample.fvec.clear();
        sample.fvec.resize(n, 0);
        sample.cvec.clear();
        sample.cvec.resize(n, 0);
        let mut max_staleness = 0u64;
        for q in 0..n {
            if q == i {
                ddv.mats[q].drain_row_into(i, &mut sample.fvec);
                continue;
            }
            let st = &mut self.staleness[i * n + q];
            if arrived(q) {
                ddv.vectors_exchanged += 1;
                *st = 0;
                // Drain into a scratch row so the received counts can be
                // cached before being folded into C.
                self.scratch.fill(0);
                ddv.mats[q].drain_row_into(i, &mut self.scratch);
                let cache = &mut self.last_rows[(i * n + q) * n..(i * n + q + 1) * n];
                cache.copy_from_slice(&self.scratch);
                for (c, &r) in sample.cvec.iter_mut().zip(self.scratch.iter()) {
                    *c += r;
                }
            } else {
                *st += 1;
                self.substitutions += 1;
                max_staleness = max_staleness.max(*st);
                let shift = (*st).min(63) as u32;
                let cache = &self.last_rows[(i * n + q) * n..(i * n + q + 1) * n];
                for (c, &r) in sample.cvec.iter_mut().zip(cache.iter()) {
                    *c += r >> shift;
                }
            }
        }
        for (c, &f) in sample.cvec.iter_mut().zip(sample.fvec.iter()) {
            *c += f;
        }
        sample.dds = DdvState::dds_of(&sample.fvec, ddv.dist_row(i), &sample.cvec);
        max_staleness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_returns_accesses_since_last_query() {
        let mut f = FrequencyMatrix::new(4);
        f.record(0);
        f.record(0);
        f.record(3);
        assert_eq!(f.query(1), vec![2, 0, 0, 1]);
        // Zeroed for requester 1, but requester 2 still sees everything.
        assert_eq!(f.query(1), vec![0, 0, 0, 0]);
        assert_eq!(f.query(2), vec![2, 0, 0, 1]);
        f.record(2);
        assert_eq!(f.query(1), vec![0, 0, 1, 0]);
    }

    #[test]
    fn peek_does_not_zero() {
        let mut f = FrequencyMatrix::new(2);
        f.record(1);
        assert_eq!(f.peek(0), vec![0, 1]);
        assert_eq!(f.query(0), vec![0, 1]);
        assert_eq!(f.peek(0), vec![0, 0]);
    }

    #[test]
    fn snapshot_matches_naive_hardware() {
        let mut fast = FrequencyMatrix::new(4);
        let mut naive = NaiveFrequencyMatrix::new(4);
        // Deterministic interleaving of records and queries.
        let mut x = 7u64;
        for step in 0..2000 {
            x = dsm_sim::util::splitmix64(x);
            if step % 13 == 0 {
                let i = (x % 4) as usize;
                assert_eq!(fast.query(i), naive.query(i), "at step {step}");
            } else {
                let home = (x % 4) as usize;
                fast.record(home);
                naive.record(home);
            }
        }
    }

    #[test]
    fn dds_formula_matches_paper() {
        // Two-node example like the paper's Fig. 3.
        let fvec = [10u64, 5];
        let dist = [1.0, 2.0];
        let cvec = [20u64, 30];
        // DDS = 10*1*20 + 5*2*30 = 200 + 300 = 500.
        assert_eq!(DdvState::dds_of(&fvec, &dist, &cvec), 500.0);
    }

    #[test]
    fn end_interval_gathers_all_nodes() {
        let mut d = DdvState::for_hypercube(2);
        // P0 makes 3 local accesses; P1 makes 2 accesses to home 0.
        d.record_access(0, 0);
        d.record_access(0, 0);
        d.record_access(0, 0);
        d.record_access(1, 0);
        d.record_access(1, 0);
        let s = d.end_interval(0);
        assert_eq!(s.fvec, vec![3, 0]);
        assert_eq!(s.cvec, vec![5, 0], "contention counts everyone's accesses");
        // DDS = 3 * 1.0 * 5 = 15.
        assert_eq!(s.dds, 15.0);
        // Rows were zeroed for requester 0 only.
        let s1 = d.end_interval(1);
        assert_eq!(s1.cvec, vec![5, 0], "requester 1's window still open");
    }

    #[test]
    fn remote_accesses_weighted_by_distance() {
        let mut d = DdvState::for_hypercube(4);
        // P0 accesses home 3 (2 hops away: dist = 3.0) five times.
        for _ in 0..5 {
            d.record_access(0, 3);
        }
        let s = d.end_interval(0);
        // DDS = 5 * 3.0 * 5 = 75.
        assert_eq!(s.dds, 75.0);
    }

    #[test]
    fn contention_from_other_nodes_raises_dds() {
        let run = |others: u64| {
            let mut d = DdvState::for_hypercube(4);
            for _ in 0..10 {
                d.record_access(0, 1);
            }
            for _ in 0..others {
                d.record_access(2, 1); // other node hammers home 1
            }
            d.end_interval(0).dds
        };
        assert!(run(100) > run(0), "hot home must raise requester DDS");
    }

    #[test]
    fn end_interval_into_reuses_buffers_and_matches_allocating_form() {
        let mut a = DdvState::for_hypercube(4);
        let mut b = DdvState::for_hypercube(4);
        let mut sample = DdsSample::empty();
        let mut x = 1u64;
        for step in 0..400 {
            x = dsm_sim::util::splitmix64(x);
            let p = (x % 4) as usize;
            let home = ((x >> 8) % 4) as usize;
            a.record_access(p, home);
            b.record_access(p, home);
            if step % 17 == 0 {
                let i = ((x >> 16) % 4) as usize;
                b.end_interval_into(i, &mut sample);
                assert_eq!(a.end_interval(i), sample, "at step {step}");
            }
        }
        assert_eq!(a.queries(), b.queries());
        assert_eq!(a.vectors_exchanged(), b.vectors_exchanged());
    }

    #[test]
    fn queries_counted_for_overhead_model() {
        let mut d = DdvState::for_hypercube(8);
        d.end_interval(0);
        d.end_interval(3);
        assert_eq!(d.queries(), 2);
        assert_eq!(d.vectors_exchanged(), 14);
    }

    #[test]
    fn uniprocessor_degenerates_to_self_product() {
        let mut d = DdvState::for_hypercube(1);
        for _ in 0..4 {
            d.record_access(0, 0);
        }
        let s = d.end_interval(0);
        assert_eq!(s.dds, 16.0); // 4 * 1 * 4
    }

    #[test]
    #[should_panic(expected = "D[i][i] must be 1")]
    fn bad_diagonal_rejected() {
        let _ = DdvState::new(2, vec![2.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn clear_resets_counts() {
        let mut d = DdvState::for_hypercube(2);
        d.record_access(0, 1);
        d.clear();
        let s = d.end_interval(0);
        assert_eq!(s.fvec, vec![0, 0]);
        assert_eq!(s.dds, 0.0);
    }

    #[test]
    fn degraded_collector_with_all_rows_matches_reference_gather() {
        let mut a = DdvState::for_hypercube(4);
        let mut b = DdvState::for_hypercube(4);
        let mut coll = DegradedCollector::new(4);
        let mut sample = DdsSample::empty();
        let mut x = 11u64;
        for step in 0..500 {
            x = dsm_sim::util::splitmix64(x);
            let p = (x % 4) as usize;
            let home = ((x >> 8) % 4) as usize;
            a.record_access(p, home);
            b.record_access(p, home);
            if step % 19 == 0 {
                let i = ((x >> 16) % 4) as usize;
                let st = coll.end_interval_into(&mut b, i, &mut sample, |_| true);
                assert_eq!(st, 0);
                assert_eq!(a.end_interval(i), sample, "at step {step}");
            }
        }
        assert_eq!(coll.substitutions(), 0);
        assert_eq!(a.queries(), b.queries());
        assert_eq!(a.vectors_exchanged(), b.vectors_exchanged());
    }

    #[test]
    fn missing_row_falls_back_to_stale_weighted_cache() {
        let mut d = DdvState::for_hypercube(2);
        let mut coll = DegradedCollector::new(2);
        let mut sample = DdsSample::empty();
        // Gather 1: node 1 answers with 8 accesses to home 0.
        for _ in 0..8 {
            d.record_access(1, 0);
        }
        coll.end_interval_into(&mut d, 0, &mut sample, |_| true);
        assert_eq!(sample.cvec, vec![8, 0]);
        // Gather 2: node 1 silent -> last row halved (8 >> 1 = 4).
        let st = coll.end_interval_into(&mut d, 0, &mut sample, |_| false);
        assert_eq!(st, 1);
        assert_eq!(sample.cvec, vec![4, 0]);
        // Gather 3: still silent -> quartered.
        let st = coll.end_interval_into(&mut d, 0, &mut sample, |_| false);
        assert_eq!(st, 2);
        assert_eq!(sample.cvec, vec![2, 0]);
        assert_eq!(coll.staleness(0, 1), 2);
        assert_eq!(coll.substitutions(), 2);
    }

    #[test]
    fn silent_node_counts_are_recovered_on_reappearance() {
        let mut d = DdvState::for_hypercube(2);
        let mut coll = DegradedCollector::new(2);
        let mut sample = DdsSample::empty();
        for _ in 0..4 {
            d.record_access(1, 1);
        }
        coll.end_interval_into(&mut d, 0, &mut sample, |_| false); // missed
        assert_eq!(sample.cvec, vec![0, 0], "no cache yet: nothing to substitute");
        for _ in 0..3 {
            d.record_access(1, 1);
        }
        // Node 1 answers: the row covers the whole silent window (4 + 3).
        let st = coll.end_interval_into(&mut d, 0, &mut sample, |_| true);
        assert_eq!(st, 0);
        assert_eq!(sample.cvec, vec![0, 7]);
        assert_eq!(coll.staleness(0, 1), 0, "staleness resets on arrival");
    }

    #[test]
    fn fast_aggregate_gather_matches_reference_walk() {
        // The O(n) aggregate gather must be bit-identical to the O(n²)
        // per-matrix walk at every query point, across sizes and
        // interleavings (including repeated queries by the same requester
        // with no traffic in between).
        for n in [1usize, 2, 3, 5, 8, 16] {
            let dist: Vec<f64> = (0..n * n)
                .map(|k| if k / n == k % n { 1.0 } else { 2.5 })
                .collect();
            let mut fast = DdvState::new(n, dist.clone());
            let mut refr = DdvState::new(n, dist);
            let mut fs = DdsSample::empty();
            let mut rs = DdsSample::empty();
            let mut x = 0xfeed_0000u64 + n as u64;
            for step in 0..800 {
                x = dsm_sim::util::splitmix64(x);
                if step % 7 == 0 {
                    let i = (x % n as u64) as usize;
                    fast.end_interval_into(i, &mut fs);
                    refr.end_interval_reference_into(i, &mut rs);
                    assert_eq!(fs, rs, "n = {n}, step = {step}");
                } else {
                    let p = (x % n as u64) as usize;
                    let home = ((x >> 17) % n as u64) as usize;
                    fast.record_access(p, home);
                    refr.record_access(p, home);
                }
            }
            assert_eq!(fast.queries(), refr.queries());
            assert_eq!(fast.vectors_exchanged(), refr.vectors_exchanged());
            assert_eq!(fast.gather_rounds(), refr.gather_rounds());
        }
    }

    #[test]
    fn aggregate_survives_export_import_roundtrip() {
        let mut d = DdvState::for_hypercube(4);
        let mut s = DdsSample::empty();
        let mut x = 3u64;
        for step in 0..200 {
            x = dsm_sim::util::splitmix64(x);
            d.record_access((x % 4) as usize, ((x >> 9) % 4) as usize);
            if step % 23 == 0 {
                d.end_interval_into(((x >> 20) % 4) as usize, &mut s);
            }
        }
        let snap = d.export_state();
        let mut restored = DdvState::for_hypercube(4);
        restored.import_state(&snap);
        assert_eq!(d, restored);
        // Identical traffic after restore produces identical samples.
        let mut s2 = DdsSample::empty();
        d.record_access(1, 2);
        restored.record_access(1, 2);
        d.end_interval_into(1, &mut s);
        restored.end_interval_into(1, &mut s2);
        assert_eq!(s, s2);
    }

    #[test]
    fn tree_reduce_matches_star_sum() {
        let mut x = 0xabcdu64;
        for n in [1usize, 2, 3, 7, 8, 16, 64] {
            for arity in [2usize, 4, 8] {
                let rows: Vec<Vec<u64>> = (0..n)
                    .map(|_| {
                        (0..5)
                            .map(|_| {
                                x = dsm_sim::util::splitmix64(x);
                                x % 1000
                            })
                            .collect()
                    })
                    .collect();
                // Star gather: plain elementwise sum over all ranks.
                let mut star = vec![0u64; 5];
                for row in &rows {
                    for (s, &v) in star.iter_mut().zip(row) {
                        *s += v;
                    }
                }
                let tree = ReductionTree::new(n, arity);
                assert_eq!(tree.reduce(&rows), star, "n = {n}, arity = {arity}");
            }
        }
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        assert_eq!(GatherTopology::Star.depth(64), 1);
        assert_eq!(GatherTopology::Tree { arity: 2 }.depth(64), 6);
        assert_eq!(GatherTopology::Tree { arity: 2 }.depth(128), 7);
        assert_eq!(GatherTopology::Tree { arity: 4 }.depth(64), 3);
        assert_eq!(GatherTopology::Tree { arity: 2 }.depth(1), 0);
        // The concrete tree's critical path matches the accounting model.
        for n in [2usize, 3, 17, 64, 128] {
            for arity in [2usize, 4] {
                let t = ReductionTree::new(n, arity);
                assert_eq!(
                    t.depth(),
                    GatherTopology::Tree { arity }.depth(n),
                    "n = {n}, arity = {arity}"
                );
            }
        }
        assert_eq!(GatherTopology::Star.root_fan_in(64), 63);
        assert_eq!(GatherTopology::Tree { arity: 4 }.root_fan_in(64), 4);
    }

    #[test]
    fn tree_topology_changes_rounds_but_not_values() {
        let mut star = DdvState::for_hypercube(8);
        let mut tree = DdvState::for_hypercube(8);
        tree.set_collection_topology(GatherTopology::Tree { arity: 2 });
        let mut ss = DdsSample::empty();
        let mut ts = DdsSample::empty();
        let mut x = 77u64;
        for step in 0..300 {
            x = dsm_sim::util::splitmix64(x);
            let (p, h) = ((x % 8) as usize, ((x >> 11) % 8) as usize);
            star.record_access(p, h);
            tree.record_access(p, h);
            if step % 29 == 0 {
                let i = ((x >> 22) % 8) as usize;
                star.end_interval_into(i, &mut ss);
                tree.end_interval_into(i, &mut ts);
                assert_eq!(ss, ts, "values identical under both shapes");
            }
        }
        assert_eq!(star.vectors_exchanged(), tree.vectors_exchanged());
        assert_eq!(star.gather_rounds(), star.queries(), "star: 1 round per gather");
        assert_eq!(tree.gather_rounds(), 3 * tree.queries(), "arity-2 over 8 ranks: 3 rounds");
    }

    #[test]
    fn reset_requester_clears_staleness_and_cache() {
        let mut d = DdvState::for_hypercube(2);
        let mut coll = DegradedCollector::new(2);
        let mut sample = DdsSample::empty();
        for _ in 0..8 {
            d.record_access(1, 0);
        }
        coll.end_interval_into(&mut d, 0, &mut sample, |_| true);
        coll.end_interval_into(&mut d, 0, &mut sample, |_| false);
        assert_eq!(coll.staleness(0, 1), 1);
        coll.reset_requester(0);
        assert_eq!(coll.staleness(0, 1), 0);
        let st = coll.end_interval_into(&mut d, 0, &mut sample, |_| false);
        assert_eq!(st, 1);
        assert_eq!(sample.cvec, vec![0, 0], "cache was cleared with the reset");
    }
}
