//! The footprint table: previously observed interval signatures, with LRU
//! replacement (the paper: "a 32-vector footprint table. We use a LRU
//! replacement algorithm").
//!
//! Classification (paper §III-B): entries whose BBV Manhattan distance *and*
//! DDS difference both fall under their thresholds are candidates; among
//! candidates, the smallest Manhattan distance wins. If none qualifies, a
//! new entry is allocated (evicting the LRU entry when full) and a fresh
//! phase id is assigned — so every eviction-and-refill counts as a new
//! phase, exactly as a hardware table would behave.

use serde::{Deserialize, Serialize};

use crate::distance::{manhattan, relative_diff};

/// One stored signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// Normalized BBV at allocation time.
    pub bbv: Vec<f64>,
    /// DDS at allocation time (unused in BBV-only mode).
    pub dds: f64,
    /// Phase identifier assigned when this entry was allocated.
    pub phase_id: u32,
    /// LRU timestamp.
    last_used: u64,
}

/// Result of classifying one interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    /// Phase the interval was assigned to.
    pub phase_id: u32,
    /// True when a new table entry (new phase) was allocated.
    pub is_new: bool,
    /// Manhattan distance to the matched entry (0.0 for a new phase).
    pub distance: f64,
}

/// The footprint table of one processor's detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintTable {
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
    next_phase_id: u32,
    evictions: u64,
}

impl FootprintTable {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            next_phase_id: 0,
            evictions: 0,
        }
    }

    /// Classify an interval signature.
    ///
    /// * `bbv` — the normalized accumulator;
    /// * `dds` — the interval's DDS;
    /// * `bbv_threshold` — Manhattan-distance threshold;
    /// * `dds_threshold` — `Some(t)` in BBV+DDV mode (relative DDS
    ///   difference must be `< t`), `None` in BBV-only mode.
    pub fn classify(&mut self, bbv: &[f64], dds: f64, bbv_threshold: f64, dds_threshold: Option<f64>) -> Match {
        self.clock += 1;
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let d = manhattan(bbv, &e.bbv);
            if d >= bbv_threshold {
                continue;
            }
            if let Some(t) = dds_threshold {
                if relative_diff(dds, e.dds) >= t {
                    continue;
                }
            }
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }

        if let Some((i, d)) = best {
            self.entries[i].last_used = self.clock;
            return Match { phase_id: self.entries[i].phase_id, is_new: false, distance: d };
        }

        // Allocate a new entry (LRU eviction when full).
        let phase_id = self.next_phase_id;
        self.next_phase_id += 1;
        let entry = Entry { bbv: bbv.to_vec(), dds, phase_id, last_used: self.clock };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.entries[lru] = entry;
            self.evictions += 1;
        }
        Match { phase_id, is_new: true, distance: 0.0 }
    }

    /// Number of phase ids ever allocated.
    pub fn phases_allocated(&self) -> u32 {
        self.next_phase_id
    }

    /// Number of LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Currently resident entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clear all entries and phase numbering (multiprogramming: "phase
    /// information associated with threads can be cleared at the expense of
    /// more tuning").
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clock = 0;
        self.next_phase_id = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f64]) -> Vec<f64> {
        vals.to_vec()
    }

    #[test]
    fn first_interval_is_a_new_phase() {
        let mut t = FootprintTable::new(4);
        let m = t.classify(&v(&[1.0, 0.0]), 0.0, 0.5, None);
        assert!(m.is_new);
        assert_eq!(m.phase_id, 0);
    }

    #[test]
    fn similar_interval_matches_same_phase() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[0.5, 0.5]), 0.0, 0.2, None);
        let m = t.classify(&v(&[0.55, 0.45]), 0.0, 0.2, None);
        assert!(!m.is_new);
        assert_eq!(m.phase_id, 0);
        assert!((m.distance - 0.1).abs() < 1e-12);
    }

    #[test]
    fn distant_interval_allocates_new_phase() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[1.0, 0.0]), 0.0, 0.2, None);
        let m = t.classify(&v(&[0.0, 1.0]), 0.0, 0.2, None);
        assert!(m.is_new);
        assert_eq!(m.phase_id, 1);
        assert_eq!(t.phases_allocated(), 2);
    }

    #[test]
    fn smallest_manhattan_wins_among_candidates() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[0.5, 0.5]), 0.0, 2.1, None); // phase 0
        t.classify(&v(&[0.9, 0.1]), 0.0, 0.2, None); // phase 1 (far from 0)
        // Query close to phase 1, but phase 0 is also under the huge threshold.
        let m = t.classify(&v(&[0.88, 0.12]), 0.0, 2.1, None);
        assert_eq!(m.phase_id, 1);
    }

    #[test]
    fn dds_gate_blocks_matches_in_ddv_mode() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[0.5, 0.5]), 100.0, 0.2, Some(0.3));
        // Identical BBV, wildly different DDS: must be a new phase.
        let m = t.classify(&v(&[0.5, 0.5]), 1000.0, 0.2, Some(0.3));
        assert!(m.is_new, "same code, different data distribution => new phase");
        // Identical BBV, close DDS: matches phase 0.
        let m = t.classify(&v(&[0.5, 0.5]), 110.0, 0.2, Some(0.3));
        assert!(!m.is_new);
        assert_eq!(m.phase_id, 0);
    }

    #[test]
    fn bbv_only_mode_ignores_dds() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[0.5, 0.5]), 100.0, 0.2, None);
        let m = t.classify(&v(&[0.5, 0.5]), 1e9, 0.2, None);
        assert!(!m.is_new);
    }

    #[test]
    fn lru_eviction_creates_fresh_phase_ids() {
        let mut t = FootprintTable::new(2);
        // Three mutually distant one-hot signatures with a tight threshold.
        let e0 = v(&[1.0, 0.0, 0.0]);
        let e1 = v(&[0.0, 1.0, 0.0]);
        let e2 = v(&[0.0, 0.0, 1.0]);
        t.classify(&e0, 0.0, 0.1, None); // phase 0
        t.classify(&e1, 0.0, 0.1, None); // phase 1
        t.classify(&e2, 0.0, 0.1, None); // phase 2, evicts e0 (LRU)
        assert_eq!(t.evictions(), 1);
        // e0 again: it was evicted, so this is phase 3, evicting e1.
        let m = t.classify(&e0, 0.0, 0.1, None);
        assert!(m.is_new);
        assert_eq!(m.phase_id, 3);
        // e2 is still resident.
        let m = t.classify(&e2, 0.0, 0.1, None);
        assert!(!m.is_new);
        assert_eq!(m.phase_id, 2);
    }

    #[test]
    fn matching_refreshes_lru() {
        let mut t = FootprintTable::new(2);
        let e0 = v(&[1.0, 0.0, 0.0]);
        let e1 = v(&[0.0, 1.0, 0.0]);
        let e2 = v(&[0.0, 0.0, 1.0]);
        t.classify(&e0, 0.0, 0.1, None);
        t.classify(&e1, 0.0, 0.1, None);
        t.classify(&e0, 0.0, 0.1, None); // refresh e0
        t.classify(&e2, 0.0, 0.1, None); // must evict e1, not e0
        let m = t.classify(&e0, 0.0, 0.1, None);
        assert!(!m.is_new, "e0 was refreshed and must survive");
    }

    #[test]
    fn zero_threshold_makes_every_interval_unique() {
        let mut t = FootprintTable::new(32);
        let x = v(&[0.5, 0.5]);
        for _ in 0..5 {
            let m = t.classify(&x, 0.0, 0.0, None);
            assert!(m.is_new, "threshold 0 matches nothing (distance >= 0)");
        }
        assert_eq!(t.phases_allocated(), 5);
    }

    #[test]
    fn huge_threshold_collapses_to_one_phase() {
        let mut t = FootprintTable::new(32);
        for i in 0..20 {
            let x = v(&[i as f64 / 20.0, 1.0 - i as f64 / 20.0]);
            t.classify(&x, 0.0, 2.1, None);
        }
        assert_eq!(t.phases_allocated(), 1);
    }

    #[test]
    fn clear_resets_numbering() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[1.0]), 0.0, 0.1, None);
        t.clear();
        assert_eq!(t.phases_allocated(), 0);
        assert!(t.entries().is_empty());
        let m = t.classify(&v(&[1.0]), 0.0, 0.1, None);
        assert_eq!(m.phase_id, 0);
    }
}
