//! The footprint table: previously observed interval signatures, with LRU
//! replacement (the paper: "a 32-vector footprint table. We use a LRU
//! replacement algorithm").
//!
//! Classification (paper §III-B): entries whose BBV Manhattan distance *and*
//! DDS difference both fall under their thresholds are candidates; among
//! candidates, the smallest Manhattan distance wins. If none qualifies, a
//! new entry is allocated (evicting the LRU entry when full) and a fresh
//! phase id is assigned — so every eviction-and-refill counts as a new
//! phase, exactly as a hardware table would behave.

use serde::{Deserialize, Serialize};

use crate::distance::{manhattan_concat, relative_diff};

/// One stored signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Entry {
    /// Normalized BBV at allocation time. Boxed slice: entry signatures
    /// never grow, and the fixed-size buffer is reused across LRU evictions.
    pub bbv: Box<[f64]>,
    /// DDS at allocation time (unused in BBV-only mode).
    pub dds: f64,
    /// Phase identifier assigned when this entry was allocated.
    pub phase_id: u32,
    /// LRU timestamp.
    last_used: u64,
}

impl Entry {
    /// Overwrite with `src`, reusing the signature buffer when lengths match.
    fn copy_from(&mut self, src: &Self) {
        if self.bbv.len() == src.bbv.len() {
            self.bbv.copy_from_slice(&src.bbv);
        } else {
            self.bbv = src.bbv.clone();
        }
        self.dds = src.dds;
        self.phase_id = src.phase_id;
        self.last_used = src.last_used;
    }
}

/// Result of classifying one interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Match {
    /// Phase the interval was assigned to.
    pub phase_id: u32,
    /// True when a new table entry (new phase) was allocated.
    pub is_new: bool,
    /// Manhattan distance to the matched entry (0.0 for a new phase).
    pub distance: f64,
}

/// The footprint table of one processor's detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintTable {
    entries: Vec<Entry>,
    capacity: usize,
    clock: u64,
    next_phase_id: u32,
    evictions: u64,
}

impl FootprintTable {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            next_phase_id: 0,
            evictions: 0,
        }
    }

    /// Classify an interval signature.
    ///
    /// * `bbv` — the normalized accumulator;
    /// * `dds` — the interval's DDS;
    /// * `bbv_threshold` — Manhattan-distance threshold;
    /// * `dds_threshold` — `Some(t)` in BBV+DDV mode (relative DDS
    ///   difference must be `< t`), `None` in BBV-only mode.
    pub fn classify(&mut self, bbv: &[f64], dds: f64, bbv_threshold: f64, dds_threshold: Option<f64>) -> Match {
        self.classify_split(bbv, &[], dds, bbv_threshold, dds_threshold)
    }

    /// [`Self::classify`] over a signature supplied as two segments whose
    /// logical value is the concatenation `head ++ tail`. The concatenated
    /// classifier (BBV head, distance-weighted DDV tail) uses this to avoid
    /// copying the BBV into a combined vector every interval; distances are
    /// computed by one fused pass per entry ([`manhattan_concat`]), so the
    /// result is bit-identical to classifying the materialized concatenation.
    pub fn classify_split(
        &mut self,
        head: &[f64],
        tail: &[f64],
        dds: f64,
        bbv_threshold: f64,
        dds_threshold: Option<f64>,
    ) -> Match {
        self.clock += 1;
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let d = manhattan_concat(head, tail, &e.bbv);
            if d >= bbv_threshold {
                continue;
            }
            if let Some(t) = dds_threshold {
                if relative_diff(dds, e.dds) >= t {
                    continue;
                }
            }
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }

        if let Some((i, d)) = best {
            self.entries[i].last_used = self.clock;
            return Match { phase_id: self.entries[i].phase_id, is_new: false, distance: d };
        }

        // Allocate a new entry (LRU eviction when full).
        let phase_id = self.next_phase_id;
        self.next_phase_id += 1;
        self.alloc_entry(head, tail, dds, phase_id);
        Match { phase_id, is_new: true, distance: 0.0 }
    }

    /// Store `head ++ tail` as a new entry. Below capacity this allocates
    /// (bounded by table size, not by interval count); once the table is
    /// full, the evicted entry's buffer is reused when the signature length
    /// is unchanged — the steady-state case — so long runs allocate nothing.
    fn alloc_entry(&mut self, head: &[f64], tail: &[f64], dds: f64, phase_id: u32) {
        let concat = |head: &[f64], tail: &[f64]| {
            let mut sig = Vec::with_capacity(head.len() + tail.len());
            sig.extend_from_slice(head);
            sig.extend_from_slice(tail);
            sig.into_boxed_slice()
        };
        if self.entries.len() < self.capacity {
            self.entries.push(Entry {
                bbv: concat(head, tail),
                dds,
                phase_id,
                last_used: self.clock,
            });
            return;
        }
        let lru = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
            .expect("capacity > 0");
        self.evictions += 1;
        let e = &mut self.entries[lru];
        e.dds = dds;
        e.phase_id = phase_id;
        e.last_used = self.clock;
        if e.bbv.len() == head.len() + tail.len() {
            e.bbv[..head.len()].copy_from_slice(head);
            e.bbv[head.len()..].copy_from_slice(tail);
        } else {
            e.bbv = concat(head, tail);
        }
    }

    /// Number of phase ids ever allocated.
    pub fn phases_allocated(&self) -> u32 {
        self.next_phase_id
    }

    /// Number of LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Currently resident entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Overwrite this table with `other`, reusing resident entry buffers
    /// where possible, so repeated context save/restore cycles stop
    /// allocating once buffers reach their steady-state sizes.
    pub fn copy_from(&mut self, other: &Self) {
        self.capacity = other.capacity;
        self.clock = other.clock;
        self.next_phase_id = other.next_phase_id;
        self.evictions = other.evictions;
        let keep = self.entries.len().min(other.entries.len());
        self.entries.truncate(other.entries.len());
        for (dst, src) in self.entries.iter_mut().zip(&other.entries[..keep]) {
            dst.copy_from(src);
        }
        self.entries.extend(other.entries[keep..].iter().cloned());
    }

    /// Clear all entries and phase numbering (multiprogramming: "phase
    /// information associated with threads can be cleared at the expense of
    /// more tuning").
    pub fn clear(&mut self) {
        self.entries.clear();
        self.clock = 0;
        self.next_phase_id = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[f64]) -> Vec<f64> {
        vals.to_vec()
    }

    #[test]
    fn first_interval_is_a_new_phase() {
        let mut t = FootprintTable::new(4);
        let m = t.classify(&v(&[1.0, 0.0]), 0.0, 0.5, None);
        assert!(m.is_new);
        assert_eq!(m.phase_id, 0);
    }

    #[test]
    fn similar_interval_matches_same_phase() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[0.5, 0.5]), 0.0, 0.2, None);
        let m = t.classify(&v(&[0.55, 0.45]), 0.0, 0.2, None);
        assert!(!m.is_new);
        assert_eq!(m.phase_id, 0);
        assert!((m.distance - 0.1).abs() < 1e-12);
    }

    #[test]
    fn distant_interval_allocates_new_phase() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[1.0, 0.0]), 0.0, 0.2, None);
        let m = t.classify(&v(&[0.0, 1.0]), 0.0, 0.2, None);
        assert!(m.is_new);
        assert_eq!(m.phase_id, 1);
        assert_eq!(t.phases_allocated(), 2);
    }

    #[test]
    fn smallest_manhattan_wins_among_candidates() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[0.5, 0.5]), 0.0, 2.1, None); // phase 0
        t.classify(&v(&[0.9, 0.1]), 0.0, 0.2, None); // phase 1 (far from 0)
        // Query close to phase 1, but phase 0 is also under the huge threshold.
        let m = t.classify(&v(&[0.88, 0.12]), 0.0, 2.1, None);
        assert_eq!(m.phase_id, 1);
    }

    #[test]
    fn dds_gate_blocks_matches_in_ddv_mode() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[0.5, 0.5]), 100.0, 0.2, Some(0.3));
        // Identical BBV, wildly different DDS: must be a new phase.
        let m = t.classify(&v(&[0.5, 0.5]), 1000.0, 0.2, Some(0.3));
        assert!(m.is_new, "same code, different data distribution => new phase");
        // Identical BBV, close DDS: matches phase 0.
        let m = t.classify(&v(&[0.5, 0.5]), 110.0, 0.2, Some(0.3));
        assert!(!m.is_new);
        assert_eq!(m.phase_id, 0);
    }

    #[test]
    fn bbv_only_mode_ignores_dds() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[0.5, 0.5]), 100.0, 0.2, None);
        let m = t.classify(&v(&[0.5, 0.5]), 1e9, 0.2, None);
        assert!(!m.is_new);
    }

    #[test]
    fn lru_eviction_creates_fresh_phase_ids() {
        let mut t = FootprintTable::new(2);
        // Three mutually distant one-hot signatures with a tight threshold.
        let e0 = v(&[1.0, 0.0, 0.0]);
        let e1 = v(&[0.0, 1.0, 0.0]);
        let e2 = v(&[0.0, 0.0, 1.0]);
        t.classify(&e0, 0.0, 0.1, None); // phase 0
        t.classify(&e1, 0.0, 0.1, None); // phase 1
        t.classify(&e2, 0.0, 0.1, None); // phase 2, evicts e0 (LRU)
        assert_eq!(t.evictions(), 1);
        // e0 again: it was evicted, so this is phase 3, evicting e1.
        let m = t.classify(&e0, 0.0, 0.1, None);
        assert!(m.is_new);
        assert_eq!(m.phase_id, 3);
        // e2 is still resident.
        let m = t.classify(&e2, 0.0, 0.1, None);
        assert!(!m.is_new);
        assert_eq!(m.phase_id, 2);
    }

    #[test]
    fn matching_refreshes_lru() {
        let mut t = FootprintTable::new(2);
        let e0 = v(&[1.0, 0.0, 0.0]);
        let e1 = v(&[0.0, 1.0, 0.0]);
        let e2 = v(&[0.0, 0.0, 1.0]);
        t.classify(&e0, 0.0, 0.1, None);
        t.classify(&e1, 0.0, 0.1, None);
        t.classify(&e0, 0.0, 0.1, None); // refresh e0
        t.classify(&e2, 0.0, 0.1, None); // must evict e1, not e0
        let m = t.classify(&e0, 0.0, 0.1, None);
        assert!(!m.is_new, "e0 was refreshed and must survive");
    }

    #[test]
    fn zero_threshold_makes_every_interval_unique() {
        let mut t = FootprintTable::new(32);
        let x = v(&[0.5, 0.5]);
        for _ in 0..5 {
            let m = t.classify(&x, 0.0, 0.0, None);
            assert!(m.is_new, "threshold 0 matches nothing (distance >= 0)");
        }
        assert_eq!(t.phases_allocated(), 5);
    }

    #[test]
    fn huge_threshold_collapses_to_one_phase() {
        let mut t = FootprintTable::new(32);
        for i in 0..20 {
            let x = v(&[i as f64 / 20.0, 1.0 - i as f64 / 20.0]);
            t.classify(&x, 0.0, 2.1, None);
        }
        assert_eq!(t.phases_allocated(), 1);
    }

    #[test]
    fn classify_split_matches_concatenated_classify() {
        let mut whole = FootprintTable::new(2);
        let mut split = FootprintTable::new(2);
        let cases: &[(&[f64], &[f64], f64)] = &[
            (&[0.5, 0.5], &[10.0, 0.0], 100.0),
            (&[0.1, 0.9], &[0.0, 12.5], 900.0),
            (&[0.5, 0.5], &[10.0, 0.0], 105.0),
            (&[0.9, 0.1], &[3.0, 3.0], 50.0), // third signature: forces an eviction
            (&[0.5, 0.5], &[10.0, 0.0], 100.0),
        ];
        for &(head, tail, dds) in cases {
            let mut cat = head.to_vec();
            cat.extend_from_slice(tail);
            let a = whole.classify(&cat, dds, 0.4, Some(0.3));
            let b = split.classify_split(head, tail, dds, 0.4, Some(0.3));
            assert_eq!(a, b, "split classification diverged on {cat:?}");
        }
        assert_eq!(whole.entries(), split.entries());
        assert_eq!(whole.evictions(), split.evictions());
    }

    #[test]
    fn clear_resets_numbering() {
        let mut t = FootprintTable::new(4);
        t.classify(&v(&[1.0]), 0.0, 0.1, None);
        t.clear();
        assert_eq!(t.phases_allocated(), 0);
        assert!(t.entries().is_empty());
        let m = t.classify(&v(&[1.0]), 0.0, 0.1, None);
        assert_eq!(m.phase_id, 0);
    }
}
