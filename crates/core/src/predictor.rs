//! Phase predictors — the paper's stated future-work direction
//! ("combining the insights derived from our study with appropriate phase
//! prediction mechanisms").
//!
//! Two classic designs are provided:
//!
//! * [`LastPhasePredictor`] — predicts the next interval repeats the current
//!   phase (surprisingly strong because phases are runs).
//! * [`RlePredictor`] — Sherwood et al.'s run-length-encoding Markov
//!   predictor: indexed by (current phase, current run length), learns what
//!   phase follows a run of a given length.

use serde::{Deserialize, Serialize};

use dsm_sim::util::FxHashMap;

/// A phase predictor consumes the classified phase stream one interval at a
/// time and predicts the next interval's phase.
pub trait PhasePredictor {
    /// Predict the phase of the *next* interval given history so far.
    fn predict(&self) -> Option<u32>;
    /// Observe the phase of the interval that actually occurred.
    fn observe(&mut self, phase: u32);
    /// Accuracy bookkeeping: predictions made and correct.
    fn stats(&self) -> (u64, u64);
}

/// Measure a predictor's accuracy over a classified phase stream.
pub fn accuracy_over(predictor: &mut dyn PhasePredictor, phases: &[u32]) -> f64 {
    for &p in phases {
        predictor.observe(p);
    }
    let (made, correct) = predictor.stats();
    if made == 0 {
        0.0
    } else {
        correct as f64 / made as f64
    }
}

/// Predicts the last observed phase continues.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LastPhasePredictor {
    last: Option<u32>,
    made: u64,
    correct: u64,
}

impl LastPhasePredictor {
    pub fn new() -> Self {
        Self::default()
    }
}

impl PhasePredictor for LastPhasePredictor {
    fn predict(&self) -> Option<u32> {
        self.last
    }

    fn observe(&mut self, phase: u32) {
        if let Some(pred) = self.last {
            self.made += 1;
            if pred == phase {
                self.correct += 1;
            }
        }
        self.last = Some(phase);
    }

    fn stats(&self) -> (u64, u64) {
        (self.made, self.correct)
    }
}

/// Run-length-encoding Markov predictor (Sherwood et al., "Phase Tracking
/// and Prediction"): a table keyed by (phase id, run length) records the
/// phase that followed last time. Falls back to last-phase when the key has
/// not been seen.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlePredictor {
    #[serde(skip)]
    table: FxHashMap<(u32, u32), u32>,
    current: Option<u32>,
    run_len: u32,
    max_run_key: u32,
    made: u64,
    correct: u64,
}

impl RlePredictor {
    /// `max_run_key` caps the run length used in the table key (hardware
    /// would use a few bits; 64 is generous).
    pub fn new(max_run_key: u32) -> Self {
        assert!(max_run_key > 0);
        Self {
            table: FxHashMap::default(),
            current: None,
            run_len: 0,
            max_run_key,
            made: 0,
            correct: 0,
        }
    }

    fn key(&self) -> Option<(u32, u32)> {
        self.current.map(|p| (p, self.run_len.min(self.max_run_key)))
    }
}

impl PhasePredictor for RlePredictor {
    fn predict(&self) -> Option<u32> {
        let key = self.key()?;
        Some(*self.table.get(&key).unwrap_or(&key.0))
    }

    fn observe(&mut self, phase: u32) {
        if let Some(pred) = self.predict() {
            self.made += 1;
            if pred == phase {
                self.correct += 1;
            }
        }
        if let Some(key) = self.key() {
            // Learn what followed this (phase, run-length) state.
            self.table.insert(key, phase);
        }
        match self.current {
            Some(p) if p == phase => self.run_len += 1,
            _ => {
                self.current = Some(phase);
                self.run_len = 1;
            }
        }
    }

    fn stats(&self) -> (u64, u64) {
        (self.made, self.correct)
    }
}

/// Second-order Markov predictor: the table is keyed by the last two phase
/// ids, capturing transition patterns the run-length key misses (e.g.
/// non-periodic phase grammars like A,B,A,C,A,B,...). Falls back to
/// last-phase when untrained.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Markov2Predictor {
    #[serde(skip)]
    table: FxHashMap<(u32, u32), u32>,
    prev: Option<u32>,
    current: Option<u32>,
    made: u64,
    correct: u64,
}

impl Markov2Predictor {
    pub fn new() -> Self {
        Self { table: FxHashMap::default(), prev: None, current: None, made: 0, correct: 0 }
    }
}

impl Default for Markov2Predictor {
    fn default() -> Self {
        Self::new()
    }
}

impl PhasePredictor for Markov2Predictor {
    fn predict(&self) -> Option<u32> {
        let cur = self.current?;
        match self.prev {
            Some(prev) => Some(*self.table.get(&(prev, cur)).unwrap_or(&cur)),
            None => Some(cur),
        }
    }

    fn observe(&mut self, phase: u32) {
        if let Some(pred) = self.predict() {
            self.made += 1;
            if pred == phase {
                self.correct += 1;
            }
        }
        if let (Some(prev), Some(cur)) = (self.prev, self.current) {
            self.table.insert((prev, cur), phase);
        }
        self.prev = self.current;
        self.current = Some(phase);
    }

    fn stats(&self) -> (u64, u64) {
        (self.made, self.correct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_phase_is_perfect_on_constant_stream() {
        let mut p = LastPhasePredictor::new();
        let acc = accuracy_over(&mut p, &[1; 100]);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn last_phase_misses_every_transition() {
        let mut p = LastPhasePredictor::new();
        // Alternating stream: last-phase is always wrong.
        let stream: Vec<u32> = (0..100).map(|i| i % 2).collect();
        let acc = accuracy_over(&mut p, &stream);
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn rle_learns_periodic_pattern() {
        // Pattern: 5 of phase A, 3 of phase B, repeated. After one period
        // the RLE predictor knows that a run of 5 As is followed by B and a
        // run of 3 Bs by A; last-phase keeps missing transitions.
        let mut stream = Vec::new();
        for _ in 0..20 {
            stream.extend_from_slice(&[0, 0, 0, 0, 0, 1, 1, 1]);
        }
        let mut rle = RlePredictor::new(64);
        let rle_acc = accuracy_over(&mut rle, &stream);
        let mut last = LastPhasePredictor::new();
        let last_acc = accuracy_over(&mut last, &stream);
        assert!(
            rle_acc > last_acc,
            "RLE {rle_acc} must beat last-phase {last_acc} on periodic input"
        );
        assert!(rle_acc > 0.95, "RLE should be near-perfect, got {rle_acc}");
    }

    #[test]
    fn rle_falls_back_to_last_phase_when_untrained() {
        let mut p = RlePredictor::new(8);
        p.observe(3);
        assert_eq!(p.predict(), Some(3));
    }

    #[test]
    fn empty_stream_has_zero_accuracy() {
        let mut p = LastPhasePredictor::new();
        assert_eq!(accuracy_over(&mut p, &[]), 0.0);
        let mut r = RlePredictor::new(8);
        assert_eq!(accuracy_over(&mut r, &[]), 0.0);
    }

    #[test]
    fn run_length_caps_at_max_key() {
        let mut p = RlePredictor::new(2);
        for _ in 0..10 {
            p.observe(1);
        }
        // Does not panic and still predicts the run continues.
        assert_eq!(p.predict(), Some(1));
    }

    #[test]
    fn markov2_learns_pair_grammar() {
        // A,B,A,C repeated: the successor depends on the *pair* of
        // preceding phases (B,A -> C but C,A -> B), which first-order
        // last-phase prediction cannot learn.
        let mut stream = Vec::new();
        for _ in 0..30 {
            stream.extend_from_slice(&[0u32, 1, 0, 2]);
        }
        let mut m2 = Markov2Predictor::new();
        let m2_acc = accuracy_over(&mut m2, &stream);
        let mut last = LastPhasePredictor::new();
        let last_acc = accuracy_over(&mut last, &stream);
        assert!(
            m2_acc > 0.9,
            "second-order Markov must learn the pair grammar, got {m2_acc}"
        );
        assert!(m2_acc > last_acc);
    }

    #[test]
    fn markov2_untrained_falls_back_to_last() {
        let mut p = Markov2Predictor::new();
        assert_eq!(p.predict(), None);
        p.observe(5);
        assert_eq!(p.predict(), Some(5));
    }
}
