//! Sharded trace collection: the serial coordinator stages observer events
//! and host worker threads drain them in parallel.
//!
//! Profiling a 64P capture shows 70–95% of wall time inside the observer —
//! almost all of it in the end-of-interval work (BBV normalization, row
//! drains, record assembly), not in the simulator proper. The event loop
//! itself must stay serial to keep the global `(cycle, id)` execution order
//! bit-exact, so this module parallelizes the other side of the boundary:
//!
//! * **Coordinator (serial, on the simulation thread).** Every observer
//!   callback is staged as a compact [`Op`] in a per-processor queue. The
//!   only work done inline is the part that needs *global* order: the O(n)
//!   DDV aggregate (`G[home] += 1` per memory commit) and, at interval end,
//!   the contention-vector gather `C = G - S_i` ([`DdvState`]'s fast path),
//!   whose result rides inside the staged interval op.
//! * **Workers (parallel, at drain points).** Everything left is
//!   per-processor-disjoint: BBV/working-set/branch accumulation, the
//!   node's own frequency matrix, the `F_i` row drain, the DDS fold, and
//!   record assembly. Workers claim whole processors from a shared queue
//!   (work stealing — a claim outside a worker's nominal range counts as a
//!   steal) and never touch another processor's state, so the result is
//!   bit-identical to the serial [`TraceCollector`] regardless of thread
//!   count or interleaving.
//!
//! Drains happen at conservative window boundaries
//! ([`SimObserver::on_window_close`]) once enough ops are staged, and
//! unconditionally before any state export — checkpoints therefore see
//! exactly the serial collector's state.

use dsm_sim::observer::{IntervalStats, SimObserver};

use crate::bbv::BbvAccumulator;
use crate::ddv::DdvState;
use crate::detector::{CollectorState, DetectorGeometry, IntervalRecord, TraceCollector};
use crate::working_set::WsSignature;

/// One staged observer event. `Block`/`Mem` are the per-event hot path and
/// stay pointer-free; `Interval` carries the coordinator-gathered `C`.
#[derive(Debug, Clone)]
enum Op {
    Block { bb: u32, insns: u32 },
    Mem { home: usize },
    Interval { stats: IntervalStats, cvec: Vec<u64> },
}

/// Counters describing the parallel drains (telemetry only — they do not
/// affect any captured value).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainCounters {
    /// Parallel drains executed.
    pub drains: u64,
    /// Processor queues processed across all drains.
    pub proc_queues: u64,
    /// Queues claimed by a worker outside its nominal range (work steals).
    pub steals: u64,
    /// Total ops staged over the collector's lifetime.
    pub ops_staged: u64,
}

/// A [`TraceCollector`] whose per-event work runs on host worker threads.
///
/// Implements [`SimObserver`] exactly like [`TraceCollector`] and produces
/// bit-identical state; [`ShardedCollector::into_inner`] (or
/// [`ShardedCollector::export_state`]) drains outstanding work and yields
/// it.
pub struct ShardedCollector {
    inner: TraceCollector,
    threads: usize,
    /// Staged ops per processor since the last drain.
    staged: Vec<Vec<Op>>,
    outstanding: usize,
    /// Drain at a window boundary once this many ops are staged.
    drain_budget: usize,
    counters: DrainCounters,
}

impl ShardedCollector {
    /// Ops staged before a window-boundary drain triggers. Large enough to
    /// amortize thread wake-up, small enough to bound staging memory.
    pub const DEFAULT_DRAIN_BUDGET: usize = 1 << 15;

    /// Wrap `inner`, draining with `threads` workers (clamped to ≥ 1).
    pub fn new(inner: TraceCollector, threads: usize) -> Self {
        let n = inner.records.len();
        Self {
            inner,
            threads: threads.max(1),
            staged: vec![Vec::new(); n],
            outstanding: 0,
            drain_budget: Self::DEFAULT_DRAIN_BUDGET,
            counters: DrainCounters::default(),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn counters(&self) -> DrainCounters {
        self.counters
    }

    /// Ops currently staged and not yet drained.
    pub fn outstanding_ops(&self) -> usize {
        self.outstanding
    }

    /// Publish the drain counters into a metrics registry, alongside the
    /// simulator's `sim/shard/*` window counters (the scale sweep and the
    /// harness exporters read both).
    pub fn publish_metrics(&self, prefix: &str, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.counter_add(&format!("{prefix}/drains"), self.counters.drains);
        reg.counter_add(&format!("{prefix}/proc_queues"), self.counters.proc_queues);
        reg.counter_add(&format!("{prefix}/steals"), self.counters.steals);
        reg.counter_add(&format!("{prefix}/ops_staged"), self.counters.ops_staged);
        reg.counter_add(&format!("{prefix}/worker_threads"), self.threads as u64);
    }

    pub fn set_drain_budget(&mut self, ops: usize) {
        self.drain_budget = ops.max(1);
    }

    pub fn geometry(&self) -> DetectorGeometry {
        self.inner.geometry
    }

    /// Drain staged work and expose the (now fully caught-up) collector.
    pub fn collector(&mut self) -> &TraceCollector {
        self.drain();
        &self.inner
    }

    /// Drain staged work and take the collector.
    pub fn into_inner(mut self) -> TraceCollector {
        self.drain();
        self.inner
    }

    /// Drain staged work, then export — identical bytes to the serial
    /// collector's export after the same event sequence.
    pub fn export_state(&mut self) -> CollectorState {
        self.drain();
        self.inner.export_state()
    }

    /// Restore serial-collector state; any staged-but-undrained ops are
    /// dropped (they are part of neither the snapshot nor the resumed run).
    pub fn import_state(&mut self, st: &CollectorState) {
        for q in &mut self.staged {
            q.clear();
        }
        self.outstanding = 0;
        self.inner.import_state(st);
    }

    /// Process every staged queue, in parallel when `threads > 1`.
    pub fn drain(&mut self) {
        if self.outstanding == 0 {
            return;
        }
        self.counters.drains += 1;
        let n = self.staged.len();
        let threads = self.threads.min(n);
        let (mats, dist) = self.inner.ddv.mats_and_dist();
        // Per-processor work units: disjoint &mut into the collector's
        // parallel arrays, claimed whole by workers.
        struct Unit<'a> {
            proc: usize,
            ops: &'a mut Vec<Op>,
            bbv: &'a mut BbvAccumulator,
            ws: &'a mut WsSignature,
            branches: &'a mut u64,
            mat: &'a mut crate::ddv::FrequencyMatrix,
            records: &'a mut Vec<IntervalRecord>,
            dist_row: &'a [f64],
        }
        let mut units: Vec<Option<Unit>> = self
            .staged
            .iter_mut()
            .zip(self.inner.bbv.iter_mut())
            .zip(self.inner.ws.iter_mut())
            .zip(self.inner.branches.iter_mut())
            .zip(mats.iter_mut())
            .zip(self.inner.records.iter_mut())
            .enumerate()
            .map(|(proc, (((((ops, bbv), ws), branches), mat), records))| {
                Some(Unit {
                    proc,
                    ops,
                    bbv,
                    ws,
                    branches,
                    mat,
                    records,
                    dist_row: &dist[proc * n..(proc + 1) * n],
                })
            })
            .collect();

        fn run_unit(u: &mut Unit, n: usize) {
            for op in u.ops.drain(..) {
                match op {
                    Op::Block { bb, insns } => {
                        u.bbv.record(bb, insns);
                        u.ws.insert(bb);
                        *u.branches += 1;
                    }
                    Op::Mem { home } => u.mat.record(home),
                    Op::Interval { stats, cvec } => {
                        let mut fvec = vec![0u64; n];
                        u.mat.drain_row_into(u.proc, &mut fvec);
                        let dds = DdvState::dds_of(&fvec, u.dist_row, &cvec);
                        u.records.push(IntervalRecord {
                            proc: u.proc,
                            index: stats.index,
                            insns: stats.insns,
                            cycles: stats.cycles,
                            bbv: u.bbv.normalized(),
                            fvec,
                            cvec,
                            dds,
                            ws_sig: u.ws.words().to_vec(),
                            branches: *u.branches,
                        });
                        u.bbv.reset();
                        u.ws.clear();
                        *u.branches = 0;
                    }
                }
            }
        }

        let mut queues = 0u64;
        let mut steals = 0u64;
        if threads <= 1 {
            for u in units.iter_mut().flatten() {
                queues += 1;
                run_unit(u, n);
            }
        } else {
            use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
            use std::sync::Mutex;
            let pool: Vec<Mutex<Option<Unit>>> = units.into_iter().map(Mutex::new).collect();
            let next = AtomicUsize::new(0);
            let stolen = AtomicU64::new(0);
            std::thread::scope(|s| {
                for tid in 0..threads {
                    let pool = &pool;
                    let next = &next;
                    let stolen = &stolen;
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= pool.len() {
                            break;
                        }
                        // Nominal owner: the worker this processor would
                        // land on under a static balanced split. Claiming
                        // someone else's processor is a steal.
                        if i * threads / pool.len() != tid {
                            stolen.fetch_add(1, Ordering::Relaxed);
                        }
                        let mut u = pool[i].lock().unwrap().take().expect("unit claimed twice");
                        run_unit(&mut u, pool.len());
                    });
                }
            });
            queues = pool.len() as u64;
            steals = stolen.into_inner();
            units = Vec::new();
        }
        let _ = units;
        self.counters.proc_queues += queues;
        self.counters.steals += steals;
        self.outstanding = 0;
    }

    #[inline]
    fn stage(&mut self, proc: usize, op: Op) {
        self.staged[proc].push(op);
        self.outstanding += 1;
        self.counters.ops_staged += 1;
    }
}

impl SimObserver for ShardedCollector {
    #[inline]
    fn on_block_commit(&mut self, proc: usize, bb: u32, insns: u32) {
        // With no workers, staging buys nothing — forward inline (the
        // serial collector's exact code path).
        if self.threads <= 1 {
            self.inner.on_block_commit(proc, bb, insns);
            return;
        }
        self.stage(proc, Op::Block { bb, insns });
    }

    #[inline]
    fn on_mem_commit(&mut self, proc: usize, home: usize, addr: u64, write: bool) {
        if self.threads <= 1 {
            self.inner.on_mem_commit(proc, home, addr, write);
            return;
        }
        // Global order matters only for the aggregate; the per-node matrix
        // bump is deferred to the owning worker.
        self.inner.ddv.record_home_global(home);
        self.stage(proc, Op::Mem { home });
    }

    fn on_interval(&mut self, proc: usize, stats: IntervalStats) {
        if self.threads <= 1 {
            self.inner.on_interval(proc, stats);
            return;
        }
        // The gather reads `G` (all processors' commits so far, in exact
        // observer order), so it must run on the coordinator, here.
        let mut cvec = Vec::new();
        self.inner.ddv.gather_cvec_into(proc, &mut cvec);
        self.stage(proc, Op::Interval { stats, cvec });
    }

    fn on_window_close(&mut self, _window: u64, _next_horizon: u64) {
        if self.outstanding >= self.drain_budget {
            self.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(n: usize) -> Vec<f64> {
        (0..n * n)
            .map(|k| if k / n == k % n { 1.0 } else { 1.0 + (((k / n) ^ (k % n)) as u64).count_ones() as f64 })
            .collect()
    }

    /// Feed both collectors an identical pseudo-random event sequence with
    /// interleaved window closes; their exported state must match exactly.
    fn drive_both(n: usize, threads: usize, budget: usize, steps: u64) {
        let g = DetectorGeometry::default();
        let mut serial = TraceCollector::new(n, dist(n), g);
        let mut sharded = ShardedCollector::new(TraceCollector::new(n, dist(n), g), threads);
        sharded.set_drain_budget(budget);
        let mut x = 0x5eed_0000 + n as u64 * 31 + threads as u64;
        let mut intervals = vec![0u64; n];
        for step in 0..steps {
            x = dsm_sim::util::splitmix64(x);
            let p = (x % n as u64) as usize;
            match (x >> 8) % 10 {
                0..=3 => {
                    let (bb, insns) = (((x >> 16) % 97) as u32, ((x >> 24) % 30 + 1) as u32);
                    serial.on_block_commit(p, bb, insns);
                    sharded.on_block_commit(p, bb, insns);
                }
                4..=8 => {
                    let home = ((x >> 16) % n as u64) as usize;
                    serial.on_mem_commit(p, home, 0x40 * home as u64, x & 1 == 0);
                    sharded.on_mem_commit(p, home, 0x40 * home as u64, x & 1 == 0);
                }
                _ => {
                    let st = IntervalStats {
                        index: intervals[p],
                        insns: (x >> 16) % 5000 + 1,
                        cycles: (x >> 16) % 5000 + 500,
                    };
                    intervals[p] += 1;
                    serial.on_interval(p, st);
                    sharded.on_interval(p, st);
                }
            }
            if step % 23 == 0 {
                serial.on_window_close(step / 23, step);
                sharded.on_window_close(step / 23, step);
            }
        }
        assert_eq!(
            sharded.export_state(),
            serial.export_state(),
            "n = {n}, threads = {threads}, budget = {budget}"
        );
        assert!(sharded.counters().drains > 0 || sharded.counters().ops_staged == 0);
    }

    #[test]
    fn sharded_collector_matches_serial_across_thread_counts() {
        for n in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 4, 9] {
                drive_both(n, threads, 64, 1200);
            }
        }
    }

    #[test]
    fn sharded_collector_matches_serial_with_tiny_and_huge_budgets() {
        drive_both(4, 3, 1, 800); // drain at every window close
        drive_both(4, 3, usize::MAX, 800); // only the final export drains
    }

    #[test]
    fn into_inner_drains_outstanding_work() {
        let g = DetectorGeometry::default();
        let mut sharded = ShardedCollector::new(TraceCollector::new(2, dist(2), g), 2);
        sharded.on_block_commit(0, 3, 10);
        sharded.on_mem_commit(0, 1, 0x40, false);
        sharded.on_interval(0, IntervalStats { index: 0, insns: 10, cycles: 20 });
        assert_eq!(sharded.outstanding_ops(), 3);
        let inner = sharded.into_inner();
        assert_eq!(inner.records[0].len(), 1);
        assert_eq!(inner.records[0][0].fvec, vec![0, 1]);
    }

    #[test]
    fn import_state_discards_staged_ops() {
        let g = DetectorGeometry::default();
        let mut a = ShardedCollector::new(TraceCollector::new(2, dist(2), g), 2);
        a.on_block_commit(0, 3, 10);
        a.on_interval(0, IntervalStats { index: 0, insns: 10, cycles: 20 });
        let snap = a.export_state();
        a.on_block_commit(1, 9, 5); // staged after the snapshot
        a.import_state(&snap);
        assert_eq!(a.outstanding_ops(), 0);
        assert_eq!(a.export_state(), snap);
    }

    #[test]
    fn steals_are_counted_when_threads_outnumber_late_queues() {
        // With 2 threads and 8 processors, any claim off a worker's nominal
        // half is a steal; totals stay exact regardless.
        let g = DetectorGeometry::default();
        let mut sharded = ShardedCollector::new(TraceCollector::new(8, dist(8), g), 2);
        for p in 0..8 {
            for k in 0..50 {
                sharded.on_mem_commit(p, (p + k) % 8, 0, false);
            }
        }
        sharded.drain();
        let c = sharded.counters();
        assert_eq!(c.drains, 1);
        assert_eq!(c.proc_queues, 8);
        assert_eq!(c.ops_staged, 400);
    }

    #[test]
    fn drain_counters_publish_to_the_registry() {
        let g = DetectorGeometry::default();
        let mut sharded = ShardedCollector::new(TraceCollector::new(4, dist(4), g), 2);
        for p in 0..4 {
            sharded.on_mem_commit(p, (p + 1) % 4, 0, false);
        }
        sharded.drain();
        let mut reg = dsm_telemetry::MetricsRegistry::new();
        sharded.publish_metrics("phase/shard", &mut reg);
        assert_eq!(reg.counter_value("phase/shard/drains"), Some(1));
        assert_eq!(reg.counter_value("phase/shard/proc_queues"), Some(4));
        assert_eq!(reg.counter_value("phase/shard/ops_staged"), Some(4));
        assert_eq!(reg.counter_value("phase/shard/steals"), Some(sharded.counters().steals));
        assert_eq!(reg.counter_value("phase/shard/worker_threads"), Some(2));
    }
}
