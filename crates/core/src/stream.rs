//! Per-node classified-interval streams — the shared substrate of the
//! cross-node diagnostics layer.
//!
//! Both the offline trace pass (`dsm-harness`) and the streaming server
//! (`dsm-serve`) produce sequences of [`ClassifiedInterval`]s per node.
//! Until now each consumer threaded ad-hoc `Vec<ClassifiedInterval>`s and
//! re-derived the invariants it needed; [`PhaseStream`] makes the contract
//! explicit: one node, intervals in index order, contiguous, every gap
//! detected at the point of ingest rather than deep inside an analysis.
//!
//! The stream is windowable from the front ([`PhaseStream::evict_to`]) so
//! an online consumer can bound its memory while the retained suffix stays
//! index-aligned — the diagnostics engine (`dsm-diagnose`) never has to
//! guess where a window starts.

use serde::{Deserialize, Serialize};

use crate::detector::ClassifiedInterval;

/// One node's classified-interval sequence, in interval-index order with no
/// gaps. The building block every cross-node analysis consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStream {
    node: usize,
    /// Interval index of `intervals[0]` (streams may be windowed: the
    /// prefix before `first_index` has been evicted, not lost track of).
    first_index: u64,
    intervals: Vec<ClassifiedInterval>,
}

/// Pushing an interval that does not extend the stream contiguously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The interval's `proc` is not this stream's node.
    WrongNode { node: usize, got: usize },
    /// The interval's `index` is not the next expected index.
    Gap { expected: u64, got: u64 },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::WrongNode { node, got } => {
                write!(f, "stream for node {node} offered interval from node {got}")
            }
            StreamError::Gap { expected, got } => {
                write!(f, "stream expected interval index {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

impl PhaseStream {
    /// An empty stream for `node`; the first pushed interval fixes the
    /// starting index.
    pub fn new(node: usize) -> Self {
        Self { node, first_index: 0, intervals: Vec::new() }
    }

    /// Adopt an already-ordered interval sequence (the offline pass builds
    /// streams from whole captured traces). Panics if any entry is for the
    /// wrong node or out of index order — offline inputs are programmer
    /// errors, not runtime conditions.
    pub fn from_intervals(node: usize, intervals: Vec<ClassifiedInterval>) -> Self {
        let first_index = intervals.first().map_or(0, |c| c.index);
        let mut s = Self { node, first_index, intervals: Vec::with_capacity(intervals.len()) };
        for c in intervals {
            s.push(c).expect("offline stream must be contiguous and node-pure");
        }
        s
    }

    pub fn node(&self) -> usize {
        self.node
    }

    /// Interval index of the first retained interval.
    pub fn first_index(&self) -> u64 {
        self.first_index
    }

    /// Index one past the last retained interval (`first_index` when
    /// empty).
    pub fn next_index(&self) -> u64 {
        self.first_index + self.intervals.len() as u64
    }

    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The retained intervals, in index order.
    pub fn intervals(&self) -> &[ClassifiedInterval] {
        &self.intervals
    }

    /// Iterate the retained intervals in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, ClassifiedInterval> {
        self.intervals.iter()
    }

    /// Append the next classified interval. The first push fixes the
    /// stream's starting index; every later push must carry the next
    /// consecutive index for this node, or the push is refused and the
    /// stream is unchanged.
    pub fn push(&mut self, c: ClassifiedInterval) -> Result<(), StreamError> {
        if c.proc != self.node {
            return Err(StreamError::WrongNode { node: self.node, got: c.proc });
        }
        if self.intervals.is_empty() {
            self.first_index = c.index;
        } else if c.index != self.next_index() {
            return Err(StreamError::Gap { expected: self.next_index(), got: c.index });
        }
        self.intervals.push(c);
        Ok(())
    }

    /// Evict everything before interval index `index` (windowing). The
    /// retained suffix keeps its true indices; `first_index` advances.
    pub fn evict_to(&mut self, index: u64) {
        let drop = index.saturating_sub(self.first_index).min(self.intervals.len() as u64);
        if drop > 0 {
            self.intervals.drain(..drop as usize);
            self.first_index += drop;
        }
    }

    /// Keep only the most recent `window` intervals.
    pub fn truncate_front(&mut self, window: usize) {
        if self.intervals.len() > window {
            self.evict_to(self.next_index() - window as u64);
        }
    }
}

impl<'a> IntoIterator for &'a PhaseStream {
    type Item = &'a ClassifiedInterval;
    type IntoIter = std::slice::Iter<'a, ClassifiedInterval>;
    fn into_iter(self) -> Self::IntoIter {
        self.intervals.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ci(proc: usize, index: u64, phase_id: u32) -> ClassifiedInterval {
        ClassifiedInterval { proc, index, phase_id, is_new_phase: false, cpi: 1.0, degraded: false }
    }

    #[test]
    fn push_enforces_node_and_contiguity() {
        let mut s = PhaseStream::new(2);
        assert_eq!(s.push(ci(1, 0, 0)), Err(StreamError::WrongNode { node: 2, got: 1 }));
        s.push(ci(2, 5, 0)).unwrap(); // first push fixes the start
        assert_eq!(s.first_index(), 5);
        assert_eq!(s.push(ci(2, 7, 0)), Err(StreamError::Gap { expected: 6, got: 7 }));
        s.push(ci(2, 6, 1)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.next_index(), 7);
    }

    #[test]
    fn windowing_keeps_true_indices() {
        let mut s = PhaseStream::new(0);
        for i in 0..10 {
            s.push(ci(0, i, i as u32)).unwrap();
        }
        s.truncate_front(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.first_index(), 6);
        assert_eq!(s.intervals()[0].index, 6);
        s.evict_to(8);
        assert_eq!((s.first_index(), s.len()), (8, 2));
        // Evicting past the end empties but never underflows.
        s.evict_to(100);
        assert!(s.is_empty());
        assert_eq!(s.first_index(), 10);
        // An emptied stream re-anchors on the next push.
        s.push(ci(0, 10, 0)).unwrap();
        assert_eq!(s.first_index(), 10);
    }

    #[test]
    fn from_intervals_round_trips() {
        let v: Vec<_> = (3..8).map(|i| ci(1, i, (i % 2) as u32)).collect();
        let s = PhaseStream::from_intervals(1, v.clone());
        assert_eq!(s.intervals(), &v[..]);
        assert_eq!(s.first_index(), 3);
        assert_eq!(s.iter().count(), 5);
    }
}
