//! Conditional-branch-count phase detection (Balasubramonian et al.), a
//! related-work baseline (paper §V).
//!
//! The interval signature is a single scalar — the number of dynamic
//! (conditional) branches committed. Intervals whose branch counts are
//! within a relative threshold of a stored phase's count belong to that
//! phase. This is the cheapest detector and the least discriminating: any
//! two intervals executing *different* code with *similar* branch density
//! are confused.

use serde::{Deserialize, Serialize};

use crate::distance::relative_diff;

/// Branch-count phase detector with an LRU table of scalar signatures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchCountDetector {
    table: Vec<(f64, u32, u64)>, // (branch count, phase_id, last_used)
    capacity: usize,
    clock: u64,
    next_phase_id: u32,
}

impl BranchCountDetector {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self { table: Vec::with_capacity(capacity), capacity, clock: 0, next_phase_id: 0 }
    }

    /// Classify an interval with `branches` committed branches under a
    /// relative-difference `threshold`.
    pub fn classify(&mut self, branches: u64, threshold: f64) -> u32 {
        self.clock += 1;
        let b = branches as f64;
        let mut best: Option<(usize, f64)> = None;
        for (i, (s, _, _)) in self.table.iter().enumerate() {
            let d = relative_diff(b, *s);
            if d < threshold && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        if let Some((i, _)) = best {
            self.table[i].2 = self.clock;
            return self.table[i].1;
        }
        let id = self.next_phase_id;
        self.next_phase_id += 1;
        let entry = (b, id, self.clock);
        if self.table.len() < self.capacity {
            self.table.push(entry);
        } else {
            let lru = self
                .table
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .unwrap();
            self.table[lru] = entry;
        }
        id
    }

    pub fn phases_allocated(&self) -> u32 {
        self.next_phase_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn similar_counts_share_a_phase() {
        let mut d = BranchCountDetector::new(8);
        let a = d.classify(10_000, 0.1);
        let b = d.classify(10_500, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn distant_counts_split_phases() {
        let mut d = BranchCountDetector::new(8);
        let a = d.classify(10_000, 0.1);
        let b = d.classify(20_000, 0.1);
        assert_ne!(a, b);
        assert_eq!(d.phases_allocated(), 2);
    }

    #[test]
    fn nearest_count_wins() {
        let mut d = BranchCountDetector::new(8);
        let p_low = d.classify(1_000, 0.9);
        let _p_high = d.classify(100_000, 0.9);
        // 1_100 is within 0.9 of both, but much closer to 1_000.
        assert_eq!(d.classify(1_100, 0.9), p_low);
    }

    #[test]
    fn cannot_distinguish_different_code_same_density() {
        // The baseline's fundamental weakness, stated as a test.
        let mut d = BranchCountDetector::new(8);
        let loop_a = d.classify(5_000, 0.05); // some loop
        let loop_b = d.classify(5_001, 0.05); // entirely different code
        assert_eq!(loop_a, loop_b);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut d = BranchCountDetector::new(2);
        d.classify(100, 0.01);
        d.classify(10_000, 0.01);
        d.classify(1_000_000, 0.01); // evicts 100
        let p = d.classify(100, 0.01);
        assert_eq!(p, 3, "100 was evicted and must get a fresh phase id");
    }
}
