//! Telemetry selection shim for the detectors — same pattern as
//! [`dsm_sim::telem`]: the `telemetry` cargo feature picks the real
//! recorder or the zero-sized no-op stub, and the instrumentation in
//! [`crate::detector`] is written once against the shared API.
//!
//! The online detector allocates one span track per processor: each
//! end-of-interval classification (DDV gather + BBV normalization +
//! footprint-table lookup) becomes a `classify` span covering the interval
//! it classified, timestamped on the processor's cumulative interval
//! clock. Degraded (BBV-only fallback) classifications and new-phase
//! allocations are counted in the registry.

#[cfg(feature = "telemetry")]
pub use dsm_telemetry::Telemetry as DetectorTelemetry;
#[cfg(not(feature = "telemetry"))]
pub use dsm_telemetry::stub::Telemetry as DetectorTelemetry;

pub use dsm_telemetry::{MetricsRegistry, Snapshot};

use dsm_telemetry::{CounterId, NameId};

/// Pre-interned probe ids for the online detector's hot path.
#[derive(Debug, Clone, Copy)]
pub struct DetectorProbes {
    /// Span name for per-interval classifications.
    pub classify: NameId,
    /// Intervals classified (all modes).
    pub intervals: CounterId,
    /// Classifications that allocated a new phase id.
    pub new_phases: CounterId,
    /// Classifications degraded to BBV-only by DDV staleness.
    pub degraded: CounterId,
}

impl DetectorProbes {
    /// Register every probe and label the per-processor tracks.
    pub fn register(telem: &mut DetectorTelemetry, n_procs: usize) -> Self {
        for p in 0..n_procs {
            telem.set_track_name(p, &format!("detector p{p}"));
        }
        Self {
            classify: telem.intern("classify"),
            intervals: telem.counter("detector/intervals"),
            new_phases: telem.counter("detector/new_phases"),
            degraded: telem.counter("detector/degraded_intervals"),
        }
    }
}
