//! End-to-end phase detectors and the offline trace classifier.
//!
//! Two ways to use the machinery:
//!
//! * [`OnlineDetector`] — a [`SimObserver`] that classifies every sampling
//!   interval as it completes, exactly as the paper's hardware would
//!   (BBV accumulator + DDV query + footprint-table lookup per interval).
//! * [`TraceCollector`] + [`TraceClassifier`] — the collector records each
//!   interval's *feature snapshot* (normalized BBV, `F_i`, `C`, DDS,
//!   working-set signature, branch count, CPI) without classifying;
//!   the classifier then replays the footprint-table logic offline for any
//!   threshold. Because classification never feeds back into execution in
//!   the paper's evaluation, sweeping 200 thresholds offline over one
//!   captured trace is exactly equivalent to 200 simulated runs — an
//!   integration test asserts online/offline agreement.

use serde::{Deserialize, Serialize};

use dsm_sim::observer::{IntervalStats, SimObserver};

use crate::bbv::BbvAccumulator;
use crate::ddv::{DdsSample, DdvSnap, DdvState, DegradedCollector};
use crate::footprint::FootprintTable;
use crate::telem::{DetectorProbes, DetectorTelemetry, MetricsRegistry, Snapshot};
use crate::working_set::WsSignature;
use crate::{DEFAULT_BBV_ENTRIES, DEFAULT_FOOTPRINT_VECTORS};

/// Which signature the classifier gates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorMode {
    /// Sherwood's uniprocessor baseline: BBV Manhattan distance only.
    Bbv,
    /// The paper's detector: BBV distance *and* DDS difference must both
    /// fall under their thresholds.
    BbvDdv,
}

/// Classification thresholds. `dds` is ignored in [`DetectorMode::Bbv`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// BBV Manhattan-distance threshold (normalized vectors; range [0, 2]).
    pub bbv: f64,
    /// Relative DDS-difference threshold (range [0, 1]).
    pub dds: f64,
}

impl Thresholds {
    pub fn bbv_only(bbv: f64) -> Self {
        Self { bbv, dds: 1.0 }
    }
}

/// Everything the hardware saw about one completed sampling interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalRecord {
    pub proc: usize,
    pub index: u64,
    /// Committed non-sync instructions.
    pub insns: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Normalized BBV accumulator.
    pub bbv: Vec<f64>,
    /// The requester's own per-home access counts (`F_i`).
    pub fvec: Vec<u64>,
    /// The contention vector (`C`).
    pub cvec: Vec<u64>,
    /// The data distribution scalar.
    pub dds: f64,
    /// Working-set signature words (Dhodapkar–Smith baseline).
    pub ws_sig: Vec<u64>,
    /// Committed dynamic branches (Balasubramonian baseline).
    pub branches: u64,
}

impl IntervalRecord {
    pub fn cpi(&self) -> f64 {
        if self.insns == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insns as f64
        }
    }
}

/// Per-interval output of the online detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedInterval {
    pub proc: usize,
    pub index: u64,
    pub phase_id: u32,
    pub is_new_phase: bool,
    pub cpi: f64,
    /// The DDS was too stale to trust (row staleness exceeded the
    /// [`AvailabilityModel`] bound) and this interval was classified
    /// BBV-only. Always false on a reliable system.
    pub degraded: bool,
}

/// When and how remote DDV rows miss the end-of-interval collection
/// deadline, and how stale a substituted row may be before classification
/// stops trusting the DDS.
///
/// Misses are a pure seeded hash of `(requester, source, interval)` —
/// deterministic, order-independent, and reproducible across runs. The
/// deadline itself is time-budget-equivalent to
/// `Network::max_one_way + RetryPolicy::worst_case_recovery_cycles`: a row
/// either makes that budget (delivered, possibly after retries) or it
/// escalated/failed and is modelled as missing here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    /// Seed for the per-(requester, source, interval) miss draws.
    pub seed: u64,
    /// Probability (parts per million) that a remote row misses the
    /// collection deadline.
    pub miss_ppm: u32,
    /// Staleness bound: a gather whose most-stale substituted row exceeds
    /// this many consecutive misses degrades classification to BBV-only.
    pub max_staleness: u64,
}

impl AvailabilityModel {
    /// A fully reliable system: every row always arrives.
    pub fn reliable() -> Self {
        Self { seed: 0, miss_ppm: 0, max_staleness: 0 }
    }

    /// Whether `source`'s row misses `requester`'s gather for `interval`.
    #[inline]
    pub fn row_missed(&self, requester: usize, source: usize, interval: u64) -> bool {
        if self.miss_ppm == 0 {
            return false;
        }
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let h = dsm_sim::util::splitmix64(
            self.seed
                ^ (requester as u64 + 1).wrapping_mul(PHI)
                ^ (source as u64 + 1).rotate_left(32)
                ^ interval.wrapping_mul(0xd134_2543_de82_ef95),
        );
        ((h % 1_000_000) as u32) < self.miss_ppm
    }
}

/// Size knobs shared by the observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorGeometry {
    /// BBV accumulator entries (32 in the paper).
    pub bbv_entries: usize,
    /// Footprint-table vectors (32 in the paper).
    pub footprint_vectors: usize,
    /// Working-set signature bits (collector only).
    pub ws_bits: usize,
}

impl Default for DetectorGeometry {
    fn default() -> Self {
        Self {
            bbv_entries: DEFAULT_BBV_ENTRIES,
            footprint_vectors: DEFAULT_FOOTPRINT_VECTORS,
            ws_bits: 1024,
        }
    }
}

// ---------------------------------------------------------------------------
// Trace collection (classification-free observer)
// ---------------------------------------------------------------------------

/// Records per-interval feature snapshots for offline classification.
pub struct TraceCollector {
    pub(crate) geometry: DetectorGeometry,
    pub(crate) bbv: Vec<BbvAccumulator>,
    pub(crate) ws: Vec<WsSignature>,
    pub(crate) branches: Vec<u64>,
    pub(crate) ddv: DdvState,
    /// Captured records, per processor, in interval order.
    pub records: Vec<Vec<IntervalRecord>>,
    /// Use the pre-optimization O(n²) all-to-one gather at interval ends
    /// (the scaling benchmark's reference arm). Must be chosen before the
    /// run — the fast and reference gathers keep different snapshot state
    /// and cannot be mixed on one instance.
    pub(crate) reference_gather: bool,
}

impl TraceCollector {
    /// `dist` is the n×n DDV distance matrix (see
    /// [`dsm_sim::network::Network::distance_matrix`]).
    pub fn new(n_procs: usize, dist: Vec<f64>, geometry: DetectorGeometry) -> Self {
        Self {
            bbv: (0..n_procs).map(|_| BbvAccumulator::new(geometry.bbv_entries)).collect(),
            ws: (0..n_procs).map(|_| WsSignature::new(geometry.ws_bits)).collect(),
            branches: vec![0; n_procs],
            ddv: DdvState::new(n_procs, dist),
            records: vec![Vec::new(); n_procs],
            geometry,
            reference_gather: false,
        }
    }

    /// Hypercube convenience constructor.
    pub fn for_hypercube(n_procs: usize, geometry: DetectorGeometry) -> Self {
        Self {
            bbv: (0..n_procs).map(|_| BbvAccumulator::new(geometry.bbv_entries)).collect(),
            ws: (0..n_procs).map(|_| WsSignature::new(geometry.ws_bits)).collect(),
            branches: vec![0; n_procs],
            ddv: DdvState::for_hypercube(n_procs),
            records: vec![Vec::new(); n_procs],
            geometry,
            reference_gather: false,
        }
    }

    pub fn geometry(&self) -> DetectorGeometry {
        self.geometry
    }

    pub fn ddv(&self) -> &DdvState {
        &self.ddv
    }

    /// Mutable DDV state, for pre-run configuration (collection topology).
    pub fn ddv_mut(&mut self) -> &mut DdvState {
        &mut self.ddv
    }

    /// Switch interval ends to the pre-optimization O(n²) all-to-one
    /// gather ([`DdvState::end_interval_reference_into`]). The scaling
    /// benchmark's reference arm; set before the run and never mid-run
    /// (the two gather styles keep different snapshot state).
    pub fn set_reference_gather(&mut self, on: bool) {
        self.reference_gather = on;
    }

    /// Total intervals captured across all processors.
    pub fn total_intervals(&self) -> usize {
        self.records.iter().map(|r| r.len()).sum()
    }

    /// Export the full dynamic state — mid-interval accumulators plus the
    /// captured records — for checkpointing.
    pub fn export_state(&self) -> CollectorState {
        CollectorState {
            bbv: self.bbv.iter().map(|b| b.raw().to_vec()).collect(),
            ws: self.ws.iter().map(|w| w.words().to_vec()).collect(),
            branches: self.branches.clone(),
            ddv: self.ddv.export_state(),
            records: self.records.clone(),
        }
    }

    /// Restore state captured by [`TraceCollector::export_state`] into a
    /// collector built with the same geometry and processor count.
    pub fn import_state(&mut self, st: &CollectorState) {
        assert_eq!(st.bbv.len(), self.bbv.len(), "collector snapshot is for a different machine");
        assert_eq!(st.ws.len(), self.ws.len(), "collector snapshot is for a different machine");
        for (b, raw) in self.bbv.iter_mut().zip(&st.bbv) {
            assert_eq!(raw.len(), b.len(), "collector snapshot has a different BBV geometry");
            *b = BbvAccumulator::from_raw(raw.clone());
        }
        for (w, words) in self.ws.iter_mut().zip(&st.ws) {
            assert_eq!(words.len() * 64, w.bits(), "collector snapshot has a different WS geometry");
            *w = WsSignature::from_words(words.clone());
        }
        self.branches.copy_from_slice(&st.branches);
        self.ddv.import_state(&st.ddv);
        self.records = st.records.clone();
    }
}

/// [`TraceCollector`]'s complete dynamic state: the mid-interval hardware
/// accumulators (raw BBV buckets, working-set words, branch counts, DDV
/// matrices) plus every interval record captured so far. Geometry and the
/// distance matrix are config-derived and not stored.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorState {
    /// Raw BBV bucket values per processor.
    pub bbv: Vec<Vec<u64>>,
    /// Working-set signature words per processor.
    pub ws: Vec<Vec<u64>>,
    /// Committed branch count per processor (current interval).
    pub branches: Vec<u64>,
    pub ddv: DdvSnap,
    /// Captured records, per processor, in interval order.
    pub records: Vec<Vec<IntervalRecord>>,
}

impl SimObserver for TraceCollector {
    #[inline]
    fn on_block_commit(&mut self, proc: usize, bb: u32, insns: u32) {
        self.bbv[proc].record(bb, insns);
        self.ws[proc].insert(bb);
        self.branches[proc] += 1;
    }

    #[inline]
    fn on_mem_commit(&mut self, proc: usize, home: usize, _addr: u64, _write: bool) {
        self.ddv.record_access(proc, home);
    }

    fn on_interval(&mut self, proc: usize, stats: IntervalStats) {
        let sample = if self.reference_gather {
            let mut s = DdsSample::empty();
            self.ddv.end_interval_reference_into(proc, &mut s);
            s
        } else {
            self.ddv.end_interval(proc)
        };
        self.records[proc].push(IntervalRecord {
            proc,
            index: stats.index,
            insns: stats.insns,
            cycles: stats.cycles,
            bbv: self.bbv[proc].normalized(),
            fvec: sample.fvec,
            cvec: sample.cvec,
            dds: sample.dds,
            ws_sig: self.ws[proc].words().to_vec(),
            branches: self.branches[proc],
        });
        self.bbv[proc].reset();
        self.ws[proc].clear();
        self.branches[proc] = 0;
    }
}

// ---------------------------------------------------------------------------
// Offline classification
// ---------------------------------------------------------------------------

/// Replays the footprint-table classification over captured records.
pub struct TraceClassifier;

impl TraceClassifier {
    /// Classify one processor's interval sequence; returns the phase id per
    /// interval (same order as `records`).
    pub fn classify_proc(
        records: &[IntervalRecord],
        mode: DetectorMode,
        thresholds: Thresholds,
        footprint_vectors: usize,
    ) -> Vec<u32> {
        let mut table = FootprintTable::new(footprint_vectors);
        records
            .iter()
            .map(|r| {
                let dds_thr = match mode {
                    DetectorMode::Bbv => None,
                    DetectorMode::BbvDdv => Some(thresholds.dds),
                };
                table.classify(&r.bbv, r.dds, thresholds.bbv, dds_thr).phase_id
            })
            .collect()
    }

    /// Extension (not in the paper): classify on the *concatenation* of
    /// the normalized BBV and the distance-weighted, normalized frequency
    /// vector, under a single Manhattan threshold.
    ///
    /// The paper collapses `F·D·C` into the scalar DDS so the hardware
    /// compares one number; keeping the vector preserves *which* homes were
    /// hot, at the cost of `n` extra comparator lanes. `data_weight`
    /// scales the data half relative to the code half (0 recovers plain
    /// BBV behaviour; the combined vector then sums to `1 + data_weight`,
    /// so thresholds live in `[0, 2(1 + data_weight)]`).
    pub fn classify_proc_vector_ddv(
        records: &[IntervalRecord],
        dist_row: &[f64],
        bbv_threshold: f64,
        data_weight: f64,
        footprint_vectors: usize,
    ) -> Vec<u32> {
        let mut table = FootprintTable::new(footprint_vectors);
        // One scratch buffer for the data half, reused across intervals; the
        // BBV half is never copied — the table compares `bbv ++ tail` with a
        // fused pass per entry (`classify_split`), bit-identical to
        // classifying the materialized concatenation.
        let mut tail: Vec<f64> = Vec::new();
        records
            .iter()
            .map(|r| {
                // Distance-weighted access frequencies, normalized so the
                // data half carries `data_weight` total mass.
                tail.clear();
                let mut total = 0.0;
                for (&f, &d) in r.fvec.iter().zip(dist_row) {
                    let w = f as f64 * d;
                    total += w;
                    tail.push(w);
                }
                // Every term is >= 0, so total == 0 means the tail is already
                // all zeros (the unnormalizable case keeps a zero data half).
                if total > 0.0 {
                    for w in tail.iter_mut() {
                        *w = *w / total * data_weight;
                    }
                }
                table
                    .classify_split(&r.bbv, &tail, 0.0, bbv_threshold, None)
                    .phase_id
            })
            .collect()
    }

    /// Classify with an externally recomputed DDS per interval (ablations:
    /// `C ≡ 1`, `D ≡ 1`, DDS-only).
    pub fn classify_proc_with_dds(
        records: &[IntervalRecord],
        dds: &[f64],
        thresholds: Thresholds,
        footprint_vectors: usize,
    ) -> Vec<u32> {
        assert_eq!(records.len(), dds.len());
        let mut table = FootprintTable::new(footprint_vectors);
        records
            .iter()
            .zip(dds)
            .map(|(r, &d)| {
                table
                    .classify(&r.bbv, d, thresholds.bbv, Some(thresholds.dds))
                    .phase_id
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Online detection (the hardware path)
// ---------------------------------------------------------------------------

/// Classifies intervals as they complete, like the paper's hardware.
///
/// Internally this is the gather half (BBV accumulators + DDV state) fused
/// with a [`crate::signature::ClassifierBank`] — the same kernel
/// `dsm-serve` runs per tenant, so in-simulator and served classification
/// are bit-identical by construction.
pub struct OnlineDetector {
    bbv: Vec<BbvAccumulator>,
    ddv: DdvState,
    bank: crate::signature::ClassifierBank,
    /// Deadline-degraded row gathering; `None` on a reliable system (the
    /// gather then takes the exact paper path with no staleness tracking).
    availability: Option<(AvailabilityModel, DegradedCollector)>,
    /// Classified intervals, per processor, in order.
    pub classified: Vec<Vec<ClassifiedInterval>>,
    /// Reusable per-interval buffers: the end-of-interval hot path
    /// (DDV query + BBV normalization + table lookup) allocates nothing
    /// in steady state.
    scratch_bbv: Vec<f64>,
    scratch_sample: DdsSample,
    /// Telemetry recorder (no-op stub unless the `telemetry` feature is on).
    telem: DetectorTelemetry,
    probes: DetectorProbes,
    /// Cumulative interval cycles per processor — the timestamp base for
    /// classification spans (one plain add per *interval*, not per event).
    cum_cycles: Vec<u64>,
}

impl OnlineDetector {
    pub fn new(
        n_procs: usize,
        dist: Vec<f64>,
        mode: DetectorMode,
        thresholds: Thresholds,
        geometry: DetectorGeometry,
    ) -> Self {
        let mut telem = DetectorTelemetry::new(n_procs);
        let probes = DetectorProbes::register(&mut telem, n_procs);
        Self {
            bbv: (0..n_procs).map(|_| BbvAccumulator::new(geometry.bbv_entries)).collect(),
            ddv: DdvState::new(n_procs, dist),
            bank: crate::signature::ClassifierBank::new(
                n_procs,
                mode,
                thresholds,
                geometry.footprint_vectors,
            ),
            availability: None,
            classified: vec![Vec::new(); n_procs],
            scratch_bbv: Vec::new(),
            scratch_sample: DdsSample::empty(),
            telem,
            probes,
            cum_cycles: vec![0; n_procs],
        }
    }

    /// A detector whose DDV row gathers are subject to `model`'s collection
    /// deadline. With `miss_ppm == 0` this behaves exactly like
    /// [`OnlineDetector::new`].
    pub fn with_availability(
        n_procs: usize,
        dist: Vec<f64>,
        mode: DetectorMode,
        thresholds: Thresholds,
        geometry: DetectorGeometry,
        model: AvailabilityModel,
    ) -> Self {
        let mut d = Self::new(n_procs, dist, mode, thresholds, geometry);
        if model.miss_ppm > 0 {
            d.availability = Some((model, DegradedCollector::new(n_procs)));
        }
        d
    }

    pub fn mode(&self) -> DetectorMode {
        self.bank.mode()
    }

    pub fn thresholds(&self) -> Thresholds {
        self.bank.thresholds()
    }

    /// The availability model in force, if any.
    pub fn availability(&self) -> Option<&AvailabilityModel> {
        self.availability.as_ref().map(|(m, _)| m)
    }

    /// Total DDV rows substituted from stale caches so far.
    pub fn rows_substituted(&self) -> u64 {
        self.availability.as_ref().map_or(0, |(_, c)| c.substitutions())
    }

    /// Forget processor `proc`'s staleness state (context switch: the
    /// incoming thread must not inherit the outgoing thread's stale rows).
    pub fn reset_staleness(&mut self, proc: usize) {
        if let Some((_, c)) = &mut self.availability {
            c.reset_requester(proc);
        }
    }

    /// The footprint table of one processor (inspection / persistence).
    pub fn table(&self, proc: usize) -> &FootprintTable {
        self.bank.table(proc)
    }

    /// Phase id of the most recent interval on `proc`, if any.
    pub fn current_phase(&self, proc: usize) -> Option<u32> {
        self.classified[proc].last().map(|c| c.phase_id)
    }

    /// Telemetry recorded so far (empty unless the `telemetry` feature is
    /// on): per-processor `classify` span tracks and outcome counters.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.telem.snapshot()
    }

    /// Mirror the detector's outcome statistics into a metrics registry
    /// under the `detector/` namespace. Always available (independent of
    /// the `telemetry` feature): the counts are recomputed from
    /// [`OnlineDetector::classified`], so harness-level reporting can fold
    /// any detector run into a registry. This is the registry path for the
    /// PR 3 degradation events that were previously only per-interval
    /// booleans on [`ClassifiedInterval`].
    pub fn publish_metrics(&self, reg: &mut MetricsRegistry) {
        let mut intervals = 0u64;
        let mut new_phases = 0u64;
        let mut degraded = 0u64;
        for c in self.classified.iter().flatten() {
            intervals += 1;
            new_phases += c.is_new_phase as u64;
            degraded += c.degraded as u64;
        }
        reg.counter_add("detector/intervals", intervals);
        reg.counter_add("detector/new_phases", new_phases);
        reg.counter_add("detector/degraded_intervals", degraded);
        reg.counter_add("detector/rows_substituted", self.rows_substituted());
        self.ddv.publish_metrics("detector/ddv", reg);
    }

    /// Access to mutable internals for context save/restore.
    pub(crate) fn parts_mut(
        &mut self,
    ) -> (&mut Vec<BbvAccumulator>, &mut DdvState, &mut Vec<FootprintTable>) {
        (&mut self.bbv, &mut self.ddv, self.bank.tables_mut())
    }
}

impl SimObserver for OnlineDetector {
    #[inline]
    fn on_block_commit(&mut self, proc: usize, bb: u32, insns: u32) {
        self.bbv[proc].record(bb, insns);
    }

    #[inline]
    fn on_mem_commit(&mut self, proc: usize, home: usize, _addr: u64, _write: bool) {
        self.ddv.record_access(proc, home);
    }

    fn on_interval(&mut self, proc: usize, stats: IntervalStats) {
        let degraded = match &mut self.availability {
            None => {
                self.ddv.end_interval_into(proc, &mut self.scratch_sample);
                false
            }
            Some((model, coll)) => {
                let staleness = coll.end_interval_into(
                    &mut self.ddv,
                    proc,
                    &mut self.scratch_sample,
                    |q| !model.row_missed(proc, q, stats.index),
                );
                staleness > model.max_staleness
            }
        };
        self.bbv[proc].normalized_into(&mut self.scratch_bbv);
        let c = self.bank.classify_raw(
            proc,
            stats.index,
            stats.cpi(),
            &self.scratch_bbv,
            self.scratch_sample.dds,
            degraded,
        );
        // Classification span on the processor's cumulative interval clock
        // (covers the interval just classified), plus outcome counters.
        let start = self.cum_cycles[proc];
        self.cum_cycles[proc] += stats.cycles;
        self.telem.span(proc, self.probes.classify, start, stats.cycles);
        self.telem.add(self.probes.intervals, 1);
        if c.is_new_phase {
            self.telem.add(self.probes.new_phases, 1);
        }
        if degraded {
            self.telem.add(self.probes.degraded, 1);
        }
        self.classified[proc].push(c);
        self.bbv[proc].reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(index: u64, insns: u64, cycles: u64) -> IntervalStats {
        IntervalStats { index, insns, cycles }
    }

    /// Drive an observer with a synthetic two-code-signature stream.
    fn drive(obs: &mut impl SimObserver, proc: usize, code: u32, homes: &[usize], idx: u64) {
        for _ in 0..10 {
            obs.on_block_commit(proc, code, 50);
        }
        for &h in homes {
            obs.on_mem_commit(proc, h, 0x40 * h as u64, false);
        }
        obs.on_interval(proc, stats(idx, 500, 1000));
    }

    #[test]
    fn collector_records_features_and_resets() {
        let mut c = TraceCollector::for_hypercube(2, DetectorGeometry::default());
        drive(&mut c, 0, 7, &[0, 0, 1], 0);
        drive(&mut c, 0, 9, &[1, 1, 1], 1);
        assert_eq!(c.records[0].len(), 2);
        let r0 = &c.records[0][0];
        assert_eq!(r0.fvec, vec![2, 1]);
        assert_eq!(r0.insns, 500);
        assert!((r0.cpi() - 2.0).abs() < 1e-12);
        assert_eq!(r0.branches, 10);
        // Second interval's counters started fresh.
        let r1 = &c.records[0][1];
        assert_eq!(r1.fvec, vec![0, 3]);
        assert_eq!(r1.branches, 10);
        // BBVs of different code differ.
        assert_ne!(r0.bbv, r1.bbv);
    }

    #[test]
    fn collector_contention_window_spans_other_procs() {
        let mut c = TraceCollector::for_hypercube(2, DetectorGeometry::default());
        // P1 hammers home 0 before P0's interval closes.
        for _ in 0..5 {
            c.on_mem_commit(1, 0, 0, false);
        }
        drive(&mut c, 0, 7, &[0], 0);
        let r = &c.records[0][0];
        assert_eq!(r.fvec, vec![1, 0]);
        assert_eq!(r.cvec, vec![6, 0], "C includes P1's accesses");
        assert!(r.dds >= 6.0);
    }

    #[test]
    fn online_bbv_groups_same_code() {
        let mut d = OnlineDetector::new(
            1,
            vec![1.0],
            DetectorMode::Bbv,
            Thresholds::bbv_only(0.5),
            DetectorGeometry::default(),
        );
        drive(&mut d, 0, 7, &[0], 0);
        drive(&mut d, 0, 7, &[0], 1);
        drive(&mut d, 0, 99, &[0], 2);
        let ids: Vec<u32> = d.classified[0].iter().map(|c| c.phase_id).collect();
        assert_eq!(ids[0], ids[1]);
        assert_ne!(ids[0], ids[2]);
        assert!(d.classified[0][0].is_new_phase);
        assert!(!d.classified[0][1].is_new_phase);
    }

    #[test]
    fn online_ddv_splits_same_code_different_homes() {
        // Same basic blocks, but interval 2 touches a distant, contended
        // home: BBV alone groups them; BBV+DDV must split.
        let dist = {
            let n = 4;
            let mut d = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    d[i * n + j] = if i == j { 1.0 } else { 1.0 + ((i ^ j) as u64).count_ones() as f64 };
                }
            }
            d
        };
        let run = |mode| {
            let mut det = OnlineDetector::new(
                4,
                dist.clone(),
                mode,
                Thresholds { bbv: 0.5, dds: 0.3 },
                DetectorGeometry::default(),
            );
            drive(&mut det, 0, 7, &[0, 0, 0, 0], 0); // local
            drive(&mut det, 0, 7, &[3, 3, 3, 3], 1); // remote (2 hops)
            det.classified[0].iter().map(|c| c.phase_id).collect::<Vec<_>>()
        };
        let bbv = run(DetectorMode::Bbv);
        assert_eq!(bbv[0], bbv[1], "BBV is blind to data distribution");
        let ddv = run(DetectorMode::BbvDdv);
        assert_ne!(ddv[0], ddv[1], "DDV must split local vs remote intervals");
    }

    #[test]
    fn offline_classifier_matches_online() {
        // Capture a trace and classify it offline; drive an online detector
        // with the identical event sequence; results must agree.
        let dist = vec![1.0, 2.0, 2.0, 1.0];
        let geometry = DetectorGeometry::default();
        let thresholds = Thresholds { bbv: 0.4, dds: 0.25 };

        let mut coll = TraceCollector::new(2, dist.clone(), geometry);
        let mut online = OnlineDetector::new(2, dist, DetectorMode::BbvDdv, thresholds, geometry);

        let script: Vec<(u32, Vec<usize>)> = vec![
            (7, vec![0, 0]),
            (7, vec![0, 0]),
            (9, vec![1, 1, 1]),
            (7, vec![1, 1, 1, 1, 1, 1]),
            (9, vec![1]),
            (7, vec![0, 0]),
        ];
        for (i, (code, homes)) in script.iter().enumerate() {
            drive(&mut coll, 0, *code, homes, i as u64);
            drive(&mut online, 0, *code, homes, i as u64);
        }

        let offline = TraceClassifier::classify_proc(
            &coll.records[0],
            DetectorMode::BbvDdv,
            thresholds,
            geometry.footprint_vectors,
        );
        let online_ids: Vec<u32> = online.classified[0].iter().map(|c| c.phase_id).collect();
        assert_eq!(offline, online_ids);
    }

    #[test]
    fn vector_ddv_splits_by_home_mix_and_zero_weight_recovers_bbv() {
        let mut coll = TraceCollector::for_hypercube(4, DetectorGeometry::default());
        // Same code, three intervals: home 0, home 0, home 3.
        drive(&mut coll, 0, 7, &[0, 0, 0], 0);
        drive(&mut coll, 0, 7, &[0, 0, 0], 1);
        drive(&mut coll, 0, 7, &[3, 3, 3], 2);
        let recs = &coll.records[0];
        let dist = dsm_phase_sim_dist(4, 0);

        // With data weight, the home-3 interval becomes its own phase.
        let ids = TraceClassifier::classify_proc_vector_ddv(recs, &dist, 0.5, 1.0, 32);
        assert_eq!(ids[0], ids[1]);
        assert_ne!(ids[0], ids[2], "home mix must split same-code intervals");

        // With zero weight it degenerates to the BBV-only result.
        let v0 = TraceClassifier::classify_proc_vector_ddv(recs, &dist, 0.5, 0.0, 32);
        let bbv = TraceClassifier::classify_proc(
            recs,
            DetectorMode::Bbv,
            Thresholds::bbv_only(0.5),
            32,
        );
        assert_eq!(v0, bbv);
    }

    /// Hypercube distance row for tests.
    fn dsm_phase_sim_dist(n: usize, i: usize) -> Vec<f64> {
        (0..n)
            .map(|j| if i == j { 1.0 } else { 1.0 + ((i ^ j) as u64).count_ones() as f64 })
            .collect()
    }

    #[test]
    fn publish_metrics_counts_classification_outcomes() {
        let mut d = OnlineDetector::new(
            1,
            vec![1.0],
            DetectorMode::Bbv,
            Thresholds::bbv_only(0.5),
            DetectorGeometry::default(),
        );
        drive(&mut d, 0, 7, &[0], 0);
        drive(&mut d, 0, 7, &[0], 1);
        drive(&mut d, 0, 99, &[0], 2);
        let mut reg = MetricsRegistry::new();
        d.publish_metrics(&mut reg);
        assert_eq!(reg.counter_value("detector/intervals"), Some(3));
        assert_eq!(reg.counter_value("detector/new_phases"), Some(2));
        assert_eq!(reg.counter_value("detector/degraded_intervals"), Some(0));
        assert_eq!(reg.counter_value("detector/rows_substituted"), Some(0));
        assert_eq!(reg.counter_value("detector/ddv/queries"), Some(3));

        let snap = d.telemetry_snapshot();
        if cfg!(feature = "telemetry") {
            assert!(snap.enabled);
            assert_eq!(snap.tracks.len(), 1);
            assert_eq!(snap.tracks[0].spans.len(), 3, "one classify span per interval");
            // The registry's live counters agree with the recomputed ones.
            let live = snap
                .metrics
                .iter()
                .find(|m| m.name == "detector/new_phases")
                .expect("live counter");
            assert_eq!(live.value, dsm_telemetry::MetricValue::Counter(2));
        } else {
            assert!(!snap.enabled);
            assert!(snap.tracks.is_empty());
        }
    }

    #[test]
    fn classify_with_external_dds_supports_ablations() {
        let mut coll = TraceCollector::for_hypercube(2, DetectorGeometry::default());
        drive(&mut coll, 0, 7, &[0], 0);
        drive(&mut coll, 0, 7, &[1], 1);
        let recs = &coll.records[0];
        // With DDS forced equal, identical code collapses to one phase.
        let ids = TraceClassifier::classify_proc_with_dds(
            recs,
            &[5.0, 5.0],
            Thresholds { bbv: 0.5, dds: 0.1 },
            32,
        );
        assert_eq!(ids[0], ids[1]);
        // With DDS forced apart, the same intervals split.
        let ids = TraceClassifier::classify_proc_with_dds(
            recs,
            &[5.0, 500.0],
            Thresholds { bbv: 0.5, dds: 0.1 },
            32,
        );
        assert_ne!(ids[0], ids[1]);
    }
}
