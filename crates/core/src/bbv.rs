//! Basic Block Vector accumulator (Sherwood et al., the paper's Fig. 1).
//!
//! A small array of hardware counters hashed by branch instruction address;
//! each committed branch adds the number of instructions executed since the
//! previous branch to its bucket. At the end of a sampling interval the
//! accumulator is normalized (so vectors from different interval lengths
//! are comparable) and compared against the footprint table.

use serde::{Deserialize, Serialize};

/// The hardware accumulator: `entries` saturating counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BbvAccumulator {
    buckets: Vec<u64>,
    total: u64,
}

/// Hash a branch address into a bucket index (splitmix finalizer — a stand-in
/// for the paper's unspecified hardware hash; any well-mixing function works).
#[inline]
fn bucket_of(bb: u32, n: usize) -> usize {
    (dsm_sim::util::splitmix64(bb as u64) % n as u64) as usize
}

impl BbvAccumulator {
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0);
        Self { buckets: vec![0; entries], total: 0 }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Record a committed basic block: branch address `bb`, `insns`
    /// instructions since the last branch.
    #[inline]
    pub fn record(&mut self, bb: u32, insns: u32) {
        let idx = bucket_of(bb, self.buckets.len());
        self.buckets[idx] += insns as u64;
        self.total += insns as u64;
    }

    /// Total instructions accumulated this interval.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw bucket values.
    pub fn raw(&self) -> &[u64] {
        &self.buckets
    }

    /// Normalized vector (sums to 1; all-zero when nothing was recorded).
    /// Manhattan distances between normalized vectors lie in [0, 2].
    pub fn normalized(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.normalized_into(&mut out);
        out
    }

    /// [`Self::normalized`] into a caller-owned buffer, so per-interval
    /// classification can reuse one allocation for the life of the detector.
    pub fn normalized_into(&self, out: &mut Vec<f64>) {
        out.clear();
        if self.total == 0 {
            out.resize(self.buckets.len(), 0.0);
            return;
        }
        let t = self.total as f64;
        out.extend(self.buckets.iter().map(|&b| b as f64 / t));
    }

    /// Overwrite this accumulator with `other`, reusing the bucket buffer
    /// when the widths match (context save/restore without reallocation).
    pub fn copy_from(&mut self, other: &Self) {
        if self.buckets.len() == other.buckets.len() {
            self.buckets.copy_from_slice(&other.buckets);
        } else {
            self.buckets.clone_from(&other.buckets);
        }
        self.total = other.total;
    }

    /// Rebuild an accumulator from raw bucket values (checkpoint restore).
    /// The running total is recomputed as the bucket sum, which is the
    /// invariant [`Self::record`] maintains.
    pub fn from_raw(buckets: Vec<u64>) -> Self {
        assert!(!buckets.is_empty());
        let total = buckets.iter().sum();
        Self { buckets, total }
    }

    /// Zero all counters (start of a new interval).
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_instruction_weight() {
        let mut a = BbvAccumulator::new(32);
        a.record(100, 10);
        a.record(100, 5);
        assert_eq!(a.total(), 15);
        let max = a.raw().iter().max().copied().unwrap();
        assert_eq!(max, 15, "same branch lands in the same bucket");
    }

    #[test]
    fn different_blocks_usually_hash_apart() {
        let mut a = BbvAccumulator::new(32);
        for bb in 0..16u32 {
            a.record(bb, 1);
        }
        let nonzero = a.raw().iter().filter(|&&b| b > 0).count();
        assert!(nonzero >= 8, "16 blocks over 32 buckets: got {nonzero} nonzero");
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut a = BbvAccumulator::new(8);
        a.record(1, 3);
        a.record(2, 7);
        a.record(3, 10);
        let s: f64 = a.normalized().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_normalizes_to_zero_vector() {
        let a = BbvAccumulator::new(8);
        assert!(a.is_empty());
        assert!(a.normalized().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn normalized_into_matches_allocating_form() {
        let mut a = BbvAccumulator::new(8);
        let mut out = vec![9.0; 3]; // wrong size and stale contents
        a.normalized_into(&mut out);
        assert_eq!(out, vec![0.0; 8]);
        a.record(1, 3);
        a.record(2, 7);
        a.normalized_into(&mut out);
        assert_eq!(out, a.normalized());
    }

    #[test]
    fn reset_clears_everything() {
        let mut a = BbvAccumulator::new(8);
        a.record(5, 100);
        a.reset();
        assert_eq!(a.total(), 0);
        assert!(a.raw().iter().all(|&b| b == 0));
    }

    #[test]
    fn normalization_is_scale_invariant() {
        let mut a = BbvAccumulator::new(32);
        let mut b = BbvAccumulator::new(32);
        for bb in [3u32, 9, 27] {
            a.record(bb, 10);
            b.record(bb, 1000); // same mix, 100x the interval length
        }
        let (na, nb) = (a.normalized(), b.normalized());
        for (x, y) in na.iter().zip(&nb) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
