//! The classifier extraction seam: interval signatures on the wire and the
//! classification kernel behind them.
//!
//! The paper's detector has two halves that until now lived fused inside
//! [`OnlineDetector`](crate::detector::OnlineDetector):
//!
//! 1. **gather** — accumulate the BBV, collect the DDV rows at the interval
//!    boundary, fold them into the DDS (and, under an
//!    [`AvailabilityModel`], decide whether the DDS is too stale to trust);
//! 2. **classify** — look the `(BBV, DDS)` signature up in the per-processor
//!    footprint table under the configured thresholds.
//!
//! The gather half is tied to the simulated machine (it *is* the hardware
//! the paper describes); the classify half is pure state-plus-arithmetic
//! and is exactly what a phase-detection *service* runs on behalf of many
//! tenants. This module splits them:
//!
//! * [`IntervalSignature`] — everything the gather half produces for one
//!   completed interval: the normalized BBV, the DDS, the interval's
//!   instruction/cycle counts, and the staleness verdict. This is the unit
//!   of ingest for `dsm-serve`.
//! * [`ClassifierBank`] — the per-processor footprint tables plus the
//!   threshold gating, as a standalone kernel.
//!   [`OnlineDetector`](crate::detector::OnlineDetector) now *contains* a
//!   bank and calls the same `classify_raw` the server calls, so
//!   server-side classification is bit-identical to in-simulator
//!   classification by construction (and pinned by the
//!   `serve_differential` suite).
//! * [`SignatureExtractor`] — a [`SimObserver`] that runs only the gather
//!   half and emits [`IntervalSignature`]s instead of classifying. Feeding
//!   its output through a [`ClassifierBank`] reproduces the online
//!   detector's [`ClassifiedInterval`] sequence exactly, degraded flags
//!   included.

use serde::{Deserialize, Serialize};

use dsm_sim::observer::{IntervalStats, SimObserver};

use crate::bbv::BbvAccumulator;
use crate::ddv::{DdsSample, DdvState, DegradedCollector};
use crate::detector::{
    AvailabilityModel, ClassifiedInterval, DetectorGeometry, DetectorMode, IntervalRecord,
    Thresholds,
};
use crate::footprint::FootprintTable;

/// One completed sampling interval, as produced by the gather half of the
/// detector and ingested by the classification service. This is the wire
/// unit of `dsm-serve`: everything classification needs, nothing it does
/// not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSignature {
    /// Processor (within the tenant's machine) the interval ran on.
    pub proc: usize,
    /// 0-based interval index on that processor.
    pub index: u64,
    /// Committed non-sync instructions (the interval length).
    pub insns: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// Normalized BBV accumulator (sums to 1 for a non-empty interval).
    pub bbv: Vec<f64>,
    /// The data distribution scalar from the DDV gather.
    pub dds: f64,
    /// The gather's staleness verdict: the DDS is untrustworthy and the
    /// interval must be classified BBV-only. Always false on a reliable
    /// system.
    pub degraded: bool,
}

impl IntervalSignature {
    /// Cycles per (non-sync) instruction — same formula as
    /// [`IntervalStats::cpi`], so a signature round-trip preserves the CPI
    /// bit-for-bit.
    pub fn cpi(&self) -> f64 {
        if self.insns == 0 {
            0.0
        } else {
            self.cycles as f64 / self.insns as f64
        }
    }

    /// Build a signature from a captured [`IntervalRecord`] (trace replay:
    /// stored traces are captured on a reliable system, so `degraded` is
    /// false).
    pub fn from_record(r: &IntervalRecord) -> Self {
        Self {
            proc: r.proc,
            index: r.index,
            insns: r.insns,
            cycles: r.cycles,
            bbv: r.bbv.clone(),
            dds: r.dds,
            degraded: false,
        }
    }
}

/// The classification kernel: one footprint table per processor plus the
/// threshold gating of paper §III-B. Stateless apart from the tables — no
/// simulator types, no gather machinery — so it can serve as the per-tenant
/// detector state of a streaming server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierBank {
    mode: DetectorMode,
    thresholds: Thresholds,
    tables: Vec<FootprintTable>,
}

impl ClassifierBank {
    pub fn new(
        n_procs: usize,
        mode: DetectorMode,
        thresholds: Thresholds,
        footprint_vectors: usize,
    ) -> Self {
        Self {
            mode,
            thresholds,
            tables: (0..n_procs)
                .map(|_| FootprintTable::new(footprint_vectors))
                .collect(),
        }
    }

    pub fn n_procs(&self) -> usize {
        self.tables.len()
    }

    pub fn mode(&self) -> DetectorMode {
        self.mode
    }

    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The footprint table of one processor (inspection / persistence).
    pub fn table(&self, proc: usize) -> &FootprintTable {
        &self.tables[proc]
    }

    /// Total footprint-table capacity across all processors (the service's
    /// resident-state accounting; leak checks sum this over live tenants).
    pub fn footprint_capacity(&self) -> usize {
        self.tables.iter().map(|t| t.capacity()).sum()
    }

    /// Mutable access for context save/restore
    /// ([`crate::context::DetectorContext`]).
    pub(crate) fn tables_mut(&mut self) -> &mut Vec<FootprintTable> {
        &mut self.tables
    }

    /// Classify one interval from its parts. This is the exact tail of the
    /// online detector's `on_interval`: the DDS gate drops to BBV-only in
    /// BBV mode or past the staleness bound, then the footprint table
    /// decides.
    #[inline]
    pub fn classify_raw(
        &mut self,
        proc: usize,
        index: u64,
        cpi: f64,
        bbv: &[f64],
        dds: f64,
        degraded: bool,
    ) -> ClassifiedInterval {
        let dds_thr = match self.mode {
            DetectorMode::Bbv => None,
            // Past the staleness bound the DDS is untrustworthy:
            // classification falls back to the uniprocessor BBV gate.
            DetectorMode::BbvDdv if degraded => None,
            DetectorMode::BbvDdv => Some(self.thresholds.dds),
        };
        let m = self.tables[proc].classify(bbv, dds, self.thresholds.bbv, dds_thr);
        ClassifiedInterval {
            proc,
            index,
            phase_id: m.phase_id,
            is_new_phase: m.is_new,
            cpi,
            degraded,
        }
    }

    /// Classify one wire signature.
    #[inline]
    pub fn classify_signature(&mut self, sig: &IntervalSignature) -> ClassifiedInterval {
        self.classify_raw(sig.proc, sig.index, sig.cpi(), &sig.bbv, sig.dds, sig.degraded)
    }
}

/// The gather half of the online detector as a standalone observer: it
/// accumulates BBVs and DDV state exactly like
/// [`OnlineDetector`](crate::detector::OnlineDetector) but emits
/// [`IntervalSignature`]s instead of classifying, so the classification can
/// happen elsewhere (a [`ClassifierBank`] inside `dsm-serve`).
pub struct SignatureExtractor {
    bbv: Vec<BbvAccumulator>,
    ddv: DdvState,
    /// Deadline-degraded row gathering; `None` on a reliable system.
    availability: Option<(AvailabilityModel, DegradedCollector)>,
    scratch_sample: DdsSample,
    /// Extracted signatures, per processor, in interval order.
    pub signatures: Vec<Vec<IntervalSignature>>,
}

impl SignatureExtractor {
    pub fn new(n_procs: usize, dist: Vec<f64>, geometry: DetectorGeometry) -> Self {
        Self {
            bbv: (0..n_procs)
                .map(|_| BbvAccumulator::new(geometry.bbv_entries))
                .collect(),
            ddv: DdvState::new(n_procs, dist),
            availability: None,
            scratch_sample: DdsSample::empty(),
            signatures: vec![Vec::new(); n_procs],
        }
    }

    /// An extractor whose DDV row gathers are subject to `model`'s
    /// collection deadline, mirroring
    /// [`OnlineDetector::with_availability`](crate::detector::OnlineDetector::with_availability):
    /// the emitted `degraded` flags are identical to the flags the online
    /// detector would record on the same event stream.
    pub fn with_availability(
        n_procs: usize,
        dist: Vec<f64>,
        geometry: DetectorGeometry,
        model: AvailabilityModel,
    ) -> Self {
        let mut e = Self::new(n_procs, dist, geometry);
        if model.miss_ppm > 0 {
            e.availability = Some((model, DegradedCollector::new(n_procs)));
        }
        e
    }

    /// Total signatures extracted across all processors.
    pub fn total_signatures(&self) -> usize {
        self.signatures.iter().map(|s| s.len()).sum()
    }

    /// Drain the extracted signatures (streaming callers forward them to
    /// the server between simulation slices).
    pub fn take_signatures(&mut self) -> Vec<Vec<IntervalSignature>> {
        std::mem::replace(&mut self.signatures, vec![Vec::new(); self.bbv.len()])
    }
}

impl SimObserver for SignatureExtractor {
    #[inline]
    fn on_block_commit(&mut self, proc: usize, bb: u32, insns: u32) {
        self.bbv[proc].record(bb, insns);
    }

    #[inline]
    fn on_mem_commit(&mut self, proc: usize, home: usize, _addr: u64, _write: bool) {
        self.ddv.record_access(proc, home);
    }

    fn on_interval(&mut self, proc: usize, stats: IntervalStats) {
        // Same gather as the online detector, bit for bit.
        let degraded = match &mut self.availability {
            None => {
                self.ddv.end_interval_into(proc, &mut self.scratch_sample);
                false
            }
            Some((model, coll)) => {
                let staleness = coll.end_interval_into(
                    &mut self.ddv,
                    proc,
                    &mut self.scratch_sample,
                    |q| !model.row_missed(proc, q, stats.index),
                );
                staleness > model.max_staleness
            }
        };
        self.signatures[proc].push(IntervalSignature {
            proc,
            index: stats.index,
            insns: stats.insns,
            cycles: stats.cycles,
            bbv: self.bbv[proc].normalized(),
            dds: self.scratch_sample.dds,
            degraded,
        });
        self.bbv[proc].reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::OnlineDetector;

    fn stats(index: u64, insns: u64, cycles: u64) -> IntervalStats {
        IntervalStats { index, insns, cycles }
    }

    fn drive(obs: &mut impl SimObserver, proc: usize, code: u32, homes: &[usize], idx: u64) {
        for _ in 0..10 {
            obs.on_block_commit(proc, code, 50);
        }
        for &h in homes {
            obs.on_mem_commit(proc, h, 0x40 * h as u64, false);
        }
        obs.on_interval(proc, stats(idx, 500, 1000));
    }

    #[test]
    fn extractor_plus_bank_matches_online_detector() {
        let dist = vec![1.0, 2.0, 2.0, 1.0];
        let geometry = DetectorGeometry::default();
        let thresholds = Thresholds { bbv: 0.4, dds: 0.25 };

        let mut online =
            OnlineDetector::new(2, dist.clone(), DetectorMode::BbvDdv, thresholds, geometry);
        let mut extractor = SignatureExtractor::new(2, dist, geometry);

        let script: &[(usize, u32, &[usize])] = &[
            (0, 7, &[0, 0]),
            (1, 9, &[1]),
            (0, 7, &[0, 0]),
            (0, 9, &[1, 1, 1]),
            (1, 9, &[1, 0]),
            (0, 7, &[1, 1, 1, 1, 1, 1]),
        ];
        let mut idx = [0u64; 2];
        for &(p, code, homes) in script {
            drive(&mut online, p, code, homes, idx[p]);
            drive(&mut extractor, p, code, homes, idx[p]);
            idx[p] += 1;
        }

        let mut bank =
            ClassifierBank::new(2, DetectorMode::BbvDdv, thresholds, geometry.footprint_vectors);
        for p in 0..2 {
            let served: Vec<ClassifiedInterval> = extractor.signatures[p]
                .iter()
                .map(|s| bank.classify_signature(s))
                .collect();
            assert_eq!(served, online.classified[p], "proc {p} diverged");
        }
    }

    #[test]
    fn extractor_degraded_flags_match_online_detector() {
        let dist = vec![1.0, 2.0, 2.0, 1.0];
        let geometry = DetectorGeometry::default();
        let thresholds = Thresholds { bbv: 0.4, dds: 0.25 };
        let model = AvailabilityModel { seed: 7, miss_ppm: 400_000, max_staleness: 0 };

        let mut online = OnlineDetector::with_availability(
            2,
            dist.clone(),
            DetectorMode::BbvDdv,
            thresholds,
            geometry,
            model,
        );
        let mut extractor = SignatureExtractor::with_availability(2, dist, geometry, model);

        for i in 0..32u64 {
            for p in 0..2 {
                drive(&mut online, p, 7 + (i % 3) as u32, &[(i % 2) as usize], i);
                drive(&mut extractor, p, 7 + (i % 3) as u32, &[(i % 2) as usize], i);
            }
        }
        let mut bank =
            ClassifierBank::new(2, DetectorMode::BbvDdv, thresholds, geometry.footprint_vectors);
        let mut saw_degraded = false;
        for p in 0..2 {
            let served: Vec<ClassifiedInterval> = extractor.signatures[p]
                .iter()
                .map(|s| bank.classify_signature(s))
                .collect();
            assert_eq!(served, online.classified[p], "proc {p} diverged");
            saw_degraded |= served.iter().any(|c| c.degraded);
        }
        assert!(saw_degraded, "40% miss rate at staleness bound 0 must degrade");
    }

    #[test]
    fn signature_from_record_preserves_cpi() {
        let r = IntervalRecord {
            proc: 1,
            index: 3,
            insns: 500,
            cycles: 1250,
            bbv: vec![0.5, 0.5],
            fvec: vec![1, 0],
            cvec: vec![1, 1],
            dds: 42.0,
            ws_sig: vec![],
            branches: 10,
        };
        let s = IntervalSignature::from_record(&r);
        assert_eq!(s.cpi(), r.cpi());
        assert!(!s.degraded);
        assert_eq!(s.bbv, r.bbv);
    }
}
