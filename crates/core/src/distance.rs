//! Distance measures used by the classifiers.

/// Manhattan (L1) distance between two equally sized vectors. For
/// normalized BBVs the result lies in [0, 2].
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Manhattan distance between the concatenation `head ++ tail` and `b`,
/// fused into one pass so the caller never materializes the concatenation.
///
/// This is the weighted-Manhattan comparison of the concatenated-vector
/// classifier (normalized BBV head, distance-weighted DDV tail): terms are
/// accumulated left to right exactly as [`manhattan`] over the materialized
/// concatenation would, so results are bit-identical to the two-step form.
#[inline]
pub fn manhattan_concat(head: &[f64], tail: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(head.len() + tail.len(), b.len());
    let (bh, bt) = b.split_at(head.len());
    let mut sum = 0.0;
    for (x, y) in head.iter().zip(bh) {
        sum += (x - y).abs();
    }
    for (x, y) in tail.iter().zip(bt) {
        sum += (x - y).abs();
    }
    sum
}

/// Relative difference between two non-negative scalars, in [0, 1]:
/// `|a - b| / max(a, b)`, with 0 when both are ~zero.
///
/// The paper requires "a DDS difference below \[a\] pre-set threshold" without
/// fixing the metric; a relative difference makes one threshold meaningful
/// across applications whose absolute DDS magnitudes differ by orders of
/// magnitude.
#[inline]
pub fn relative_diff(a: f64, b: f64) -> f64 {
    debug_assert!(a >= 0.0 && b >= 0.0);
    let m = a.max(b);
    if m <= f64::EPSILON {
        0.0
    } else {
        (a - b).abs() / m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_basics() {
        assert_eq!(manhattan(&[0.0, 1.0], &[0.0, 1.0]), 0.0);
        assert_eq!(manhattan(&[1.0, 0.0], &[0.0, 1.0]), 2.0);
        assert!((manhattan(&[0.5, 0.5], &[0.25, 0.75]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn manhattan_bounds_for_normalized_vectors() {
        // Two distributions: distance is at most 2 (disjoint support).
        let a = [0.2, 0.3, 0.5, 0.0];
        let b = [0.0, 0.0, 0.0, 1.0];
        let d = manhattan(&a, &b);
        assert!(d > 0.0 && d <= 2.0);
    }

    #[test]
    fn manhattan_concat_matches_materialized_concatenation() {
        let head = [0.2, 0.3, 0.5];
        let tail = [1.5, 0.0, 4.25, 0.125];
        let b = [0.1, 0.3, 0.7, 1.0, 0.5, 4.0, 0.0];
        let mut cat = head.to_vec();
        cat.extend_from_slice(&tail);
        // Bit-identical, not just approximately equal: same accumulation order.
        assert_eq!(manhattan_concat(&head, &tail, &b), manhattan(&cat, &b));
        assert_eq!(manhattan_concat(&head, &[], &head), 0.0);
        assert_eq!(manhattan_concat(&[], &tail, &tail), 0.0);
    }

    #[test]
    fn relative_diff_basics() {
        assert_eq!(relative_diff(0.0, 0.0), 0.0);
        assert_eq!(relative_diff(10.0, 10.0), 0.0);
        assert!((relative_diff(10.0, 5.0) - 0.5).abs() < 1e-12);
        assert!((relative_diff(5.0, 10.0) - 0.5).abs() < 1e-12);
        assert_eq!(relative_diff(0.0, 7.0), 1.0);
    }

    #[test]
    fn relative_diff_is_symmetric_and_bounded() {
        for (a, b) in [(1.0, 3.0), (100.0, 0.5), (1e12, 1e-3)] {
            assert_eq!(relative_diff(a, b), relative_diff(b, a));
            let d = relative_diff(a, b);
            assert!((0.0..=1.0).contains(&d));
        }
    }
}
