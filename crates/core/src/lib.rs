//! # dsm-phase — hardware phase detection for DSM multiprocessors
//!
//! This crate implements the paper's contribution and its baselines:
//!
//! * [`bbv`] — Sherwood et al.'s Basic Block Vector accumulator (the
//!   uniprocessor baseline of the paper's Fig. 1): a small array of counters
//!   hashed by branch address, each incremented by the number of
//!   instructions since the last branch.
//! * [`footprint`] — the footprint table: previously seen (BBV, DDS)
//!   signatures with LRU replacement; intervals are classified against it
//!   by Manhattan distance (and, for BBV+DDV, a DDS difference) under
//!   pre-set thresholds.
//! * [`ddv`] — **the paper's contribution**: the per-node Data Distribution
//!   Vector. An n×n frequency matrix counts committed loads/stores by home
//!   node on behalf of every requester; at interval end the requester
//!   gathers all rows, sums them into the contention vector `C`, and folds
//!   frequency × distance × contention into the scalar DDS.
//! * [`detector`] — the end-to-end detectors (`BBV` and `BBV+DDV`) as
//!   simulator observers, plus the offline trace classifier used for
//!   threshold sweeps (equivalent by construction; see DESIGN.md).
//! * [`shard_collector`] — the parallel trace-capture path: a serial
//!   coordinator stages observer events (keeping the O(n) DDV aggregate in
//!   global order) and host worker threads drain the per-processor work at
//!   conservative window boundaries, bit-identical to [`detector`]'s serial
//!   collector at any thread count.
//! * [`predictor`] — phase predictors (last-phase and run-length Markov),
//!   the paper's stated future-work direction.
//! * [`working_set`], [`branch_count`] — the related-work baselines of
//!   Dhodapkar & Smith (working-set signatures) and Balasubramonian et al.
//!   (conditional branch counts).
//! * [`context`] — save/restore of detector state across context switches
//!   (the paper's multiprogramming note in §III-B).
//! * [`stream`] — [`PhaseStream`]: one node's classified intervals in
//!   contiguous index order, the shared unit the offline harness pass and
//!   the serve-side diagnosis sink both consume (`dsm-diagnose`).

pub mod bbv;
pub mod branch_count;
pub mod context;
pub mod ddv;
pub mod detector;
pub mod distance;
pub mod footprint;
pub mod predictor;
pub mod shard_collector;
pub mod signature;
pub mod stream;
pub mod telem;
pub mod working_set;

pub use bbv::BbvAccumulator;
pub use ddv::{DdvSnap, DdvState, DegradedCollector, FrequencyMatrix, FrequencySnap};
pub use detector::{
    AvailabilityModel, ClassifiedInterval, CollectorState, DetectorMode, IntervalRecord,
    OnlineDetector, Thresholds, TraceClassifier, TraceCollector,
};
pub use footprint::{FootprintTable, Match};
pub use shard_collector::{DrainCounters, ShardedCollector};
pub use signature::{ClassifierBank, IntervalSignature, SignatureExtractor};
pub use stream::{PhaseStream, StreamError};
pub use predictor::{LastPhasePredictor, Markov2Predictor, PhasePredictor, RlePredictor};

/// Default accumulator size (32 in the paper: "a 32-entry accumulator and a
/// 32-vector footprint table").
pub const DEFAULT_BBV_ENTRIES: usize = 32;
/// Default footprint-table capacity.
pub const DEFAULT_FOOTPRINT_VECTORS: usize = 32;
