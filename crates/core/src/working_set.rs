//! Instruction working-set signatures (Dhodapkar & Smith), a related-work
//! baseline (paper §V).
//!
//! A working-set signature is a lossy bit-vector (here `bits` bits) into
//! which every executed basic block is hashed; two intervals are in the same
//! phase when the *relative signature distance*
//! `|A Δ B| / |A ∪ B|` is below a threshold. Signatures capture *which*
//! code executed but not *how much*, so they yield longer, coarser phases
//! than BBVs — the comparison the harness's `baselines` experiment runs.

use serde::{Deserialize, Serialize};

/// A fixed-size working-set signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WsSignature {
    words: Vec<u64>,
}

impl WsSignature {
    /// `bits` must be a multiple of 64 (1024 in Dhodapkar & Smith's design).
    pub fn new(bits: usize) -> Self {
        assert!(bits > 0 && bits.is_multiple_of(64));
        Self { words: vec![0; bits / 64] }
    }

    pub fn bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Hash a basic block into the signature.
    #[inline]
    pub fn insert(&mut self, bb: u32) {
        let h = dsm_sim::util::splitmix64(bb as u64 ^ 0xabcd_ef01);
        let bit = (h % (self.bits() as u64)) as usize;
        self.words[bit / 64] |= 1 << (bit % 64);
    }

    /// Number of set bits.
    pub fn popcount(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Relative signature distance: `|A Δ B| / |A ∪ B|` in [0, 1]
    /// (0 for two empty signatures).
    pub fn rel_distance(&self, other: &Self) -> f64 {
        assert_eq!(self.words.len(), other.words.len());
        let mut sym = 0u32;
        let mut uni = 0u32;
        for (a, b) in self.words.iter().zip(&other.words) {
            sym += (a ^ b).count_ones();
            uni += (a | b).count_ones();
        }
        if uni == 0 {
            0.0
        } else {
            sym as f64 / uni as f64
        }
    }

    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Overwrite this signature with `other`, reusing the existing word
    /// buffer (both must have the same width).
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.words.len(), other.words.len());
        self.words.copy_from_slice(&other.words);
    }

    /// Raw signature words (recorded into interval traces).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    pub fn from_words(words: Vec<u64>) -> Self {
        assert!(!words.is_empty());
        Self { words }
    }
}

/// Working-set phase detector: matches the incoming signature against a
/// table of previously seen signatures (same structure as the footprint
/// table, with relative signature distance instead of Manhattan distance).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkingSetDetector {
    table: Vec<(WsSignature, u32, u64)>, // (signature, phase_id, last_used)
    capacity: usize,
    clock: u64,
    next_phase_id: u32,
}

impl WorkingSetDetector {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self { table: Vec::with_capacity(capacity), capacity, clock: 0, next_phase_id: 0 }
    }

    /// Classify an interval's signature under `threshold`; returns the
    /// phase id (allocating a new one on a miss).
    pub fn classify(&mut self, sig: &WsSignature, threshold: f64) -> u32 {
        self.clock += 1;
        let mut best: Option<(usize, f64)> = None;
        for (i, (s, _, _)) in self.table.iter().enumerate() {
            let d = sig.rel_distance(s);
            if d < threshold && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        if let Some((i, _)) = best {
            self.table[i].2 = self.clock;
            return self.table[i].1;
        }
        let id = self.next_phase_id;
        self.next_phase_id += 1;
        if self.table.len() < self.capacity {
            self.table.push((sig.clone(), id, self.clock));
        } else {
            let lru = self
                .table
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .unwrap();
            // Reuse the evicted signature's buffer when widths match (the
            // steady state — signature geometry never changes mid-run).
            let slot = &mut self.table[lru];
            if slot.0.words.len() == sig.words.len() {
                slot.0.copy_from(sig);
            } else {
                slot.0 = sig.clone();
            }
            slot.1 = id;
            slot.2 = self.clock;
        }
        id
    }

    pub fn phases_allocated(&self) -> u32 {
        self.next_phase_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_sets_bits() {
        let mut s = WsSignature::new(128);
        assert!(s.is_empty());
        s.insert(42);
        assert_eq!(s.popcount(), 1);
        s.insert(42); // idempotent
        assert_eq!(s.popcount(), 1);
        s.insert(43);
        assert!(s.popcount() >= 1); // could collide, usually 2
    }

    #[test]
    fn distance_zero_for_identical_sets() {
        let mut a = WsSignature::new(128);
        let mut b = WsSignature::new(128);
        for bb in 0..10 {
            a.insert(bb);
            b.insert(bb);
        }
        assert_eq!(a.rel_distance(&b), 0.0);
    }

    #[test]
    fn distance_one_for_disjoint_sets() {
        let mut a = WsSignature::new(1024);
        let mut b = WsSignature::new(1024);
        a.insert(1);
        b.insert(2);
        // Unless they collide in the 1024-bit space (they don't for 1,2).
        assert_eq!(a.rel_distance(&b), 1.0);
    }

    #[test]
    fn distance_empty_signatures_is_zero() {
        let a = WsSignature::new(64);
        let b = WsSignature::new(64);
        assert_eq!(a.rel_distance(&b), 0.0);
    }

    #[test]
    fn partial_overlap_is_intermediate() {
        let mut a = WsSignature::new(1024);
        let mut b = WsSignature::new(1024);
        for bb in 0..8 {
            a.insert(bb);
        }
        for bb in 4..12 {
            b.insert(bb);
        }
        let d = a.rel_distance(&b);
        assert!(d > 0.0 && d < 1.0, "got {d}");
    }

    #[test]
    fn detector_groups_similar_working_sets() {
        let mut det = WorkingSetDetector::new(8);
        let mut s1 = WsSignature::new(1024);
        for bb in 0..20 {
            s1.insert(bb);
        }
        let mut s2 = WsSignature::new(1024);
        for bb in 0..20 {
            s2.insert(bb);
        }
        s2.insert(99); // one extra block
        let p1 = det.classify(&s1, 0.5);
        let p2 = det.classify(&s2, 0.5);
        assert_eq!(p1, p2);

        let mut s3 = WsSignature::new(1024);
        for bb in 1000..1020 {
            s3.insert(bb);
        }
        let p3 = det.classify(&s3, 0.5);
        assert_ne!(p1, p3);
        assert_eq!(det.phases_allocated(), 2);
    }

    #[test]
    fn lru_eviction_reuses_slot_and_assigns_fresh_id() {
        let one_hot = |bb: u32| {
            let mut s = WsSignature::new(1024);
            s.insert(bb);
            s
        };
        let (a, b, c) = (one_hot(1), one_hot(2), one_hot(3));
        let mut det = WorkingSetDetector::new(2);
        assert_eq!(det.classify(&a, 0.5), 0);
        assert_eq!(det.classify(&b, 0.5), 1);
        assert_eq!(det.classify(&c, 0.5), 2); // evicts a (LRU), reusing its slot
        assert_eq!(det.classify(&c, 0.5), 2, "c must be resident after eviction");
        assert_eq!(det.classify(&a, 0.5), 3, "a was evicted, so it is a new phase");
        assert_eq!(det.phases_allocated(), 4);
    }

    #[test]
    fn roundtrip_words() {
        let mut s = WsSignature::new(128);
        s.insert(7);
        s.insert(700);
        let r = WsSignature::from_words(s.words().to_vec());
        assert_eq!(s, r);
    }
}
