//! DDV row-collection deadline coverage: with every `F_i` row arriving the
//! degraded gather is *exactly* the paper's DDS formula, and past the
//! configured staleness bound classification degrades to BBV-only —
//! engaging at precisely the configured interval, not one earlier or later.

use dsm_phase::ddv::{DdsSample, DdvState, DegradedCollector};
use dsm_phase::detector::{
    AvailabilityModel, DetectorGeometry, DetectorMode, OnlineDetector, Thresholds,
};
use dsm_sim::observer::{IntervalStats, SimObserver};

const THRESH: Thresholds = Thresholds { bbv: 0.1, dds: 0.1 };

/// Full n×n hypercube distance matrix, flattened row-major.
fn full_dist(n: usize) -> Vec<f64> {
    let d = DdvState::for_hypercube(n);
    let mut out = Vec::with_capacity(n * n);
    for i in 0..n {
        out.extend_from_slice(d.dist_row(i));
    }
    out
}

fn record_pattern(ddv: &mut DdvState, n: usize, round: usize) {
    // Every node touches its own home plus a rotating remote home, so F and
    // C are dense and interval-dependent.
    for p in 0..n {
        for _ in 0..(p + 2) {
            ddv.record_access(p, p);
        }
        ddv.record_access(p, (p + 1 + round) % n);
    }
}

#[test]
fn full_row_arrival_matches_paper_formula_exactly() {
    let n = 4;
    let mut reference = DdvState::for_hypercube(n);
    let mut degraded = DdvState::for_hypercube(n);
    let mut coll = DegradedCollector::new(n);
    let mut ref_sample = DdsSample::empty();
    let mut deg_sample = DdsSample::empty();

    for round in 0..6 {
        record_pattern(&mut reference, n, round);
        record_pattern(&mut degraded, n, round);
        for i in 0..n {
            reference.end_interval_into(i, &mut ref_sample);
            let staleness = coll.end_interval_into(&mut degraded, i, &mut deg_sample, |_| true);
            assert_eq!(staleness, 0, "nothing may be stale when every row arrives");
            assert_eq!(ref_sample, deg_sample, "round {round} proc {i}");
            // And both equal the paper formula applied to the gathered F, C.
            let expect =
                DdvState::dds_of(&deg_sample.fvec, degraded.dist_row(i), &deg_sample.cvec);
            assert!((deg_sample.dds - expect).abs() <= expect.abs() * 1e-12);
        }
    }
    assert_eq!(coll.substitutions(), 0);
}

fn drive_interval(det: &mut OnlineDetector, n: usize, idx: u64) {
    for p in 0..n {
        for _ in 0..10 {
            det.on_block_commit(p, 7, 50);
        }
        det.on_mem_commit(p, p, 0x40 * p as u64, false);
        det.on_mem_commit(p, (p + 1) % n, 0x80, false);
    }
    for p in 0..n {
        det.on_interval(p, IntervalStats { index: idx, insns: 500, cycles: 1000 });
    }
}

#[test]
fn bbv_only_engages_exactly_at_the_staleness_bound() {
    let n = 2;
    for bound in [0u64, 1, 3] {
        let model = AvailabilityModel { seed: 1, miss_ppm: 1_000_000, max_staleness: bound };
        let mut det = OnlineDetector::with_availability(
            n,
            full_dist(n),
            DetectorMode::BbvDdv,
            THRESH,
            DetectorGeometry::default(),
            model,
        );
        for idx in 0..8 {
            drive_interval(&mut det, n, idx);
        }
        for p in 0..n {
            for (idx, c) in det.classified[p].iter().enumerate() {
                // With every remote row missing, staleness after interval
                // `idx` is `idx + 1`; degradation engages strictly past the
                // bound, i.e. first at interval index == bound.
                let expect = idx as u64 >= bound;
                assert_eq!(
                    c.degraded, expect,
                    "bound {bound} proc {p} interval {idx}: degraded={}",
                    c.degraded
                );
            }
        }
        assert!(det.rows_substituted() > 0);
    }
}

#[test]
fn degraded_classification_is_bbv_only() {
    // With rows always missing and a zero staleness bound, every interval
    // is degraded: the BbvDdv detector must classify exactly like a pure
    // BBV detector fed the identical stream (the DDS gate is bypassed).
    let n = 2;
    let model = AvailabilityModel { seed: 1, miss_ppm: 1_000_000, max_staleness: 0 };
    let mut degraded = OnlineDetector::with_availability(
        n,
        full_dist(n),
        DetectorMode::BbvDdv,
        THRESH,
        DetectorGeometry::default(),
        model,
    );
    let mut bbv_only = OnlineDetector::new(
        n,
        full_dist(n),
        DetectorMode::Bbv,
        THRESH,
        DetectorGeometry::default(),
    );
    for idx in 0..10 {
        drive_interval(&mut degraded, n, idx);
        drive_interval(&mut bbv_only, n, idx);
    }
    for p in 0..n {
        let a: Vec<u32> = degraded.classified[p].iter().map(|c| c.phase_id).collect();
        let b: Vec<u32> = bbv_only.classified[p].iter().map(|c| c.phase_id).collect();
        assert_eq!(a, b, "proc {p}: degraded BbvDdv must reduce to pure BBV");
        assert!(degraded.classified[p].iter().all(|c| c.degraded));
        assert!(bbv_only.classified[p].iter().all(|c| !c.degraded));
    }
}

#[test]
fn reliable_model_is_transparent() {
    // miss_ppm == 0 must take the exact paper path: same classifications,
    // no staleness machinery engaged.
    let n = 2;
    let mut with_model = OnlineDetector::with_availability(
        n,
        full_dist(n),
        DetectorMode::BbvDdv,
        THRESH,
        DetectorGeometry::default(),
        AvailabilityModel::reliable(),
    );
    let mut plain = OnlineDetector::new(
        n,
        full_dist(n),
        DetectorMode::BbvDdv,
        THRESH,
        DetectorGeometry::default(),
    );
    for idx in 0..6 {
        drive_interval(&mut with_model, n, idx);
        drive_interval(&mut plain, n, idx);
    }
    assert!(with_model.availability().is_none());
    assert_eq!(with_model.rows_substituted(), 0);
    for p in 0..n {
        assert_eq!(with_model.classified[p], plain.classified[p]);
    }
}
