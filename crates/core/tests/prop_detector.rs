//! Property tests for the detector structures: hardware-equivalence of the
//! snapshot frequency matrix, metric axioms for the distances, and
//! footprint-table invariants under arbitrary classification sequences.

use proptest::prelude::*;

use dsm_phase::bbv::BbvAccumulator;
use dsm_phase::ddv::{FrequencyMatrix, NaiveFrequencyMatrix};
use dsm_phase::distance::{manhattan, relative_diff};
use dsm_phase::footprint::FootprintTable;

#[derive(Debug, Clone)]
enum FmOp {
    Record(usize),
    Query(usize),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn snapshot_matrix_equals_naive_hardware(
        ops in prop::collection::vec(
            (any::<bool>(), 0usize..6).prop_map(|(q, node)| {
                if q { FmOp::Query(node) } else { FmOp::Record(node) }
            }),
            1..300,
        ),
    ) {
        let mut fast = FrequencyMatrix::new(6);
        let mut naive = NaiveFrequencyMatrix::new(6);
        for op in ops {
            match op {
                FmOp::Record(h) => {
                    fast.record(h);
                    naive.record(h);
                }
                FmOp::Query(i) => {
                    prop_assert_eq!(fast.query(i), naive.query(i));
                }
            }
        }
    }

    #[test]
    fn manhattan_is_a_metric(
        a in prop::collection::vec(0.0f64..1.0, 8),
        b in prop::collection::vec(0.0f64..1.0, 8),
        c in prop::collection::vec(0.0f64..1.0, 8),
    ) {
        prop_assert!((manhattan(&a, &a)).abs() < 1e-12);
        prop_assert!((manhattan(&a, &b) - manhattan(&b, &a)).abs() < 1e-12);
        prop_assert!(manhattan(&a, &c) <= manhattan(&a, &b) + manhattan(&b, &c) + 1e-9);
        prop_assert!(manhattan(&a, &b) >= 0.0);
    }

    #[test]
    fn normalized_bbv_distances_bounded_by_two(
        recs_a in prop::collection::vec((any::<u32>(), 1u32..1000), 1..50),
        recs_b in prop::collection::vec((any::<u32>(), 1u32..1000), 1..50),
    ) {
        let mut a = BbvAccumulator::new(32);
        let mut b = BbvAccumulator::new(32);
        for (bb, w) in recs_a { a.record(bb, w); }
        for (bb, w) in recs_b { b.record(bb, w); }
        let d = manhattan(&a.normalized(), &b.normalized());
        prop_assert!((0.0..=2.0 + 1e-9).contains(&d), "distance {d} out of range");
    }

    #[test]
    fn relative_diff_axioms(a in 0.0f64..1e12, b in 0.0f64..1e12) {
        let d = relative_diff(a, b);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(d, relative_diff(b, a));
        prop_assert_eq!(relative_diff(a, a), 0.0);
    }

    #[test]
    fn footprint_invariants_hold_under_arbitrary_streams(
        signatures in prop::collection::vec(
            (prop::collection::vec(0.0f64..1.0, 4), 0.0f64..1e6),
            1..100,
        ),
        bbv_thr in 0.0f64..2.0,
        dds_thr in prop::option::of(0.0f64..1.0),
        capacity in 1usize..8,
    ) {
        let mut table = FootprintTable::new(capacity);
        let mut seen_ids = std::collections::HashSet::new();
        for (mut sig, dds) in signatures {
            // Normalize the signature so distances are meaningful.
            let s: f64 = sig.iter().sum();
            if s > 0.0 {
                sig.iter_mut().for_each(|x| *x /= s);
            }
            let m = table.classify(&sig, dds, bbv_thr, dds_thr);
            seen_ids.insert(m.phase_id);
            // Invariants: resident entries bounded by capacity; matched
            // distance below threshold; ids dense from 0.
            prop_assert!(table.entries().len() <= capacity);
            if !m.is_new {
                prop_assert!(m.distance < bbv_thr);
            }
            prop_assert!(m.phase_id < table.phases_allocated());
        }
        prop_assert_eq!(seen_ids.len() as u32, table.phases_allocated());
    }

    #[test]
    fn classification_is_deterministic(
        signatures in prop::collection::vec(
            (prop::collection::vec(0.0f64..1.0, 4), 0.0f64..100.0),
            1..50,
        ),
    ) {
        let run = || {
            let mut t = FootprintTable::new(4);
            signatures
                .iter()
                .map(|(s, d)| t.classify(s, *d, 0.3, Some(0.2)).phase_id)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
