//! Soak/churn test for the streaming phase server (satellite of PR 8).
//!
//! Admits and evicts 1 000 tenants through a 128-wide live window under
//! seeded burst arrivals, stalls, slow consumers, and forced churn, then
//! checks the properties a long-lived server must hold:
//!
//! * no footprint-table capacity leak — every eviction releases its
//!   vectors, so the final resident capacity is zero and the peak never
//!   exceeds the live window's worth;
//! * queue-depth high-water marks stay within the configured bounds;
//! * the `serve.json` artefact is byte-identical on rerun.

use dsm_harness::json::Json;
use dsm_harness::serve::{outcome_json, run_scenario, DisturbPlan, ServeScenario};
use dsm_serve::ServeConfig;

fn soak_scenario() -> ServeScenario {
    ServeScenario {
        tenants: 1000,
        concurrent: 128,
        trace_tenants: 0,
        intervals_per_tenant: 12,
        churn_every: 7,
        threads: 4,
        serve: ServeConfig {
            shards: 8,
            queue_capacity: 8,
            output_capacity: 16,
            batch_size: 4,
            max_tenants: 128,
            per_tenant_metrics: false,
            diagnose_window: 0,
        },
        disturb: DisturbPlan::mixed(0xdead_beef),
        seed: 0xdead_beef,
    }
}

#[test]
fn soak_1k_tenants_no_footprint_leak_and_bounded_queues() {
    let sc = soak_scenario();
    let (out, _) = run_scenario(&sc);

    // Full fleet cycled through: everyone admitted, everyone evicted.
    assert_eq!(out.admitted, sc.tenants as u64);
    assert_eq!(out.evicted, sc.tenants as u64);

    // The disturbances actually fired — the soak is not vacuous.
    assert!(out.burst_offers > 0, "burst arrivals never drawn");
    assert!(out.stall_rounds > 0, "tenant stalls never drawn");
    assert!(out.skipped_drains > 0, "slow consumers never drawn");
    assert!(out.abandoned > 0, "forced churn never abandoned in-flight work");

    // No footprint-table capacity leak: evictions release every vector.
    assert_eq!(
        out.final_resident_footprint, 0,
        "footprint capacity leaked after full eviction sweep"
    );
    // Peak is bounded by the live window: 128 single-processor tenants.
    let per_tenant = dsm_phase::DEFAULT_FOOTPRINT_VECTORS;
    assert!(out.peak_resident_footprint > 0);
    assert!(
        out.peak_resident_footprint <= sc.concurrent * per_tenant,
        "peak resident footprint {} exceeds live window {}",
        out.peak_resident_footprint,
        sc.concurrent * per_tenant
    );

    // Queue depth never exceeded the configured bound.
    assert!(
        out.queue_high_water <= sc.serve.queue_capacity as u64,
        "queue high-water {} above capacity {}",
        out.queue_high_water,
        sc.serve.queue_capacity
    );

    // Backpressure conservation across the whole soak.
    assert_eq!(out.offered, out.accepted + out.busy_events);
    // Every accepted signature is classified or explicitly abandoned;
    // churn-abandoned *undelivered* output appears in both `classified`
    // and `abandoned`, hence the `classified - delivered` correction.
    assert_eq!(
        out.classified + out.abandoned,
        out.accepted + (out.classified - out.delivered),
        "accepted work must be classified, delivered, or explicitly abandoned"
    );
}

#[test]
fn soak_serve_json_byte_identical_on_rerun() {
    let sc = soak_scenario();
    let (a, _) = run_scenario(&sc);
    let (b, _) = run_scenario(&sc);
    assert_eq!(a, b, "outcome structs diverged across reruns");
    let ja: Json = outcome_json(&sc, &a);
    let jb: Json = outcome_json(&sc, &b);
    assert_eq!(ja.to_string(), jb.to_string(), "serve.json bytes diverged across reruns");
}
