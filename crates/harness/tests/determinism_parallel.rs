//! Serial vs parallel determinism: the experiment engine must produce
//! byte-identical artefacts for any `--jobs` value, and reloading a trace
//! from the disk store must be indistinguishable from re-simulating.
//!
//! These tests mutate the process-wide jobs knob and store directory, so
//! they serialize on a local mutex.

use std::sync::{Mutex, MutexGuard};

use dsm_harness::figures::{figure2_with_report, figure4_with_report};
use dsm_harness::sweep::{bbv_curve_with, bbv_ddv_curve_with};
use dsm_harness::trace::{capture, clear_memory_cache};
use dsm_harness::{parallel, ExperimentConfig};
use dsm_workloads::{App, Scale};

static ENGINE_LOCK: Mutex<()> = Mutex::new(());

/// Serialize tests that touch the engine's process-wide state, and restore
/// the defaults afterwards.
struct EngineGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl EngineGuard {
    fn take() -> Self {
        let g = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        parallel::set_trace_store_dir(None);
        clear_memory_cache();
        Self(g)
    }
}

impl Drop for EngineGuard {
    fn drop(&mut self) {
        parallel::set_trace_store_dir(None);
        parallel::set_jobs(0);
        clear_memory_cache();
    }
}

#[test]
fn figures_are_byte_identical_serial_vs_four_jobs() {
    let _guard = EngineGuard::take();

    parallel::set_jobs(1);
    let (fig2_serial, rep2_serial) = figure2_with_report(Scale::Test);
    clear_memory_cache();
    let (fig4_serial, rep4_serial) = figure4_with_report(Scale::Test);
    clear_memory_cache();

    parallel::set_jobs(4);
    let (fig2_par, rep2_par) = figure2_with_report(Scale::Test);
    clear_memory_cache();
    let (fig4_par, rep4_par) = figure4_with_report(Scale::Test);

    // Full figure artefacts (every sweep point of every curve) match byte
    // for byte, as do the CSV tables and the run reports modulo timing.
    assert_eq!(
        fig2_serial.to_json().to_string(),
        fig2_par.to_json().to_string()
    );
    assert_eq!(
        fig4_serial.to_json().to_string(),
        fig4_par.to_json().to_string()
    );
    assert_eq!(fig2_serial.csv(), fig2_par.csv());
    assert_eq!(fig4_serial.csv(), fig4_par.csv());
    // `jobs` is part of the report header; the per-experiment rows (label,
    // key, source, intervals) must agree.
    assert_eq!(rep2_serial.stable_json(), {
        let mut r = rep2_par.clone();
        r.jobs = 1;
        r.stable_json()
    });
    assert_eq!(rep4_serial.stable_json(), {
        let mut r = rep4_par.clone();
        r.jobs = 1;
        r.stable_json()
    });
}

#[test]
fn sweeps_are_identical_for_any_job_count() {
    let _guard = EngineGuard::take();
    let trace = capture(ExperimentConfig::test(App::Fmm, 4));
    parallel::set_jobs(1);
    let bbv_serial = bbv_curve_with(&trace, 50);
    let ddv_serial = bbv_ddv_curve_with(&trace, 10, 5);
    parallel::set_jobs(4);
    let bbv_par = bbv_curve_with(&trace, 50);
    let ddv_par = bbv_ddv_curve_with(&trace, 10, 5);
    assert_eq!(bbv_serial.points, bbv_par.points);
    assert_eq!(ddv_serial.points, ddv_par.points);
}

#[test]
fn disk_store_roundtrip_matches_fresh_simulation() {
    let _guard = EngineGuard::take();
    let dir = std::env::temp_dir().join(format!("dsm-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    parallel::set_trace_store_dir(Some(dir.clone()));
    parallel::set_jobs(4);

    let configs = vec![
        ExperimentConfig::test(App::Lu, 2),
        ExperimentConfig::test(App::Art, 2),
        ExperimentConfig::test(App::Equake, 4),
    ];

    // Cold: everything simulates and lands in the store.
    let (cold_traces, cold_report) = parallel::capture_matrix("roundtrip", &configs);
    assert_eq!(cold_report.misses(), configs.len());
    assert_eq!(cold_report.disk_hits(), 0);

    // Warm with an empty memory cache: everything loads from disk and the
    // decoded traces (and the curves computed from them) are identical.
    clear_memory_cache();
    let (warm_traces, warm_report) = parallel::capture_matrix("roundtrip", &configs);
    assert_eq!(warm_report.disk_hits(), configs.len());
    assert_eq!(warm_report.misses(), 0);
    for (cold, warm) in cold_traces.iter().zip(&warm_traces) {
        assert_eq!(cold.config, warm.config);
        assert_eq!(cold.records, warm.records);
        assert_eq!(cold.stats, warm.stats);
        assert_eq!(cold.ddv_vectors_exchanged, warm.ddv_vectors_exchanged);
        assert_eq!(
            bbv_curve_with(cold, 20).points,
            bbv_curve_with(warm, 20).points
        );
    }

    // Fully warm: the memory cache answers without touching the store.
    let (_, hot_report) = parallel::capture_matrix("roundtrip", &configs);
    assert_eq!(hot_report.mem_hits(), configs.len());

    let _ = std::fs::remove_dir_all(&dir);
}
