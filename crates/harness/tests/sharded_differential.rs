//! Differential suite for the sharded parallel core (ISSUE 7): sharded
//! execution at every shard count must be **bit-identical** to the serial
//! core — same machine statistics, same interval records, same classified
//! phases — on all five workloads at the paper's 16 processors, with and
//! without an injected fault plan.
//!
//! The observer worker-thread count is taken from `DSM_DIFF_THREADS`
//! (default 2) so CI can run the same suite at several thread counts;
//! [`dsm_harness::trace::capture_sharded_with`] bypasses the host-core
//! budget guard on purpose — identity must hold even oversubscribed.

use dsm_harness::experiment::ExperimentConfig;
use dsm_harness::trace::{capture_sharded_with, capture_with_faults, SystemTrace};
use dsm_phase::detector::{DetectorMode, Thresholds, TraceClassifier};
use dsm_phase::DEFAULT_FOOTPRINT_VECTORS;
use dsm_sim::config::FaultPlan;
use dsm_workloads::App;

const N_PROCS: usize = 16;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, N_PROCS];

fn diff_threads() -> usize {
    std::env::var("DSM_DIFF_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// Phase ids per processor under the paper's combined BBV+DDV detector.
fn classify(trace: &SystemTrace) -> Vec<Vec<u32>> {
    trace
        .records
        .iter()
        .map(|r| {
            TraceClassifier::classify_proc(
                r,
                DetectorMode::BbvDdv,
                Thresholds { bbv: 0.1, dds: 0.1 },
                DEFAULT_FOOTPRINT_VECTORS,
            )
        })
        .collect()
}

fn assert_matches_serial(app: App, plan: FaultPlan, plan_name: &str) {
    let cfg = ExperimentConfig::test(app, N_PROCS);
    let serial = capture_with_faults(cfg, plan);
    let serial_phases = classify(&serial);
    assert!(
        serial.min_intervals() > 0,
        "{app:?}/{plan_name}: serial run captured no intervals"
    );
    let threads = diff_threads();
    for shards in SHARD_COUNTS {
        let sharded = capture_sharded_with(cfg, plan, shards, threads);
        assert_eq!(
            sharded.trace.stats, serial.stats,
            "{app:?}/{plan_name}: stats diverged at {shards} shards"
        );
        assert_eq!(
            sharded.trace.records, serial.records,
            "{app:?}/{plan_name}: interval records diverged at {shards} shards"
        );
        assert_eq!(
            sharded.trace.ddv_vectors_exchanged, serial.ddv_vectors_exchanged,
            "{app:?}/{plan_name}: DDV traffic diverged at {shards} shards"
        );
        assert_eq!(
            classify(&sharded.trace),
            serial_phases,
            "{app:?}/{plan_name}: classified phases diverged at {shards} shards"
        );
        assert_eq!(sharded.shards, shards.clamp(1, N_PROCS));
        if shards > 1 {
            assert!(
                sharded.windows.windows > 0,
                "{app:?}/{plan_name}: no conservative windows closed at {shards} shards"
            );
            assert!(sharded.windows.lookahead >= 1);
        }
    }
}

/// A fault mix that exercises drops, duplicates, latency spikes, and
/// sustained slowdowns (same family the fault-equivalence suite uses).
fn mixed_plan() -> FaultPlan {
    FaultPlan::mixed(0x5AD7_ED01, 0.02)
}

#[test]
fn lu_sharded_matches_serial() {
    assert_matches_serial(App::Lu, FaultPlan::none(), "fault-free");
    assert_matches_serial(App::Lu, mixed_plan(), "mixed-faults");
}

#[test]
fn fmm_sharded_matches_serial() {
    assert_matches_serial(App::Fmm, FaultPlan::none(), "fault-free");
    assert_matches_serial(App::Fmm, mixed_plan(), "mixed-faults");
}

#[test]
fn art_sharded_matches_serial() {
    assert_matches_serial(App::Art, FaultPlan::none(), "fault-free");
    assert_matches_serial(App::Art, mixed_plan(), "mixed-faults");
}

#[test]
fn equake_sharded_matches_serial() {
    assert_matches_serial(App::Equake, FaultPlan::none(), "fault-free");
    assert_matches_serial(App::Equake, mixed_plan(), "mixed-faults");
}

#[test]
fn ocean_sharded_matches_serial() {
    assert_matches_serial(App::Ocean, FaultPlan::none(), "fault-free");
    assert_matches_serial(App::Ocean, mixed_plan(), "mixed-faults");
}

/// The five-workload extended set is exactly what the per-app tests cover
/// (a sixth app would silently escape the differential net otherwise).
#[test]
fn differential_matrix_covers_the_extended_set() {
    assert_eq!(
        App::EXTENDED,
        [App::Lu, App::Fmm, App::Art, App::Equake, App::Ocean]
    );
}
