//! Golden regression tests: Figure 2 and Figure 4 at `Scale::Test`
//! against committed JSON fixtures.
//!
//! The fixtures pin every sweep point of every curve. Regenerate after an
//! intentional change to the simulator, detectors, or sweeps with:
//!
//! ```sh
//! DSM_UPDATE_GOLDEN=1 cargo test -p dsm-harness --test golden_figures
//! ```
//!
//! and commit the diff (review it — a fixture change IS a behaviour
//! change).

use dsm_harness::figures::{figure2, figure4, Figure};
use dsm_harness::json::{parse, Json};
use dsm_workloads::Scale;

const TOLERANCE: f64 = 1e-9;

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_against_golden(fig: &Figure, fixture: &str) {
    let path = fixture_path(fixture);
    let actual = fig.to_json();
    if std::env::var_os("DSM_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual.to_string()).unwrap();
        eprintln!("updated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); run with DSM_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let expected = parse(&text).expect("fixture parses");
    compare(&expected, &actual, fixture);
}

/// Structural comparison with a numeric tolerance: identical shapes and
/// strings, numbers within `TOLERANCE`.
fn compare(expected: &Json, actual: &Json, path: &str) {
    match (expected, actual) {
        (Json::Num(e), Json::Num(a)) => {
            assert!(
                (e - a).abs() <= TOLERANCE,
                "{path}: {e} vs {a} (|diff| = {} > {TOLERANCE})",
                (e - a).abs()
            );
        }
        (Json::Arr(e), Json::Arr(a)) => {
            assert_eq!(e.len(), a.len(), "{path}: array length changed");
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                compare(ev, av, &format!("{path}[{i}]"));
            }
        }
        (Json::Obj(e), Json::Obj(a)) => {
            let keys = |o: &[(String, Json)]| o.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>();
            assert_eq!(keys(e), keys(a), "{path}: object keys changed");
            for ((k, ev), (_, av)) in e.iter().zip(a) {
                compare(ev, av, &format!("{path}.{k}"));
            }
        }
        (e, a) => assert_eq!(e, a, "{path}: value changed"),
    }
}

#[test]
fn figure2_matches_golden() {
    check_against_golden(&figure2(Scale::Test), "fig2-test.json");
}

#[test]
fn figure4_matches_golden() {
    check_against_golden(&figure4(Scale::Test), "fig4-test.json");
}
