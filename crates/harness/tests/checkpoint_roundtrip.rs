//! Checkpoint round-trip differential matrix: for every workload, at small
//! and large processor counts, with and without an active fault plan, a run
//! resumed from a mid-run checkpoint must finish **bit-identically** to the
//! straight run it was captured from — same machine statistics and the same
//! interval records, down to the last counter.
//!
//! This is the contract the sampled-simulation pipeline stands on: if
//! restore were only approximately right, reconstruction error would mix
//! checkpointing bugs with sampling noise and the 5 % CPI gate would be
//! meaningless.

use dsm_harness::simpoint::{
    capture_with_checkpoints, capture_with_checkpoints_cfg, capture_with_checkpoints_sharded,
    resume_to_end,
};
use dsm_simpoint::codec::Checkpoint;
use dsm_harness::ExperimentConfig;
use dsm_sim::config::FaultPlan;
use dsm_sim::topology::TopologyKind;
use dsm_workloads::App;

/// Capture with checkpoints at the given boundaries, then resume from every
/// checkpoint and require an identical end state.
fn assert_roundtrip(config: ExperimentConfig, plan: FaultPlan, boundaries: &[u64]) {
    let (ckpts, golden) = capture_with_checkpoints(config, plan, boundaries);
    assert_eq!(ckpts.len(), boundaries.len(), "{}: missing checkpoints", config.label());
    for (b, bytes) in &ckpts {
        let resumed = resume_to_end(bytes);
        assert_eq!(
            resumed.stats,
            golden.stats,
            "{} (plan active: {}): stats diverged resuming from interval {b}",
            config.label(),
            plan.is_active(),
        );
        assert_eq!(
            resumed.records,
            golden.records,
            "{} (plan active: {}): records diverged resuming from interval {b}",
            config.label(),
            plan.is_active(),
        );
        assert_eq!(
            resumed.ddv_vectors_exchanged,
            golden.ddv_vectors_exchanged,
            "{} (plan active: {}): DDV traffic diverged resuming from interval {b}",
            config.label(),
            plan.is_active(),
        );
    }
}

#[test]
fn roundtrip_all_workloads_2p_under_faults() {
    for app in App::EXTENDED {
        assert_roundtrip(
            ExperimentConfig::test(app, 2),
            FaultPlan::mixed(0xC0FFEE, 0.02),
            &[1, 3],
        );
    }
}

#[test]
fn roundtrip_all_workloads_2p_fault_free() {
    for app in App::EXTENDED {
        assert_roundtrip(ExperimentConfig::test(app, 2), FaultPlan::none(), &[2]);
    }
}

#[test]
fn roundtrip_routed_fabric_nondefault_topologies() {
    // The routed-fabric column: DSMCKPT2 carries the topology and the
    // link-contention flag, and the per-directed-link busy/flit vectors are
    // indexed by that topology's link table — resume must rebuild the same
    // fabric and continue bit-identically, faults included.
    for (app, kind) in [
        (App::Lu, TopologyKind::Torus2D),
        (App::Equake, TopologyKind::Ring),
        (App::Art, TopologyKind::FatTree),
    ] {
        let config = ExperimentConfig::test(app, 2);
        let mut sys_cfg = config.system_config();
        sys_cfg.network.topology = kind;
        sys_cfg.network.link_contention = true;
        sys_cfg.fault = FaultPlan::mixed(0xFAB2, 0.02);
        let (ckpts, golden) = capture_with_checkpoints_cfg(config, sys_cfg, &[1, 3]);
        assert_eq!(ckpts.len(), 2, "{}/{}: missing checkpoints", config.label(), kind.name());
        for (b, bytes) in &ckpts {
            let resumed = resume_to_end(bytes);
            assert_eq!(
                resumed.stats,
                golden.stats,
                "{}/{}: stats diverged resuming from interval {b}",
                config.label(),
                kind.name(),
            );
            assert_eq!(
                resumed.records,
                golden.records,
                "{}/{}: records diverged resuming from interval {b}",
                config.label(),
                kind.name(),
            );
        }
    }
}

#[test]
fn roundtrip_sharded_core_resumes_bit_exactly() {
    // The sharded-core column: a checkpoint captured mid-run on the sharded
    // scheduler records its shard count in the DSMCKPT3 metadata, and
    // resume re-enables the identical sharded machine — per-shard
    // tournament queues rebuilt from the restored processor states — then
    // finishes bit-identically to the *serial* straight run (the sharded ≡
    // serial invariant composed with checkpoint/restore).
    for (app, shards) in [(App::Lu, 2), (App::Ocean, 4), (App::Art, 16)] {
        let config = ExperimentConfig::test(app, 16);
        let plan = FaultPlan::mixed(0x5AD7_C497, 0.02);
        let serial_golden = {
            let (_, golden) = capture_with_checkpoints(config, plan, &[1]);
            golden
        };
        let (ckpts, sharded_golden) =
            capture_with_checkpoints_sharded(config, plan, &[1], shards);
        assert_eq!(
            sharded_golden.stats, serial_golden.stats,
            "{app:?}: sharded capture pass diverged from serial at {shards} shards"
        );
        assert_eq!(sharded_golden.records, serial_golden.records);
        for (b, bytes) in &ckpts {
            let ck = Checkpoint::decode(bytes).expect("checkpoint decodes");
            assert_eq!(
                ck.meta.shards, shards,
                "{app:?}: DSMCKPT3 metadata lost the shard count"
            );
            let resumed = resume_to_end(bytes);
            assert_eq!(
                resumed.stats, serial_golden.stats,
                "{app:?}: stats diverged resuming sharded checkpoint at interval {b}"
            );
            assert_eq!(
                resumed.records, serial_golden.records,
                "{app:?}: records diverged resuming sharded checkpoint at interval {b}"
            );
        }
    }
}

#[test]
fn roundtrip_all_workloads_16p_under_faults() {
    // At 16 processors the test-scale run completes only a single global
    // interval, so boundary 1 is the latest state every processor has
    // passed — exactly the stale-straggler case that bit-exact restore has
    // to handle.
    for app in App::EXTENDED {
        assert_roundtrip(
            ExperimentConfig::test(app, 16),
            FaultPlan::mixed(0xD5A1, 0.02),
            &[1],
        );
    }
}
