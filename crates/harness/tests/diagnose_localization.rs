//! Blind slowdown-localization gate and the online/offline differential.
//!
//! The gate injects a targeted straggler through the PR 3 fault layer and
//! asserts the diagnosis engine finds it *blind*: the engine consumes only
//! the classified per-node streams and run telemetry — `diagnose_app`
//! hands it neither the fault plan nor the placement policy — yet its top
//! outlier must be the injected node and its flagged interval range must
//! overlap the injected epoch, on every workload.
//!
//! The differential pins the serve-path semantics: replaying the same
//! classified intervals through the windowed online [`DiagnosisSink`] (with
//! a window covering the whole stream) must reproduce the offline verdict
//! *exactly* — same clusters, scores, outliers, flags, and hints.

use dsm_diagnose::DiagnosisSink;
use dsm_harness::diagnose::{
    capture_diag, classified_streams, diagnose_app, node_telemetry, report_config, straggler_plan,
};
use dsm_harness::ExperimentConfig;
use dsm_workloads::App;

fn assert_localizes(app: App) {
    let r = diagnose_app(app, 16, false);
    let c = r.columns.iter().find(|c| c.label == "straggler").expect("straggler column");
    let (node, lo, hi) = c.injected.expect("injection recorded");
    let top = c.diagnosis.outliers.first().expect("at least one outlier");
    assert_eq!(top.node, node, "top outlier must be the injected node ({app:?})");
    let (a, b) = top.flagged.expect("flagged range");
    assert!(a <= hi && b >= lo, "flagged [{a}, {b}] misses injected [{lo}, {hi}] ({app:?})");
    assert_eq!(c.localized, Some(true));
}

#[test]
fn straggler_localizes_blind_on_lu() {
    assert_localizes(App::Lu);
}

#[test]
fn straggler_localizes_blind_on_fmm() {
    assert_localizes(App::Fmm);
}

#[test]
fn straggler_localizes_blind_on_art() {
    assert_localizes(App::Art);
}

#[test]
fn straggler_localizes_blind_on_equake() {
    assert_localizes(App::Equake);
}

#[test]
fn straggler_localizes_blind_on_ocean() {
    assert_localizes(App::Ocean);
}

#[test]
fn online_sink_reproduces_the_offline_diagnosis_exactly() {
    let config = ExperimentConfig::test(App::Lu, 16);
    let golden = capture_diag(config, None);
    let (plan, _, _) = straggler_plan(App::Lu, &golden);
    let faulty = capture_diag(config, Some(plan));
    let streams = classified_streams(&faulty);
    let telemetry = node_telemetry(&faulty, &streams);

    let cfg = report_config();
    let offline = dsm_diagnose::diagnose(&cfg, &streams, Some(&telemetry));

    // Replay the same intervals through the online sink in arrival order
    // (interleaved across nodes, index order per node — the serve batch
    // path's guarantee), with a window long enough to retain everything.
    let window = streams.iter().map(|s| s.len()).max().unwrap();
    let mut sink = DiagnosisSink::new(streams.len(), window, cfg);
    let longest = streams.iter().map(|s| s.len()).max().unwrap() as u64;
    for i in 0..longest {
        for s in &streams {
            if let Some(c) = s.intervals().get(i as usize) {
                sink.observe(c);
            }
        }
    }
    let online = sink.diagnose(Some(&telemetry));
    assert_eq!(online, offline, "online and offline verdicts must be identical");
    assert_eq!(sink.realigns(), 0);
}
