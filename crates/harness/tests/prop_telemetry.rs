//! Property tests for the Chrome `trace_event` exporter: for *arbitrary*
//! snapshots (random track names including escapes, random span layouts,
//! random drop counts) the exported document parses as JSON, every event
//! carries non-negative integer `ts`/`dur`, drop accounting is reported
//! both per track and in `otherData`, and snapshots built the way the
//! recorder builds them (spans tiling each track) never produce two
//! overlapping events on one thread lane.

use proptest::prelude::*;

use dsm_harness::json::{parse, Json};
use dsm_telemetry::chrome;
use dsm_telemetry::{SpanEvent, Snapshot, TrackSnapshot};

fn name_strategy() -> impl Strategy<Value = String> {
    // Plain letters plus every character class the escaper must handle.
    prop::collection::vec(
        prop::sample::select(vec!['a', 'k', 'z', '_', ' ', '"', '\\', '\n', '\t', '\u{1}', 'µ']),
        0..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// A track whose spans tile the timeline (ts strictly advancing past the
/// previous span's end) — the invariant the simulator's recorder upholds.
fn tiled_track_strategy() -> impl Strategy<Value = TrackSnapshot> {
    (
        name_strategy(),
        prop::collection::vec((name_strategy(), 0u64..1000, 0u64..500), 0..20),
        0u64..10,
    )
        .prop_map(|(track_name, raw, dropped)| {
            let mut ts = 0u64;
            let spans = raw
                .into_iter()
                .map(|(name, gap, dur)| {
                    let start = ts + gap;
                    ts = start + dur;
                    SpanEvent { name, ts: start, dur }
                })
                .collect();
            TrackSnapshot { name: track_name, spans, dropped }
        })
}

fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
    (prop::collection::vec(tiled_track_strategy(), 0..5), any::<bool>()).prop_map(
        |(tracks, enabled)| Snapshot {
            enabled,
            metrics: Vec::new(),
            tracks,
        },
    )
}

/// All events of the parsed document.
fn trace_events(doc: &Json) -> &[Json] {
    doc.get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
}

fn field_u64(ev: &Json, key: &str) -> u64 {
    let x = ev.get(key).and_then(Json::as_f64).expect("numeric field");
    assert!(x >= 0.0 && x.fract() == 0.0, "{key} must be a non-negative integer, got {x}");
    x as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn export_parses_and_accounts_for_every_span(snap in snapshot_strategy()) {
        let text = chrome::export(&snap);
        let doc = parse(&text).expect("exported trace must parse as JSON");

        let events = trace_events(&doc);
        // One "M" metadata event per track plus one "X" event per span.
        let n_spans: usize = snap.tracks.iter().map(|t| t.spans.len()).sum();
        prop_assert_eq!(events.len(), snap.tracks.len() + n_spans);

        // otherData reports the global accounting.
        let other = doc.get("otherData").expect("otherData");
        prop_assert_eq!(
            field_u64(other, "recorded_spans"),
            snap.recorded_spans()
        );
        prop_assert_eq!(field_u64(other, "dropped_spans"), snap.dropped_spans());

        // Per-track: metadata carries the drop count; every X event has
        // non-negative integer ts/dur and a tid pointing at a real track.
        let mut meta_drops = vec![None; snap.tracks.len()];
        for ev in events {
            let tid = field_u64(ev, "tid") as usize;
            prop_assert!(tid < snap.tracks.len());
            match ev.get("ph").and_then(Json::as_str) {
                Some("M") => {
                    meta_drops[tid] = Some(field_u64(ev.get("args").unwrap(), "dropped"));
                }
                Some("X") => {
                    field_u64(ev, "ts");
                    field_u64(ev, "dur");
                }
                other => prop_assert!(false, "unexpected phase {other:?}"),
            }
        }
        for (t, drops) in snap.tracks.iter().zip(&meta_drops) {
            prop_assert_eq!(*drops, Some(t.dropped), "track {} drop count", t.name);
        }
    }

    #[test]
    fn spans_on_one_lane_never_overlap(snap in snapshot_strategy()) {
        let text = chrome::export(&snap);
        let doc = parse(&text).expect("parse");
        // Collect X events per tid and check pairwise tiling: each span
        // starts at or after the previous one's end.
        let mut last_end: Vec<u64> = vec![0; snap.tracks.len()];
        for ev in trace_events(&doc) {
            if ev.get("ph").and_then(Json::as_str) != Some("X") {
                continue;
            }
            let tid = field_u64(ev, "tid") as usize;
            let ts = field_u64(ev, "ts");
            let dur = field_u64(ev, "dur");
            prop_assert!(
                ts >= last_end[tid],
                "span at ts={ts} overlaps previous end={} on lane {tid}",
                last_end[tid]
            );
            last_end[tid] = ts + dur;
        }
    }

    #[test]
    fn export_is_deterministic(snap in snapshot_strategy()) {
        prop_assert_eq!(chrome::export(&snap), chrome::export(&snap));
    }
}
