//! Diagnose artefact byte-stability: two independent report builds must
//! write byte-identical `diagnose.json` files through the shared writer.
//!
//! This is the only test in this binary on purpose: it owns the
//! `DSM_RESULTS_DIR` environment variable for the process.

use dsm_harness::diagnose::{diagnose_app, reports_json, reports_text};
use dsm_harness::json::{parse, Json};
use dsm_harness::report;
use dsm_workloads::App;

#[test]
fn diagnose_json_is_byte_identical_across_reruns() {
    let tmp = std::env::temp_dir().join(format!("dsm-diagnose-artifacts-{}", std::process::id()));
    std::env::set_var("DSM_RESULTS_DIR", &tmp);

    // One app, all three columns — the full artefact shape, assembled the
    // way the `diagnose` binary does, twice, from independent captures.
    let build = || vec![diagnose_app(App::Lu, 16, true)];

    let a = build();
    let path_a = report::write_json("diagnose.json", &reports_json(&a)).expect("write first");
    let bytes_a = std::fs::read(&path_a).expect("read first");

    let b = build();
    let path_b = report::write_json("diagnose.json", &reports_json(&b)).expect("write second");
    let bytes_b = std::fs::read(&path_b).expect("read second");

    assert_eq!(path_a, path_b);
    assert_eq!(bytes_a, bytes_b, "diagnose.json must be byte-identical across reruns");
    assert_eq!(bytes_a, reports_json(&a).to_string().into_bytes());
    let back = parse(std::str::from_utf8(&bytes_b).unwrap()).expect("parse artefact");
    assert_eq!(back.get("schema").unwrap().as_str(), Some("dsm-diagnose/v1"));

    // The text rendering is deterministic too.
    assert_eq!(reports_text(&a), reports_text(&b));

    std::env::remove_var("DSM_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(tmp);
}
