//! Feature-on telemetry smoke: one instrumented capture per workload at 2
//! processors produces a valid Chrome trace with real spans, and the JSONL
//! metrics dump is byte-identical across two deterministic runs.
//!
//! Compiled only with `--features telemetry`; the CI `telemetry-on` job
//! runs it.
#![cfg(feature = "telemetry")]

use dsm_harness::json::{parse, Json};
use dsm_harness::telemetry::{capture_with_telemetry, export_run, metrics_jsonl};
use dsm_harness::ExperimentConfig;
use dsm_workloads::App;

#[test]
fn every_workload_produces_a_valid_chrome_trace_at_2p() {
    let dir = std::env::temp_dir().join(format!("dsm-telem-smoke-{}", std::process::id()));
    for app in App::ALL {
        let config = ExperimentConfig::test(app, 2);
        let cap = capture_with_telemetry(config);
        assert!(cap.snapshot.enabled, "{app:?}: telemetry must be on");
        assert!(
            cap.snapshot.recorded_spans() > 0,
            "{app:?}: expected spans from an instrumented run"
        );

        let paths = export_run(&dir, &config.label(), &cap.snapshot).expect("export");
        let trace = std::fs::read_to_string(&paths[0]).expect("read trace");
        let doc = parse(&trace).expect("chrome trace must parse as JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).expect("events");
        let n_x = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .count();
        assert_eq!(n_x as u64, cap.snapshot.recorded_spans(), "{app:?}");
        // 2n coherence/interval tracks per node, each with its metadata.
        let n_meta = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .count();
        assert_eq!(n_meta, cap.snapshot.tracks.len(), "{app:?}");
        let other = doc.get("otherData").expect("otherData");
        assert_eq!(other.get("enabled"), Some(&Json::Bool(true)));
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn metrics_dump_is_byte_identical_across_runs() {
    let config = ExperimentConfig::test(App::Lu, 2);
    let a = capture_with_telemetry(config);
    let b = capture_with_telemetry(config);
    assert_eq!(
        metrics_jsonl(&a.snapshot.metrics),
        metrics_jsonl(&b.snapshot.metrics),
        "deterministic runs must dump byte-identical metrics"
    );
    assert_eq!(
        dsm_telemetry::chrome::export(&a.snapshot),
        dsm_telemetry::chrome::export(&b.snapshot),
        "deterministic runs must export byte-identical traces"
    );
    // The dump mirrors the machine statistics the run reported.
    let dump = metrics_jsonl(&a.snapshot.metrics);
    let l2: u64 = a.trace.stats.procs.iter().map(|p| p.l2_misses).sum();
    let line = dump
        .lines()
        .find(|l| l.contains("\"sim/procs/l2_misses\""))
        .expect("l2 miss counter in dump");
    let v = parse(line).unwrap();
    assert_eq!(v.get("value").unwrap().as_f64(), Some(l2 as f64));
}
