//! Artifact byte-stability: every `.json` artefact goes through
//! [`dsm_harness::report::write_json`], and two runs with the same inputs
//! must produce byte-identical files. Exercised here on the `faults.json`
//! document exactly as the `faults` binary assembles it.
//!
//! This is the only test in this binary on purpose: it owns the
//! `DSM_RESULTS_DIR` environment variable for the process.

use dsm_harness::faults::fault_sweep;
use dsm_harness::json::{parse, Json};
use dsm_harness::report;
use dsm_workloads::App;

#[test]
fn faults_json_is_byte_identical_across_reruns() {
    let tmp = std::env::temp_dir().join(format!("dsm-artifacts-test-{}", std::process::id()));
    std::env::set_var("DSM_RESULTS_DIR", &tmp);

    // Assemble the document the way the `faults` binary does, twice, from
    // two independent sweeps (small: one app, one rate).
    let build = || {
        let s = fault_sweep(App::Lu, 2, 42, &[0.01]);
        Json::obj()
            .field("experiment", "fault_sweep")
            .field("seed", 42u64)
            .field("sweeps", Json::Arr(vec![s.to_json()]))
    };

    let a = build();
    let path_a = report::write_json("faults.json", &a).expect("write first");
    let bytes_a = std::fs::read(&path_a).expect("read first");

    let b = build();
    let path_b = report::write_json("faults.json", &b).expect("write second");
    let bytes_b = std::fs::read(&path_b).expect("read second");

    assert_eq!(path_a, path_b);
    assert_eq!(bytes_a, bytes_b, "faults.json must be byte-identical across reruns");
    // The shared writer serializes exactly the deterministic Json encoding.
    assert_eq!(bytes_a, a.to_string().into_bytes());
    // And the artefact round-trips through the parser.
    let back = parse(std::str::from_utf8(&bytes_b).unwrap()).expect("parse artefact");
    assert_eq!(back.get("experiment").unwrap().as_str(), Some("fault_sweep"));
    assert_eq!(back.get("sweeps").unwrap().as_arr().unwrap().len(), 1);

    std::env::remove_var("DSM_RESULTS_DIR");
    let _ = std::fs::remove_dir_all(tmp);
}
