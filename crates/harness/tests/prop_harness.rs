//! Property tests for the harness: threshold generation, the adaptive
//! tuning protocol's cost bounds, and the experiment engine's
//! content-addressed cache keys.

use proptest::prelude::*;

use dsm_harness::adaptive::{run_tuning, TuningPolicy};
use dsm_harness::parallel::cache_key;
use dsm_harness::sweep::log_spaced;
use dsm_harness::ExperimentConfig;
use dsm_workloads::{App, Scale};

fn arb_config() -> impl Strategy<Value = ExperimentConfig> {
    (
        prop::sample::select(App::EXTENDED.to_vec()),
        prop::sample::select(vec![2usize, 4, 8, 16, 32]),
        prop::sample::select(vec![Scale::Test, Scale::Scaled, Scale::Paper]),
        1_000u64..10_000_000,
    )
        .prop_map(|(app, n_procs, scale, interval_base)| ExperimentConfig {
            app,
            n_procs,
            scale,
            interval_base,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log_spaced_is_monotone_and_hits_endpoints(
        n in 2usize..300,
        lo in 1e-6f64..0.1,
        span in 1.1f64..1000.0,
    ) {
        let hi = lo * span;
        let v = log_spaced(n, lo, hi);
        prop_assert_eq!(v.len(), n);
        prop_assert!((v[0] - lo).abs() / lo < 1e-9);
        prop_assert!((v[n - 1] - hi).abs() / hi < 1e-9);
        prop_assert!(v.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn tuning_never_beats_the_oracle(
        stream in prop::collection::vec((0u32..6, 0.1f64..10.0, 100u64..10_000), 0..200),
        n_configs in 1usize..6,
        trials in 1usize..3,
    ) {
        let out = run_tuning(&stream, TuningPolicy { n_configs, trials_per_config: trials });
        prop_assert!(out.tuned_cycles >= out.oracle_cycles - 1e-6,
            "tuned {} < oracle {}", out.tuned_cycles, out.oracle_cycles);
        prop_assert!(out.untuned_cycles >= out.oracle_cycles - 1e-6);
        prop_assert!(out.tuning_intervals <= out.total_intervals);
        prop_assert_eq!(out.total_intervals, stream.len());
        let frac = out.tuning_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn tuning_cost_is_bounded_by_config_surface(
        stream in prop::collection::vec((0u32..4, 0.1f64..10.0, 100u64..10_000), 1..100),
    ) {
        // Even the worst configuration multiplies cycles by at most 1.3, so
        // tuned cycles are within 1.3/0.85 of the oracle.
        let out = run_tuning(&stream, TuningPolicy::default());
        prop_assert!(out.tuned_cycles <= out.oracle_cycles * (1.3 / 0.85) + 1e-6);
    }

    #[test]
    fn cache_key_is_a_pure_function_of_the_config(cfg in arb_config()) {
        prop_assert_eq!(cache_key(&cfg), cache_key(&cfg));
        // The key embeds the human-readable label for store inspection.
        prop_assert!(cache_key(&cfg).starts_with(&cfg.label()));
    }

    #[test]
    fn cache_key_agrees_with_config_equality(a in arb_config(), b in arb_config()) {
        prop_assert_eq!(a == b, cache_key(&a) == cache_key(&b),
            "configs {:?} vs {:?} disagree with their keys", a, b);
    }

    #[test]
    fn cache_key_changes_when_any_field_changes(cfg in arb_config(), bump in 1u64..100_000) {
        let k = cache_key(&cfg);
        let other_app = *App::EXTENDED.iter().find(|&&a| a != cfg.app).unwrap();
        let other_scale = [Scale::Test, Scale::Scaled, Scale::Paper]
            .into_iter()
            .find(|&s| s != cfg.scale)
            .unwrap();
        let variants = [
            ExperimentConfig { app: other_app, ..cfg },
            ExperimentConfig { n_procs: cfg.n_procs * 2, ..cfg },
            ExperimentConfig { scale: other_scale, ..cfg },
            ExperimentConfig { interval_base: cfg.interval_base + bump, ..cfg },
        ];
        for v in variants {
            prop_assert_ne!(&k, &cache_key(&v), "field change kept key for {:?}", v);
        }
    }
}
