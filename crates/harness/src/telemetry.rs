//! Harness-side telemetry: instrumented captures and artifact export.
//!
//! The simulator and the detector record into their own
//! [`dsm_telemetry`] facades (real when the `telemetry` feature is on,
//! zero-sized stubs otherwise); this module is the always-compiled layer
//! that collects their [`Snapshot`]s and turns them into the three
//! artifact forms every experiment binary can emit via
//! `--telemetry-out <dir>`:
//!
//! * `<label>.trace.json` — Chrome `trace_event` JSON; open it in
//!   `chrome://tracing` or Perfetto to see coherence transactions and
//!   sampling intervals per node on a shared cycle timeline;
//! * `<label>.metrics.jsonl` — one metric per line, sorted by name,
//!   written with the deterministic [`crate::json`] serializer so two
//!   identical runs dump byte-identical files;
//! * `<label>.summary.txt` — a plain-text table (via
//!   [`dsm_analysis::table::Table`]) for eyeballs and diffs.
//!
//! With the feature disabled the snapshots come back `enabled: false`
//! and empty; export still succeeds and the artifacts say so, so
//! scripts do not need to branch on the build flavour.

use std::io;
use std::path::{Path, PathBuf};

use dsm_phase::detector::{DetectorGeometry, TraceCollector};
use dsm_sim::system::System;
use dsm_telemetry::{chrome, MetricSample, MetricValue, MetricsRegistry, Snapshot};
use dsm_workloads::{make_stream, App, Scale};

use crate::experiment::ExperimentConfig;
use crate::json::Json;
use crate::trace::SystemTrace;

/// A telemetry-instrumented capture: the usual trace plus the merged
/// snapshot (simulator probes, system stats, DDV traffic).
#[derive(Debug, Clone)]
pub struct TelemetryCapture {
    pub trace: SystemTrace,
    pub snapshot: Snapshot,
}

/// Run the simulation for `config` like [`crate::trace::capture`], but
/// keep the telemetry snapshot alongside the trace. The simulated run is
/// identical — telemetry never feeds back into timing.
pub fn capture_with_telemetry(config: ExperimentConfig) -> TelemetryCapture {
    let sys_cfg = config.system_config();
    assert_eq!(sys_cfg.n_procs, config.n_procs);
    let stream = make_stream(config.app, config.n_procs, config.scale);
    let collector = TraceCollector::for_hypercube(config.n_procs, DetectorGeometry::default());
    let system = System::new(sys_cfg, stream, collector);
    let (stats, collector, mut snapshot) = system.run_telemetry();
    if snapshot.enabled {
        // Fold the detector-side DDV traffic into the same registry the
        // simulator published to, keeping one flat, sorted namespace.
        let mut reg = MetricsRegistry::new();
        reg.absorb(&snapshot.metrics);
        collector.ddv().publish_metrics("detector/ddv", &mut reg);
        snapshot.metrics = reg.samples();
    }
    TelemetryCapture {
        trace: SystemTrace {
            config,
            ddv_vectors_exchanged: collector.ddv().vectors_exchanged(),
            records: collector.records,
            stats,
        },
        snapshot,
    }
}

/// Serialize one metric sample as a deterministic JSON object.
fn sample_json(s: &MetricSample) -> Json {
    match &s.value {
        MetricValue::Counter(v) => Json::obj()
            .field("name", s.name.as_str())
            .field("type", "counter")
            .field("value", *v),
        MetricValue::Gauge(v) => Json::obj()
            .field("name", s.name.as_str())
            .field("type", "gauge")
            .field("value", *v),
        MetricValue::Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        } => {
            let b: Vec<Json> = buckets
                .iter()
                .map(|&(i, c)| Json::Arr(vec![Json::from(i as u64), Json::from(c)]))
                .collect();
            Json::obj()
                .field("name", s.name.as_str())
                .field("type", "histogram")
                .field("count", *count)
                .field("sum", *sum)
                // An empty histogram's min is the u64::MAX sentinel; null
                // reads better than 1.8e19 in a dump.
                .field(
                    "min",
                    if *count == 0 { Json::Null } else { Json::from(*min) },
                )
                .field("max", *max)
                .field("buckets", Json::Arr(b))
        }
    }
}

/// The JSONL metrics dump: one object per line, already sorted by name
/// (snapshots are produced sorted). Deterministic byte-for-byte.
pub fn metrics_jsonl(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        out.push_str(&sample_json(s).to_string());
        out.push('\n');
    }
    out
}

/// Human-readable summary table for a snapshot: every metric, then span
/// accounting per track (recorded/dropped — truncation is never silent).
pub fn summary_text(label: &str, snapshot: &Snapshot) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    rows.push(("telemetry".into(), if snapshot.enabled { "on" } else { "off" }.into()));
    for s in &snapshot.metrics {
        let v = match &s.value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => format!("{v}"),
            MetricValue::Histogram {
                count, sum, min, max, ..
            } => {
                if *count == 0 {
                    "count=0".into()
                } else {
                    format!(
                        "count={count} mean={:.1} min={min} max={max}",
                        *sum as f64 / *count as f64
                    )
                }
            }
        };
        rows.push((s.name.clone(), v));
    }
    for t in &snapshot.tracks {
        rows.push((
            format!("spans[{}]", t.name),
            format!("{} recorded, {} dropped", t.spans.len(), t.dropped),
        ));
    }
    dsm_analysis::table::Table::kv(format!("telemetry summary: {label}"), &rows).render()
}

/// Export the three artifacts for one labeled snapshot into `dir`
/// (created on demand). Returns the written paths.
pub fn export_run(dir: &Path, label: &str, snapshot: &Snapshot) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(3);
    let trace = dir.join(format!("{label}.trace.json"));
    std::fs::write(&trace, chrome::export(snapshot))?;
    paths.push(trace);
    let metrics = dir.join(format!("{label}.metrics.jsonl"));
    std::fs::write(&metrics, metrics_jsonl(&snapshot.metrics))?;
    paths.push(metrics);
    let summary = dir.join(format!("{label}.summary.txt"));
    std::fs::write(&summary, summary_text(label, snapshot))?;
    paths.push(summary);
    Ok(paths)
}

/// Export a metrics-only registry (no span tracks) — used by binaries to
/// dump harness-level counters such as the [`crate::parallel::RunReport`]
/// cache statistics.
pub fn export_registry(dir: &Path, label: &str, reg: &MetricsRegistry) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{label}.metrics.jsonl"));
    std::fs::write(&path, metrics_jsonl(&reg.samples()))?;
    Ok(path)
}

/// Parse `--telemetry-out <dir>` from the command line. `None` when the
/// flag is absent (telemetry export off — the default).
pub fn telemetry_out_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--telemetry-out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Capture every workload at `n_procs`/`scale` with telemetry and export
/// one artifact triple per workload into `dir`. Returns all written paths.
pub fn export_workloads(dir: &Path, scale: Scale, n_procs: usize) -> io::Result<Vec<PathBuf>> {
    let mut paths = Vec::new();
    for app in App::ALL {
        let config = match scale {
            Scale::Test => ExperimentConfig::test(app, n_procs),
            Scale::Scaled => ExperimentConfig::scaled(app, n_procs),
            Scale::Paper => ExperimentConfig::paper(app, n_procs),
        };
        let cap = capture_with_telemetry(config);
        paths.extend(export_run(dir, &config.label(), &cap.snapshot)?);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut t = dsm_telemetry::Telemetry::with_capacity(1, 4);
        let c = t.counter("a/count");
        let h = t.histogram("a/lat");
        let n = t.intern("work");
        t.set_track_name(0, "node0");
        t.add(c, 3);
        t.record(h, 0);
        t.record(h, 9);
        t.span(0, n, 5, 10);
        t.snapshot()
    }

    #[test]
    fn jsonl_is_one_sorted_line_per_metric() {
        let snap = sample_snapshot();
        let dump = metrics_jsonl(&snap.metrics);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = crate::json::parse(lines[0]).unwrap();
        assert_eq!(first.get("name").unwrap().as_str(), Some("a/count"));
        assert_eq!(first.get("type").unwrap().as_str(), Some("counter"));
        assert_eq!(first.get("value").unwrap().as_f64(), Some(3.0));
        let second = crate::json::parse(lines[1]).unwrap();
        assert_eq!(second.get("type").unwrap().as_str(), Some("histogram"));
        assert_eq!(second.get("count").unwrap().as_f64(), Some(2.0));
        assert_eq!(second.get("min").unwrap().as_f64(), Some(0.0));
        assert_eq!(second.get("max").unwrap().as_f64(), Some(9.0));
        assert_eq!(second.get("buckets").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn empty_histogram_min_is_null() {
        let mut reg = MetricsRegistry::new();
        reg.histogram("empty");
        let dump = metrics_jsonl(&reg.samples());
        let v = crate::json::parse(dump.trim()).unwrap();
        assert_eq!(v.get("min"), Some(&Json::Null));
    }

    #[test]
    fn summary_lists_metrics_and_span_accounting() {
        let snap = sample_snapshot();
        let s = summary_text("demo", &snap);
        assert!(s.contains("telemetry summary: demo"));
        assert!(s.contains("a/count"));
        assert!(s.contains("spans[node0]"));
        assert!(s.contains("1 recorded, 0 dropped"));
    }

    #[test]
    fn export_writes_three_artifacts() {
        let dir = std::env::temp_dir().join(format!("dsm-telem-export-{}", std::process::id()));
        let snap = sample_snapshot();
        let paths = export_run(&dir, "t", &snap).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert!(p.exists(), "{p:?}");
        }
        // The chrome artifact parses as JSON.
        let trace = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(crate::json::parse(&trace).is_ok());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn capture_with_telemetry_matches_plain_capture() {
        let config = ExperimentConfig::test(dsm_workloads::App::Lu, 2);
        let plain = crate::trace::capture(config);
        let cap = capture_with_telemetry(config);
        assert_eq!(cap.trace.stats, plain.stats);
        assert_eq!(cap.trace.records, plain.records);
        assert_eq!(cap.trace.ddv_vectors_exchanged, plain.ddv_vectors_exchanged);
        assert_eq!(cap.snapshot.enabled, cfg!(feature = "telemetry"));
        if cfg!(feature = "telemetry") {
            assert!(cap.snapshot.recorded_spans() > 0);
            // The detector-side DDV metrics were folded in.
            assert!(cap
                .snapshot
                .metrics
                .iter()
                .any(|m| m.name == "detector/ddv/vectors_exchanged"));
        } else {
            assert!(cap.snapshot.metrics.is_empty());
        }
    }
}
