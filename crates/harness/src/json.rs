//! Minimal deterministic JSON: a value tree, a compact writer, and a
//! recursive-descent parser.
//!
//! The workspace deliberately carries no serializer dependency (see
//! `vendor/README.md`), and the experiment engine needs byte-stable
//! artefacts: object keys keep insertion order, and numbers are printed
//! with Rust's shortest-round-trip float formatting, so equal values
//! always produce equal bytes.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (determinism).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder starting empty.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field (panics on non-objects: builder misuse, not data).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (no whitespace); `to_string()` comes with it.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_number(x: f64, out: &mut String) {
    if !x.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's Display for f64 is shortest-round-trip: deterministic and
        // exact on re-parse.
        let _ = write!(out, "{x}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<i64> for Json {
    fn from(x: i64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(items: &[T]) -> Json {
        Json::Arr(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map(Into::into).unwrap_or(Json::Null)
    }
}

/// Parse a JSON document. Returns `Err` with a byte offset on malformed
/// input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        s.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at offset {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound_value() {
        let v = Json::obj()
            .field("name", "fig2")
            .field("jobs", 4u64)
            .field("ok", true)
            .field("missing", Json::Null)
            .field(
                "curve",
                Json::Arr(vec![
                    Json::obj().field("phases", 1.5).field("cov", 0.25),
                    Json::obj()
                        .field("phases", 2.0)
                        .field("cov", Json::Num(1e-9)),
                ]),
            );
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // Byte-stable: serializing the parse result reproduces the text.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, 2.0f64.powi(-40), 123456.789, -0.0625] {
            let text = Json::Num(x).to_string();
            let back = parse(&text).unwrap();
            assert_eq!(back.as_f64().unwrap(), x, "text {text}");
        }
    }

    #[test]
    fn strings_escape() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": [1, 2.5], "b": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert!(v.get("zzz").is_none());
    }
}
