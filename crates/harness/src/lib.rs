//! # dsm-harness — experiment orchestration
//!
//! Ties the simulator, workloads, detectors, and analysis together to
//! regenerate every table and figure of the paper:
//!
//! * [`experiment`] — experiment configuration (app × node count × scale);
//! * [`trace`] — one-simulation-per-configuration capture of per-interval
//!   feature records, with an in-memory cache shared across sweeps;
//! * [`sweep`] — threshold sweeps producing CoV curves for BBV, BBV+DDV,
//!   the related-work baselines, and the DDS ablations;
//! * [`figures`] — Figure 2 (baseline BBV at 2/8/32P) and Figure 4
//!   (BBV vs BBV+DDV at 8/32P), as ASCII charts and CSV;
//! * [`tables`] — Tables I and II;
//! * [`overhead`] — the §III-B communication-overhead model (~160 kB/s,
//!   <0.15 % of memory-controller bandwidth);
//! * [`adaptive`] — the §II trial-and-error reconfiguration loop, to turn
//!   CoV/phase-count numbers into end-to-end tuning cost;
//! * [`adapt`] — the concrete counterpart: `dsm_adapt::AdaptSession` runs
//!   against the live simulator so locked configurations are real
//!   reconfigurations (page migration, DVFS epochs, big/little cores);
//! * [`faults`] — the fault-injection robustness sweep: CoV-of-CPI
//!   degradation vs a fault-free golden run, with conservation checks;
//! * [`diagnose`] — cross-node phase-similarity diagnostics: straggler
//!   detection and root-cause attribution from classified-interval
//!   streams, offline over the capture corpus;
//! * [`topology`] — the interconnect-layout sweep: detector quality and
//!   per-directed-link demand across hypercube, mesh, torus, ring, and
//!   fat-tree fabrics;
//! * [`parallel`] — the parallel experiment engine: a `--jobs` worker pool,
//!   a content-addressed on-disk trace store, and structured run reports,
//!   all with byte-identical serial/parallel output;
//! * [`json`] — the deterministic JSON value type the engine's artefacts
//!   are written with;
//! * [`report`] — results-directory output helpers;
//! * [`simpoint`] — phase-guided sampled simulation: checkpoint capture,
//!   representative replay, and whole-run CPI reconstruction;
//! * [`telemetry`] — instrumented captures and the Chrome-trace / JSONL /
//!   summary exporters behind every binary's `--telemetry-out` flag.

pub mod adapt;
pub mod adaptive;
pub mod diagnose;
pub mod experiment;
pub mod faults;
pub mod figures;
pub mod json;
pub mod overhead;
pub mod parallel;
pub mod report;
pub mod scale;
pub mod sensitivity;
pub mod serve;
pub mod simpoint;
pub mod sweep;
pub mod tables;
pub mod telemetry;
pub mod topology;
pub mod trace;

pub use experiment::ExperimentConfig;
pub use faults::{fault_sweep, FaultPoint, FaultSweep};
pub use parallel::{capture_matrix, par_map, RunReport, TraceStore};
pub use serve::{run_scenario, DisturbPlan, ServeOutcome, ServeScenario};
pub use simpoint::{sampled_run, SimpointResult};
pub use sweep::{bbv_curve, bbv_ddv_curve};
pub use topology::{topology_sweep, TopologyPoint, TopologySweep};
pub use trace::{capture, capture_with_faults, SystemTrace};
