//! Fault-injection robustness sweep: run every workload under increasing
//! fault rates and report CoV-of-CPI degradation against the fault-free
//! golden run, plus the conservation and termination evidence.
//!
//! Usage: `faults [seed]` (default seed 42). Artefacts: `faults.txt`
//! (table) and `faults.json` (schema in EXPERIMENTS.md).

use dsm_harness::faults::{fault_sweep, DEFAULT_RATES};
use dsm_harness::json::Json;
use dsm_harness::report;
use dsm_workloads::App;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(42);

    let mut out = String::new();
    let mut sweeps = Vec::new();
    for app in App::ALL {
        let s = fault_sweep(app, 4, seed, &DEFAULT_RATES);
        out.push_str(&s.render());
        out.push('\n');
        sweeps.push(s.to_json());
    }
    print!("{out}");

    report::announce(&report::write_text("faults.txt", &out).expect("write table"));
    let json = Json::obj()
        .field("experiment", "fault_sweep")
        .field("seed", seed)
        .field("sweeps", Json::Arr(sweeps))
        .to_string();
    report::announce(&report::write_text("faults.json", &json).expect("write json"));
}
