//! Fault-injection robustness sweep: run every workload under increasing
//! fault rates and report CoV-of-CPI degradation against the fault-free
//! golden run, plus the conservation and termination evidence.
//!
//! Usage: `faults [seed] [--telemetry-out <dir>] [--checkpoint-every <n>]
//! [--resume <ckpt>]` (default seed 42).
//! Artefacts: `faults.txt` (table) and `faults.json` (schema in
//! EXPERIMENTS.md); with `--telemetry-out`, one Chrome-trace / metrics /
//! summary triple per workload (telemetry schema also in EXPERIMENTS.md).
//!
//! `--checkpoint-every <n>` replaces the sweep: every workload runs once
//! under the mixed fault plan at the given seed, writing a `DSMCKPT1`
//! checkpoint to `results/checkpoints/` at every `n`-th global interval
//! boundary. `--resume <ckpt>` restores one of those files, simulates it to
//! completion, and prints the resumed machine statistics.

use dsm_analysis::Table;
use dsm_harness::faults::{fault_sweep, DEFAULT_RATES};
use dsm_harness::json::Json;
use dsm_harness::simpoint::{capture_checkpoint_every, resume_to_end};
use dsm_harness::{report, telemetry, ExperimentConfig};
use dsm_sim::config::FaultPlan;
use dsm_simpoint::Checkpoint;
use dsm_workloads::{App, Scale};

/// `--resume <ckpt>`: restore the checkpoint, run to completion, report.
fn resume_mode(path: &str) {
    let bytes = std::fs::read(path).expect("read checkpoint file");
    let ck = Checkpoint::decode(&bytes).expect("decode checkpoint");
    let trace = resume_to_end(&bytes);
    let pairs = vec![
        ("app".to_string(), ck.meta.app.name().to_string()),
        ("n_procs".to_string(), ck.meta.n_procs.to_string()),
        ("resumed_at_interval".to_string(), ck.meta.interval_index.to_string()),
        ("fault_plan_active".to_string(), ck.meta.plan.is_active().to_string()),
        ("finish_cycle".to_string(), trace.stats.finish_cycle.to_string()),
        ("total_insns".to_string(), trace.stats.total_insns().to_string()),
        ("system_ipc".to_string(), format!("{:.4}", trace.stats.system_ipc())),
        ("intervals_recorded".to_string(), trace.total_intervals().to_string()),
    ];
    print!("{}", Table::kv(format!("resumed {path}"), &pairs).render());
}

/// `--checkpoint-every <n>`: checkpointed faulty runs for every workload.
fn checkpoint_mode(every: u64, seed: u64) {
    let dir = report::results_dir().expect("results dir").join("checkpoints");
    std::fs::create_dir_all(&dir).expect("create checkpoints dir");
    for app in App::ALL {
        let config = ExperimentConfig::test(app, 4);
        let plan = FaultPlan::mixed(seed, 0.02);
        let (ckpts, trace) = capture_checkpoint_every(config, plan, every);
        for (boundary, bytes) in &ckpts {
            let path = dir.join(format!("{}-i{boundary}.ckpt", config.label()));
            std::fs::write(&path, bytes).expect("write checkpoint");
            report::announce(&path);
        }
        println!(
            "{}: {} checkpoints (every {every} intervals, {} recorded); resume with \
             `faults --resume results/checkpoints/{}-i<N>.ckpt`",
            config.label(),
            ckpts.len(),
            trace.total_intervals(),
            config.label(),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut checkpoint_every: Option<u64> = None;
    let mut resume: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--telemetry-out" {
            i += 2; // flag plus its directory value
            continue;
        }
        if args[i] == "--checkpoint-every" {
            checkpoint_every =
                Some(args[i + 1].parse().expect("--checkpoint-every takes an interval count"));
            i += 2;
            continue;
        }
        if args[i] == "--resume" {
            resume = Some(args[i + 1].clone());
            i += 2;
            continue;
        }
        if !args[i].starts_with("--") {
            seed = args[i].parse().expect("seed must be an integer");
        }
        i += 1;
    }

    if let Some(path) = resume {
        resume_mode(&path);
        return;
    }
    if let Some(every) = checkpoint_every {
        checkpoint_mode(every, seed);
        return;
    }

    let mut out = String::new();
    let mut sweeps = Vec::new();
    for app in App::ALL {
        let s = fault_sweep(app, 4, seed, &DEFAULT_RATES);
        out.push_str(&s.render());
        out.push('\n');
        sweeps.push(s.to_json());
    }
    print!("{out}");

    report::announce(&report::write_text("faults.txt", &out).expect("write table"));
    let json = Json::obj()
        .field("experiment", "fault_sweep")
        .field("seed", seed)
        .field("sweeps", Json::Arr(sweeps));
    report::announce(&report::write_json("faults.json", &json).expect("write json"));

    if let Some(dir) = telemetry::telemetry_out_from_args() {
        // Instrumented fault-free captures at the sweep's node count; the
        // sweep itself is already summarized in faults.json.
        let paths =
            telemetry::export_workloads(&dir, Scale::Test, 4).expect("write telemetry artifacts");
        for p in &paths {
            report::announce(p);
        }
    }
}
