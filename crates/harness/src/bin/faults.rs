//! Fault-injection robustness sweep: run every workload under increasing
//! fault rates and report CoV-of-CPI degradation against the fault-free
//! golden run, plus the conservation and termination evidence.
//!
//! Usage: `faults [seed] [--telemetry-out <dir>]` (default seed 42).
//! Artefacts: `faults.txt` (table) and `faults.json` (schema in
//! EXPERIMENTS.md); with `--telemetry-out`, one Chrome-trace / metrics /
//! summary triple per workload (telemetry schema also in EXPERIMENTS.md).

use dsm_harness::faults::{fault_sweep, DEFAULT_RATES};
use dsm_harness::json::Json;
use dsm_harness::{report, telemetry};
use dsm_workloads::{App, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 42;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--telemetry-out" {
            i += 2; // flag plus its directory value
            continue;
        }
        if !args[i].starts_with("--") {
            seed = args[i].parse().expect("seed must be an integer");
        }
        i += 1;
    }

    let mut out = String::new();
    let mut sweeps = Vec::new();
    for app in App::ALL {
        let s = fault_sweep(app, 4, seed, &DEFAULT_RATES);
        out.push_str(&s.render());
        out.push('\n');
        sweeps.push(s.to_json());
    }
    print!("{out}");

    report::announce(&report::write_text("faults.txt", &out).expect("write table"));
    let json = Json::obj()
        .field("experiment", "fault_sweep")
        .field("seed", seed)
        .field("sweeps", Json::Arr(sweeps));
    report::announce(&report::write_json("faults.json", &json).expect("write json"));

    if let Some(dir) = telemetry::telemetry_out_from_args() {
        // Instrumented fault-free captures at the sweep's node count; the
        // sweep itself is already summarized in faults.json.
        let paths =
            telemetry::export_workloads(&dir, Scale::Test, 4).expect("write telemetry artifacts");
        for p in &paths {
            report::announce(p);
        }
    }
}
