//! DDS ablations (DESIGN.md experiments A1-A3): how much of the BBV+DDV
//! gain comes from each term of `DDS = Σ F·D·C`, plus a DDS-only detector
//! (no BBV gate).
//!
//! Usage: `ablation [--scale test|scaled|paper] [--jobs N] [--cold]
//! [--no-cache]` (default: scaled).

use dsm_analysis::curve::CovCurve;
use dsm_harness::figures::config_at;
use dsm_harness::sweep::{ablation_curve, bbv_curve, bbv_ddv_curve, vector_ddv_curve, DdsAblation};
use dsm_harness::trace::capture_cached;
use dsm_harness::{parallel, report};
use dsm_workloads::{App, Scale};

fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("test") => Scale::Test,
            Some("scaled") => Scale::Scaled,
            Some("paper") => Scale::Paper,
            other => panic!("unknown scale {other:?} (test|scaled|paper)"),
        },
        None => Scale::Scaled,
    }
}

fn summarize(c: &CovCurve) -> String {
    let at = |k: f64| {
        c.cov_at_phases(k)
            .map(|v| format!("{:.3}", v))
            .unwrap_or_else(|| "  n/a".into())
    };
    format!("@7={} @15={} @25={}", at(7.0), at(15.0), at(25.0))
}

fn main() {
    let scale = parse_scale();
    let jobs = parallel::init_from_args();
    eprintln!("ablation: running with {jobs} worker(s)");
    let n_procs = 32usize;

    // Fill memory + disk caches for every app up front, in parallel.
    let configs: Vec<_> = App::ALL
        .iter()
        .map(|&app| config_at(app, n_procs, scale))
        .collect();
    let (_, run_report) = parallel::capture_matrix("ablation", &configs);

    let mut out = String::from(
        "DDS ablations at 32P (identifier CoV at fixed phase budgets; lower is better)\n\n",
    );
    let mut rows: Vec<Vec<String>> = Vec::new();

    for app in App::ALL {
        let trace = capture_cached(config_at(app, n_procs, scale));
        let variants: Vec<(&str, CovCurve)> = vec![
            ("BBV only", bbv_curve(&trace)),
            ("BBV+DDV (full F*D*C)", bbv_ddv_curve(&trace)),
            (
                "BBV+DDS[C=1] (no contention)",
                ablation_curve(&trace, DdsAblation::NoContention),
            ),
            (
                "BBV+DDS[D=1] (no distance)",
                ablation_curve(&trace, DdsAblation::NoDistance),
            ),
            (
                "BBV+DDS[F only]",
                ablation_curve(&trace, DdsAblation::FrequencyOnly),
            ),
            ("BBV||F*D vector (extension)", vector_ddv_curve(&trace, 1.0)),
        ];
        out.push_str(&format!("{}:\n", app.name()));
        for (name, curve) in &variants {
            out.push_str(&format!("  {:<30} {}\n", name, summarize(curve)));
            for k in [7.0, 15.0, 25.0] {
                if let Some(cov) = curve.cov_at_phases(k) {
                    rows.push(vec![
                        app.name().into(),
                        name.to_string(),
                        format!("{k}"),
                        format!("{cov:.6}"),
                    ]);
                }
            }
        }
        out.push('\n');
    }
    println!("{out}");
    report::announce(&report::write_text("ablation.txt", &out).expect("write"));
    report::announce(
        &report::write_csv("ablation.csv", &["app", "variant", "phases", "cov"], &rows)
            .expect("write"),
    );
    report::announce(
        &report::write_text("ablation-run.json", &run_report.to_json()).expect("write run report"),
    );
    eprintln!("{}", run_report.summary());
}
