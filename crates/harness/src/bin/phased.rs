//! `phased` — drive the streaming phase server with a concurrent tenant
//! fleet: replayed workload traces + synthetic phase-structured streams,
//! under seeded service disturbances (tenant stalls, burst arrivals, slow
//! consumers) and optional churn.
//!
//! Usage:
//!   phased [--smoke] [--tenants N] [--concurrent N] [--trace-tenants N]
//!          [--intervals N] [--churn-every N] [--seed S] [--jobs N]
//!
//! `--smoke` is the CI/bench profile: N concurrent synthetic tenants
//! (default 1024), short streams, mixed disturbances. Without `--smoke`
//! the run adds 5 trace tenants (the five paper workloads at 16P), longer
//! streams, and churn.
//!
//! Artefacts (byte-identical across reruns — no wall-clock inside):
//! `results/serve.json` (schema `dsm-serve-run/v1`) and `results/serve.txt`.
//! Wall-clock throughput goes to stdout only; `bench_serve` records it in
//! BENCH_SERVE.json with proper sampling.

use dsm_harness::json::Json;
use dsm_harness::serve::{outcome_json, outcome_text, run_scenario, DisturbPlan, ServeScenario};
use dsm_harness::{parallel, report};

fn main() {
    let jobs = parallel::jobs_from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut tenants = 1024usize;
    let mut concurrent = 0usize; // 0 = same as tenants
    let mut trace_tenants = if smoke { 0 } else { 5 };
    let mut intervals = if smoke { 24 } else { 64 };
    let mut churn_every = if smoke { 0 } else { 32 };
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        let take = |name: &str| -> Option<String> {
            if args[i] == name {
                Some(args.get(i + 1).unwrap_or_else(|| panic!("{name} needs a value")).clone())
            } else {
                None
            }
        };
        if let Some(v) = take("--tenants") {
            tenants = v.parse().expect("--tenants N");
            i += 2;
        } else if let Some(v) = take("--concurrent") {
            concurrent = v.parse().expect("--concurrent N");
            i += 2;
        } else if let Some(v) = take("--trace-tenants") {
            trace_tenants = v.parse().expect("--trace-tenants N");
            i += 2;
        } else if let Some(v) = take("--intervals") {
            intervals = v.parse().expect("--intervals N");
            i += 2;
        } else if let Some(v) = take("--churn-every") {
            churn_every = v.parse().expect("--churn-every N");
            i += 2;
        } else if let Some(v) = take("--seed") {
            seed = v.parse().expect("--seed S");
            i += 2;
        } else {
            i += 1;
        }
    }
    if concurrent == 0 {
        concurrent = tenants;
    }

    let mut sc = ServeScenario::smoke(tenants, seed);
    sc.concurrent = concurrent.min(tenants);
    sc.trace_tenants = trace_tenants.min(tenants);
    sc.intervals_per_tenant = intervals;
    sc.churn_every = churn_every as u64;
    sc.threads = jobs;
    sc.serve.max_tenants = sc.concurrent.max(16);
    if !smoke {
        sc.disturb = DisturbPlan::mixed(seed);
    }

    let (out, timing) = run_scenario(&sc);

    println!(
        "{} tenants ({} concurrent, {} trace), {} rounds: {} classified in {:.3}s = {:.0} classifications/sec",
        sc.tenants,
        sc.concurrent,
        sc.trace_tenants,
        out.rounds,
        out.classified,
        timing.wall_secs,
        timing.classifications_per_sec,
    );
    println!(
        "latency ticks p50/p99/p999 = {}/{}/{}; busy {} / offered {}; queue hw {}",
        out.latency_ticks.0,
        out.latency_ticks.1,
        out.latency_ticks.2,
        out.busy_events,
        out.offered,
        out.queue_high_water,
    );

    let text = outcome_text(&sc, &out);
    print!("{text}");
    report::announce(&report::write_text("serve.txt", &text).expect("write serve.txt"));
    let json: Json = outcome_json(&sc, &out);
    report::announce(&report::write_json("serve.json", &json).expect("write serve.json"));
}
