//! Calibration probe: prints trace statistics and summary CoV-curve
//! comparisons for every app × node count, used to validate that the
//! paper's qualitative shapes emerge at the scaled inputs.

use dsm_harness::experiment::ExperimentConfig;
use dsm_harness::sweep::{bbv_curve_with, bbv_ddv_curve_with};
use dsm_harness::trace::capture;
use dsm_workloads::App;

fn main() {
    let t0 = std::time::Instant::now();
    for app in App::ALL {
        for &p in &[2usize, 8, 32] {
            let cfg = ExperimentConfig::scaled(app, p);
            let start = std::time::Instant::now();
            let trace = capture(cfg);
            let sim_time = start.elapsed();
            let s = &trace.stats;
            let mean_cpi = s.mean_cpi();
            let remote_frac = s
                .procs
                .iter()
                .map(|pr| pr.remote_miss_fraction())
                .sum::<f64>()
                / p as f64;
            let l2_mpki = s.procs.iter().map(|pr| pr.l2_misses as f64).sum::<f64>()
                / (s.total_insns() as f64 / 1000.0);
            let contention = s.procs.iter().map(|pr| pr.contention_cycles).sum::<u64>();
            let sync_frac = s.procs.iter().map(|pr| pr.sync_wait_cycles).sum::<u64>() as f64
                / s.procs.iter().map(|pr| pr.cycles).sum::<u64>() as f64;

            // Per-proc CPI spread across intervals (signal for detectors).
            let cpis: Vec<f64> = trace.records[0].iter().map(|r| r.cpi()).collect();
            let cpi_cov = dsm_analysis::stats::cov(&cpis);

            let start = std::time::Instant::now();
            let bbv = bbv_curve_with(&trace, 60);
            let ddv = bbv_ddv_curve_with(&trace, 12, 8);
            let sweep_time = start.elapsed();

            let b7 = bbv.cov_at_phases(7.0);
            let d7 = ddv.cov_at_phases(7.0);
            let b15 = bbv.cov_at_phases(15.0);
            let d15 = ddv.cov_at_phases(15.0);
            let b25 = bbv.cov_at_phases(25.0);
            let d25 = ddv.cov_at_phases(25.0);
            println!(
                "{:>7} {:>3}p: ints/proc={:<4} insns={:>5.1}M cpi={:<5.2} rmiss={:<4.2} l2mpki={:<5.1} cont={:<9} sync={:<4.2} cpiCoV={:<5.2} | bbv@7={} ddv@7={} bbv@15={} ddv@15={} bbv@25={} ddv@25={} | sim {:?} sweep {:?}",
                app.name(), p,
                trace.min_intervals(),
                s.total_insns() as f64 / 1e6,
                mean_cpi, remote_frac, l2_mpki, contention, sync_frac, cpi_cov,
                fmt(b7), fmt(d7), fmt(b15), fmt(d15), fmt(b25), fmt(d25),
                sim_time, sweep_time,
            );
        }
    }
    println!("total {:?}", t0.elapsed());
}

fn fmt(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.3}")).unwrap_or_else(|| "--".into())
}
