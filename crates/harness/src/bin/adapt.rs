//! Phase-guided adaptation sweep: the §II tuning protocol driving real
//! machine reconfiguration (page migration, DVFS epochs, heterogeneous
//! cores) on every workload, with untuned / tuned / oracle arms and the
//! static-placement comparison.
//!
//! Usage: `adapt [n_procs] [--smoke]` (default 16 processors; `--smoke`
//! runs the 2-processor LU+FMM subset for CI, gated on the no-op arm
//! being bit-identical to a plain capture).
//! Artefacts: `adapt.txt` (table) and `adapt.json` (schema in
//! EXPERIMENTS.md).

use dsm_harness::adapt::{adapt_app, adapt_sweep, assert_noop_differential, AdaptReport};
use dsm_harness::report;
use dsm_workloads::App;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let n_procs: usize = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|a| a.parse().expect("n_procs must be an integer"))
        .unwrap_or(16);

    let report = if smoke {
        assert_noop_differential(App::Lu, 2);
        AdaptReport { n_procs: 2, apps: vec![adapt_app(App::Lu, 2), adapt_app(App::Fmm, 2)] }
    } else {
        adapt_sweep(n_procs)
    };

    let text = report.render();
    print!("{text}");
    report::announce(&report::write_text("adapt.txt", &text).expect("write table"));
    report::announce(&report::write_json("adapt.json", &report.to_json()).expect("write json"));
}
