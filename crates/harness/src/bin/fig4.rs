//! Regenerate the paper's Figure 4 (BBV vs BBV+DDV CoV curves at 8 and 32
//! processors for LU, FMM, Art, Equake) and the §IV FMM headline.
//!
//! Usage: `fig4 [--scale test|scaled|paper] [--jobs N] [--cold] [--no-cache]
//! [--telemetry-out <dir>]`
//! (default: scaled; jobs defaults to the hardware parallelism; traces are
//! cached under `.dsm-trace-cache/` unless `--no-cache`; `--telemetry-out`
//! additionally writes one Chrome-trace / metrics / summary triple per
//! workload at 2 processors plus the engine's cache counters).

use dsm_harness::figures::{figure4_with_report, headline_fmm};
use dsm_harness::{parallel, report, telemetry};
use dsm_workloads::Scale;

fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("test") => Scale::Test,
            Some("scaled") => Scale::Scaled,
            Some("paper") => Scale::Paper,
            other => panic!("unknown scale {other:?} (test|scaled|paper)"),
        },
        None => Scale::Scaled,
    }
}

fn main() {
    let scale = parse_scale();
    let jobs = parallel::init_from_args();
    eprintln!("fig4: running with {jobs} worker(s)");
    let t0 = std::time::Instant::now();
    let (fig, run_report) = figure4_with_report(scale);
    let ascii = fig.render_ascii();
    println!("{ascii}");

    let mut headline = String::from("FMM headline (paper SIV):\n");
    for p in [8usize, 32] {
        let h = headline_fmm(scale, p, 25.0);
        headline.push_str(&format!(
            "  {p:>2}P at 25-phase budget: BBV CoV = {}, BBV+DDV CoV = {}\n",
            fmt_pct(h.bbv_cov_at_budget),
            fmt_pct(h.ddv_cov_at_budget)
        ));
        headline.push_str(&format!(
            "  {p:>2}P phases to reach the BBV's CoV: BBV = {}, BBV+DDV = {}\n",
            fmt_f(h.bbv_phases_at_target),
            fmt_f(h.ddv_phases_at_target)
        ));
    }
    println!("{headline}");

    let (h, rows) = fig.csv();
    report::announce(&report::write_csv("fig4.csv", &h, &rows).expect("write csv"));
    report::announce(
        &report::write_text("fig4.txt", &format!("{ascii}\n{headline}")).expect("write txt"),
    );
    report::announce(&report::write_json("fig4.json", &fig.to_json()).expect("write json"));
    report::announce(
        &report::write_json("fig4-run.json", &run_report.json_value())
            .expect("write run report"),
    );
    eprintln!("{}", run_report.summary());

    if let Some(dir) = telemetry::telemetry_out_from_args() {
        let paths =
            telemetry::export_workloads(&dir, scale, 2).expect("write telemetry artifacts");
        for p in &paths {
            report::announce(p);
        }
        let mut reg = dsm_telemetry::MetricsRegistry::new();
        run_report.publish(&mut reg);
        report::announce(
            &telemetry::export_registry(&dir, "fig4-run", &reg).expect("write run metrics"),
        );
    }
    eprintln!("fig4 done in {:?}", t0.elapsed());
}

fn fmt_pct(x: Option<f64>) -> String {
    x.map(|v| format!("{:.1} %", v * 100.0))
        .unwrap_or_else(|| "n/a".into())
}

fn fmt_f(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.1}")).unwrap_or_else(|| "n/a".into())
}
