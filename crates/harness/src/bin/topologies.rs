//! Interconnect-layout sweep: run every workload on each fabric topology
//! (hypercube, 2-D mesh, 2-D torus, ring, fat-tree) with per-link
//! contention enabled, and report detector quality (BBV vs BBV+DDV CoV of
//! CPI) alongside the per-directed-link demand profile.
//!
//! Usage: `topologies [n_procs] [--smoke <topology>]` (default 8
//! processors; must be a power of two so every layout applies).
//! Artefacts: `topologies.txt` (table) and `topologies.json` (schema in
//! EXPERIMENTS.md).
//!
//! `--smoke <topology>` replaces the sweep with a single 2-processor LU
//! capture on the named layout and prints its point — the CI topology
//! matrix runs one smoke per layout.

use dsm_analysis::Table;
use dsm_harness::json::Json;
use dsm_harness::topology::{topology_point, topology_sweep};
use dsm_harness::{report, ExperimentConfig};
use dsm_sim::topology::TopologyKind;
use dsm_workloads::App;

/// `--smoke <topology>`: one small capture on one layout, table to stdout.
fn smoke_mode(name: &str) {
    let kind = TopologyKind::from_name(name)
        .unwrap_or_else(|| panic!("unknown topology {name:?} (see TopologyKind::ALL)"));
    let (p, trace) = topology_point(ExperimentConfig::test(App::Lu, 2), kind);
    let pairs = vec![
        ("topology".to_string(), p.kind.name().to_string()),
        ("diameter".to_string(), p.diameter.to_string()),
        ("n_links".to_string(), p.n_links.to_string()),
        ("cov_bbv".to_string(), format!("{:.4}", p.cov_bbv)),
        ("cov_bbv_ddv".to_string(), format!("{:.4}", p.cov_bbv_ddv)),
        ("phases".to_string(), format!("{:.1}", p.phases)),
        ("finish_cycle".to_string(), p.finish_cycle.to_string()),
        ("total_flit_hops".to_string(), p.total_flit_hops.to_string()),
        ("peak_link_flits".to_string(), p.peak_link_flits.to_string()),
        ("hottest_link".to_string(), p.hottest_link.unwrap_or_else(|| "-".to_string())),
        ("intervals_recorded".to_string(), trace.total_intervals().to_string()),
    ];
    print!("{}", Table::kv(format!("smoke LU 2P on {}", kind.name()), &pairs).render());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n_procs: usize = 8;
    let mut smoke: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--smoke" {
            smoke = Some(args[i + 1].clone());
            i += 2;
            continue;
        }
        if !args[i].starts_with("--") {
            n_procs = args[i].parse().expect("n_procs must be an integer");
            assert!(n_procs.is_power_of_two(), "every layout needs a power of two");
        }
        i += 1;
    }

    if let Some(name) = smoke {
        smoke_mode(&name);
        return;
    }

    let mut out = String::new();
    let mut sweeps = Vec::new();
    for app in App::ALL {
        let s = topology_sweep(app, n_procs);
        out.push_str(&s.render());
        out.push('\n');
        sweeps.push(s.to_json());
    }
    print!("{out}");

    report::announce(&report::write_text("topologies.txt", &out).expect("write table"));
    let json = Json::obj()
        .field("experiment", "topology_sweep")
        .field("n_procs", n_procs)
        .field("sweeps", Json::Arr(sweeps));
    report::announce(&report::write_json("topologies.json", &json).expect("write json"));
}
