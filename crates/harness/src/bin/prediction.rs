//! Phase-prediction experiment (the paper's §VI future-work direction):
//! last-phase and RLE-Markov predictor accuracy over each detector's
//! classified phase streams, per application and system size.
//!
//! Usage: `prediction [--scale test|scaled|paper]` (default: scaled).

use dsm_harness::figures::config_at;
use dsm_harness::report;
use dsm_harness::trace::capture_cached;
use dsm_phase::detector::{DetectorMode, Thresholds, TraceClassifier};
use dsm_phase::predictor::{accuracy_over, LastPhasePredictor, RlePredictor};
use dsm_workloads::{App, Scale};

fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("test") => Scale::Test,
            Some("scaled") => Scale::Scaled,
            Some("paper") => Scale::Paper,
            other => panic!("unknown scale {other:?} (test|scaled|paper)"),
        },
        None => Scale::Scaled,
    }
}

fn main() {
    let scale = parse_scale();
    let mut out =
        String::from("Phase prediction accuracy (mean over processors; higher is better)\n\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    out.push_str(&format!(
        "{:<8} {:>4} {:>9} {:>12} {:>12}\n",
        "app", "P", "detector", "last-phase", "RLE-Markov"
    ));
    for app in App::ALL {
        for procs in [8usize, 32] {
            let trace = capture_cached(config_at(app, procs, scale));
            for (name, mode, thr) in [
                ("BBV", DetectorMode::Bbv, Thresholds::bbv_only(0.30)),
                (
                    "BBV+DDV",
                    DetectorMode::BbvDdv,
                    Thresholds {
                        bbv: 0.30,
                        dds: 0.25,
                    },
                ),
            ] {
                let (mut last_sum, mut rle_sum) = (0.0, 0.0);
                for records in &trace.records {
                    let ids = TraceClassifier::classify_proc(records, mode, thr, 32);
                    last_sum += accuracy_over(&mut LastPhasePredictor::new(), &ids);
                    rle_sum += accuracy_over(&mut RlePredictor::new(64), &ids);
                }
                let n = trace.records.len() as f64;
                let (last, rle) = (last_sum / n, rle_sum / n);
                out.push_str(&format!(
                    "{:<8} {:>4} {:>9} {:>11.1}% {:>11.1}%\n",
                    app.name(),
                    procs,
                    name,
                    last * 100.0,
                    rle * 100.0
                ));
                rows.push(vec![
                    app.name().into(),
                    procs.to_string(),
                    name.into(),
                    format!("{last:.4}"),
                    format!("{rle:.4}"),
                ]);
            }
        }
    }
    println!("{out}");
    report::announce(&report::write_text("prediction.txt", &out).expect("write"));
    report::announce(
        &report::write_csv(
            "prediction.csv",
            &["app", "procs", "detector", "last_phase_acc", "rle_acc"],
            &rows,
        )
        .expect("write"),
    );
}
