//! Sensitivity studies (DESIGN.md extensions): detector hardware budget,
//! sampling-interval length, and data-placement policy, reported as
//! identifier CoV at a 15-phase budget for both detectors.
//!
//! Usage: `sensitivity [--scale test|scaled|paper] [--jobs N]` (default:
//! scaled). Sensitivity variants perturb the machine configuration itself,
//! so they always simulate (no trace cache); `--jobs` fans the variants and
//! their threshold sweeps out over the worker pool.

use dsm_harness::sensitivity::{
    bank_sweep, geometry_sweep, interval_sweep, network_model_sweep, placement_sweep,
    SensitivityPoint,
};
use dsm_harness::{parallel, report};
use dsm_workloads::{App, Scale};

fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("test") => Scale::Test,
            Some("scaled") => Scale::Scaled,
            Some("paper") => Scale::Paper,
            other => panic!("unknown scale {other:?} (test|scaled|paper)"),
        },
        None => Scale::Scaled,
    }
}

fn fmt(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.3}"))
        .unwrap_or_else(|| "  n/a".into())
}

fn render(title: &str, pts: &[SensitivityPoint], out: &mut String, rows: &mut Vec<Vec<String>>) {
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "  {:<36} {:>8} {:>8} {:>8} {:>8} {:>10}\n",
        "variant", "BBV@15", "DDV@15", "CPI", "rmiss", "ints/proc"
    ));
    for p in pts {
        out.push_str(&format!(
            "  {:<36} {:>8} {:>8} {:>8.2} {:>8.2} {:>10}\n",
            p.label,
            fmt(p.bbv_at_15),
            fmt(p.ddv_at_15),
            p.mean_cpi,
            p.remote_miss_fraction,
            p.intervals_per_proc
        ));
        rows.push(vec![
            title.to_string(),
            p.label.clone(),
            fmt(p.bbv_at_15),
            fmt(p.ddv_at_15),
            format!("{:.3}", p.mean_cpi),
            format!("{:.3}", p.remote_miss_fraction),
            p.intervals_per_proc.to_string(),
        ]);
    }
    out.push('\n');
}

fn main() {
    let scale = parse_scale();
    let jobs = parallel::jobs_from_args();
    eprintln!("sensitivity: running with {jobs} worker(s)");
    let mut out = String::from("Sensitivity studies (32P unless noted)\n\n");
    let mut rows: Vec<Vec<String>> = Vec::new();

    let geo = geometry_sweep(
        App::Lu,
        32,
        scale,
        &[(8, 8), (16, 16), (32, 32), (64, 64), (32, 8), (8, 32)],
    );
    render(
        "Detector geometry (LU): accumulator entries x footprint vectors",
        &geo,
        &mut out,
        &mut rows,
    );

    let iv = interval_sweep(
        App::Lu,
        32,
        scale,
        &[32_000, 64_000, 128_000, 256_000, 512_000],
    );
    render("Sampling-interval base (LU)", &iv, &mut out, &mut rows);

    for app in [App::Lu, App::Art] {
        let pl = placement_sweep(app, 32, scale);
        render(
            &format!("Data placement ({})", app.name()),
            &pl,
            &mut out,
            &mut rows,
        );
    }

    let nm = network_model_sweep(App::Lu, 32, scale);
    render("Network contention model (LU)", &nm, &mut out, &mut rows);

    let bk = bank_sweep(App::Art, 32, scale, &[1, 2, 4, 8]);
    render("SDRAM banks per controller (Art)", &bk, &mut out, &mut rows);

    println!("{out}");
    report::announce(&report::write_text("sensitivity.txt", &out).expect("write"));
    report::announce(
        &report::write_csv(
            "sensitivity.csv",
            &[
                "study",
                "variant",
                "bbv_at_15",
                "ddv_at_15",
                "cpi",
                "rmiss",
                "ints_per_proc",
            ],
            &rows,
        )
        .expect("write"),
    );
}
