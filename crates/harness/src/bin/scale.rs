//! Scaling-curve sweep: single-run throughput at 16/64/128 processors,
//! serial reference core (all-to-one gather) vs the sharded parallel core
//! (conservative windows + O(n) aggregate gather along a binary reduction
//! tree), plus the window/steal counters and detector CoV of CPI at scale.
//!
//! Usage: `scale [--samples N] [--app NAME] [--jobs N]` (default 3 samples,
//! Ocean — the interval-dense workload where the per-interval gather is the
//! documented hot spot). Artefacts: `scale.txt` (table) and `scale.json`
//! (schema in EXPERIMENTS.md). Every point is asserted bit-identical
//! between the two arms before any number is reported.

use dsm_analysis::Table;
use dsm_harness::json::Json;
use dsm_harness::scale::{scale_sweep, ScalePoint};
use dsm_harness::{parallel, report};
use dsm_workloads::App;

fn render(points: &[ScalePoint]) -> String {
    let mut t = Table::new(vec![
        "procs", "shards", "events", "ref ev/s", "sharded ev/s", "speedup", "windows",
        "stalls", "steals", "rounds", "cov cpi",
    ])
    .with_title("one-run scaling: serial reference vs sharded core (events/sec)");
    for p in points {
        t.row(vec![
            p.n_procs.to_string(),
            p.shards.to_string(),
            p.events.to_string(),
            format!("{:.0}", p.reference_events_per_sec),
            format!("{:.0}", p.sharded_events_per_sec),
            format!("{:.2}x", p.speedup),
            p.windows.to_string(),
            p.barrier_stalls.to_string(),
            p.steals.to_string(),
            p.gather_rounds.to_string(),
            format!("{:.3}", p.cov_cpi),
        ]);
    }
    t.render()
}

fn main() {
    parallel::jobs_from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 3usize;
    let mut app = App::Ocean;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--samples" => {
                samples = args[i + 1].parse().expect("--samples N");
                i += 2;
            }
            "--app" => {
                let name = args[i + 1].to_lowercase();
                app = *App::EXTENDED
                    .iter()
                    .find(|a| a.name().to_lowercase() == name)
                    .unwrap_or_else(|| panic!("unknown app {:?}", args[i + 1]));
                i += 2;
            }
            _ => i += 1,
        }
    }

    let points = scale_sweep(app, samples);
    let out = render(&points);
    print!("{out}");

    report::announce(&report::write_text("scale.txt", &out).expect("write table"));
    let json = Json::obj()
        .field("experiment", "scale_sweep")
        .field("app", app.name())
        .field("samples", samples)
        .field(
            "points",
            Json::Arr(points.iter().map(|p| p.to_json()).collect()),
        );
    report::announce(&report::write_json("scale.json", &json).expect("write json"));
}
