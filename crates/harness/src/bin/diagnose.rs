//! Cross-node phase-similarity diagnosis report: fault-free, injected
//! straggler, and serial-init placement columns for every workload at 16P,
//! diagnosed by the blind `dsm-diagnose` engine from classified streams.
//!
//! Usage: `diagnose [--smoke]` (`--smoke` runs the CI subset: LU + Ocean,
//! fault-free + straggler columns only).
//! Artefacts: `diagnose.txt` (report + slowdown-localization table) and
//! `diagnose.json` (schema `dsm-diagnose/v1`, documented in
//! EXPERIMENTS.md).

use dsm_harness::diagnose::{full_report, reports_json, reports_text, smoke_report};
use dsm_harness::report;

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let reports = if smoke { smoke_report() } else { full_report() };

    let text = reports_text(&reports);
    print!("{text}");
    report::announce(&report::write_text("diagnose.txt", &text).expect("write report"));
    report::announce(&report::write_json("diagnose.json", &reports_json(&reports)).expect("write json"));
}
