//! Related-work baseline comparison (DESIGN.md experiment A4): BBV and
//! BBV+DDV against Dhodapkar–Smith working-set signatures and
//! Balasubramonian conditional branch counts, on the same captured traces.
//!
//! Usage: `baselines [--scale test|scaled|paper] [--procs N] [--jobs N]
//! [--cold] [--no-cache]`.

use dsm_analysis::curve::CovCurve;
use dsm_harness::figures::config_at;
use dsm_harness::sweep::{bbv_curve, bbv_ddv_curve, branch_count_curve, working_set_curve};
use dsm_harness::trace::capture_cached;
use dsm_harness::{parallel, report};
use dsm_workloads::{App, Scale};

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let scale = match arg_after("--scale").as_deref() {
        Some("test") => Scale::Test,
        Some("paper") => Scale::Paper,
        None | Some("scaled") => Scale::Scaled,
        other => panic!("unknown scale {other:?}"),
    };
    let n_procs: usize = arg_after("--procs")
        .map(|s| s.parse().unwrap())
        .unwrap_or(32);
    let jobs = parallel::init_from_args();
    eprintln!("baselines: running with {jobs} worker(s)");

    // Fill memory + disk caches for every app up front, in parallel.
    let configs: Vec<_> = App::ALL
        .iter()
        .map(|&app| config_at(app, n_procs, scale))
        .collect();
    let (_, run_report) = parallel::capture_matrix("baselines", &configs);

    let mut out =
        format!("Detector comparison at {n_procs}P (identifier CoV at fixed phase budgets)\n\n");
    let mut rows: Vec<Vec<String>> = Vec::new();
    for app in App::ALL {
        let trace = capture_cached(config_at(app, n_procs, scale));
        let variants: Vec<(&str, CovCurve)> = vec![
            ("branch-count (Balasubramonian)", branch_count_curve(&trace)),
            (
                "working-set sig (Dhodapkar-Smith)",
                working_set_curve(&trace),
            ),
            ("BBV (Sherwood)", bbv_curve(&trace)),
            ("BBV+DDV (this paper)", bbv_ddv_curve(&trace)),
        ];
        out.push_str(&format!("{}:\n", app.name()));
        for (name, curve) in &variants {
            let at = |k: f64| {
                curve
                    .cov_at_phases(k)
                    .map(|v| format!("{v:.3}"))
                    .unwrap_or_else(|| "  n/a".into())
            };
            out.push_str(&format!(
                "  {:<34} @7={} @15={} @25={}\n",
                name,
                at(7.0),
                at(15.0),
                at(25.0)
            ));
            for k in [7.0, 15.0, 25.0] {
                if let Some(cov) = curve.cov_at_phases(k) {
                    rows.push(vec![
                        app.name().into(),
                        name.to_string(),
                        format!("{k}"),
                        format!("{cov:.6}"),
                    ]);
                }
            }
        }
        out.push('\n');
    }
    println!("{out}");
    report::announce(&report::write_text("baselines.txt", &out).expect("write"));
    report::announce(
        &report::write_csv(
            "baselines.csv",
            &["app", "detector", "phases", "cov"],
            &rows,
        )
        .expect("write"),
    );
    report::announce(
        &report::write_text("baselines-run.json", &run_report.to_json())
            .expect("write run report"),
    );
    eprintln!("{}", run_report.summary());
}
