//! Print the paper's Table I (simulated architecture) and Table II
//! (applications and input sets).

use dsm_harness::report;
use dsm_harness::tables::{table1, table2};

fn main() {
    let out = format!("{}\n{}", table1().render(), table2().render());
    println!("{out}");
    report::announce(&report::write_text("tables.txt", &out).expect("write"));
}
