//! Regenerate the paper's Figure 2 (baseline BBV CoV curves at 2/8/32
//! processors for LU, FMM, Art, Equake).
//!
//! Usage: `fig2 [--scale test|scaled|paper] [--jobs N] [--cold] [--no-cache]`
//! (default: scaled; jobs defaults to the hardware parallelism; traces are
//! cached under `.dsm-trace-cache/` unless `--no-cache`).

use dsm_harness::figures::{figure2_with_report, headline_lu};
use dsm_harness::{parallel, report};
use dsm_workloads::Scale;

fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("test") => Scale::Test,
            Some("scaled") => Scale::Scaled,
            Some("paper") => Scale::Paper,
            other => panic!("unknown scale {other:?} (test|scaled|paper)"),
        },
        None => Scale::Scaled,
    }
}

fn main() {
    let scale = parse_scale();
    let jobs = parallel::init_from_args();
    eprintln!("fig2: running with {jobs} worker(s)");
    let t0 = std::time::Instant::now();
    let (fig, run_report) = figure2_with_report(scale);
    let ascii = fig.render_ascii();
    println!("{ascii}");

    let lu = headline_lu(scale);
    let mut headline = String::from("LU headline (paper SIII-A):\n");
    for (p, cov) in &lu.cov_at_7_phases {
        headline.push_str(&format!(
            "  {p:>2}P: CoV at 7 phases = {}\n",
            cov.map(|c| format!("{:.1} %", c * 100.0))
                .unwrap_or_else(|| "n/a".into())
        ));
    }
    for (p, phases) in &lu.phases_for_20pct {
        headline.push_str(&format!(
            "  {p:>2}P: phases for 20 % CoV = {}\n",
            phases
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| ">25 / n/a".into())
        ));
    }
    println!("{headline}");

    let (h, rows) = fig.csv();
    report::announce(&report::write_csv("fig2.csv", &h, &rows).expect("write csv"));
    report::announce(
        &report::write_text("fig2.txt", &format!("{ascii}\n{headline}")).expect("write txt"),
    );
    report::announce(
        &report::write_text("fig2.json", &fig.to_json().to_string()).expect("write json"),
    );
    report::announce(
        &report::write_text("fig2-run.json", &run_report.to_json()).expect("write run report"),
    );
    eprintln!("{}", run_report.summary());
    eprintln!("fig2 done in {:?}", t0.elapsed());
}
