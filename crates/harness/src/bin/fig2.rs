//! Regenerate the paper's Figure 2 (baseline BBV CoV curves at 2/8/32
//! processors for LU, FMM, Art, Equake).
//!
//! Usage: `fig2 [--scale test|scaled|paper] [--jobs N] [--cold] [--no-cache]
//! [--telemetry-out <dir>]`
//! (default: scaled; jobs defaults to the hardware parallelism; traces are
//! cached under `.dsm-trace-cache/` unless `--no-cache`; `--telemetry-out`
//! additionally writes one Chrome-trace / metrics / summary triple per
//! workload at 2 processors plus the engine's cache counters).

use dsm_harness::figures::{figure2_with_report, headline_lu};
use dsm_harness::{parallel, report, telemetry};
use dsm_workloads::Scale;

fn parse_scale() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(|s| s.as_str()) {
            Some("test") => Scale::Test,
            Some("scaled") => Scale::Scaled,
            Some("paper") => Scale::Paper,
            other => panic!("unknown scale {other:?} (test|scaled|paper)"),
        },
        None => Scale::Scaled,
    }
}

fn main() {
    let scale = parse_scale();
    let jobs = parallel::init_from_args();
    eprintln!("fig2: running with {jobs} worker(s)");
    let t0 = std::time::Instant::now();
    let (fig, run_report) = figure2_with_report(scale);
    let ascii = fig.render_ascii();
    println!("{ascii}");

    let lu = headline_lu(scale);
    let mut headline = String::from("LU headline (paper SIII-A):\n");
    for (p, cov) in &lu.cov_at_7_phases {
        headline.push_str(&format!(
            "  {p:>2}P: CoV at 7 phases = {}\n",
            cov.map(|c| format!("{:.1} %", c * 100.0))
                .unwrap_or_else(|| "n/a".into())
        ));
    }
    for (p, phases) in &lu.phases_for_20pct {
        headline.push_str(&format!(
            "  {p:>2}P: phases for 20 % CoV = {}\n",
            phases
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| ">25 / n/a".into())
        ));
    }
    println!("{headline}");

    let (h, rows) = fig.csv();
    report::announce(&report::write_csv("fig2.csv", &h, &rows).expect("write csv"));
    report::announce(
        &report::write_text("fig2.txt", &format!("{ascii}\n{headline}")).expect("write txt"),
    );
    report::announce(&report::write_json("fig2.json", &fig.to_json()).expect("write json"));
    report::announce(
        &report::write_json("fig2-run.json", &run_report.json_value())
            .expect("write run report"),
    );
    eprintln!("{}", run_report.summary());

    if let Some(dir) = telemetry::telemetry_out_from_args() {
        let paths =
            telemetry::export_workloads(&dir, scale, 2).expect("write telemetry artifacts");
        for p in &paths {
            report::announce(p);
        }
        let mut reg = dsm_telemetry::MetricsRegistry::new();
        run_report.publish(&mut reg);
        report::announce(
            &telemetry::export_registry(&dir, "fig2-run", &reg).expect("write run metrics"),
        );
    }
    eprintln!("fig2 done in {:?}", t0.elapsed());
}
