//! Phase-guided sampled simulation: per workload, select representative
//! intervals from the phase signatures, checkpoint the machine at their
//! boundaries, replay them in parallel, and reconstruct whole-run CPI and
//! CoV-of-CPI — then gate on the sampling quality.
//!
//! Usage: `simpoint [--ci] [--jobs N]`.
//!
//! Default mode runs every workload at 16 processors and enforces the
//! headline quality bars: reconstructed CPI within 5 % of the full run and
//! at least a 5x reduction in simulated intervals. `--ci` runs the quick
//! smoke (LU at 2 processors) and gates on CoV-of-CPI absolute error < 0.05.
//! Artefacts land under `results/simpoint/` (schemas in EXPERIMENTS.md) and
//! are byte-identical across reruns.

use dsm_harness::json::Json;
use dsm_harness::simpoint::{sampled_run, write_artifacts, SimpointResult};
use dsm_harness::{parallel, report, ExperimentConfig};
use dsm_sim::config::FaultPlan;
use dsm_workloads::{App, Scale};

fn row(r: &SimpointResult) -> String {
    format!(
        "{:<22} {:>5} {:>3} {:>9.4} {:>9.4} {:>8.4} {:>8.4} {:>7.1}",
        r.config.label(),
        r.selection.n_intervals,
        r.selection.k,
        r.full_cpi,
        r.sampled.cpi,
        r.cpi_rel_error,
        r.cov_abs_error,
        r.reduction,
    )
}

fn main() {
    parallel::jobs_from_args();
    let ci = std::env::args().any(|a| a == "--ci");

    let configs: Vec<ExperimentConfig> = if ci {
        // Scaled LU at 2 processors: small enough for a CI smoke, but with
        // enough global intervals that the CoV reconstruction is meaningful
        // (the Test scale yields a handful of intervals and a budget of 1).
        vec![ExperimentConfig {
            app: App::Lu,
            n_procs: 2,
            scale: Scale::Scaled,
            interval_base: 32_000,
        }]
    } else {
        App::EXTENDED
            .iter()
            .map(|&app| ExperimentConfig {
                app,
                n_procs: 16,
                scale: Scale::Scaled,
                interval_base: 32_000,
            })
            .collect()
    };

    println!(
        "{:<22} {:>5} {:>3} {:>9} {:>9} {:>8} {:>8} {:>7}",
        "config", "ints", "k", "full-cpi", "est-cpi", "cpi-err", "cov-err", "reduce"
    );

    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for config in configs {
        let r = sampled_run(config, FaultPlan::none());
        println!("{}", row(&r));
        let (a, b) = write_artifacts(&r).expect("write simpoint artefacts");
        report::announce(&a);
        report::announce(&b);

        if ci {
            // CI smoke gate: the sampled CoV-of-CPI tracks the full run.
            if r.cov_abs_error >= 0.05 {
                failures.push(format!(
                    "{}: CoV-of-CPI absolute error {:.4} >= 0.05",
                    r.config.label(),
                    r.cov_abs_error
                ));
            }
        } else {
            if r.cpi_rel_error > 0.05 {
                failures.push(format!(
                    "{}: reconstructed CPI off by {:.2}% (> 5%)",
                    r.config.label(),
                    100.0 * r.cpi_rel_error
                ));
            }
            if r.reduction < 5.0 {
                failures.push(format!(
                    "{}: only {:.1}x simulated-interval reduction (< 5x)",
                    r.config.label(),
                    r.reduction
                ));
            }
        }

        rows.push(
            Json::obj()
                .field("config", r.config.label())
                .field("n_intervals", r.selection.n_intervals as u64)
                .field("k", r.selection.k as u64)
                .field("full_cpi", r.full_cpi)
                .field("reconstructed_cpi", r.sampled.cpi)
                .field("cpi_rel_error", r.cpi_rel_error)
                .field("cov_abs_error", r.cov_abs_error)
                .field("reduction", r.reduction),
        );
    }

    let summary = Json::obj()
        .field("schema", "dsm-simpoint/v1")
        .field("experiment", "simpoint_summary")
        .field("mode", if ci { "ci" } else { "full" })
        .field("runs", Json::Arr(rows));
    report::announce(&report::write_json("simpoint/summary.json", &summary).expect("write summary"));

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
    println!("all sampling gates passed");
}
