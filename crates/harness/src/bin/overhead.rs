//! Reproduce the §III-B DDV communication-overhead arithmetic (~160 kB/s
//! per node, under 0.15 % of a 1.5 GB/s memory controller) and report the
//! measured overhead of an actual captured run.

use dsm_harness::experiment::ExperimentConfig;
use dsm_harness::overhead::{measured_overhead, OverheadModel};
use dsm_harness::report;
use dsm_harness::trace::capture_cached;
use dsm_workloads::App;

fn main() {
    let mut out = OverheadModel::paper().report();
    out.push('\n');

    out.push_str("Measured on captured scaled runs (4-byte counters):\n");
    for app in App::ALL {
        for p in [8usize, 32] {
            let trace = capture_cached(ExperimentConfig::scaled(app, p));
            let m = measured_overhead(&trace, 4.0);
            out.push_str(&format!(
                "  {:>7} {:>2}P: {} F-vectors exchanged, {:.1} kB total, {:.3} ms simulated, {:.1} kB/s per node\n",
                app.name(),
                p,
                m.vectors_exchanged,
                m.bytes_total / 1e3,
                m.sim_seconds * 1e3,
                m.bytes_per_sec_per_node / 1e3,
            ));
        }
    }
    println!("{out}");
    report::announce(&report::write_text("overhead.txt", &out).expect("write"));
}
