//! Results-directory output: every experiment binary writes its artefacts
//! (ASCII rendering + CSV) under `results/` at the workspace root.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Resolve the results directory (created on demand). Honors
/// `DSM_RESULTS_DIR`; defaults to `./results`.
pub fn results_dir() -> io::Result<PathBuf> {
    let dir = std::env::var_os("DSM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Write a text artefact into the results directory; returns its path.
pub fn write_text(name: &str, content: &str) -> io::Result<PathBuf> {
    let path = results_dir()?.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Write a JSON artefact into the results directory; returns its path.
/// Every binary routes its `.json` outputs through here so serialization
/// (compact, insertion-ordered, shortest-round-trip floats) is decided in
/// exactly one place and output stays byte-stable across runs.
pub fn write_json(name: &str, value: &crate::json::Json) -> io::Result<PathBuf> {
    write_text(name, &value.to_string())
}

/// Write a CSV artefact into the results directory; returns its path.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> io::Result<PathBuf> {
    let path = results_dir()?.join(name);
    let mut buf = Vec::new();
    dsm_analysis::plot::write_csv(&mut buf, headers, rows)?;
    fs::write(&path, buf)?;
    Ok(path)
}

/// Echo a written path for the user.
pub fn announce(path: &Path) {
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_into_configured_dir() {
        let tmp = std::env::temp_dir().join(format!("dsm-results-test-{}", std::process::id()));
        std::env::set_var("DSM_RESULTS_DIR", &tmp);
        let p = write_text("hello.txt", "hi").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "hi");
        let p = write_csv("t.csv", &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let s = fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        std::env::remove_var("DSM_RESULTS_DIR");
        let _ = fs::remove_dir_all(tmp);
    }
}
