//! The parallel experiment engine.
//!
//! The paper's methodology sweeps ~200 threshold values per detector over
//! every (application, node count) point; every simulation and every sweep
//! point is independent. This module provides the three layers that make
//! the matrix run at hardware speed while staying bit-reproducible:
//!
//! 1. **a worker pool** ([`par_map`]) — an index-queue over scoped OS
//!    threads with a process-wide `--jobs` knob. Results land in their
//!    input slot, so output order (and therefore every downstream artefact)
//!    is identical for any job count;
//! 2. **a content-addressed trace store** ([`TraceStore`]) — captured
//!    [`SystemTrace`]s persisted on disk keyed by a hash of
//!    `(app, n_procs, scale, interval_base, SystemConfig, DetectorGeometry)`,
//!    so re-running figures/sweeps/ablations skips simulation entirely;
//! 3. **a run report** ([`RunReport`]) — per-experiment wall time and
//!    cache hit/miss counters, written as JSON next to the results.
//!
//! Simulations were already deterministic per configuration (workload RNGs
//! are seeded from fixed per-(app, proc, chunk) keys — see
//! `dsm-workloads`), so serial and parallel runs produce byte-identical
//! artefacts; `tests/determinism_parallel.rs` locks this down.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dsm_phase::detector::DetectorGeometry;

use crate::experiment::ExperimentConfig;
use crate::json::Json;
use crate::trace::{self, SystemTrace};

// ---------------------------------------------------------------------------
// Jobs knob
// ---------------------------------------------------------------------------

/// 0 = unset (use available parallelism).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Hardware default for the worker count.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Set the process-wide worker count (0 resets to the hardware default).
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The effective worker count.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => default_jobs(),
        n => n,
    }
}

/// Host-core budget guard for the sharded core's observer workers: with
/// [`jobs`] capture workers each potentially running `requested` observer
/// threads, the product must not exceed the host's available cores. Returns
/// the clamped thread count (always ≥ 1) and warns on stderr when it had to
/// clamp.
pub fn budget_observer_threads(requested: usize) -> usize {
    let requested = requested.max(1);
    let allowed = (default_jobs() / jobs()).max(1);
    if requested > allowed {
        eprintln!(
            "warning: --jobs {} x {} observer threads exceeds {} available cores; \
             clamping observer threads to {}",
            jobs(),
            requested,
            default_jobs(),
            allowed
        );
        allowed
    } else {
        requested
    }
}

/// Parse `--jobs N` from the command line (or `DSM_JOBS` from the
/// environment), set the process-wide knob, and return the result.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let from_flag = args
        .iter()
        .position(|a| a == "--jobs" || a == "-j")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<usize>().ok());
    let from_env = std::env::var("DSM_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    if let Some(n) = from_flag.or(from_env) {
        set_jobs(n.max(1));
    }
    jobs()
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// Map `f` over `items` on up to [`jobs`] worker threads. Results are
/// returned in input order regardless of scheduling, so parallel output is
/// byte-identical to serial output.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_jobs(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count.
pub fn par_map_jobs<T, R, F>(n_jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n_jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    std::thread::scope(|s| {
        for _ in 0..n_jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i].lock().unwrap().take().expect("item taken twice");
                let r = f(item);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker skipped a slot"))
        .collect()
}

// ---------------------------------------------------------------------------
// Content-addressed trace store
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit (stable across platforms and Rust versions, unlike
/// `DefaultHasher`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bump when the on-disk trace layout changes: old entries become misses
/// instead of decoding garbage.
const TRACE_FORMAT: &str = "dsm-trace-v2";

/// Content hash of everything that determines a captured trace: the
/// experiment point, the derived machine configuration, and the collector
/// geometry. Any field change (via `Debug` of the full structs) changes
/// the key.
pub fn cache_key(config: &ExperimentConfig) -> String {
    let desc = format!(
        "{TRACE_FORMAT}|{:?}|{}|{:?}|{}|{:?}|{:?}",
        config.app,
        config.n_procs,
        config.scale,
        config.interval_base,
        config.system_config(),
        DetectorGeometry::default(),
    );
    format!("{}-{:016x}", config.label(), fnv1a64(desc.as_bytes()))
}

/// Process-wide trace-store directory. Unset (the default) disables disk
/// persistence; binaries enable it, unit tests run memory-only.
static STORE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Enable the on-disk trace store at `dir` (`None` disables it).
pub fn set_trace_store_dir(dir: Option<PathBuf>) {
    *STORE_DIR.lock().unwrap() = dir;
}

/// The configured store, if persistence is enabled.
pub fn trace_store() -> Option<TraceStore> {
    STORE_DIR
        .lock()
        .unwrap()
        .as_ref()
        .map(|d| TraceStore { dir: d.clone() })
}

/// The default store location: `$DSM_TRACE_CACHE`, or
/// `.dsm-trace-cache/` under the working directory.
pub fn default_store_dir() -> PathBuf {
    std::env::var_os("DSM_TRACE_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(".dsm-trace-cache"))
}

/// On-disk content-addressed store of captured traces.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.trace"))
    }

    /// Load the trace stored under `key`, or `None` on absence or any
    /// decode failure (treated as a miss, never an error).
    pub fn load(&self, key: &str) -> Option<SystemTrace> {
        let bytes = std::fs::read(self.path_for(key)).ok()?;
        codec::decode(&bytes)
    }

    /// Persist `trace` under `key` (atomic rename, so a concurrent reader
    /// never observes a torn file).
    pub fn store(&self, key: &str, trace: &SystemTrace) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let final_path = self.path_for(key);
        let tmp = self.dir.join(format!(".{key}.tmp-{}", std::process::id()));
        std::fs::write(&tmp, codec::encode(trace))?;
        std::fs::rename(&tmp, &final_path)?;
        Ok(final_path)
    }

    /// Delete every stored trace (`--cold` runs).
    pub fn clear(&self) -> std::io::Result<()> {
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                if e.path().extension().is_some_and(|x| x == "trace") {
                    std::fs::remove_file(e.path())?;
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Cache counters
// ---------------------------------------------------------------------------

static MEM_HITS: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide capture counters:
/// `(memory_hits, disk_hits, misses)`.
pub fn cache_counters() -> (u64, u64, u64) {
    (
        MEM_HITS.load(Ordering::Relaxed),
        DISK_HITS.load(Ordering::Relaxed),
        MISSES.load(Ordering::Relaxed),
    )
}

pub fn reset_cache_counters() {
    MEM_HITS.store(0, Ordering::Relaxed);
    DISK_HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Run reports
// ---------------------------------------------------------------------------

/// Where a capture came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureSource {
    MemoryCache,
    DiskCache,
    Simulated,
}

impl CaptureSource {
    fn as_str(self) -> &'static str {
        match self {
            CaptureSource::MemoryCache => "memory",
            CaptureSource::DiskCache => "disk",
            CaptureSource::Simulated => "simulated",
        }
    }
}

/// One experiment's outcome inside a [`RunReport`].
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    pub label: String,
    pub key: String,
    pub source: CaptureSource,
    pub wall_ms: f64,
    pub intervals: usize,
}

/// Structured record of one engine invocation: observability for long
/// sweeps, and the stable part doubles as a determinism witness.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub name: String,
    pub jobs: usize,
    pub runs: Vec<ExperimentRun>,
    pub total_wall_ms: f64,
}

impl RunReport {
    pub fn mem_hits(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.source == CaptureSource::MemoryCache)
            .count()
    }

    pub fn disk_hits(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.source == CaptureSource::DiskCache)
            .count()
    }

    pub fn misses(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.source == CaptureSource::Simulated)
            .count()
    }

    fn json_with(&self, timing: bool) -> Json {
        let runs: Vec<Json> = self
            .runs
            .iter()
            .map(|r| {
                let mut o = Json::obj()
                    .field("label", r.label.as_str())
                    .field("key", r.key.as_str())
                    .field("source", r.source.as_str())
                    .field("intervals", r.intervals);
                if timing {
                    o = o.field("wall_ms", r.wall_ms);
                }
                o
            })
            .collect();
        let mut o = Json::obj()
            .field("name", self.name.as_str())
            .field("jobs", self.jobs)
            .field("experiments", self.runs.len())
            .field("mem_hits", self.mem_hits())
            .field("disk_hits", self.disk_hits())
            .field("misses", self.misses());
        if timing {
            o = o.field("total_wall_ms", self.total_wall_ms);
        }
        o.field("runs", Json::Arr(runs))
    }

    /// Full JSON value, timing included.
    pub fn json_value(&self) -> Json {
        self.json_with(true)
    }

    /// Full JSON, timing included.
    pub fn to_json(&self) -> String {
        self.json_with(true).to_string()
    }

    /// Publish the deterministic run counters into a metrics registry
    /// (wall times are excluded so the published metrics stay byte-stable
    /// across reruns and job counts, like [`RunReport::stable_json`]).
    pub fn publish(&self, reg: &mut dsm_telemetry::MetricsRegistry) {
        reg.counter_add("harness/experiments", self.runs.len() as u64);
        reg.counter_add("harness/cache/mem_hits", self.mem_hits() as u64);
        reg.counter_add("harness/cache/disk_hits", self.disk_hits() as u64);
        reg.counter_add("harness/cache/misses", self.misses() as u64);
        reg.counter_add(
            "harness/intervals",
            self.runs.iter().map(|r| r.intervals as u64).sum(),
        );
    }

    /// JSON with wall-time fields elided — byte-identical across reruns
    /// and job counts (the determinism witness).
    pub fn stable_json(&self) -> String {
        self.json_with(false).to_string()
    }

    /// One-line human summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} experiments, jobs={}, cache {} mem + {} disk hits / {} simulated, {:.0} ms",
            self.name,
            self.runs.len(),
            self.jobs,
            self.mem_hits(),
            self.disk_hits(),
            self.misses(),
            self.total_wall_ms
        )
    }
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// Capture every configuration in `configs` — memory cache, then disk
/// store, then simulation — running misses concurrently on the worker
/// pool. Returns traces in input order plus a [`RunReport`].
pub fn capture_matrix(
    name: &str,
    configs: &[ExperimentConfig],
) -> (Vec<Arc<SystemTrace>>, RunReport) {
    let t0 = Instant::now();
    let store = trace_store();
    let results = par_map(configs.to_vec(), |config| {
        let t = Instant::now();
        let key = cache_key(&config);
        let (trace, source) = if let Some(hit) = trace::memory_cache_get(&config.label()) {
            MEM_HITS.fetch_add(1, Ordering::Relaxed);
            (hit, CaptureSource::MemoryCache)
        } else if let Some(hit) = store.as_ref().and_then(|s| s.load(&key)) {
            DISK_HITS.fetch_add(1, Ordering::Relaxed);
            let arc = Arc::new(hit);
            trace::memory_cache_insert(config.label(), arc.clone());
            (arc, CaptureSource::DiskCache)
        } else {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let fresh = Arc::new(trace::capture(config));
            if let Some(s) = &store {
                // Best-effort: a full disk never fails the experiment.
                let _ = s.store(&key, &fresh);
            }
            trace::memory_cache_insert(config.label(), fresh.clone());
            (fresh, CaptureSource::Simulated)
        };
        let run = ExperimentRun {
            label: config.label(),
            key,
            source,
            wall_ms: t.elapsed().as_secs_f64() * 1e3,
            intervals: trace.total_intervals(),
        };
        (trace, run)
    });
    let mut traces = Vec::with_capacity(results.len());
    let mut runs = Vec::with_capacity(results.len());
    for (trace, run) in results {
        traces.push(trace);
        runs.push(run);
    }
    let report = RunReport {
        name: name.to_string(),
        jobs: jobs(),
        runs,
        total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    };
    (traces, report)
}

/// Standard binary preamble: parse `--jobs`/`-j N`, `--cold` (clear the
/// store first), and `--no-cache` (disable persistence); enable the disk
/// store otherwise. Returns the worker count.
pub fn init_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let n = jobs_from_args();
    if args.iter().any(|a| a == "--no-cache") {
        set_trace_store_dir(None);
    } else {
        let dir = default_store_dir();
        set_trace_store_dir(Some(dir.clone()));
        if args.iter().any(|a| a == "--cold") {
            if let Ok(store) = TraceStore::open(&dir) {
                store.clear().expect("clear trace store");
            }
        }
    }
    n
}

// ---------------------------------------------------------------------------
// Binary trace codec
// ---------------------------------------------------------------------------

mod codec {
    use dsm_phase::detector::IntervalRecord;
    use dsm_sim::directory::DirectoryStats;
    use dsm_sim::fault::FaultStats;
    use dsm_sim::memctrl::MemCtrlStats;
    use dsm_sim::network::NetworkStats;
    use dsm_sim::stats::{ProcStats, SystemStats};
    use dsm_workloads::{App, Scale};

    use crate::experiment::ExperimentConfig;
    use crate::trace::SystemTrace;

    // v2: DirectoryStats.nacks + SystemStats.faults (fault injection).
    // v3: route-aware fabric — NetworkStats.total_flit_hops + per-link
    //     flit counters. Old versions decode as a cache miss, never a panic.
    const MAGIC: &[u8; 8] = b"DSMTRC4\n";

    fn app_code(app: App) -> u8 {
        match app {
            App::Lu => 0,
            App::Fmm => 1,
            App::Art => 2,
            App::Equake => 3,
            App::Ocean => 4,
        }
    }

    fn app_from(code: u8) -> Option<App> {
        Some(match code {
            0 => App::Lu,
            1 => App::Fmm,
            2 => App::Art,
            3 => App::Equake,
            4 => App::Ocean,
            _ => return None,
        })
    }

    fn scale_code(scale: Scale) -> u8 {
        match scale {
            Scale::Test => 0,
            Scale::Scaled => 1,
            Scale::Paper => 2,
        }
    }

    fn scale_from(code: u8) -> Option<Scale> {
        Some(match code {
            0 => Scale::Test,
            1 => Scale::Scaled,
            2 => Scale::Paper,
            _ => return None,
        })
    }

    struct Writer {
        out: Vec<u8>,
    }

    impl Writer {
        fn u64(&mut self, x: u64) {
            self.out.extend_from_slice(&x.to_le_bytes());
        }
        fn f64(&mut self, x: f64) {
            self.u64(x.to_bits());
        }
        fn vec_u64(&mut self, v: &[u64]) {
            self.u64(v.len() as u64);
            for &x in v {
                self.u64(x);
            }
        }
        fn vec_f64(&mut self, v: &[f64]) {
            self.u64(v.len() as u64);
            for &x in v {
                self.f64(x);
            }
        }
    }

    struct Reader<'a> {
        b: &'a [u8],
        pos: usize,
    }

    impl Reader<'_> {
        fn u64(&mut self) -> Option<u64> {
            let end = self.pos.checked_add(8)?;
            let bytes = self.b.get(self.pos..end)?;
            self.pos = end;
            Some(u64::from_le_bytes(bytes.try_into().ok()?))
        }
        fn f64(&mut self) -> Option<f64> {
            Some(f64::from_bits(self.u64()?))
        }
        fn usize(&mut self) -> Option<usize> {
            usize::try_from(self.u64()?).ok()
        }
        fn len(&mut self) -> Option<usize> {
            let n = self.usize()?;
            // Guard against corrupt lengths requesting absurd allocations.
            if n > self.b.len() / 8 + 1 {
                return None;
            }
            Some(n)
        }
        fn vec_u64(&mut self) -> Option<Vec<u64>> {
            let n = self.len()?;
            (0..n).map(|_| self.u64()).collect()
        }
        fn vec_f64(&mut self) -> Option<Vec<f64>> {
            let n = self.len()?;
            (0..n).map(|_| self.f64()).collect()
        }
    }

    fn write_proc_stats(w: &mut Writer, p: &ProcStats) {
        // Field-by-field (not memcpy) so layout changes need a conscious
        // format bump; destructuring makes missed fields a compile error.
        let ProcStats {
            cycles,
            insns,
            sync_ops,
            sync_wait_cycles,
            mem_refs,
            l1_misses,
            l2_misses,
            local_home_misses,
            remote_home_misses,
            mem_stall_cycles,
            contention_cycles,
            mispredicts,
            branches,
            intervals,
        } = *p;
        for x in [
            cycles,
            insns,
            sync_ops,
            sync_wait_cycles,
            mem_refs,
            l1_misses,
            l2_misses,
            local_home_misses,
            remote_home_misses,
            mem_stall_cycles,
            contention_cycles,
            mispredicts,
            branches,
            intervals,
        ] {
            w.u64(x);
        }
    }

    fn read_proc_stats(r: &mut Reader) -> Option<ProcStats> {
        Some(ProcStats {
            cycles: r.u64()?,
            insns: r.u64()?,
            sync_ops: r.u64()?,
            sync_wait_cycles: r.u64()?,
            mem_refs: r.u64()?,
            l1_misses: r.u64()?,
            l2_misses: r.u64()?,
            local_home_misses: r.u64()?,
            remote_home_misses: r.u64()?,
            mem_stall_cycles: r.u64()?,
            contention_cycles: r.u64()?,
            mispredicts: r.u64()?,
            branches: r.u64()?,
            intervals: r.u64()?,
        })
    }

    pub(super) fn encode(trace: &SystemTrace) -> Vec<u8> {
        let mut w = Writer {
            out: Vec::with_capacity(4096),
        };
        w.out.extend_from_slice(MAGIC);
        w.out.push(app_code(trace.config.app));
        w.out.push(scale_code(trace.config.scale));
        w.u64(trace.config.n_procs as u64);
        w.u64(trace.config.interval_base);

        w.u64(trace.records.len() as u64);
        for proc_records in &trace.records {
            w.u64(proc_records.len() as u64);
            for rec in proc_records {
                let IntervalRecord {
                    proc,
                    index,
                    insns,
                    cycles,
                    ref bbv,
                    ref fvec,
                    ref cvec,
                    dds,
                    ref ws_sig,
                    branches,
                } = *rec;
                w.u64(proc as u64);
                w.u64(index);
                w.u64(insns);
                w.u64(cycles);
                w.vec_f64(bbv);
                w.vec_u64(fvec);
                w.vec_u64(cvec);
                w.f64(dds);
                w.vec_u64(ws_sig);
                w.u64(branches);
            }
        }

        let SystemStats {
            ref procs,
            ref directory,
            ref network,
            ref memctrls,
            ref faults,
            reconfig,
            finish_cycle,
        } = trace.stats;
        w.u64(procs.len() as u64);
        for p in procs {
            write_proc_stats(&mut w, p);
        }
        let DirectoryStats {
            reads,
            writes,
            owner_forwards,
            invalidations,
            upgrades,
            writebacks,
            nacks,
        } = *directory;
        for x in [
            reads,
            writes,
            owner_forwards,
            invalidations,
            upgrades,
            writebacks,
            nacks,
        ] {
            w.u64(x);
        }
        let FaultStats {
            messages,
            drops,
            retries,
            forced_deliveries,
            duplicates,
            spikes,
            spike_cycles,
            timeout_wait_cycles,
            slowdown_events,
            slowdown_cycles,
        } = *faults;
        for x in [
            messages,
            drops,
            retries,
            forced_deliveries,
            duplicates,
            spikes,
            spike_cycles,
            timeout_wait_cycles,
            slowdown_events,
            slowdown_cycles,
        ] {
            w.u64(x);
        }
        let NetworkStats {
            msgs,
            payload_msgs,
            total_hops,
            link_wait_cycles,
            total_flit_hops,
            ref link_flits,
        } = *network;
        for x in [msgs, payload_msgs, total_hops, link_wait_cycles, total_flit_hops] {
            w.u64(x);
        }
        w.vec_u64(link_flits);
        w.u64(memctrls.len() as u64);
        for m in memctrls {
            let MemCtrlStats {
                requests,
                total_queue_delay,
            } = *m;
            w.u64(requests);
            w.u64(total_queue_delay);
        }
        for x in [
            reconfig.migrations,
            reconfig.migration_stall_cycles,
            reconfig.dvfs_epochs,
            reconfig.dvfs_extra_cycles,
            reconfig.dvfs_saved_cycles,
            reconfig.core_switches,
        ] {
            w.u64(x);
        }
        w.u64(finish_cycle);
        w.u64(trace.ddv_vectors_exchanged);
        w.out
    }

    pub(super) fn decode(bytes: &[u8]) -> Option<SystemTrace> {
        if bytes.len() < MAGIC.len() + 2 || &bytes[..MAGIC.len()] != MAGIC {
            return None;
        }
        let app = app_from(bytes[MAGIC.len()])?;
        let scale = scale_from(bytes[MAGIC.len() + 1])?;
        let mut r = Reader {
            b: bytes,
            pos: MAGIC.len() + 2,
        };
        let n_procs = r.usize()?;
        let interval_base = r.u64()?;
        let config = ExperimentConfig {
            app,
            n_procs,
            scale,
            interval_base,
        };

        let outer = r.len()?;
        let mut records = Vec::with_capacity(outer);
        for _ in 0..outer {
            let count = r.len()?;
            let mut recs = Vec::with_capacity(count);
            for _ in 0..count {
                recs.push(IntervalRecord {
                    proc: r.usize()?,
                    index: r.u64()?,
                    insns: r.u64()?,
                    cycles: r.u64()?,
                    bbv: r.vec_f64()?,
                    fvec: r.vec_u64()?,
                    cvec: r.vec_u64()?,
                    dds: r.f64()?,
                    ws_sig: r.vec_u64()?,
                    branches: r.u64()?,
                });
            }
            records.push(recs);
        }

        let n = r.len()?;
        let mut procs = Vec::with_capacity(n);
        for _ in 0..n {
            procs.push(read_proc_stats(&mut r)?);
        }
        let directory = DirectoryStats {
            reads: r.u64()?,
            writes: r.u64()?,
            owner_forwards: r.u64()?,
            invalidations: r.u64()?,
            upgrades: r.u64()?,
            writebacks: r.u64()?,
            nacks: r.u64()?,
        };
        let faults = FaultStats {
            messages: r.u64()?,
            drops: r.u64()?,
            retries: r.u64()?,
            forced_deliveries: r.u64()?,
            duplicates: r.u64()?,
            spikes: r.u64()?,
            spike_cycles: r.u64()?,
            timeout_wait_cycles: r.u64()?,
            slowdown_events: r.u64()?,
            slowdown_cycles: r.u64()?,
        };
        let network = NetworkStats {
            msgs: r.u64()?,
            payload_msgs: r.u64()?,
            total_hops: r.u64()?,
            link_wait_cycles: r.u64()?,
            total_flit_hops: r.u64()?,
            link_flits: r.vec_u64()?,
        };
        let nm = r.len()?;
        let mut memctrls = Vec::with_capacity(nm);
        for _ in 0..nm {
            memctrls.push(MemCtrlStats {
                requests: r.u64()?,
                total_queue_delay: r.u64()?,
            });
        }
        let reconfig = dsm_sim::ReconfigStats {
            migrations: r.u64()?,
            migration_stall_cycles: r.u64()?,
            dvfs_epochs: r.u64()?,
            dvfs_extra_cycles: r.u64()?,
            dvfs_saved_cycles: r.u64()?,
            core_switches: r.u64()?,
        };
        let finish_cycle = r.u64()?;
        let ddv_vectors_exchanged = r.u64()?;
        if r.pos != bytes.len() {
            return None;
        }
        Some(SystemTrace {
            config,
            records,
            stats: SystemStats {
                procs,
                directory,
                network,
                memctrls,
                faults,
                reconfig,
                finish_cycle,
            },
            ddv_vectors_exchanged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_workloads::App;

    #[test]
    fn par_map_preserves_order_for_any_job_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for j in [1, 2, 4, 13] {
            assert_eq!(par_map_jobs(j, items.clone(), |x| x * 3), expect);
        }
    }

    #[test]
    fn budget_guard_clamps_to_host_cores() {
        // Without touching the process-wide jobs knob: the clamp ceiling is
        // at most the hardware core count and the result is always >= 1.
        let clamped = budget_observer_threads(usize::MAX);
        assert!(clamped >= 1);
        assert!(clamped <= default_jobs());
        assert_eq!(budget_observer_threads(0), 1);
        assert!(budget_observer_threads(1) == 1);
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map_jobs(4, Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map_jobs(4, vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn run_report_publishes_cache_counters() {
        let report = RunReport {
            name: "t".into(),
            jobs: 2,
            runs: vec![
                ExperimentRun {
                    label: "a".into(),
                    key: "ka".into(),
                    source: CaptureSource::MemoryCache,
                    wall_ms: 1.0,
                    intervals: 5,
                },
                ExperimentRun {
                    label: "b".into(),
                    key: "kb".into(),
                    source: CaptureSource::Simulated,
                    wall_ms: 2.0,
                    intervals: 7,
                },
            ],
            total_wall_ms: 3.0,
        };
        let mut reg = dsm_telemetry::MetricsRegistry::new();
        report.publish(&mut reg);
        assert_eq!(reg.counter_value("harness/experiments"), Some(2));
        assert_eq!(reg.counter_value("harness/cache/mem_hits"), Some(1));
        assert_eq!(reg.counter_value("harness/cache/disk_hits"), Some(0));
        assert_eq!(reg.counter_value("harness/cache/misses"), Some(1));
        assert_eq!(reg.counter_value("harness/intervals"), Some(12));
        // No wall-time metric leaks in: the dump must stay deterministic.
        assert!(reg.gauge_value("harness/total_wall_ms").is_none());
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a vectors — the cache key must never drift silently.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn cache_key_separates_every_field() {
        let base = ExperimentConfig::test(App::Lu, 2);
        let variants = [
            ExperimentConfig {
                app: App::Fmm,
                ..base
            },
            ExperimentConfig { n_procs: 4, ..base },
            ExperimentConfig {
                scale: dsm_workloads::Scale::Scaled,
                ..base
            },
            ExperimentConfig {
                interval_base: base.interval_base + 1,
                ..base
            },
        ];
        let k0 = cache_key(&base);
        let same = ExperimentConfig { ..base };
        assert_eq!(k0, cache_key(&same));
        for v in variants {
            assert_ne!(k0, cache_key(&v), "{v:?}");
        }
    }

    #[test]
    fn trace_codec_roundtrips_exactly() {
        let trace = trace::capture(ExperimentConfig::test(App::Lu, 2));
        let store = TraceStore::open(
            std::env::temp_dir().join(format!("dsm-store-test-{}", std::process::id())),
        )
        .unwrap();
        let key = cache_key(&trace.config);
        store.store(&key, &trace).unwrap();
        let back = store.load(&key).expect("load stored trace");
        assert_eq!(back.config, trace.config);
        assert_eq!(back.records, trace.records);
        assert_eq!(back.stats, trace.stats);
        assert_eq!(back.ddv_vectors_exchanged, trace.ddv_vectors_exchanged);
        store.clear().unwrap();
        assert!(store.load(&key).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_store_entries_are_misses() {
        let dir = std::env::temp_dir().join(format!("dsm-store-corrupt-{}", std::process::id()));
        let store = TraceStore::open(&dir).unwrap();
        std::fs::write(store.dir().join("bad.trace"), b"DSMTRC2\n\x09garbage").unwrap();
        assert!(store.load("bad").is_none());
        let _ = std::fs::remove_dir_all(dir);
    }
}
