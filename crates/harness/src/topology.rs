//! Topology sweep: phase-detection quality and link-level traffic across
//! interconnect layouts.
//!
//! For each [`TopologyKind`] the sweep re-runs a workload on the routed
//! fabric with per-link contention enabled, classifies the captured
//! intervals with both the BBV baseline and the paper's BBV+DDV detector
//! at fixed thresholds, and reports the per-directed-link demand profile
//! (total flit-hops, the hottest link and its flit count, and the
//! peak-to-mean imbalance). The hypercube point doubles as the baseline:
//! every other layout's finish cycle is reported relative to it, so the
//! table reads as "what does trading the paper's network for X cost, and
//! does the detector still see the same phases".

use dsm_phase::detector::DetectorMode;
use dsm_sim::topology::{Topology, TopologyKind};
use dsm_workloads::App;

use crate::experiment::ExperimentConfig;
use crate::faults::{classified_cov, SWEEP_THRESHOLDS};
use crate::json::Json;
use crate::trace::{capture_with, SystemTrace};

/// One layout's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyPoint {
    pub kind: TopologyKind,
    /// Maximum route length between any two nodes, in links.
    pub diameter: u32,
    /// Directed links in the layout (including switch links for fat-tree).
    pub n_links: usize,
    /// Mean per-processor identifier CoV of CPI, BBV-only baseline.
    pub cov_bbv: f64,
    /// Mean per-processor identifier CoV of CPI, BBV+DDV detector.
    pub cov_bbv_ddv: f64,
    /// Mean phases detected per processor (BBV+DDV).
    pub phases: f64,
    pub finish_cycle: u64,
    /// Finish cycle relative to the hypercube run (1.0 = baseline).
    pub slowdown: f64,
    /// Delivered message hops summed over the run.
    pub total_hops: u64,
    /// Cycles messages spent queued behind busy links.
    pub link_wait_cycles: u64,
    /// Flit-cycles summed over every directed link.
    pub total_flit_hops: u64,
    /// Flit count on the single most-loaded directed link.
    pub peak_link_flits: u64,
    /// Label of that link (`"from->to"`, switches prefixed `s`), if any
    /// traffic flowed at all.
    pub hottest_link: Option<String>,
    /// Peak link flits over the mean across links carrying traffic — 1.0
    /// means perfectly balanced demand.
    pub imbalance: f64,
}

/// A whole sweep: one point per layout, hypercube first.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySweep {
    pub app: App,
    pub n_procs: usize,
    pub points: Vec<TopologyPoint>,
}

/// Capture one workload on one layout (link contention on) and distil the
/// detector-quality and link-demand numbers.
pub fn topology_point(config: ExperimentConfig, kind: TopologyKind) -> (TopologyPoint, SystemTrace) {
    let mut sys_cfg = config.system_config();
    sys_cfg.network.topology = kind;
    sys_cfg.network.link_contention = true;
    let trace = capture_with(config, sys_cfg, Default::default());
    assert!(
        trace.stats.coherence_transactions_conserved(),
        "{} on {}: transactions not conserved",
        config.label(),
        kind.name(),
    );
    let (cov_bbv, _) = classified_cov(&trace, DetectorMode::Bbv, SWEEP_THRESHOLDS);
    let (cov_bbv_ddv, phases) = classified_cov(&trace, DetectorMode::BbvDdv, SWEEP_THRESHOLDS);

    let topo = kind.build(config.n_procs);
    let net = &trace.stats.network;
    let carrying: Vec<u64> = net.link_flits.iter().copied().filter(|&f| f > 0).collect();
    let mean = carrying.iter().sum::<u64>() as f64 / carrying.len().max(1) as f64;
    let point = TopologyPoint {
        kind,
        diameter: topo.diameter(),
        n_links: topo.n_links(),
        cov_bbv,
        cov_bbv_ddv,
        phases,
        finish_cycle: trace.stats.finish_cycle,
        slowdown: 1.0, // filled in by the sweep once the baseline is known
        total_hops: net.total_hops,
        link_wait_cycles: net.link_wait_cycles,
        total_flit_hops: net.total_flit_hops,
        peak_link_flits: net.peak_link_flits(),
        hottest_link: net.hottest_link().map(|l| topo.link_label(l)),
        imbalance: if mean > 0.0 { net.peak_link_flits() as f64 / mean } else { 1.0 },
    };
    (point, trace)
}

/// Run the sweep for one workload over every layout. Hypercube (the
/// paper's network) leads and sets the slowdown baseline.
pub fn topology_sweep(app: App, n_procs: usize) -> TopologySweep {
    assert!(
        TopologyKind::ALL.iter().all(|k| k.supports(n_procs)),
        "{n_procs} processors must suit every layout (power of two)"
    );
    let config = ExperimentConfig::test(app, n_procs);
    let mut points: Vec<TopologyPoint> = TopologyKind::ALL
        .iter()
        .map(|&kind| topology_point(config, kind).0)
        .collect();
    let baseline = points[0].finish_cycle;
    for p in &mut points {
        p.slowdown =
            if baseline > 0 { p.finish_cycle as f64 / baseline as f64 } else { 1.0 };
    }
    TopologySweep { app, n_procs, points }
}

impl TopologySweep {
    /// JSON artefact (schema documented in EXPERIMENTS.md).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("app", self.app.name())
            .field("n_procs", self.n_procs)
            .field("thresholds", Json::obj()
                .field("bbv", SWEEP_THRESHOLDS.bbv)
                .field("dds", SWEEP_THRESHOLDS.dds))
            .field(
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            let hottest = match &p.hottest_link {
                                Some(l) => Json::from(l.as_str()),
                                None => Json::Null,
                            };
                            Json::obj()
                                .field("topology", p.kind.name())
                                .field("diameter", p.diameter as u64)
                                .field("n_links", p.n_links)
                                .field("cov_bbv", p.cov_bbv)
                                .field("cov_bbv_ddv", p.cov_bbv_ddv)
                                .field("phases", p.phases)
                                .field("finish_cycle", p.finish_cycle)
                                .field("slowdown", p.slowdown)
                                .field("total_hops", p.total_hops)
                                .field("link_wait_cycles", p.link_wait_cycles)
                                .field("total_flit_hops", p.total_flit_hops)
                                .field("peak_link_flits", p.peak_link_flits)
                                .field("hottest_link", hottest)
                                .field("imbalance", p.imbalance)
                        })
                        .collect(),
                ),
            )
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} {}P — link contention on, thresholds bbv {} / dds {}\n\
             {:>10} {:>4} {:>6} {:>9} {:>9} {:>7} {:>9} {:>10} {:>10} {:>9} {:>6} {:>12}\n",
            self.app.name(),
            self.n_procs,
            SWEEP_THRESHOLDS.bbv,
            SWEEP_THRESHOLDS.dds,
            "topology",
            "diam",
            "links",
            "CoV(bbv)",
            "CoV(ddv)",
            "phases",
            "slowdown",
            "hops",
            "flit-hops",
            "peak",
            "imbal",
            "hottest",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>10} {:>4} {:>6} {:>9.4} {:>9.4} {:>7.1} {:>8.3}x {:>10} {:>10} {:>9} {:>6.2} {:>12}\n",
                p.kind.name(),
                p.diameter,
                p.n_links,
                p.cov_bbv,
                p.cov_bbv_ddv,
                p.phases,
                p.slowdown,
                p.total_hops,
                p.total_flit_hops,
                p.peak_link_flits,
                p.imbalance,
                p.hottest_link.as_deref().unwrap_or("-"),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::trace::capture;

    #[test]
    fn sweep_covers_every_layout_hypercube_first() {
        let s = topology_sweep(App::Lu, 4);
        assert_eq!(s.points.len(), TopologyKind::ALL.len());
        assert_eq!(s.points[0].kind, TopologyKind::Hypercube);
        assert!((s.points[0].slowdown - 1.0).abs() < 1e-12);
        for p in &s.points {
            assert!(p.finish_cycle > 0);
            assert!(p.total_flit_hops > 0, "{}: no traffic recorded", p.kind.name());
            assert!(p.peak_link_flits > 0);
            assert!(p.imbalance >= 1.0, "{}: peak below mean", p.kind.name());
            assert!(p.hottest_link.is_some());
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = topology_sweep(App::Equake, 2);
        let b = topology_sweep(App::Equake, 2);
        assert_eq!(a, b);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn hypercube_point_matches_uncontended_detector_quality() {
        // Link contention shifts latencies but the default capture and the
        // swept hypercube run see the same workload; the detector columns
        // must be finite and the phase count positive on both.
        let config = ExperimentConfig::test(App::Art, 2);
        let plain = capture(config);
        let (point, trace) = topology_point(config, TopologyKind::Hypercube);
        assert_eq!(trace.records.len(), plain.records.len());
        assert!(point.cov_bbv.is_finite() && point.cov_bbv_ddv.is_finite());
        assert!(point.phases >= 1.0);
    }

    #[test]
    fn sweep_json_schema_is_stable() {
        let s = topology_sweep(App::Fmm, 2);
        let text = s.to_json().to_string();
        let back = parse(&text).expect("self-parse");
        assert_eq!(back.get("app").and_then(Json::as_str), Some("FMM"));
        let pts = back.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(pts.len(), 5);
        for key in [
            "topology",
            "diameter",
            "n_links",
            "cov_bbv",
            "cov_bbv_ddv",
            "phases",
            "finish_cycle",
            "slowdown",
            "total_hops",
            "link_wait_cycles",
            "total_flit_hops",
            "peak_link_flits",
            "hottest_link",
            "imbalance",
        ] {
            assert!(pts[0].get(key).is_some(), "missing {key}");
        }
        let names: Vec<&str> =
            pts.iter().filter_map(|p| p.get("topology").and_then(Json::as_str)).collect();
        assert_eq!(names, ["hypercube", "mesh2d", "torus2d", "ring", "fattree"]);
    }
}
