//! The §III-B communication-overhead model.
//!
//! "The communication cost involved in the computation of DDS by processor
//! i is n−1 exchanges with as many processors. Assuming 32 2GHz processors,
//! IPC = 1, and a 'real-world' interval length of 100M instructions, the
//! overall sustained bandwidth requirement of this mechanism is about
//! 160kB/s. If modern memory controllers can handle 1.5GB/s, then the
//! overhead of this mechanism is under 0.15% of the peak bandwidth."
//!
//! This module reproduces that arithmetic exactly, and additionally
//! computes the *measured* overhead of a captured trace.

use serde::{Deserialize, Serialize};

use crate::trace::SystemTrace;

/// Analytic model inputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    pub n_procs: usize,
    /// Core frequency in Hz.
    pub freq_hz: f64,
    /// Sustained instructions per cycle.
    pub ipc: f64,
    /// Interval length in committed instructions.
    pub interval_insns: f64,
    /// Bytes per frequency-vector entry (one hardware counter).
    pub entry_bytes: f64,
    /// Reference memory-controller bandwidth in bytes/s.
    pub controller_bw: f64,
}

impl OverheadModel {
    /// The paper's §III-B parameters.
    pub fn paper() -> Self {
        Self {
            n_procs: 32,
            freq_hz: 2.0e9,
            ipc: 1.0,
            interval_insns: 100.0e6,
            entry_bytes: 4.0,
            controller_bw: 1.5e9,
        }
    }

    /// Intervals per second per processor.
    pub fn intervals_per_sec(&self) -> f64 {
        self.freq_hz * self.ipc / self.interval_insns
    }

    /// Bytes moved per interval per node: it *receives* n−1 remote `F_i`
    /// vectors of n entries and *serves* n−1 queries with its own n-entry
    /// rows.
    pub fn bytes_per_interval_per_node(&self) -> f64 {
        let n = self.n_procs as f64;
        2.0 * (n - 1.0) * n * self.entry_bytes
    }

    /// Sustained per-node bandwidth of the mechanism, bytes/s.
    pub fn bytes_per_sec_per_node(&self) -> f64 {
        self.bytes_per_interval_per_node() * self.intervals_per_sec()
    }

    /// Fraction of the reference controller bandwidth.
    pub fn fraction_of_bw(&self) -> f64 {
        self.bytes_per_sec_per_node() / self.controller_bw
    }

    pub fn report(&self) -> String {
        format!(
            "DDV communication overhead model\n\
             n = {} processors, {} GHz, IPC = {}, interval = {} M instructions\n\
             intervals/s per node     : {:.1}\n\
             bytes/interval per node  : {:.0} (recv {} vectors + serve {} rows, {} B/entry)\n\
             sustained bandwidth/node : {:.1} kB/s\n\
             fraction of {} GB/s      : {:.4} %  (paper: ~160 kB/s, under 0.15 %)\n",
            self.n_procs,
            self.freq_hz / 1e9,
            self.ipc,
            self.interval_insns / 1e6,
            self.intervals_per_sec(),
            self.bytes_per_interval_per_node(),
            self.n_procs - 1,
            self.n_procs - 1,
            self.entry_bytes,
            self.bytes_per_sec_per_node() / 1e3,
            self.controller_bw / 1e9,
            self.fraction_of_bw() * 100.0
        )
    }
}

/// Measured overhead of a captured run: actual vectors exchanged over the
/// actual simulated wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredOverhead {
    pub vectors_exchanged: u64,
    pub bytes_total: f64,
    pub sim_seconds: f64,
    pub bytes_per_sec_per_node: f64,
}

pub fn measured_overhead(trace: &SystemTrace, entry_bytes: f64) -> MeasuredOverhead {
    let n = trace.config.n_procs as f64;
    let freq_hz = trace.config.system_config().freq_mhz as f64 * 1e6;
    let bytes_total = trace.ddv_vectors_exchanged as f64 * n * entry_bytes * 2.0;
    let sim_seconds = trace.stats.finish_cycle as f64 / freq_hz;
    MeasuredOverhead {
        vectors_exchanged: trace.ddv_vectors_exchanged,
        bytes_total,
        sim_seconds,
        bytes_per_sec_per_node: if sim_seconds > 0.0 {
            bytes_total / sim_seconds / n
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_reproduced() {
        let m = OverheadModel::paper();
        // 2 GHz * IPC 1 / 100M insns = 20 intervals/s.
        assert!((m.intervals_per_sec() - 20.0).abs() < 1e-9);
        // 2 * 31 * 32 * 4 B = 7936 B per interval per node.
        assert!((m.bytes_per_interval_per_node() - 7936.0).abs() < 1e-9);
        // 7936 * 20 = 158.72 kB/s — "about 160kB/s".
        let kbs = m.bytes_per_sec_per_node() / 1e3;
        assert!((kbs - 158.72).abs() < 0.01, "got {kbs}");
        assert!(kbs > 150.0 && kbs < 170.0, "paper says about 160 kB/s");
        // Under 0.15 % of 1.5 GB/s.
        assert!(m.fraction_of_bw() < 0.0015);
    }

    #[test]
    fn overhead_scales_quadratically_with_nodes() {
        let m32 = OverheadModel::paper();
        let m8 = OverheadModel { n_procs: 8, ..m32 };
        let ratio = m32.bytes_per_sec_per_node() / m8.bytes_per_sec_per_node();
        // (2*31*32)/(2*7*8) = 17.7x
        assert!(ratio > 15.0 && ratio < 20.0);
    }

    #[test]
    fn measured_overhead_from_trace() {
        use crate::experiment::ExperimentConfig;
        use dsm_workloads::App;
        let t = crate::trace::capture(ExperimentConfig::test(App::Lu, 4));
        let m = measured_overhead(&t, 4.0);
        assert!(m.vectors_exchanged > 0);
        assert!(m.sim_seconds > 0.0);
        assert!(m.bytes_per_sec_per_node > 0.0);
    }

    #[test]
    fn report_mentions_the_paper_numbers() {
        let r = OverheadModel::paper().report();
        assert!(r.contains("158.7"));
        assert!(r.contains("0.15"));
    }
}
