//! Phase-guided sampled simulation: the harness glue around
//! [`dsm_simpoint`].
//!
//! The pipeline has four steps, mirroring the SimPoint methodology on top of
//! this repository's phase features:
//!
//! 1. **Profile** — capture the full run once ([`crate::trace`]) and build
//!    one BBV ⊕ DDV signature per *global* interval
//!    ([`dsm_simpoint::signatures`]).
//! 2. **Select** — cluster the signatures with deterministic k-means and
//!    pick one representative interval per cluster
//!    ([`dsm_simpoint::select`]).
//! 3. **Checkpoint** — re-run the workload once, snapshotting the complete
//!    machine + collector state (`DSMCKPT1` codec) at each representative's
//!    interval boundary; the continuation of this run doubles as a golden
//!    cross-check against the profiling pass.
//! 4. **Replay + reconstruct** — decode each checkpoint in a worker
//!    ([`crate::parallel::par_map`]), rebuild the machine, fast-forward a
//!    fresh instruction stream, restore, simulate exactly one interval, and
//!    combine the per-representative CPIs under cluster weights
//!    ([`dsm_simpoint::reconstruct_cpi`]).
//!
//! Everything is deterministic: fixed selection seed, deterministic
//! workloads, canonical checkpoint encoding — so the JSON artefacts under
//! `results/simpoint/` are byte-identical across reruns.
//!
//! One caveat documented here on purpose: a restored run reproduces the
//! simulator statistics and the interval trace bit-identically, but not
//! telemetry spans emitted *before* the checkpoint (telemetry is process
//! state, not machine state, and is excluded from snapshots by design).

use std::path::PathBuf;

use dsm_phase::detector::{DetectorGeometry, TraceCollector};
use dsm_sim::config::{FaultPlan, SystemConfig};
use dsm_sim::event::{ChunkedStream, InstructionStream};
use dsm_sim::network::Network;
use dsm_sim::system::System;
use dsm_simpoint::{
    interval_cpis, mean_and_cov, reconstruct_cpi, relative_error, select, signatures,
    stratified_members, Checkpoint, CheckpointMeta, Reconstructed, SampleUnit, Selection,
};
use dsm_workloads::{make_stream, Workload};

use crate::experiment::ExperimentConfig;
use crate::json::Json;
use crate::parallel::par_map;
use crate::report;
use crate::trace::{capture_cached, capture_with_faults, SystemTrace};

/// Fixed seed for representative selection: sampling artefacts must be
/// byte-identical across reruns.
pub const SELECTION_SEED: u64 = 0x51_D0_17;

/// Maximum clusters the sweep will consider; bounded by `n_intervals / 5` so
/// the simulated-interval reduction stays at least 5x.
pub const MAX_K: usize = 64;

type AppSystem = System<ChunkedStream<Box<dyn Workload>>, TraceCollector>;

/// Run `config` under `plan`, snapshotting the machine at each boundary in
/// `boundaries` (sorted, deduplicated; boundary `b` = the state before
/// global interval `b` executes). Returns the encoded checkpoints as
/// `(boundary, bytes)` pairs plus the full-run trace of this same pass.
///
/// Panics if a requested boundary lies beyond the end of the run — callers
/// derive boundaries from a profiling pass of the identical configuration,
/// so an unreachable boundary is a determinism bug, not an input error.
pub fn capture_with_checkpoints(
    config: ExperimentConfig,
    plan: FaultPlan,
    boundaries: &[u64],
) -> (Vec<(u64, Vec<u8>)>, SystemTrace) {
    let mut sys_cfg = config.system_config();
    sys_cfg.fault = plan;
    capture_checkpoints_inner(config, sys_cfg, boundaries, false, 0)
}

/// [`capture_with_checkpoints`] on the sharded parallel core: the run
/// executes under `shards` shards (conservative window barrier included)
/// and each checkpoint records the shard count in its `DSMCKPT3` metadata,
/// so [`resume_checkpoint`] re-enables the identical sharded scheduler.
/// Bit-identical to the serial capture — the round-trip suite pins this.
pub fn capture_with_checkpoints_sharded(
    config: ExperimentConfig,
    plan: FaultPlan,
    boundaries: &[u64],
    shards: usize,
) -> (Vec<(u64, Vec<u8>)>, SystemTrace) {
    let mut sys_cfg = config.system_config();
    sys_cfg.fault = plan;
    capture_checkpoints_inner(config, sys_cfg, boundaries, false, shards)
}

/// [`capture_with_checkpoints`] with an explicit machine configuration —
/// the routed-fabric round-trip tests checkpoint non-default topologies
/// with link contention on. The fault plan is `sys_cfg.fault`.
pub fn capture_with_checkpoints_cfg(
    config: ExperimentConfig,
    sys_cfg: SystemConfig,
    boundaries: &[u64],
) -> (Vec<(u64, Vec<u8>)>, SystemTrace) {
    capture_checkpoints_inner(config, sys_cfg, boundaries, false, 0)
}

fn capture_checkpoints_inner(
    config: ExperimentConfig,
    sys_cfg: SystemConfig,
    boundaries: &[u64],
    strip_records: bool,
    shards: usize,
) -> (Vec<(u64, Vec<u8>)>, SystemTrace) {
    let mut sorted: Vec<u64> = boundaries.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut sys = fresh_system(config, sys_cfg.clone());
    if shards > 1 {
        sys.enable_sharding(shards);
    }
    let mut ckpts = Vec::with_capacity(sorted.len());
    for &b in &sorted {
        let reached = sys.run_to_interval(b);
        assert!(
            reached && sys.min_interval_index() != u64::MAX,
            "boundary {b} not reachable for {}",
            config.label()
        );
        let mut ck = snapshot(&sys, config, &sys_cfg, b);
        if strip_records {
            // The replay worker only measures interval `b`, but processors
            // ahead of the global boundary may have recorded it already —
            // keep that tail and drop the (write-only) history before it,
            // so a late checkpoint does not carry the whole trace so far.
            // The continuation is unaffected: the collector never reads
            // back its records.
            for proc_recs in &mut ck.collector.records {
                proc_recs.retain(|r| r.index >= b);
            }
        }
        ckpts.push((b, ck.encode()));
    }
    let (stats, collector) = sys.run_to_end();
    let trace = SystemTrace {
        config,
        ddv_vectors_exchanged: collector.ddv().vectors_exchanged(),
        records: collector.records,
        stats,
    };
    (ckpts, trace)
}

/// Run `config` under `plan`, snapshotting every `every` global interval
/// boundaries until the run ends. The open-ended sibling of
/// [`capture_with_checkpoints`] for the `faults --checkpoint-every` flag.
pub fn capture_checkpoint_every(
    config: ExperimentConfig,
    plan: FaultPlan,
    every: u64,
) -> (Vec<(u64, Vec<u8>)>, SystemTrace) {
    assert!(every > 0, "checkpoint period must be positive");
    let mut sys_cfg = config.system_config();
    sys_cfg.fault = plan;
    let mut sys = fresh_system(config, sys_cfg.clone());
    let mut ckpts = Vec::new();
    let mut b = every;
    loop {
        if !sys.run_to_interval(b) || sys.min_interval_index() == u64::MAX {
            break;
        }
        ckpts.push((b, snapshot(&sys, config, &sys_cfg, b).encode()));
        b += every;
    }
    let (stats, collector) = sys.run_to_end();
    let trace = SystemTrace {
        config,
        ddv_vectors_exchanged: collector.ddv().vectors_exchanged(),
        records: collector.records,
        stats,
    };
    (ckpts, trace)
}

/// Rebuild a live system from a decoded checkpoint: reconstruct the machine
/// configuration from the metadata, fast-forward a fresh instruction stream
/// by the recorded per-processor fetch counts, import the collector state,
/// and restore the machine state. The result continues bit-identically to
/// the run the checkpoint was taken from.
pub fn resume_checkpoint(ck: &Checkpoint) -> AppSystem {
    let config = ExperimentConfig {
        app: ck.meta.app,
        n_procs: ck.meta.n_procs,
        scale: ck.meta.scale,
        interval_base: ck.meta.interval_base,
    };
    let mut sys_cfg = config.system_config();
    sys_cfg.fault = ck.meta.plan;
    // The snapshot's link vectors are indexed by the captured topology's
    // directed-link ids; rebuild the identical fabric, not the default one.
    sys_cfg.network.topology = ck.meta.topology;
    sys_cfg.network.link_contention = ck.meta.link_contention;

    // Streams are pure functions of (app, n_procs, scale); replaying the
    // recorded fetch counts puts a fresh one exactly where the snapshotted
    // stream stopped (including the parked pending events).
    let mut stream = make_stream(config.app, config.n_procs, config.scale);
    for (p, &n) in ck.system.fetched.iter().enumerate() {
        for _ in 0..n {
            let _ = stream.next(p);
        }
    }

    let dist = Network::new(sys_cfg.network, config.n_procs).distance_matrix();
    let mut collector = TraceCollector::new(config.n_procs, dist, ck.meta.geometry);
    collector.import_state(&ck.collector);

    let mut sys = System::new(sys_cfg, stream, collector);
    // Re-enable the captured shard layout first, so the state restore
    // rebuilds its per-shard scheduler trees from the restored processor
    // states. The continuation is bit-identical either way (sharded ≡
    // serial), but the resumed machine must *be* the machine captured.
    if ck.meta.shards > 1 {
        sys.enable_sharding(ck.meta.shards);
    }
    sys.restore_state(&ck.system);
    sys
}

/// Decode `bytes`, resume, and run to completion. Used by the round-trip
/// differential tests and the `faults --resume` flag.
pub fn resume_to_end(bytes: &[u8]) -> SystemTrace {
    let ck = Checkpoint::decode(bytes).expect("checkpoint decodes");
    let config = ExperimentConfig {
        app: ck.meta.app,
        n_procs: ck.meta.n_procs,
        scale: ck.meta.scale,
        interval_base: ck.meta.interval_base,
    };
    let (stats, collector) = resume_checkpoint(&ck).run_to_end();
    SystemTrace {
        config,
        ddv_vectors_exchanged: collector.ddv().vectors_exchanged(),
        records: collector.records,
        stats,
    }
}

/// One sampled-simulation run: selection, stratified per-cluster
/// measurements, reconstruction, and the error metrics against the full-run
/// golden.
#[derive(Debug, Clone)]
pub struct SimpointResult {
    pub config: ExperimentConfig,
    pub plan: FaultPlan,
    pub selection: Selection,
    /// Sampled member intervals per cluster (with within-cluster weights),
    /// aligned with `selection.simpoints`: the stratified allocation of the
    /// `n_intervals / 5` replay budget, sub-stratified on profiled CPI.
    pub samples: Vec<Vec<SampleUnit>>,
    /// Full-run mean CPI over complete global intervals.
    pub full_cpi: f64,
    /// Full-run CoV of per-interval CPI.
    pub full_cov: f64,
    /// Weighted reconstruction from the sampled clusters.
    pub sampled: Reconstructed,
    /// `|sampled.cpi - full_cpi| / full_cpi`.
    pub cpi_rel_error: f64,
    /// `|sampled.cov - full_cov|` (CoV is already dimensionless).
    pub cov_abs_error: f64,
    /// `n_intervals / n_replayed`: how many fewer intervals were simulated.
    pub reduction: f64,
    /// Total intervals actually replayed.
    pub n_replayed: usize,
    /// Encoded size of each replayed checkpoint, in boundary order.
    pub checkpoint_bytes: Vec<usize>,
    /// Estimated CPI per cluster (mean over its sampled members), aligned
    /// with `selection.simpoints`.
    pub measured_cpi: Vec<f64>,
}

/// The full pipeline for one configuration. Deterministic: same config and
/// plan always produce the identical result (and identical artefact bytes).
pub fn sampled_run(config: ExperimentConfig, plan: FaultPlan) -> SimpointResult {
    // 1. Profile.
    let profile = if plan.is_active() {
        std::sync::Arc::new(capture_with_faults(config, plan))
    } else {
        capture_cached(config)
    };
    let sigs = signatures(&profile.records);
    assert!(
        sigs.len() >= 2,
        "{}: need at least two complete global intervals, got {}",
        config.label(),
        sigs.len()
    );

    // 2. Select clusters, then spread the replay budget (a fifth of the
    // intervals, so the reduction stays >= 5x) across them. Profiled
    // per-interval CPI sub-stratifies within clusters — it shapes which
    // intervals get replayed, never the estimate itself.
    let cpis: Vec<f64> = interval_cpis(&profile.records).iter().map(|c| c.cpi).collect();
    let budget = (sigs.len() / 5).max(1);
    let max_k = budget.min(MAX_K);
    let selection = select(&sigs, max_k, SELECTION_SEED);
    let samples = stratified_members(&selection, budget, &cpis);
    let n_replayed: usize = samples.iter().map(|s| s.len()).sum();

    // 3. Checkpoint at every sampled boundary; the continuation is a free
    // differential check that the pass matches the profiling run. Replay
    // workers never look at pre-boundary interval records, so those are
    // stripped to keep hundreds of checkpoints memory-bounded.
    let boundaries: Vec<u64> = samples.iter().flatten().map(|u| u.interval as u64).collect();
    let mut ckpt_cfg = config.system_config();
    ckpt_cfg.fault = plan;
    let (ckpts, golden) = capture_checkpoints_inner(config, ckpt_cfg, &boundaries, true, 0);
    assert_eq!(
        golden.stats, profile.stats,
        "{}: checkpoint pass diverged from profiling pass",
        config.label()
    );
    assert_eq!(ckpts.len(), n_replayed);

    // 4. Replay one interval per checkpoint, in parallel. Decoding here
    // (rather than passing live snapshots) exercises the codec on every run.
    let checkpoint_bytes: Vec<usize> = ckpts.iter().map(|(_, b)| b.len()).collect();
    let measured: Vec<(u64, f64)> = par_map(ckpts, |(b, bytes)| {
        let ck = Checkpoint::decode(&bytes).expect("checkpoint decodes");
        let mut sys = resume_checkpoint(&ck);
        sys.run_to_interval(b + 1);
        let mut insns = 0u64;
        let mut cycles = 0u64;
        for proc_recs in &sys.observer().records {
            let rec = proc_recs
                .iter()
                .find(|r| r.index == b)
                .expect("replayed interval was recorded");
            insns += rec.insns;
            cycles += rec.cycles;
        }
        (b, if insns == 0 { 0.0 } else { cycles as f64 / insns as f64 })
    });
    let cpi_at: std::collections::HashMap<u64, f64> = measured.into_iter().collect();

    // 5. Reconstruct from the flattened mixture: each sampled unit carries
    // weight (cluster weight) x (its within-cluster group share). The same
    // mixture yields both the mean CPI and the CoV — the sub-strata keep
    // within-cluster spread visible to the second moment.
    let mut flat_w = Vec::with_capacity(n_replayed);
    let mut flat_cpi = Vec::with_capacity(n_replayed);
    for (sp, units) in selection.simpoints.iter().zip(&samples) {
        for u in units {
            flat_w.push(sp.weight * u.weight);
            flat_cpi.push(cpi_at[&(u.interval as u64)]);
        }
    }
    let sampled = reconstruct_cpi(&flat_w, &flat_cpi);
    let measured_cpi: Vec<f64> = samples
        .iter()
        .map(|s| s.iter().map(|u| u.weight * cpi_at[&(u.interval as u64)]).sum::<f64>())
        .collect();

    let (full_cpi, full_cov) = mean_and_cov(&cpis);

    SimpointResult {
        config,
        plan,
        cpi_rel_error: relative_error(sampled.cpi, full_cpi),
        cov_abs_error: (sampled.cov - full_cov).abs(),
        reduction: sigs.len() as f64 / n_replayed as f64,
        n_replayed,
        selection,
        samples,
        full_cpi,
        full_cov,
        sampled,
        checkpoint_bytes,
        measured_cpi,
    }
}

/// `<label>-simpoints.json`: the selection (schema in EXPERIMENTS.md).
pub fn simpoints_json(r: &SimpointResult) -> Json {
    let points: Vec<Json> = r
        .selection
        .simpoints
        .iter()
        .zip(&r.samples)
        .map(|(s, members)| {
            Json::obj()
                .field("interval", s.interval as u64)
                .field("weight", s.weight)
                .field("cluster_size", s.cluster_size as u64)
                .field(
                    "samples",
                    Json::Arr(
                        members
                            .iter()
                            .map(|u| {
                                Json::obj()
                                    .field("interval", u.interval as u64)
                                    .field("weight", u.weight)
                            })
                            .collect(),
                    ),
                )
        })
        .collect();
    Json::obj()
        .field("schema", "dsm-simpoint/v1")
        .field("experiment", "simpoint_selection")
        .field("config", r.config.label())
        .field("app", r.config.app.name())
        .field("n_procs", r.config.n_procs as u64)
        .field("seed", SELECTION_SEED)
        .field("n_intervals", r.selection.n_intervals as u64)
        .field("k", r.selection.k as u64)
        .field("score", r.selection.score)
        .field("n_replayed", r.n_replayed as u64)
        .field("reduction", r.reduction)
        .field("simpoints", Json::Arr(points))
}

/// `<label>-reconstruction.json`: the estimate and its error (schema in
/// EXPERIMENTS.md).
pub fn reconstruction_json(r: &SimpointResult) -> Json {
    Json::obj()
        .field("schema", "dsm-simpoint/v1")
        .field("experiment", "simpoint_reconstruction")
        .field("config", r.config.label())
        .field("k", r.selection.k as u64)
        .field("n_intervals", r.selection.n_intervals as u64)
        .field("n_replayed", r.n_replayed as u64)
        .field("reduction", r.reduction)
        .field(
            "full",
            Json::obj().field("cpi", r.full_cpi).field("cov", r.full_cov),
        )
        .field(
            "reconstructed",
            Json::obj().field("cpi", r.sampled.cpi).field("cov", r.sampled.cov),
        )
        .field("cpi_rel_error", r.cpi_rel_error)
        .field("cov_abs_error", r.cov_abs_error)
        .field(
            "checkpoint_bytes",
            Json::Arr(r.checkpoint_bytes.iter().map(|&b| Json::from(b as u64)).collect()),
        )
        .field(
            "measured_cpi",
            Json::Arr(r.measured_cpi.iter().map(|&c| Json::from(c)).collect()),
        )
}

/// Write both artefacts under `results/simpoint/`; returns their paths.
pub fn write_artifacts(r: &SimpointResult) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(report::results_dir()?.join("simpoint"))?;
    let label = r.config.label();
    let a = report::write_json(&format!("simpoint/{label}-simpoints.json"), &simpoints_json(r))?;
    let b = report::write_json(
        &format!("simpoint/{label}-reconstruction.json"),
        &reconstruction_json(r),
    )?;
    Ok((a, b))
}

fn fresh_system(config: ExperimentConfig, sys_cfg: SystemConfig) -> AppSystem {
    let stream = make_stream(config.app, config.n_procs, config.scale);
    let dist = Network::new(sys_cfg.network, config.n_procs).distance_matrix();
    let collector = TraceCollector::new(config.n_procs, dist, DetectorGeometry::default());
    System::new(sys_cfg, stream, collector)
}

fn snapshot(
    sys: &AppSystem,
    config: ExperimentConfig,
    sys_cfg: &SystemConfig,
    boundary: u64,
) -> Checkpoint {
    Checkpoint {
        meta: CheckpointMeta {
            app: config.app,
            n_procs: config.n_procs,
            scale: config.scale,
            interval_base: config.interval_base,
            topology: sys_cfg.network.topology,
            link_contention: sys_cfg.network.link_contention,
            plan: sys_cfg.fault,
            geometry: sys.observer().geometry(),
            interval_index: boundary,
            // 0 = the serial core; resume re-enables the same sharding.
            shards: sys.shard_layout().map_or(0, |l| l.n_shards()),
        },
        system: sys.state_snapshot(),
        collector: sys.observer().export_state(),
        adapt: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_workloads::App;

    #[test]
    fn resumed_run_matches_straight_run() {
        let config = ExperimentConfig::test(App::Lu, 2);
        let (ckpts, golden) = capture_with_checkpoints(config, FaultPlan::none(), &[2]);
        assert_eq!(ckpts.len(), 1);
        let resumed = resume_to_end(&ckpts[0].1);
        assert_eq!(resumed.stats, golden.stats);
        assert_eq!(resumed.records, golden.records);
        assert_eq!(resumed.ddv_vectors_exchanged, golden.ddv_vectors_exchanged);
    }

    #[test]
    fn checkpoint_every_boundaries_are_periodic() {
        let config = ExperimentConfig::test(App::Fmm, 2);
        let (ckpts, trace) = capture_checkpoint_every(config, FaultPlan::none(), 2);
        assert!(!ckpts.is_empty());
        for (i, (b, _)) in ckpts.iter().enumerate() {
            assert_eq!(*b, 2 * (i as u64 + 1));
        }
        // Each one resumes to the identical end state.
        let resumed = resume_to_end(&ckpts.last().unwrap().1);
        assert_eq!(resumed.stats, trace.stats);
    }

    #[test]
    fn sampled_run_reconstructs_lu() {
        let config = ExperimentConfig::test(App::Lu, 2);
        let r = sampled_run(config, FaultPlan::none());
        assert!(r.selection.k >= 1);
        assert!(r.reduction >= 1.0);
        assert!(r.full_cpi > 0.0);
        assert!(r.sampled.cpi > 0.0);
        assert!(r.cpi_rel_error.is_finite());
        assert_eq!(r.checkpoint_bytes.len(), r.n_replayed);
        assert!(r.reduction >= 5.0 || r.selection.n_intervals < 5);
        // Replayed intervals measure *exactly* what the full run saw —
        // restore is bit-identical, so any gap is a checkpointing bug, not
        // sampling noise. Cluster estimates are therefore exact weighted
        // means of golden per-interval CPIs over the sampled members.
        let golden = interval_cpis(&crate::trace::capture(config).records);
        for (members, &m) in r.samples.iter().zip(&r.measured_cpi) {
            let weight_sum: f64 = members.iter().map(|u| u.weight).sum();
            assert!((weight_sum - 1.0).abs() < 1e-12, "weights sum to {weight_sum}");
            let expect: f64 = members.iter().map(|u| u.weight * golden[u.interval].cpi).sum();
            assert!((m - expect).abs() < 1e-12, "cluster mean {m} != {expect}");
        }
    }

    #[test]
    fn sampled_run_is_deterministic_including_artifacts() {
        let config = ExperimentConfig::test(App::Art, 2);
        let a = sampled_run(config, FaultPlan::none());
        let b = sampled_run(config, FaultPlan::none());
        assert_eq!(simpoints_json(&a).to_string(), simpoints_json(&b).to_string());
        assert_eq!(reconstruction_json(&a).to_string(), reconstruction_json(&b).to_string());
    }

    #[test]
    fn sampled_run_under_faults() {
        let r = sampled_run(ExperimentConfig::test(App::Equake, 2), FaultPlan::mixed(7, 0.02));
        assert!(r.sampled.cpi > 0.0);
        assert!(r.cpi_rel_error.is_finite());
    }
}
