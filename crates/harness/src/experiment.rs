//! Experiment configuration: which application, how many nodes, what scale.

use dsm_sim::config::SystemConfig;
use dsm_workloads::{App, Scale};
use serde::{Deserialize, Serialize};

/// One (application, system size) experiment point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExperimentConfig {
    pub app: App,
    pub n_procs: usize,
    pub scale: Scale,
    /// System-wide interval base: each processor samples every
    /// `interval_base / n_procs` committed non-sync instructions (the
    /// paper's scaling rule; 3 M at paper scale).
    pub interval_base: u64,
}

impl ExperimentConfig {
    /// Default harness configuration at the reduced (`Scaled`) inputs.
    pub fn scaled(app: App, n_procs: usize) -> Self {
        Self {
            app,
            n_procs,
            scale: Scale::Scaled,
            interval_base: 128_000,
        }
    }

    /// Paper-scale configuration (Table I/II parameters).
    pub fn paper(app: App, n_procs: usize) -> Self {
        Self {
            app,
            n_procs,
            scale: Scale::Paper,
            interval_base: 3_000_000,
        }
    }

    /// Tiny configuration for tests.
    pub fn test(app: App, n_procs: usize) -> Self {
        Self {
            app,
            n_procs,
            scale: Scale::Test,
            interval_base: 16_000,
        }
    }

    /// The simulated machine for this experiment.
    pub fn system_config(&self) -> SystemConfig {
        match self.scale {
            Scale::Paper => SystemConfig::with_interval_base(self.n_procs, self.interval_base),
            // Reduced inputs keep the paper's working-set-to-cache ratio by
            // shrinking the L2 (DESIGN.md §7).
            Scale::Scaled | Scale::Test => SystemConfig::scaled(self.n_procs, self.interval_base),
        }
    }

    /// Stable label for caches, filenames, and report headers.
    pub fn label(&self) -> String {
        format!(
            "{}-{}p-{:?}-{}",
            self.app.name(),
            self.n_procs,
            self.scale,
            self.interval_base
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_scaling_rule() {
        let c = ExperimentConfig::paper(App::Lu, 8);
        assert_eq!(c.system_config().interval_len(), 375_000);
        let c = ExperimentConfig::scaled(App::Lu, 32);
        assert_eq!(c.system_config().interval_len(), 4_000);
    }

    #[test]
    fn scaled_config_shrinks_l2_only() {
        let p = ExperimentConfig::paper(App::Fmm, 8).system_config();
        let s = ExperimentConfig::scaled(App::Fmm, 8).system_config();
        assert!(s.l2.size_bytes < p.l2.size_bytes);
        assert_eq!(s.l1, p.l1);
        assert_eq!(s.memory, p.memory);
        assert_eq!(s.network, p.network);
    }

    #[test]
    fn labels_are_unique_per_config() {
        let a = ExperimentConfig::scaled(App::Lu, 8).label();
        let b = ExperimentConfig::scaled(App::Lu, 32).label();
        let c = ExperimentConfig::scaled(App::Fmm, 8).label();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
